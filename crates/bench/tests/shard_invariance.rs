//! Regression: intra-trial sharded replay is **bitwise independent of the
//! shard-worker count** — the shard partition is a pure function of the
//! visit count, shard substreams are counter-keyed, and per-shard
//! aggregates merge in a fixed-shape tree, so `KG_EVAL_SHARDS` (like
//! `KG_EVAL_WORKERS` one level up) is purely an operational knob.
//!
//! The same seeded replay (a 10^5-triple long-tail synthetic KG, fixed
//! WCS / TWCS visit counts) runs at forced shard-worker counts 1 and 7 on
//! both annotation engines; every reported metric must be bit-for-bit
//! equal, and the engines must agree with each other. The CI determinism
//! job additionally byte-diffs whole `repro sharded` dumps under
//! `KG_EVAL_SHARDS=1` and `=4`.

use kg_annotate::cost::CostModel;
use kg_annotate::lease::DenseArenaPool;
use kg_annotate::oracle::RemOracle;
use kg_bench::throughput::synthetic_sizes;
use kg_eval::framework::Evaluator;
use kg_eval::sharded::{ShardReplayReport, ShardedReplay};
use kg_sampling::PopulationIndex;
use std::sync::Arc;

/// Every replay metric with float fields as exact bits.
fn bits(r: &ShardReplayReport) -> (u64, u64, u64, u64, u64, u64, u64, u64, u64) {
    (
        r.estimate.mean.to_bits(),
        r.estimate.var_of_mean.to_bits(),
        r.estimate.units as u64,
        r.accuracies.sample_std().to_bits(),
        r.cost_seconds.to_bits(),
        r.labeled,
        r.correct,
        r.entities,
        r.shards,
    )
}

#[test]
fn sharded_replays_are_bitwise_equal_at_1_and_7_shard_workers_on_both_engines() {
    let sizes = synthetic_sizes(100_000);
    let oracle = RemOracle::new(0.9, 20190923);
    let idx = Arc::new(PopulationIndex::from_sizes(sizes).expect("non-empty KG"));
    let store = Arc::new(idx.materialize_labels(&oracle));
    let pool = DenseArenaPool::new(store, CostModel::default());
    let units = 5_000u64;
    let trial_seed = 0x5ead;
    let one = ShardedReplay::new().with_shard_workers(1);
    let seven = ShardedReplay::new().with_shard_workers(7);

    for evaluator in [Evaluator::wcs(), Evaluator::twcs(5)] {
        // Hash engine.
        let h1 = evaluator
            .replay_sharded(&idx, &oracle, &one, units, trial_seed)
            .expect("WCS/TWCS are shardable");
        let h7 = evaluator
            .replay_sharded(&idx, &oracle, &seven, units, trial_seed)
            .expect("WCS/TWCS are shardable");
        assert_eq!(
            bits(&h1),
            bits(&h7),
            "{}: hash engine drifted with shard workers",
            h1.design
        );
        assert_eq!(h1.units, units);
        assert_eq!(h1.accuracies.count(), units);
        assert!((h1.estimate.mean - 0.9).abs() < 0.03);

        // Dense engine, arenas batch-leased from one shared pool.
        let d1 = evaluator
            .replay_sharded_dense(&idx, &pool, &one, units, trial_seed)
            .expect("WCS/TWCS are shardable");
        let d7 = evaluator
            .replay_sharded_dense(&idx, &pool, &seven, units, trial_seed)
            .expect("WCS/TWCS are shardable");
        assert_eq!(
            bits(&d1),
            bits(&d7),
            "{}: dense engine drifted with shard workers",
            d1.design
        );

        // And the engines agree with each other, bit for bit.
        assert_eq!(
            bits(&h1),
            bits(&d1),
            "{}: hash and dense engines disagree",
            h1.design
        );
    }
    assert!(
        pool.arenas_built() <= 8,
        "arenas must be batch-leased per worker, not per shard (built {})",
        pool.arenas_built()
    );
}

#[test]
fn unshardable_designs_decline_rather_than_drift() {
    let idx = Arc::new(PopulationIndex::from_sizes(vec![3; 100]).expect("non-empty KG"));
    let oracle = RemOracle::new(0.9, 1);
    let replay = ShardedReplay::new().with_shard_workers(2);
    for evaluator in [
        Evaluator::srs(),
        Evaluator::rcs(),
        Evaluator::twcs_size_stratified(5, 3),
    ] {
        assert!(
            evaluator
                .replay_sharded(&idx, &oracle, &replay, 100, 0)
                .is_none(),
            "{:?} must not pretend to shard",
            evaluator.design()
        );
    }
}

//! Degenerate corners of the scenario matrix: workloads that collapse an
//! axis to its boundary — one giant cluster, all singleton clusters, a
//! perfectly wrong and a perfectly right KG, and an insert burst larger
//! than the whole base KG. Every evaluator × engine cell must still
//! replay byte-identically across engines (and offer paths for RS), and
//! the zero/one-accuracy corners must estimate the truth *exactly* (zero
//! variance ⇒ zero MoE ⇒ 100% coverage by equality, not luck).

use kg_bench::scenarios::sweep_scenario;
use kg_datagen::scenario::{AccuracyDrift, EventSchedule, Scenario, SizeDistribution};

fn edge(name: &'static str, sizes: SizeDistribution, base_accuracy: f64) -> Scenario {
    Scenario {
        name,
        sizes,
        base_accuracy,
        drift: AccuracyDrift::None,
        schedule: EventSchedule::steady(3, 0.2),
        pool: None,
        costs: None,
    }
}

/// Identity + bitwise engine agreement in all 16 cells.
fn assert_cells_identical(report: &kg_bench::scenarios::ScenarioReport, name: &str) {
    assert_eq!(
        report.cells.len(),
        16,
        "{name}: expected 8 evaluators × 2 engines"
    );
    for cell in &report.cells {
        assert!(
            cell.identity,
            "{name}/{}/{}: engines (or offer paths) diverged",
            cell.evaluator, cell.engine
        );
    }
    for pair in report.cells.chunks(2) {
        assert_eq!(pair[0].evaluator, pair[1].evaluator);
        assert_eq!(
            pair[0].mean_estimate.to_bits(),
            pair[1].mean_estimate.to_bits(),
            "{name}/{}: engine trial estimates disagree",
            pair[0].evaluator
        );
    }
}

#[test]
fn single_giant_cluster_sweeps_identically() {
    // The whole KG is one cluster: every design degenerates to sampling
    // inside it, and the stratifier must cope with fewer clusters than
    // requested strata.
    let s = edge(
        "single_cluster",
        SizeDistribution::Uniform { size: 400 },
        0.85,
    );
    let report = sweep_scenario(&s, 400, 8, 13);
    assert_eq!(report.base_triples, 400);
    assert_cells_identical(&report, "single_cluster");
    assert!(report.truth > 0.0 && report.truth < 1.0);
}

#[test]
fn all_singleton_clusters_sweep_identically() {
    // Every cluster holds one triple: cluster sampling and triple sampling
    // coincide, second-stage m is always capped at 1.
    let s = edge("all_singletons", SizeDistribution::Uniform { size: 1 }, 0.8);
    let report = sweep_scenario(&s, 400, 8, 17);
    assert_cells_identical(&report, "all_singletons");
}

#[test]
fn zero_and_perfect_accuracy_estimate_exactly() {
    // All-false and all-true KGs have zero label variance: every mean-type
    // evaluator must return the truth bit-exactly with certainty, in every
    // cell. The one exception is TSRCS, whose expansion estimator
    // `(N/T)·M_c·ā_c` is scaled by the sampled cluster sizes — it is exact
    // only when the numerator vanishes (all-false), and merely close at
    // all-true.
    for (name, acc) in [("zero_accuracy", 0.0), ("perfect_accuracy", 1.0)] {
        let s = edge(name, SizeDistribution::MovieZipf, acc);
        let report = sweep_scenario(&s, 600, 8, 19);
        assert_eq!(report.truth, acc, "{name}: truth must be exact");
        assert_cells_identical(&report, name);
        for cell in &report.cells {
            if cell.evaluator == "TSRCS" && acc == 1.0 {
                assert!(
                    (cell.mean_estimate - acc).abs() < 0.1,
                    "{name}/TSRCS/{}: expansion estimate {} too far from 1",
                    cell.engine,
                    cell.mean_estimate
                );
                continue;
            }
            assert_eq!(
                cell.mean_estimate, acc,
                "{name}/{}/{}: estimate must equal the degenerate truth",
                cell.evaluator, cell.engine
            );
            assert_eq!(
                cell.coverage, 1.0,
                "{name}/{}/{}: zero-variance CI must always cover",
                cell.evaluator, cell.engine
            );
            assert!(cell.covered, "{name}: covered flag");
        }
    }
}

#[test]
fn burst_larger_than_base_kg_sweeps_identically() {
    // A single event inserts 1.8× the base KG: the stream more than
    // doubles the population and the fresh mass dominates every frame.
    let s = Scenario {
        name: "mega_burst",
        sizes: SizeDistribution::MovieZipf,
        base_accuracy: 0.9,
        drift: AccuracyDrift::None,
        schedule: EventSchedule {
            num_events: 3,
            update_fraction: 0.6,
            burst_every: 2,
            burst_multiplier: 3,
            delete_fraction: 0.0,
            churn_burst_every: 0,
            churn_burst_fraction: 0.0,
        },
        pool: None,
        costs: None,
    };
    let report = sweep_scenario(&s, 500, 8, 23);
    assert!(
        report.inserted > report.base_triples,
        "burst stream must out-insert the base KG ({} vs {})",
        report.inserted,
        report.base_triples
    );
    assert_cells_identical(&report, "mega_burst");
}

//! Regression for the reservoir **saturation flag** on the drift-family
//! bias repro: `drift_coverage` documents that with the movie profile's
//! cluster cap of 4000 a single giant update cluster saturates its
//! reservoir inclusion probability (`K·w/W ≥ 1`) and biases the RS
//! plain-mean estimate upward by ≈ +0.02, which is why that suite bounds
//! update clusters at 60. The monitor now *surfaces* that regime instead
//! of silently biasing: every [`kg_eval::dynamic::monitor::BatchOutcome`]
//! carries `saturated`, true exactly while some appended cluster's
//! `K·w/W ≥ 1` against the live total.

use kg_annotate::annotator::SimulatedAnnotator;
use kg_annotate::cost::CostModel;
use kg_annotate::oracle::RemOracle;
use kg_datagen::evolve::UpdateGenerator;
use kg_eval::config::EvalConfig;
use kg_eval::dynamic::monitor::{run_sequence, BatchOutcome};
use kg_eval::dynamic::reservoir::ReservoirEvaluator;
use kg_eval::dynamic::stratified::StratifiedIncremental;
use kg_eval::dynamic::IncrementalEvaluator;
use kg_model::implicit::{ClusterPopulation, ImplicitKg};
use kg_model::update::UpdateBatch;
use kg_stats::PointEstimate;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 20190923;
const CAPACITY: usize = 60;

fn base_kg(clusters: usize) -> ImplicitKg {
    ImplicitKg::new((0..clusters).map(|i| 1 + (i % 12) as u32).collect()).unwrap()
}

fn replay_rs(base: &ImplicitKg, batches: &[UpdateBatch]) -> Vec<BatchOutcome> {
    let config = EvalConfig::default();
    let oracle = RemOracle::new(0.9, SEED);
    let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut rs =
        ReservoirEvaluator::evaluate_base(base, CAPACITY, 5, config, &mut annotator, &mut rng);
    assert!(!rs.saturated(), "bounded base must start unsaturated");
    run_sequence(&mut rs, batches, config.alpha, &mut annotator, &mut rng)
}

/// The flag's exact per-batch truth on an insert-only stream: `K·w/W ≥ 1`
/// for the largest cluster appended so far against the live total.
fn expected_flags(base: &ImplicitKg, batches: &[UpdateBatch]) -> Vec<bool> {
    let mut max_w = u64::from(base.sizes().iter().copied().max().unwrap());
    let mut live = base.total_triples();
    batches
        .iter()
        .map(|b| {
            live += b.total_triples();
            let batch_max = b.delta_sizes().iter().copied().max().unwrap_or(0);
            max_w = max_w.max(u64::from(batch_max));
            (CAPACITY as u128) * (max_w as u128) >= live as u128
        })
        .collect()
}

#[test]
fn saturation_flag_fires_on_the_drift_bias_repro_stream() {
    // The repro family: movie-profile cap 4000 (vs drift_coverage's 60)
    // over the drift suite's 600-cluster base.
    let base = base_kg(600);
    let batches = UpdateGenerator::new(1.9, 4000, 9.2).sequence(5, 400, SEED ^ 0xcafe);
    let expected = expected_flags(&base, &batches);
    assert!(
        expected.iter().any(|&f| f),
        "repro stream must contain a saturating cluster (regenerate the seed)"
    );
    let outcomes = replay_rs(&base, &batches);
    for (k, (o, &want)) in outcomes.iter().zip(&expected).enumerate() {
        assert_eq!(
            o.saturated,
            want,
            "batch {}: saturated flag disagrees with K·w/W",
            k + 1
        );
    }
}

#[test]
fn bounded_streams_never_raise_the_flag() {
    // A frame where every cluster stays below W/K — the cap-60 update
    // stream against a 39k-triple base (the generator's remainder cluster
    // can exceed the nominal cap, so the base must dominate it) — is
    // never flagged.
    let base = base_kg(6000);
    let batches = UpdateGenerator::new(1.9, 60, 9.2).sequence(5, 400, SEED ^ 0xcafe);
    assert!(
        expected_flags(&base, &batches).iter().all(|&f| !f),
        "bounded stream must stay unsaturated"
    );
    for o in replay_rs(&base, &batches) {
        assert!(!o.saturated, "batch {} wrongly flagged", o.batch);
    }
}

#[test]
fn stratified_monitor_never_saturates() {
    // SS samples each stratum with a fresh TWCS frame — no reservoir
    // inclusion probability exists to saturate, even on the repro stream.
    let base = base_kg(600);
    let batches = UpdateGenerator::new(1.9, 4000, 9.2).sequence(5, 400, SEED ^ 0xcafe);
    let config = EvalConfig::default();
    let oracle = RemOracle::new(0.9, SEED);
    let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
    let mut rng = StdRng::seed_from_u64(SEED);
    let est = PointEstimate::new(0.9, 0.0004, 60).unwrap();
    let mut ss = StratifiedIncremental::from_base(&base, est, 5, config);
    for o in run_sequence(&mut ss, &batches, config.alpha, &mut annotator, &mut rng) {
        assert!(!o.saturated, "SS flagged batch {}", o.batch);
    }
}

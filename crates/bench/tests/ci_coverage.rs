//! Statistical guarantee of the §6 incremental evaluators on an evolving
//! KG: the per-batch confidence interval must cover the evolved KG's true
//! accuracy at ≈ the nominal 95% rate, for **both** evaluators under
//! **both** annotation engines.
//!
//! Each trial replays the same base KG + update sequence with fresh
//! sampling randomness (counter-seeded via `kg_eval::executor::run_trials`,
//! whose fixed-shape reduction makes results bitwise independent of
//! worker count); after every batch the trial records whether the interval
//! `μ̂ ± MoE(α)` contains `μ(G + Δ_1 + … + Δ_k)` — the exact truth read
//! from a batch-extended `LabelStore`. Coverage per batch is then compared
//! against 0.95 with a binomial tolerance: with `T` trials the standard
//! error of a 95%-coverage estimate is `σ = √(0.95·0.05/T)`, and the
//! assertions allow 3σ plus a small slack for the Normal-approximation and
//! plug-in-variance error the paper's own intervals carry (§2.2).
//!
//! The quick suite (200 trials, 5 batches) runs in the tier-1 gate; the
//! `--ignored` suite scales to 500 trials × 8 batches at a tighter MoE
//! target and runs in the scheduled CI job:
//! `cargo test --release -p kg-bench --test ci_coverage -- --ignored`.

use kg_annotate::annotator::{Annotator, SimulatedAnnotator};
use kg_annotate::cost::CostModel;
use kg_annotate::dense::DenseAnnotator;
use kg_annotate::label_store::LabelStore;
use kg_annotate::oracle::RemOracle;
use kg_datagen::evolve::{ChurnGenerator, UpdateGenerator};
use kg_eval::config::EvalConfig;
use kg_eval::dynamic::monitor::{run_event_sequence, run_sequence};
use kg_eval::dynamic::reservoir::ReservoirEvaluator;
use kg_eval::dynamic::stratified::StratifiedIncremental;
use kg_eval::executor::run_trials;
use kg_eval::framework::Evaluator;
use kg_model::implicit::ImplicitKg;
use kg_model::retract::KgEvent;
use kg_model::update::UpdateBatch;
use kg_sampling::PopulationIndex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

struct CoverageSetup {
    base: ImplicitKg,
    base_index: Arc<PopulationIndex>,
    oracle: RemOracle,
    batches: Vec<UpdateBatch>,
    /// Truth after each batch, from a batch-extended label store.
    truths: Vec<f64>,
    /// Fully evolved store for dense replays (ids pre-covered).
    evolved_store: Arc<LabelStore>,
    config: EvalConfig,
}

fn coverage_setup(
    base_clusters: usize,
    per_batch: u64,
    num_batches: usize,
    config: EvalConfig,
    seed: u64,
) -> CoverageSetup {
    let base = ImplicitKg::new((0..base_clusters).map(|i| 1 + (i % 12) as u32).collect()).unwrap();
    let oracle = RemOracle::new(0.9, seed);
    let batches = UpdateGenerator::movie_like().sequence(num_batches, per_batch, seed ^ 0xcafe);
    let mut store = LabelStore::materialize(&base, &oracle);
    let mut truths = Vec::with_capacity(num_batches);
    for b in &batches {
        store.extend_with_batch(b, &oracle);
        truths.push(store.true_accuracy());
    }
    CoverageSetup {
        base_index: Arc::new(PopulationIndex::from_population(&base).unwrap()),
        base,
        oracle,
        batches,
        truths,
        evolved_store: Arc::new(store),
        config,
    }
}

/// One replay of the stream; returns the per-batch CI-coverage hits.
fn coverage_hits(
    s: &CoverageSetup,
    evaluator: &str,
    annotator: &mut dyn Annotator,
    trial_seed: u64,
) -> Vec<f64> {
    let m = 5;
    let mut rng = StdRng::seed_from_u64(trial_seed);
    let outcomes = match evaluator {
        "RS" => {
            let mut rs =
                ReservoirEvaluator::evaluate_base(&s.base, 60, m, s.config, annotator, &mut rng);
            run_sequence(&mut rs, &s.batches, s.config.alpha, annotator, &mut rng)
        }
        "SS" => {
            // Honest per-trial base evaluation: SS freezes this estimate,
            // so its sampling error must resample across trials for the
            // combined interval to be calibrated.
            let report = Evaluator::twcs(m)
                .run_with_index(s.base_index.clone(), &s.oracle, &s.config, &mut rng)
                .expect("valid base population");
            let mut ss = StratifiedIncremental::from_base(&s.base, report.estimate, m, s.config);
            run_sequence(&mut ss, &s.batches, s.config.alpha, annotator, &mut rng)
        }
        other => panic!("unknown evaluator {other}"),
    };
    outcomes
        .iter()
        .zip(&s.truths)
        .map(|(o, &truth)| ((o.estimate.mean - truth).abs() <= o.moe) as u64 as f64)
        .collect()
}

/// Per-batch coverage over `trials` seeded replays.
fn coverage_per_batch(
    s: &CoverageSetup,
    evaluator: &'static str,
    engine: &'static str,
    trials: u64,
    base_seed: u64,
) -> Vec<f64> {
    let stats = run_trials(trials, base_seed, s.batches.len(), |trial_seed| {
        match engine {
            "hash" => {
                let mut ann = SimulatedAnnotator::new(&s.oracle, CostModel::default());
                coverage_hits(s, evaluator, &mut ann, trial_seed)
            }
            "dense" => {
                // Fresh arena per trial over the shared pre-evolved store:
                // extend_population recognizes the replayed ids as covered.
                let mut ann = DenseAnnotator::new(s.evolved_store.clone(), CostModel::default());
                coverage_hits(s, evaluator, &mut ann, trial_seed)
            }
            other => panic!("unknown engine {other}"),
        }
    });
    stats.iter().map(|m| m.mean()).collect()
}

fn assert_coverage(cov: &[f64], trials: u64, label: &str) {
    // Binomial 3σ band around the nominal 95%, plus 2% slack for the
    // Normal-approximation / plug-in-variance error inherent to Eq. 1.
    let sigma = (0.95f64 * 0.05 / trials as f64).sqrt();
    let lo = 0.95 - 3.0 * sigma - 0.02;
    for (k, &c) in cov.iter().enumerate() {
        assert!(
            (lo..=1.0).contains(&c),
            "{label}: batch {} coverage {c:.3} outside [{lo:.3}, 1.0] (trials {trials})",
            k + 1
        );
    }
}

// ---------------------------------------------------------------------------
// Churn coverage: the same guarantee under interleaved inserts, deletions,
// and revisions. The truth after each event is the **live** accuracy of an
// event-folded LabelStore (retracted triples excluded from both numerator
// and denominator), so the interval must track the KG's deletions as well
// as its growth.
// ---------------------------------------------------------------------------

struct ChurnCoverageSetup {
    base: ImplicitKg,
    base_index: Arc<PopulationIndex>,
    oracle: RemOracle,
    events: Vec<KgEvent>,
    /// Live truth after each event, from an event-folded label store.
    truths: Vec<f64>,
    /// Fully evolved store for dense replays (raw addressing is unaffected
    /// by the fold's retraction accounting).
    evolved_store: Arc<LabelStore>,
    config: EvalConfig,
}

fn churn_coverage_setup(
    base_clusters: usize,
    fraction: f64,
    per_event: u64,
    num_events: usize,
    config: EvalConfig,
    seed: u64,
) -> ChurnCoverageSetup {
    let base = ImplicitKg::new((0..base_clusters).map(|i| 1 + (i % 12) as u32).collect()).unwrap();
    let oracle = RemOracle::new(0.9, seed);
    // All three event kinds interleaved: the generator emits revisions, and
    // every third one is split into a pure retraction + pure insertion.
    let generated =
        ChurnGenerator::movie_like(fraction).events(&base, num_events, per_event, seed ^ 0xcafe);
    let mut events = Vec::new();
    for (i, event) in generated.into_iter().enumerate() {
        match event {
            KgEvent::Revise(r, b) if i % 3 == 2 => {
                events.push(KgEvent::Retract(r));
                events.push(KgEvent::Insert(b));
            }
            event => events.push(event),
        }
    }
    let mut store = LabelStore::materialize(&base, &oracle);
    let mut truths = Vec::with_capacity(events.len());
    for event in &events {
        if let Some(r) = event.retracted() {
            store.retract(r);
        }
        if let Some(b) = event.inserted() {
            store.extend_with_batch(b, &oracle);
        }
        truths.push(store.true_accuracy());
    }
    ChurnCoverageSetup {
        base_index: Arc::new(PopulationIndex::from_population(&base).unwrap()),
        base,
        oracle,
        events,
        truths,
        evolved_store: Arc::new(store),
        config,
    }
}

/// One replay of the churn stream; returns the per-event CI-coverage hits.
fn churn_coverage_hits(
    s: &ChurnCoverageSetup,
    evaluator: &str,
    annotator: &mut dyn Annotator,
    trial_seed: u64,
) -> Vec<f64> {
    let m = 5;
    let mut rng = StdRng::seed_from_u64(trial_seed);
    let outcomes = match evaluator {
        "RS" => {
            let mut rs =
                ReservoirEvaluator::evaluate_base(&s.base, 60, m, s.config, annotator, &mut rng);
            run_event_sequence(&mut rs, &s.events, s.config.alpha, annotator, &mut rng)
        }
        "SS" => {
            let report = Evaluator::twcs(m)
                .run_with_index(s.base_index.clone(), &s.oracle, &s.config, &mut rng)
                .expect("valid base population");
            let mut ss = StratifiedIncremental::from_base(&s.base, report.estimate, m, s.config);
            run_event_sequence(&mut ss, &s.events, s.config.alpha, annotator, &mut rng)
        }
        other => panic!("unknown evaluator {other}"),
    };
    outcomes
        .iter()
        .zip(&s.truths)
        .map(|(o, &truth)| ((o.estimate.mean - truth).abs() <= o.moe) as u64 as f64)
        .collect()
}

/// Per-event coverage over `trials` seeded churn replays.
fn churn_coverage_per_event(
    s: &ChurnCoverageSetup,
    evaluator: &'static str,
    engine: &'static str,
    trials: u64,
    base_seed: u64,
) -> Vec<f64> {
    let stats = run_trials(
        trials,
        base_seed,
        s.events.len(),
        |trial_seed| match engine {
            "hash" => {
                let mut ann = SimulatedAnnotator::new(&s.oracle, CostModel::default());
                churn_coverage_hits(s, evaluator, &mut ann, trial_seed)
            }
            "dense" => {
                let mut ann = DenseAnnotator::new(s.evolved_store.clone(), CostModel::default());
                churn_coverage_hits(s, evaluator, &mut ann, trial_seed)
            }
            other => panic!("unknown engine {other}"),
        },
    );
    stats.iter().map(|m| m.mean()).collect()
}

#[test]
fn churn_ci_coverage_stays_nominal_across_engines() {
    // 200 trials, both evaluators, both engines, 25% deletions.
    let trials = 200;
    let s = churn_coverage_setup(600, 0.25, 400, 5, EvalConfig::default(), 20190923);
    assert!(s.events.len() > 5, "revision splits lengthen the stream");
    assert!(s.truths.iter().all(|t| (0.85..0.95).contains(t)));
    for evaluator in ["RS", "SS"] {
        for engine in ["hash", "dense"] {
            let cov = churn_coverage_per_event(&s, evaluator, engine, trials, 7);
            assert_coverage(&cov, trials, &format!("churn {evaluator}/{engine}"));
        }
    }
}

#[test]
#[ignore = "slow statistical suite — run in the scheduled CI job"]
fn churn_ci_coverage_extended() {
    // Heavier churn (50% deletions), longer stream, tighter MoE target,
    // 500 trials.
    let trials = 500;
    let config = EvalConfig::default().with_target_moe(0.03);
    let s = churn_coverage_setup(2500, 0.5, 2000, 8, config, 4242);
    for evaluator in ["RS", "SS"] {
        for engine in ["hash", "dense"] {
            let cov = churn_coverage_per_event(&s, evaluator, engine, trials, 11);
            assert_coverage(
                &cov,
                trials,
                &format!("extended churn {evaluator}/{engine}"),
            );
        }
    }
}

#[test]
fn incremental_ci_coverage_stays_nominal_across_engines() {
    // ≥200 trials, both evaluators, both engines, 5-batch stream.
    let trials = 200;
    let s = coverage_setup(600, 400, 5, EvalConfig::default(), 20190923);
    assert!(s.truths.iter().all(|t| (0.85..0.95).contains(t)));
    for evaluator in ["RS", "SS"] {
        for engine in ["hash", "dense"] {
            let cov = coverage_per_batch(&s, evaluator, engine, trials, 7);
            assert_coverage(&cov, trials, &format!("{evaluator}/{engine}"));
        }
    }
}

#[test]
#[ignore = "slow statistical suite — run in the scheduled CI job"]
fn incremental_ci_coverage_extended() {
    // Larger KG, longer stream, tighter MoE target, more trials.
    let trials = 500;
    let config = EvalConfig::default().with_target_moe(0.03);
    let s = coverage_setup(2500, 2000, 8, config, 4242);
    for evaluator in ["RS", "SS"] {
        for engine in ["hash", "dense"] {
            let cov = coverage_per_batch(&s, evaluator, engine, trials, 11);
            assert_coverage(&cov, trials, &format!("extended {evaluator}/{engine}"));
        }
    }
}

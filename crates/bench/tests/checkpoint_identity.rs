//! Checkpoint/restore byte-identity — the signature invariant of the
//! session-scoped monitor runtime.
//!
//! For every evaluator kind (RS and SS), both annotation engines (hash
//! and dense), and both reservoir offer paths (per-item and batched), a
//! monitor checkpointed after *any* prefix of a churn stream and
//! restored into a fresh registry must finish the stream with estimates
//! byte-identical to the uninterrupted run — not approximately equal,
//! `f64::to_bits` equal. Wired into the CI determinism job alongside
//! `offer_identity` and `churn_identity`.

use kg_eval::config::EvalConfig;
use kg_eval::dynamic::reservoir::OfferMode;
use kg_eval::session::{Engine, EvaluatorKind, SessionRegistry, SessionSpec};
use kg_model::retract::{KgEvent, Retraction};
use kg_model::update::UpdateBatch;

const SEED: u64 = 20190923;

fn spec(kind: EvaluatorKind, engine: Engine, offer_mode: OfferMode) -> SessionSpec {
    SessionSpec {
        kind,
        engine,
        offer_mode,
        m: 5,
        config: EvalConfig::default(),
        seed: SEED,
        oracle_accuracy: 0.9,
        oracle_seed: 11,
        base_sizes: (0..400).map(|i| 1 + (i % 9)).collect(),
    }
}

/// A five-event churn stream over the 400-cluster base: growth,
/// deletions inside base and inserted clusters, and a revision.
fn stream() -> Vec<KgEvent> {
    vec![
        KgEvent::Insert(UpdateBatch::from_sizes(vec![3; 60]).expect("sizes")),
        KgEvent::Retract(
            Retraction::new(vec![(2, vec![0]), (401, vec![1, 2])]).expect("retraction"),
        ),
        KgEvent::Revise(
            Retraction::new(vec![(405, vec![0, 1, 2])]).expect("retraction"),
            UpdateBatch::from_sizes(vec![5; 30]).expect("sizes"),
        ),
        KgEvent::Insert(UpdateBatch::from_sizes(vec![2; 45]).expect("sizes")),
        KgEvent::Retract(Retraction::new(vec![(7, vec![0]), (436, vec![0])]).expect("retraction")),
    ]
}

type Bits = (u64, u64, usize, bool);

fn bits(r: &kg_eval::EstimateReport) -> Bits {
    (
        r.mean.to_bits(),
        r.var_of_mean.to_bits(),
        r.units,
        r.saturated,
    )
}

/// Drive the full stream uninterrupted, one event per request.
fn uninterrupted(spec: &SessionSpec) -> Vec<Bits> {
    let registry = SessionRegistry::new();
    let id = registry.register(spec.clone()).expect("register");
    stream()
        .into_iter()
        .map(|event| bits(&registry.apply_events(id, &[event]).expect("apply")))
        .collect()
}

/// Checkpoint after `k` events, restore into a fresh registry, finish.
fn interrupted_at(spec: &SessionSpec, k: usize) -> Vec<Bits> {
    let events = stream();
    let first = SessionRegistry::new();
    let id = first.register(spec.clone()).expect("register");
    let mut out = Vec::new();
    for event in &events[..k] {
        out.push(bits(
            &first
                .apply_events(id, std::slice::from_ref(event))
                .expect("apply"),
        ));
    }
    let payload = first.checkpoint(id).expect("checkpoint");
    drop(first);

    let second = SessionRegistry::new();
    let id = second.restore(&payload).expect("restore");
    for event in &events[k..] {
        out.push(bits(
            &second
                .apply_events(id, std::slice::from_ref(event))
                .expect("apply"),
        ));
    }
    out
}

fn combos() -> Vec<(&'static str, SessionSpec)> {
    let mut out = Vec::new();
    for engine in [Engine::Hash, Engine::Dense] {
        out.push((
            "rs/per_item",
            spec(
                EvaluatorKind::Reservoir { capacity: 60 },
                engine,
                OfferMode::PerItem,
            ),
        ));
        out.push((
            "rs/batched",
            spec(
                EvaluatorKind::Reservoir { capacity: 60 },
                engine,
                OfferMode::Batched,
            ),
        ));
        out.push((
            "ss",
            spec(EvaluatorKind::Stratified, engine, OfferMode::Batched),
        ));
    }
    out
}

#[test]
fn every_checkpoint_position_restores_byte_identically() {
    let n = stream().len();
    for (name, spec) in combos() {
        let want = uninterrupted(&spec);
        for k in 0..=n {
            let got = interrupted_at(&spec, k);
            assert_eq!(
                got, want,
                "{name}/{:?} diverged when checkpointed after event {k}",
                spec.engine
            );
        }
    }
}

#[test]
fn checkpoints_are_stable_bytes() {
    // Re-encoding a restored session yields the identical payload: the
    // codec has one canonical form, so artifacts can be diffed.
    for (name, spec) in combos() {
        let registry = SessionRegistry::new();
        let id = registry.register(spec.clone()).expect("register");
        for event in &stream()[..3] {
            registry
                .apply_events(id, std::slice::from_ref(event))
                .expect("apply");
        }
        let payload = registry.checkpoint(id).expect("checkpoint");
        let fresh = SessionRegistry::new();
        let rid = fresh.restore(&payload).expect("restore");
        let again = fresh.checkpoint(rid).expect("re-checkpoint");
        assert_eq!(payload, again, "{name}/{:?} payload unstable", spec.engine);
    }
}

//! Byte-identity gate for the deletion-aware evolving path: a full churn
//! replay — insertions, retractions, and revisions — must produce
//! bitwise-identical per-event estimates, costs, and reservoir accounting
//! across the two annotation engines AND across the batched / per-item
//! offer paths, at every delete fraction. CI's determinism job runs this
//! test; the same checks are recorded into `BENCH_churn.json` by
//! `bench-report --churn`.

use kg_bench::churn::{engines_agree, offer_modes_agree, FRACTIONS};

#[test]
fn churn_replay_is_identical_across_engines_at_every_fraction() {
    for &fraction in &FRACTIONS {
        assert!(
            engines_agree(3_000, fraction, 99),
            "engines diverged at delete fraction {fraction}"
        );
    }
    assert!(engines_agree(8_000, 0.5, 20190923));
}

#[test]
fn churn_replay_is_identical_across_offer_paths() {
    for &fraction in &FRACTIONS {
        assert!(
            offer_modes_agree(3_000, fraction, 99),
            "offer paths diverged at delete fraction {fraction}"
        );
    }
}

/// Larger stream (several coarse PPS strides, overlay compactions under
/// heavy deletion) for the weekly slow lane.
#[test]
#[ignore = "slow: larger-scale replay, run with --ignored"]
fn churn_replay_is_identical_at_scale() {
    assert!(engines_agree(200_000, 0.5, 7));
    assert!(offer_modes_agree(200_000, 0.5, 7));
}

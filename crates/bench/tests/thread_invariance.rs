//! Regression: parallel trial aggregation is **bitwise independent of the
//! worker count** — the contract the old `run_trials` documented but broke
//! by merging per-thread accumulators in chunk order.
//!
//! The same seeded workload (a 10^5-triple long-tail synthetic KG,
//! iterative TWCS evaluation) runs at forced worker counts 1 and 7 on
//! both annotation engines; every aggregated metric's mean, sample std,
//! and count must be bit-for-bit equal. The CI determinism job replays the
//! tier-1 suite (this test included) under `KG_EVAL_WORKERS=1` and `=4`
//! and additionally diffs whole `repro` metric dumps across worker counts.

use kg_annotate::cost::CostModel;
use kg_annotate::lease::DenseArenaPool;
use kg_annotate::oracle::RemOracle;
use kg_bench::throughput::synthetic_sizes;
use kg_eval::config::EvalConfig;
use kg_eval::executor::{run_trials, TrialExecutor};
use kg_eval::framework::{Evaluator, TrialAggregate};
use kg_sampling::PopulationIndex;
use std::sync::Arc;

/// Every aggregate metric as (mean bits, sample-std bits, count).
fn bits(a: &TrialAggregate) -> Vec<(u64, u64, u64)> {
    [
        &a.estimate,
        &a.moe,
        &a.cost_seconds,
        &a.units,
        &a.triples_annotated,
        &a.entities_identified,
        &a.converged,
    ]
    .iter()
    .map(|m| (m.mean().to_bits(), m.sample_std().to_bits(), m.count()))
    .collect()
}

#[test]
fn trial_aggregates_are_bitwise_equal_at_1_and_7_workers_on_both_engines() {
    let sizes = synthetic_sizes(100_000);
    let oracle = RemOracle::new(0.9, 20190923);
    let idx = Arc::new(PopulationIndex::from_sizes(sizes).expect("non-empty KG"));
    let config = EvalConfig::default();
    let evaluator = Evaluator::twcs(5);
    let trials = 24u64;
    let base_seed = 0x1ead;
    let one = TrialExecutor::new().with_workers(1);
    let seven = TrialExecutor::new().with_workers(7);

    // Hash engine.
    let h1 = evaluator.run_trials(&idx, &oracle, &config, &one, trials, base_seed);
    let h7 = evaluator.run_trials(&idx, &oracle, &config, &seven, trials, base_seed);
    assert_eq!(bits(&h1), bits(&h7), "hash engine drifted with workers");
    assert_eq!(h1.estimate.count(), trials);
    assert_eq!(h1.converged.mean(), 1.0);
    assert!((h1.estimate.mean() - 0.9).abs() < 0.03);

    // Dense engine, arenas leased per worker from one shared pool.
    let store = Arc::new(idx.materialize_labels(&oracle));
    let pool = DenseArenaPool::new(store, CostModel::default());
    let d1 = evaluator.run_trials_dense(&idx, &oracle, &pool, &config, &one, trials, base_seed);
    let d7 = evaluator.run_trials_dense(&idx, &oracle, &pool, &config, &seven, trials, base_seed);
    assert_eq!(bits(&d1), bits(&d7), "dense engine drifted with workers");

    // And the engines agree with each other, bit for bit.
    assert_eq!(bits(&h1), bits(&d1), "hash and dense engines disagree");
    assert!(
        pool.arenas_built() <= 8,
        "arenas must be per worker, not per trial (built {})",
        pool.arenas_built()
    );
}

#[test]
fn free_function_fanout_is_worker_invariant_for_arbitrary_metrics() {
    // The drop-in `run_trials` free function (what every fig/table harness
    // calls) honors the same contract for any metric closure.
    let f = |seed: u64| {
        let x = (seed as f64).sqrt() + 1.0;
        vec![x.ln(), x.recip(), (seed % 13) as f64]
    };
    let reference = TrialExecutor::new().with_workers(1).run(100, 7, 3, f);
    let defaulted = run_trials(100, 7, 3, f);
    let forced = TrialExecutor::new().with_workers(7).run(100, 7, 3, f);
    for (a, b) in reference.iter().zip(&forced) {
        assert_eq!(a.mean().to_bits(), b.mean().to_bits());
        assert_eq!(a.sample_std().to_bits(), b.sample_std().to_bits());
        assert_eq!(a.count(), b.count());
    }
    for (a, b) in reference.iter().zip(&defaulted) {
        assert_eq!(a.mean().to_bits(), b.mean().to_bits());
        assert_eq!(a.sample_std().to_bits(), b.sample_std().to_bits());
    }
}

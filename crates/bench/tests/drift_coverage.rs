//! Statistical guarantee under **accuracy drift**: the stratified
//! monitor's per-batch confidence interval must keep covering the evolved
//! KG's true accuracy at ≈ the nominal 95% rate when update batches
//! arrive at *time-varying* accuracy — a linear ramp and an abrupt step
//! change — under both annotation engines. The reservoir monitor rides
//! along as a cross-check.
//!
//! Drift is the hostile case for SS: each update batch becomes its own
//! stratum whose accuracy the monitor estimates from scratch, so a 0.95 →
//! 0.6 ramp or a 0.9 → 0.55 step must *not* leak bias from the frozen
//! base estimate into later batches. For RS the hostile mechanism is
//! different: its plug-in plain-mean estimate of the weighted reservoir
//! sample is exact only while no cluster's inclusion probability
//! saturates (K·w/W < 1 for every weight). Update clusters here are
//! therefore size-bounded (cap 60) so the suite measures drift handling,
//! not saturation bias — the scenario sweep documents the same constraint
//! on its drift families. Each trial replays the same base KG and
//! drifted update sequence with fresh sampling randomness
//! (counter-seeded via `kg_eval::executor::run_trials`); after every
//! batch the trial records whether `μ̂ ± MoE(α)` contains the exact truth
//! read from a batch-extended `LabelStore` under the same piecewise
//! drifted oracle. Coverage is asserted against 0.95 with the binomial
//! `3σ + 2%` band of the tier-1 coverage suites.
//!
//! The quick suite (200 trials, 5 batches) runs in the tier-1 gate; the
//! `--ignored` suite scales to 500 trials × 8 batches and runs in the
//! scheduled CI job:
//! `cargo test --release -p kg-bench --test drift_coverage -- --ignored`.

use kg_annotate::annotator::{Annotator, SimulatedAnnotator};
use kg_annotate::cost::CostModel;
use kg_annotate::dense::DenseAnnotator;
use kg_annotate::label_store::LabelStore;
use kg_annotate::oracle::RemOracle;
use kg_annotate::piecewise::PiecewiseOracle;
use kg_datagen::evolve::{evolved_oracle, UpdateGenerator};
use kg_datagen::scenario::AccuracyDrift;
use kg_eval::config::EvalConfig;
use kg_eval::dynamic::monitor::run_sequence;
use kg_eval::dynamic::reservoir::ReservoirEvaluator;
use kg_eval::dynamic::stratified::StratifiedIncremental;
use kg_eval::executor::run_trials;
use kg_eval::framework::Evaluator;
use kg_model::implicit::ImplicitKg;
use kg_model::update::UpdateBatch;
use kg_sampling::PopulationIndex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const BASE_ACCURACY: f64 = 0.9;

struct DriftSetup {
    base: ImplicitKg,
    base_index: Arc<PopulationIndex>,
    oracle: PiecewiseOracle,
    batches: Vec<UpdateBatch>,
    /// Truth after each batch under the drifted oracle.
    truths: Vec<f64>,
    /// Fully evolved store for dense replays.
    evolved_store: Arc<LabelStore>,
    config: EvalConfig,
}

fn drift_setup(
    drift: AccuracyDrift,
    base_clusters: usize,
    per_batch: u64,
    num_batches: usize,
    config: EvalConfig,
    seed: u64,
) -> DriftSetup {
    let base = ImplicitKg::new((0..base_clusters).map(|i| 1 + (i % 12) as u32).collect()).unwrap();
    // Size-bounded update clusters (cap 60): with the movie profile's cap
    // of 4000 a single drifted giant cluster saturates its reservoir
    // inclusion probability and biases RS upward by ~+0.02 — see the
    // module docs.
    let batches =
        UpdateGenerator::new(1.9, 60, 9.2).sequence(num_batches, per_batch, seed ^ 0xcafe);
    let drifted: Vec<(UpdateBatch, f64)> = batches
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                b.clone(),
                drift.batch_accuracy(BASE_ACCURACY, i, num_batches),
            )
        })
        .collect();
    let (oracle, _) = evolved_oracle(
        &base,
        Box::new(RemOracle::new(BASE_ACCURACY, seed)),
        &drifted,
        seed,
    );
    let mut store = LabelStore::materialize(&base, &oracle);
    let mut truths = Vec::with_capacity(num_batches);
    for b in &batches {
        store.extend_with_batch(b, &oracle);
        truths.push(store.true_accuracy());
    }
    DriftSetup {
        base_index: Arc::new(PopulationIndex::from_population(&base).unwrap()),
        base,
        oracle,
        batches,
        truths,
        evolved_store: Arc::new(store),
        config,
    }
}

/// One replay of the drifted stream; per-batch CI-coverage hits.
fn coverage_hits(
    s: &DriftSetup,
    evaluator: &str,
    annotator: &mut dyn Annotator,
    trial_seed: u64,
) -> Vec<f64> {
    let m = 5;
    let mut rng = StdRng::seed_from_u64(trial_seed);
    let outcomes = match evaluator {
        "RS" => {
            let mut rs =
                ReservoirEvaluator::evaluate_base(&s.base, 60, m, s.config, annotator, &mut rng);
            run_sequence(&mut rs, &s.batches, s.config.alpha, annotator, &mut rng)
        }
        "SS" => {
            // Honest per-trial base evaluation: SS freezes this estimate,
            // so its sampling error must resample across trials.
            let report = Evaluator::twcs(m)
                .run_with_index(s.base_index.clone(), &s.oracle, &s.config, &mut rng)
                .expect("valid base population");
            let mut ss = StratifiedIncremental::from_base(&s.base, report.estimate, m, s.config);
            run_sequence(&mut ss, &s.batches, s.config.alpha, annotator, &mut rng)
        }
        other => panic!("unknown evaluator {other}"),
    };
    outcomes
        .iter()
        .zip(&s.truths)
        .map(|(o, &truth)| ((o.estimate.mean - truth).abs() <= o.moe) as u64 as f64)
        .collect()
}

fn coverage_per_batch(
    s: &DriftSetup,
    evaluator: &'static str,
    engine: &'static str,
    trials: u64,
    base_seed: u64,
) -> Vec<f64> {
    let stats = run_trials(
        trials,
        base_seed,
        s.batches.len(),
        |trial_seed| match engine {
            "hash" => {
                let mut ann = SimulatedAnnotator::new(&s.oracle, CostModel::default());
                coverage_hits(s, evaluator, &mut ann, trial_seed)
            }
            "dense" => {
                let mut ann = DenseAnnotator::new(s.evolved_store.clone(), CostModel::default());
                coverage_hits(s, evaluator, &mut ann, trial_seed)
            }
            other => panic!("unknown engine {other}"),
        },
    );
    stats.iter().map(|m| m.mean()).collect()
}

fn assert_coverage(cov: &[f64], trials: u64, label: &str) {
    let sigma = (0.95f64 * 0.05 / trials as f64).sqrt();
    let lo = 0.95 - 3.0 * sigma - 0.02;
    for (k, &c) in cov.iter().enumerate() {
        assert!(
            (lo..=1.0).contains(&c),
            "{label}: batch {} coverage {c:.3} outside [{lo:.3}, 1.0] (trials {trials})",
            k + 1
        );
    }
}

fn drift_cases() -> [(&'static str, AccuracyDrift); 2] {
    [
        (
            "ramp",
            AccuracyDrift::Ramp {
                from: 0.95,
                to: 0.6,
            },
        ),
        (
            "step",
            AccuracyDrift::Step {
                before: 0.9,
                after: 0.55,
                at_batch: 2,
            },
        ),
    ]
}

#[test]
fn drift_ci_coverage_stays_nominal_across_engines() {
    // 200 trials, ramp and step drift, both monitors, both engines.
    let trials = 200;
    for (name, drift) in drift_cases() {
        let s = drift_setup(drift, 600, 400, 5, EvalConfig::default(), 20190923);
        // The drift must actually move the truth — otherwise the suite
        // degenerates to the constant-accuracy coverage test.
        let spread = s.truths.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - s.truths.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.02, "{name}: drift spread {spread:.4} too small");
        for evaluator in ["SS", "RS"] {
            for engine in ["hash", "dense"] {
                let cov = coverage_per_batch(&s, evaluator, engine, trials, 7);
                assert_coverage(&cov, trials, &format!("{name} {evaluator}/{engine}"));
            }
        }
    }
}

#[test]
#[ignore = "slow statistical suite — run in the scheduled CI job"]
fn drift_ci_coverage_extended() {
    // Larger KG, longer stream, 500 trials.
    let trials = 500;
    for (name, drift) in drift_cases() {
        let s = drift_setup(drift, 2500, 2000, 8, EvalConfig::default(), 4242);
        for evaluator in ["SS", "RS"] {
            for engine in ["hash", "dense"] {
                let cov = coverage_per_batch(&s, evaluator, engine, trials, 11);
                assert_coverage(
                    &cov,
                    trials,
                    &format!("extended {name} {evaluator}/{engine}"),
                );
            }
        }
    }
}

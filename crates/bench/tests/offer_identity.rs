//! Byte-identity gate for the sublinear streaming skeleton: a full RS
//! streaming replay must produce bitwise-identical per-batch estimates,
//! costs, and reservoir accounting whether the reservoir is driven by the
//! batched offer path (`offer_batch` + bulk PPS appends over the batch's
//! cached weight prefix) or the per-item reference loop — under both
//! annotation engines. CI's determinism job runs this test; the same
//! check is recorded into `BENCH_skeleton.json` by `bench-report
//! --skeleton`.

use kg_bench::streaming::offer_modes_agree;

#[test]
fn streaming_replay_is_identical_across_offer_paths() {
    assert!(offer_modes_agree(3_000, 99));
    assert!(offer_modes_agree(8_000, 20190923));
}

/// Larger stream (several coarse PPS strides, thousands of Δe clusters per
/// batch) for the weekly slow lane.
#[test]
#[ignore = "slow: larger-scale replay, run with --ignored"]
fn streaming_replay_is_identical_across_offer_paths_at_scale() {
    assert!(offer_modes_agree(200_000, 7));
}

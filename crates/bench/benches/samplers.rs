//! Microbenchmarks of the sampling primitives in `kg-stats`: these sit on
//! the hot path of every experiment (millions of draws per trial batch).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kg_stats::alias::AliasTable;
use kg_stats::distr::Zipf;
use kg_stats::normal::normal_quantile;
use kg_stats::reservoir::WeightedReservoir;
use kg_stats::srswor::sample_without_replacement;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_alias(c: &mut Criterion) {
    let mut group = c.benchmark_group("alias_table");
    for &n in &[1_000usize, 100_000, 1_000_000] {
        let weights: Vec<f64> = (0..n).map(|i| 1.0 + (i % 100) as f64).collect();
        group.bench_with_input(BenchmarkId::new("build", n), &weights, |b, w| {
            b.iter(|| AliasTable::new(black_box(w)).unwrap())
        });
        let table = AliasTable::new(&weights).unwrap();
        group.bench_with_input(BenchmarkId::new("sample", n), &table, |b, t| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| black_box(t.sample(&mut rng)))
        });
    }
    group.finish();
}

fn bench_reservoir(c: &mut Criterion) {
    let mut group = c.benchmark_group("weighted_reservoir");
    for &stream in &[10_000usize, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("offer_stream", stream),
            &stream,
            |b, &n| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(2);
                    let mut r = WeightedReservoir::new(60);
                    for i in 0..n {
                        r.offer(&mut rng, i, 1.0 + (i % 10) as f64);
                    }
                    black_box(r.len())
                })
            },
        );
    }
    group.finish();
}

fn bench_srswor(c: &mut Criterion) {
    let mut group = c.benchmark_group("srswor");
    // Second-stage shape: k small, n small (per-cluster draws).
    group.bench_function("cluster_5_of_200", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(sample_without_replacement(&mut rng, 200, 5)))
    });
    // SRS shape: k moderate over a huge index space.
    group.bench_function("srs_200_of_2_6M", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| black_box(sample_without_replacement(&mut rng, 2_653_870, 200)))
    });
    group.finish();
}

fn bench_distributions(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributions");
    group.bench_function("normal_quantile", |b| {
        b.iter(|| black_box(normal_quantile(black_box(0.975)).unwrap()))
    });
    let zipf = Zipf::new(4000, 1.9).unwrap();
    group.bench_function("zipf_sample", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| black_box(zipf.sample(&mut rng)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_alias,
    bench_reservoir,
    bench_srswor,
    bench_distributions
);
criterion_main!(benches);

//! Benchmarks of complete evaluation runs per sampling design: the machine
//! cost of "sample generation" that Table 6 contrasts with KGEval (TWCS
//! machine time is microseconds; KGEval's selection loop is the bottleneck).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kg_annotate::annotator::SimulatedAnnotator;
use kg_annotate::cost::CostModel;
use kg_baselines::kgeval::eval::{KgEvalBaseline, KgEvalConfig};
use kg_datagen::profile::DatasetProfile;
use kg_eval::config::EvalConfig;
use kg_eval::framework::Evaluator;
use kg_sampling::PopulationIndex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn bench_static_designs(c: &mut Criterion) {
    let ds = DatasetProfile::nell().generate(1);
    let index = Arc::new(PopulationIndex::from_population(&ds.population).unwrap());
    let config = EvalConfig::default();
    let mut group = c.benchmark_group("static_designs_nell");
    for (name, eval) in [
        ("srs", Evaluator::srs()),
        ("wcs", Evaluator::wcs()),
        ("twcs_m5", Evaluator::twcs(5)),
        ("twcs_size_strat", Evaluator::twcs_size_stratified(5, 2)),
    ] {
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = StdRng::seed_from_u64(seed);
                black_box(
                    eval.run_with_index(index.clone(), ds.oracle.as_ref(), &config, &mut rng)
                        .unwrap()
                        .estimate
                        .mean,
                )
            })
        });
    }
    group.finish();
}

fn bench_movie_scale(c: &mut Criterion) {
    // One full TWCS evaluation over a 2.65M-triple KG: the "machine time
    // <1 s" row of Table 6 at production scale.
    let ds = DatasetProfile::movie().generate(2);
    let index = Arc::new(PopulationIndex::from_population(&ds.population).unwrap());
    let config = EvalConfig::default();
    let mut group = c.benchmark_group("movie_scale");
    group.sample_size(20);
    group.bench_function("twcs_full_evaluation", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            black_box(
                Evaluator::twcs(5)
                    .run_with_index(index.clone(), ds.oracle.as_ref(), &config, &mut rng)
                    .unwrap()
                    .units,
            )
        })
    });
    group.bench_function("index_build", |b| {
        b.iter(|| {
            black_box(
                PopulationIndex::from_population(&ds.population)
                    .unwrap()
                    .num_clusters(),
            )
        })
    });
    group.finish();
}

fn bench_kgeval(c: &mut Criterion) {
    // KGEval's select-annotate-propagate loop on a downscaled NELL: its
    // machine time is the quantity that explodes with KG size (Table 6).
    let mut profile = DatasetProfile::nell();
    profile.entities = 120;
    profile.triples = 280;
    let (graph, gold) = profile.generate_materialized(3);
    let mut group = c.benchmark_group("kgeval_baseline");
    group.sample_size(10);
    group.bench_function("nell_scaled_budget25", |b| {
        b.iter(|| {
            let mut annotator = SimulatedAnnotator::new(&gold, CostModel::default());
            let config = KgEvalConfig {
                annotation_budget: 25,
                ..KgEvalConfig::default()
            };
            black_box(
                KgEvalBaseline::with_config(config)
                    .run(&graph, &mut annotator)
                    .annotated,
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_static_designs,
    bench_movie_scale,
    bench_kgeval
);
criterion_main!(benches);

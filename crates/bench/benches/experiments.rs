//! End-to-end experiment benchmarks: each paper table/figure regeneration
//! in quick mode, so `cargo bench` exercises every reproduction code path
//! and tracks its machine cost. (The statistical outputs themselves are
//! produced by the `repro` binary; see EXPERIMENTS.md.)

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kg_bench::{run_experiment, Opts};

fn quick_opts() -> Opts {
    Opts {
        quick: true,
        trial_scale: 0.1,
        ..Opts::default()
    }
}

fn bench_figures(c: &mut Criterion) {
    let opts = quick_opts();
    let mut group = c.benchmark_group("figures_quick");
    group.sample_size(10);
    for id in ["fig1", "fig3", "fig4", "fig5", "fig6", "fig8", "fig9"] {
        group.bench_function(id, |b| {
            b.iter(|| black_box(run_experiment(id, &opts).expect("known id").len()))
        });
    }
    group.finish();
}

fn bench_tables(c: &mut Criterion) {
    let opts = quick_opts();
    let mut group = c.benchmark_group("tables_quick");
    group.sample_size(10);
    for id in ["table3", "table4", "table5", "table6", "table7", "table8"] {
        group.bench_function(id, |b| {
            b.iter(|| black_box(run_experiment(id, &opts).expect("known id").len()))
        });
    }
    group.finish();
}

fn bench_scalability(c: &mut Criterion) {
    // fig7 exercises the implicit-KG path over multi-million-triple
    // populations; benched separately with fewer samples.
    let opts = quick_opts();
    let mut group = c.benchmark_group("scalability");
    group.sample_size(10);
    group.bench_function("fig7", |b| {
        b.iter(|| black_box(run_experiment("fig7", &opts).expect("known id").len()))
    });
    group.finish();
}

criterion_group!(benches, bench_figures, bench_tables, bench_scalability);
criterion_main!(benches);

//! Tracked churn harness: the §6 incremental evaluators under
//! interleaved insertions **and deletions**, hash vs dense engine.
//!
//! `bench-report --churn` is the deletion-aware counterpart of the
//! streaming harness: at each base scale it generates a movie-like base KG
//! and replays the same [`ChurnGenerator`] event stream — inserts plus
//! uniformly sampled retractions of live triples — at delete fractions of
//! 0%, 25%, and 50% of the per-event insert volume, under both annotation
//! engines, writing `BENCH_churn.json` (schema `kg-bench-churn/v1`).
//!
//! The headline metric is **nanoseconds per changed triple**: wall-clock
//! time of the event-application loop (base evaluation excluded) divided
//! by the stream's churn volume (triples inserted + retracted) times
//! trials. Retraction itself charges no annotation seconds — tombstones,
//! PPS weight decrements, and reservoir eviction are pure bookkeeping —
//! so the ns/Δ column isolates exactly what deletions add to the hot
//! path: overlay-aware PPS locates, live-coordinate re-annotation of
//! shrunken reservoir members, and the stratified weight corrections.
//!
//! Every measurement row carries an **identity check**: the full
//! per-event estimate/MoE/cost signature must be byte-identical across
//! the two engines (and, for RS, across the batched and per-item offer
//! paths). CI runs `--churn --quick` and fails on any `"identity": false`.

use kg_annotate::annotator::{Annotator, SimulatedAnnotator};
use kg_annotate::cost::CostModel;
use kg_annotate::dense::DenseAnnotator;
use kg_annotate::label_store::LabelStore;
use kg_annotate::oracle::BmmOracle;
use kg_datagen::evolve::ChurnGenerator;
use kg_datagen::generator::cluster_sizes;
use kg_eval::config::EvalConfig;
use kg_eval::dynamic::monitor::run_event_sequence;
use kg_eval::dynamic::reservoir::ReservoirEvaluator;
use kg_eval::dynamic::stratified::StratifiedIncremental;
use kg_eval::executor::run_trials;
use kg_model::implicit::{ClusterPopulation, ImplicitKg};
use kg_model::retract::KgEvent;
use kg_sampling::PopulationIndex;
use kg_stats::PointEstimate;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Options for a churn run.
#[derive(Debug, Clone, Copy)]
pub struct ChurnOpts {
    /// Quick mode: drop the 10^6 scale and shrink trial counts (CI).
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ChurnOpts {
    fn default() -> Self {
        ChurnOpts {
            quick: false,
            seed: 20190923,
        }
    }
}

/// Delete fractions swept per scale: none, quarter, half of the insert
/// volume.
pub const FRACTIONS: [f64; 3] = [0.0, 0.25, 0.5];
/// Events per stream.
pub const NUM_EVENTS: usize = 6;
/// Each event inserts this fraction of the base triple count.
pub const UPDATE_FRACTION: f64 = 0.2;
/// Second-stage sample size per drawn cluster.
const M: usize = 10;
/// Reservoir capacity |R|.
const CAPACITY: usize = 100;

fn monitor_config() -> EvalConfig {
    EvalConfig::default()
        .with_target_moe(0.01)
        .with_batch_size(100)
}

/// One (scale, fraction, evaluator, engine) measurement.
#[derive(Debug, Clone)]
pub struct ChurnMeasurement {
    /// Evaluator name (`RS` / `SS`).
    pub evaluator: &'static str,
    /// Engine name (`hash` / `dense`).
    pub engine: &'static str,
    /// Full-stream replays timed.
    pub trials: u64,
    /// Changed triples per stream: inserted + retracted.
    pub churned: u64,
    /// Wall-clock seconds in the event-application loop across all trials
    /// (base evaluation excluded).
    pub event_sec: f64,
    /// `event_sec · 1e9 / (churned · trials)`.
    pub ns_per_changed_triple: f64,
    /// Estimate after the final event, averaged over trials.
    pub mean_final_estimate: f64,
}

/// All measurements for one delete fraction at one scale.
#[derive(Debug, Clone)]
pub struct ChurnFractionReport {
    /// Delete fraction of the per-event insert volume.
    pub fraction: f64,
    /// Triples inserted across the stream.
    pub inserted: u64,
    /// Triples retracted across the stream.
    pub retracted: u64,
    /// Live triples after the full stream (base + inserted − retracted).
    pub live_triples: u64,
    /// Live accuracy of the evolved store — the coverage ground truth.
    pub true_accuracy: f64,
    /// Hash and dense engines replayed this stream byte-identically
    /// (per-event estimates, MoE, costs, annotated-triple accounting),
    /// and RS did so under both offer paths.
    pub identity: bool,
    /// Per-evaluator, per-engine timings.
    pub measurements: Vec<ChurnMeasurement>,
}

/// A full churn report.
#[derive(Debug, Clone)]
pub struct ChurnReport {
    /// Whether this was a quick (CI) run.
    pub quick: bool,
    /// Base seed used.
    pub seed: u64,
    /// Per-scale results, ascending; each sweeps [`FRACTIONS`].
    pub scales: Vec<ChurnScaleReport>,
}

/// Per-scale fraction sweep.
#[derive(Debug, Clone)]
pub struct ChurnScaleReport {
    /// Base KG triple count (~target).
    pub base_triples: u64,
    /// Base KG cluster count.
    pub base_clusters: u64,
    /// One report per delete fraction.
    pub fractions: Vec<ChurnFractionReport>,
}

struct Setup {
    base: ImplicitKg,
    oracle: BmmOracle,
    events: Vec<KgEvent>,
    base_estimate: PointEstimate,
}

fn setup(target: u64, fraction: f64, seed: u64) -> Setup {
    let clusters = ((target as f64 / 9.2) as usize).max(1);
    let sizes = cluster_sizes(clusters, target.max(clusters as u64), 1.9, 4000, seed);
    let base = ImplicitKg::new(sizes).expect("generator emits non-empty clusters");
    let per_batch = ((target as f64 * UPDATE_FRACTION) as u64).max(1);
    let events =
        ChurnGenerator::movie_like(fraction).events(&base, NUM_EVENTS, per_batch, seed ^ 0x5eed);
    // BMM needs the *raw* size of every cluster it will ever label — base
    // plus all delta-minted ones; retractions never change raw coordinates.
    let mut evolved_sizes = base.sizes().to_vec();
    for event in &events {
        if let Some(b) = event.inserted() {
            evolved_sizes.extend_from_slice(b.delta_sizes());
        }
    }
    let oracle = BmmOracle::with_defaults(Arc::new(evolved_sizes), seed ^ target);
    let idx = Arc::new(PopulationIndex::from_population(&base).expect("non-empty base"));
    let mut rng = StdRng::seed_from_u64(seed ^ 0xba5e);
    let base_estimate = kg_eval::framework::Evaluator::twcs(M)
        .run_with_index(idx, &oracle, &monitor_config(), &mut rng)
        .expect("valid base population")
        .estimate;
    Setup {
        base,
        oracle,
        events,
        base_estimate,
    }
}

/// Fold the stream over a label store: the truth (and raw label state) the
/// dense engine replays against.
fn evolved_store(s: &Setup) -> LabelStore {
    let mut store = LabelStore::materialize(&s.base, &s.oracle);
    for event in &s.events {
        if let Some(r) = event.retracted() {
            store.retract(r);
        }
        if let Some(b) = event.inserted() {
            store.extend_with_batch(b, &s.oracle);
        }
    }
    store
}

/// Replay the full stream once; returns the final estimate and the
/// event-loop wall-clock seconds (base evaluation excluded).
fn replay(
    evaluator: &'static str,
    s: &Setup,
    config: EvalConfig,
    annotator: &mut dyn Annotator,
    trial_seed: u64,
) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(trial_seed);
    let (outcomes, event_sec) = match evaluator {
        "RS" => {
            let mut rs = ReservoirEvaluator::evaluate_base(
                &s.base, CAPACITY, M, config, annotator, &mut rng,
            );
            let t0 = Instant::now();
            let out = run_event_sequence(&mut rs, &s.events, config.alpha, annotator, &mut rng);
            (out, t0.elapsed().as_secs_f64())
        }
        "SS" => {
            let mut ss = StratifiedIncremental::from_base(&s.base, s.base_estimate, M, config);
            let t0 = Instant::now();
            let out = run_event_sequence(&mut ss, &s.events, config.alpha, annotator, &mut rng);
            (out, t0.elapsed().as_secs_f64())
        }
        other => panic!("unknown evaluator {other}"),
    };
    (
        outcomes.last().expect("non-empty stream").estimate.mean,
        event_sec,
    )
}

/// Full per-event signature of one replay — what the identity checks
/// byte-compare across engines and offer paths.
fn replay_signature(
    evaluator: &'static str,
    s: &Setup,
    config: EvalConfig,
    annotator: &mut dyn Annotator,
    trial_seed: u64,
) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(trial_seed);
    let outcomes = match evaluator {
        "RS" => {
            let mut rs = ReservoirEvaluator::evaluate_base(
                &s.base, CAPACITY, M, config, annotator, &mut rng,
            );
            run_event_sequence(&mut rs, &s.events, config.alpha, annotator, &mut rng)
        }
        "SS" => {
            let mut ss = StratifiedIncremental::from_base(&s.base, s.base_estimate, M, config);
            run_event_sequence(&mut ss, &s.events, config.alpha, annotator, &mut rng)
        }
        other => panic!("unknown evaluator {other}"),
    };
    let mut sig: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| {
            [
                o.estimate.mean.to_bits(),
                o.estimate.var_of_mean.to_bits(),
                o.estimate.units as u64,
                o.moe.to_bits(),
                o.batch_cost_seconds.to_bits(),
            ]
        })
        .collect();
    sig.push(annotator.seconds().to_bits());
    sig.push(annotator.triples_annotated() as u64);
    sig
}

/// Churn volume of a stream: triples inserted plus triples retracted.
fn churn_volume(events: &[KgEvent]) -> (u64, u64) {
    let mut inserted = 0u64;
    let mut retracted = 0u64;
    for event in events {
        if let Some(b) = event.inserted() {
            inserted += b.total_triples();
        }
        if let Some(r) = event.retracted() {
            retracted += r.total_retracted();
        }
    }
    (inserted, retracted)
}

fn run_fraction(target: u64, fraction: f64, trials: u64, seed: u64) -> ChurnFractionReport {
    let s = setup(target, fraction, seed);
    let config = monitor_config();
    let (inserted, retracted) = churn_volume(&s.events);
    let churned = inserted + retracted;

    let store = evolved_store(&s);
    let live_triples = store.live_total_triples();
    let true_accuracy = store.true_accuracy();
    let mut dense = DenseAnnotator::new(Arc::new(store), CostModel::default());

    // Identity gate first: both engines (and, for RS, both offer paths)
    // must replay the stream byte-identically before timing means anything.
    let identity = {
        let engines = ["RS", "SS"].iter().all(|ev| {
            let mut hash = SimulatedAnnotator::new(&s.oracle, CostModel::default());
            let h = replay_signature(ev, &s, config, &mut hash, seed ^ 1);
            dense.reset();
            let d = replay_signature(ev, &s, config, &mut dense, seed ^ 1);
            h == d
        });
        engines && offer_modes_agree_with(&s, config, &mut dense, seed)
    };

    let mut measurements = Vec::new();
    for evaluator in ["RS", "SS"] {
        let run_hash = |t: u64| -> (f64, f64) {
            let mut ann = SimulatedAnnotator::new(&s.oracle, CostModel::default());
            replay(evaluator, &s, config, &mut ann, seed ^ (t * 7919))
        };
        run_hash(trials); // warmup (fresh seed, untimed)
        let mut event_sec = 0.0;
        let mut est_sum = 0.0;
        for t in 0..trials {
            let (e, sec) = run_hash(t);
            est_sum += e;
            event_sec += sec;
        }
        measurements.push(ChurnMeasurement {
            evaluator,
            engine: "hash",
            trials,
            churned,
            event_sec,
            ns_per_changed_triple: event_sec * 1e9 / (churned * trials) as f64,
            mean_final_estimate: est_sum / trials as f64,
        });

        let mut run_dense = |t: u64| -> (f64, f64) {
            dense.reset();
            replay(evaluator, &s, config, &mut dense, seed ^ (t * 7919))
        };
        run_dense(trials); // warmup (fresh seed, untimed)
        let mut event_sec = 0.0;
        let mut est_sum = 0.0;
        for t in 0..trials {
            let (e, sec) = run_dense(t);
            est_sum += e;
            event_sec += sec;
        }
        measurements.push(ChurnMeasurement {
            evaluator,
            engine: "dense",
            trials,
            churned,
            event_sec,
            ns_per_changed_triple: event_sec * 1e9 / (churned * trials) as f64,
            mean_final_estimate: est_sum / trials as f64,
        });
    }
    ChurnFractionReport {
        fraction,
        inserted,
        retracted,
        live_triples,
        true_accuracy,
        identity,
        measurements,
    }
}

fn run_scale(target: u64, trials: u64, seed: u64) -> ChurnScaleReport {
    let clusters = ((target as f64 / 9.2) as usize).max(1);
    let sizes = cluster_sizes(clusters, target.max(clusters as u64), 1.9, 4000, seed);
    let base = ImplicitKg::new(sizes).expect("generator emits non-empty clusters");
    ChurnScaleReport {
        base_triples: base.total_triples(),
        base_clusters: base.num_clusters() as u64,
        fractions: FRACTIONS
            .iter()
            .map(|&f| run_fraction(target, f, trials, seed))
            .collect(),
    }
}

/// Run the harness.
pub fn run(opts: &ChurnOpts) -> ChurnReport {
    let scales: &[(u64, u64)] = if opts.quick {
        // (base triples, trials)
        &[(100_000, 4)]
    } else {
        &[(100_000, 16), (1_000_000, 6)]
    };
    ChurnReport {
        quick: opts.quick,
        seed: opts.seed,
        scales: scales
            .iter()
            .map(|&(target, trials)| run_scale(target, trials, opts.seed))
            .collect(),
    }
}

/// Render the report as the `BENCH_churn.json` document
/// (schema `kg-bench-churn/v1`; see README § Evolving KGs).
pub fn to_json(report: &ChurnReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"kg-bench-churn/v1\",\n");
    s.push_str(&format!("  \"quick\": {},\n", report.quick));
    s.push_str(&format!("  \"seed\": {},\n", report.seed));
    s.push_str("  \"metric\": \"ns_per_changed_triple\",\n");
    let cfg = monitor_config();
    s.push_str(&format!(
        "  \"config\": {{\"target_moe\": {}, \"alpha\": {}, \"m\": {M}, \
         \"reservoir_capacity\": {CAPACITY}, \"num_events\": {NUM_EVENTS}, \
         \"update_fraction\": {UPDATE_FRACTION}, \"delete_fractions\": [0.0, 0.25, 0.5]}},\n",
        cfg.target_moe, cfg.alpha
    ));
    s.push_str("  \"scales\": [\n");
    for (i, sc) in report.scales.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"base_triples\": {},\n", sc.base_triples));
        s.push_str(&format!("      \"base_clusters\": {},\n", sc.base_clusters));
        s.push_str("      \"fractions\": [\n");
        for (j, fr) in sc.fractions.iter().enumerate() {
            s.push_str("        {\n");
            s.push_str(&format!(
                "          \"delete_fraction\": {},\n",
                fr.fraction
            ));
            s.push_str(&format!("          \"inserted\": {},\n", fr.inserted));
            s.push_str(&format!("          \"retracted\": {},\n", fr.retracted));
            s.push_str(&format!(
                "          \"live_triples\": {},\n",
                fr.live_triples
            ));
            s.push_str(&format!(
                "          \"true_accuracy\": {:.6},\n",
                fr.true_accuracy
            ));
            s.push_str(&format!("          \"identity\": {},\n", fr.identity));
            s.push_str("          \"measurements\": [\n");
            for (k, m) in fr.measurements.iter().enumerate() {
                s.push_str(&format!(
                    "            {{\"evaluator\": \"{}\", \"engine\": \"{}\", \"trials\": {}, \
                     \"churned\": {}, \"event_sec\": {:.6}, \"ns_per_changed_triple\": {:.1}, \
                     \"mean_final_estimate\": {:.6}}}{}\n",
                    m.evaluator,
                    m.engine,
                    m.trials,
                    m.churned,
                    m.event_sec,
                    m.ns_per_changed_triple,
                    m.mean_final_estimate,
                    if k + 1 < fr.measurements.len() {
                        ","
                    } else {
                        ""
                    }
                ));
            }
            s.push_str("          ]\n");
            s.push_str(&format!(
                "        }}{}\n",
                if j + 1 < sc.fractions.len() { "," } else { "" }
            ));
        }
        s.push_str("      ]\n");
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < report.scales.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Human-readable table for the console.
pub fn render_table(report: &ChurnReport) -> String {
    let mut s = String::new();
    for sc in &report.scales {
        s.push_str(&format!(
            "base {:>9} triples, {:>8} clusters\n",
            sc.base_triples, sc.base_clusters
        ));
        for fr in &sc.fractions {
            s.push_str(&format!(
                "  delete {:>4.0}%: +{} −{} → {} live (truth {:.4}, identity: {})\n",
                fr.fraction * 100.0,
                fr.inserted,
                fr.retracted,
                fr.live_triples,
                fr.true_accuracy,
                fr.identity
            ));
            s.push_str("    eval  engine  trials   churned   event(s)      ns/Δ   final est\n");
            for m in &fr.measurements {
                s.push_str(&format!(
                    "    {:<4}  {:<6}  {:>6}  {:>8}  {:>9.4}  {:>8.1}  {:.4}\n",
                    m.evaluator,
                    m.engine,
                    m.trials,
                    m.churned,
                    m.event_sec,
                    m.ns_per_changed_triple,
                    m.mean_final_estimate
                ));
            }
        }
        s.push('\n');
    }
    s
}

/// Deterministic cross-engine agreement check: the full per-event
/// signature must be byte-identical across engines at the given delete
/// fraction.
pub fn engines_agree(target: u64, fraction: f64, seed: u64) -> bool {
    let s = setup(target, fraction, seed);
    let config = monitor_config();
    let mut dense = DenseAnnotator::new(Arc::new(evolved_store(&s)), CostModel::default());
    ["RS", "SS"].iter().all(|ev| {
        let mut hash = SimulatedAnnotator::new(&s.oracle, CostModel::default());
        let h = replay_signature(ev, &s, config, &mut hash, seed ^ 1);
        dense.reset();
        let d = replay_signature(ev, &s, config, &mut dense, seed ^ 1);
        h == d
    })
}

/// Deterministic offer-path agreement check under churn: the RS stream —
/// retractions included — must replay byte-identically under the batched
/// and per-item reservoir offer paths, under both engines.
pub fn offer_modes_agree(target: u64, fraction: f64, seed: u64) -> bool {
    let s = setup(target, fraction, seed);
    let config = monitor_config();
    let mut dense = DenseAnnotator::new(Arc::new(evolved_store(&s)), CostModel::default());
    offer_modes_agree_with(&s, config, &mut dense, seed)
}

fn offer_modes_agree_with(
    s: &Setup,
    config: EvalConfig,
    dense: &mut DenseAnnotator,
    seed: u64,
) -> bool {
    use kg_eval::dynamic::reservoir::OfferMode;
    let run = |mode: OfferMode, annotator: &mut dyn Annotator| -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed ^ 3);
        let mut rs = ReservoirEvaluator::evaluate_base_with_mode(
            &s.base, CAPACITY, M, config, mode, annotator, &mut rng,
        );
        let outcomes = run_event_sequence(&mut rs, &s.events, config.alpha, annotator, &mut rng);
        let mut sig: Vec<u64> = outcomes
            .iter()
            .flat_map(|o| {
                [
                    o.estimate.mean.to_bits(),
                    o.estimate.var_of_mean.to_bits(),
                    o.moe.to_bits(),
                    o.batch_cost_seconds.to_bits(),
                ]
            })
            .collect();
        sig.push(rs.replacements());
        sig.push(rs.total_triples());
        sig.push(annotator.seconds().to_bits());
        sig
    };
    let sigs: Vec<Vec<u64>> = [OfferMode::PerItem, OfferMode::Batched]
        .iter()
        .flat_map(|&mode| {
            let mut hash = SimulatedAnnotator::new(&s.oracle, CostModel::default());
            let h = run(mode, &mut hash);
            dense.reset();
            let d = run(mode, &mut *dense);
            [h, d]
        })
        .collect();
    sigs.iter().all(|sig| sig == &sigs[0])
}

/// Average per-stream CI coverage of the live truth across seeded churn
/// replays — the statistical backbone of the churn coverage suites.
pub fn coverage_after_churn(
    evaluator: &'static str,
    engine: &'static str,
    target: u64,
    fraction: f64,
    trials: u64,
    base_seed: u64,
) -> f64 {
    let s = setup(target, fraction, base_seed);
    let config = monitor_config();
    let evolved = evolved_store(&s);
    let truth = evolved.true_accuracy();
    let store = Arc::new(evolved);
    let stats = run_trials(trials, base_seed, 1, |trial_seed| {
        let est = match engine {
            "hash" => {
                let mut ann = SimulatedAnnotator::new(&s.oracle, CostModel::default());
                replay(evaluator, &s, config, &mut ann, trial_seed).0
            }
            "dense" => {
                let mut ann = DenseAnnotator::new(store.clone(), CostModel::default());
                replay(evaluator, &s, config, &mut ann, trial_seed).0
            }
            other => panic!("unknown engine {other}"),
        };
        vec![((est - truth).abs() <= config.target_moe) as u64 as f64]
    });
    stats[0].mean()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_churn_run_is_consistent_and_renders() {
        let report = ChurnReport {
            quick: true,
            seed: 7,
            scales: vec![run_scale(3_000, 2, 42)],
        };
        let sc = &report.scales[0];
        assert_eq!(sc.fractions.len(), FRACTIONS.len());
        for (fr, &want) in sc.fractions.iter().zip(&FRACTIONS) {
            assert_eq!(fr.fraction, want);
            assert!(fr.identity, "delete {:.0}%: engines diverged", want * 100.0);
            if want == 0.0 {
                assert_eq!(fr.retracted, 0);
            } else {
                assert!(fr.retracted > 0);
            }
            assert_eq!(
                fr.live_triples,
                sc.base_triples + fr.inserted - fr.retracted
            );
            assert_eq!(fr.measurements.len(), 4);
            for pair in fr.measurements.chunks(2) {
                assert_eq!(pair[0].evaluator, pair[1].evaluator);
                assert_eq!(
                    pair[0].mean_final_estimate.to_bits(),
                    pair[1].mean_final_estimate.to_bits(),
                    "{} at {:.0}%: engines disagree",
                    pair[0].evaluator,
                    want * 100.0
                );
            }
        }
        let json = to_json(&report);
        assert!(json.contains("\"schema\": \"kg-bench-churn/v1\""));
        assert!(json.contains("\"identity\": true"));
        assert!(!json.contains("\"identity\": false"));
        let table = render_table(&report);
        assert!(table.contains("identity: true"));
    }

    #[test]
    fn engines_agree_under_heavy_churn() {
        assert!(engines_agree(3_000, 0.5, 99));
    }

    #[test]
    fn offer_modes_agree_under_churn() {
        assert!(offer_modes_agree(3_000, 0.25, 99));
    }
}

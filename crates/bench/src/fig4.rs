//! Figure 4: fitting the cost function `Cost = |E|·c1 + |G|·c2` to observed
//! annotation-task timings.
//!
//! The paper fits c1 = 45 s, c2 = 25 s from the Table 4 tasks plus the
//! Fig. 1 timelines, then shows the fitted function tracking the observed
//! costs of different task shapes. We regenerate observations from a
//! ground-truth annotator with per-task noise, fit, and report the
//! recovered parameters and per-task predicted-vs-observed.

use crate::table::TextTable;
use crate::Opts;
use kg_annotate::cost::{CostModel, CostObservation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let truth = CostModel::default(); // c1 = 45, c2 = 25 — the paper's fit
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0xf164);

    // Observed tasks: the paper's two Table 4 shapes, the Fig. 1 shapes,
    // and a few more mixed shapes; ±8% human variation.
    let shapes: &[(u64, u64, &str)] = &[
        (174, 174, "SRS audit (Table 4)"),
        (24, 178, "TWCS m=10 audit (Table 4)"),
        (50, 50, "triple-level task (Fig. 1)"),
        (11, 50, "entity-level task (Fig. 1)"),
        (5, 25, "single-entity deep audit"),
        (40, 120, "mixed audit"),
        (80, 100, "shallow audit"),
    ];
    let observations: Vec<CostObservation> = shapes
        .iter()
        .map(|&(e, t, _)| {
            let noise = 1.0 + (rng.gen::<f64>() - 0.5) * 0.16;
            CostObservation {
                entities: e,
                triples: t,
                seconds: truth.seconds(e, t) * noise,
            }
        })
        .collect();

    let fitted = CostModel::fit(&observations).expect("non-degenerate design");
    let mut t = TextTable::new(["task", "|E|", "|G|", "observed (h)", "fitted (h)"]);
    for (obs, &(e, tr, name)) in observations.iter().zip(shapes) {
        t.row([
            name.to_string(),
            format!("{e}"),
            format!("{tr}"),
            format!("{:.2}", obs.seconds / 3600.0),
            format!("{:.2}", fitted.seconds(e, tr) / 3600.0),
        ]);
    }
    format!(
        "Figure 4 — cost-function fit\n\
         true parameters: c1 = {:.0} s, c2 = {:.0} s (paper §7.1.3)\n\
         fitted:          c1 = {:.1} s, c2 = {:.1} s   (RMSE {:.0} s)\n\n{}",
        truth.c1,
        truth.c2,
        fitted.c1,
        fitted.c2,
        fitted.rmse(&observations),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_recovers_paper_parameters_within_noise() {
        let out = run(&Opts::default());
        let line = out.lines().find(|l| l.contains("fitted:")).unwrap();
        let nums: Vec<f64> = line
            .split(['=', 's', ','])
            .filter_map(|w| w.trim().parse().ok())
            .collect();
        let (c1, c2) = (nums[0], nums[1]);
        assert!((c1 - 45.0).abs() < 8.0, "c1 {c1}\n{out}");
        assert!((c2 - 25.0).abs() < 4.0, "c2 {c2}\n{out}");
    }
}

//! Figure 7: TWCS scalability — evaluation cost vs KG size and vs overall
//! accuracy on MOVIE-FULL.
//!
//! Expected shapes (§7.2.4): the cost is flat in KG size (26M → 130M
//! triples, REM 90%) because the required sample size depends on the
//! variance, not the population size; and peaked at 50% accuracy, where
//! Bernoulli variance is maximal.

use crate::table::TextTable;
use crate::trials::pm;
use crate::Opts;
use kg_datagen::profile::DatasetProfile;
use kg_eval::config::EvalConfig;
use kg_eval::executor::run_trials;
use kg_eval::framework::Evaluator;
use kg_model::implicit::ClusterPopulation;
use kg_sampling::PopulationIndex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    // Quick mode shrinks MOVIE-FULL 50×: same code path, same flat shape.
    let base_scale = if opts.quick { 0.02 } else { 1.0 };
    let config = EvalConfig::default();
    let trials = opts.trials(100);
    let mut out = String::from("Figure 7 — TWCS(m=5) scalability on MOVIE-FULL\n\n");

    // (1) Varying KG size at fixed 90% accuracy.
    let mut t1 = TextTable::new(["triples", "clusters", "hours", "clusters sampled"]);
    for fraction in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let profile = DatasetProfile::movie_full(0.9).scaled(fraction * base_scale);
        let ds = profile.generate(opts.seed);
        let index = Arc::new(PopulationIndex::from_population(&ds.population).expect("non-empty"));
        let oracle = ds.oracle.clone();
        let idx = index.clone();
        let stats = run_trials(trials, opts.seed ^ 0xf171, 2, move |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = Evaluator::twcs(5)
                .run_with_index(idx.clone(), oracle.as_ref(), &config, &mut rng)
                .expect("valid population");
            vec![r.cost_hours(), r.units as f64]
        });
        t1.row([
            format!("{:.1}M", ds.population.total_triples() as f64 / 1e6),
            format!("{:.1}M", ds.population.num_clusters() as f64 / 1e6),
            pm(&stats[0], 2),
            format!("{:.0}", stats[1].mean()),
        ]);
    }
    out.push_str(&format!(
        "(1) varying KG size, REM 90% ({trials} trials)\n{}\n",
        t1.render()
    ));

    // (2) Varying overall accuracy at full (scaled) size.
    let profile = DatasetProfile::movie_full(0.9).scaled(base_scale);
    let sizes_ds = profile.generate(opts.seed); // structure reused across accuracies
    let index =
        Arc::new(PopulationIndex::from_population(&sizes_ds.population).expect("non-empty"));
    let mut t2 = TextTable::new(["accuracy", "hours", "clusters sampled"]);
    for acc in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let oracle = kg_annotate::oracle::RemOracle::new(acc, opts.seed ^ 0xacc);
        let idx = index.clone();
        let stats = run_trials(trials, opts.seed ^ 0xf172, 2, move |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = Evaluator::twcs(5)
                .run_with_index(idx.clone(), &oracle, &config, &mut rng)
                .expect("valid population");
            vec![r.cost_hours(), r.units as f64]
        });
        t2.row([
            format!("{:.0}%", acc * 100.0),
            pm(&stats[0], 2),
            format!("{:.0}", stats[1].mean()),
        ]);
    }
    out.push_str(&format!(
        "(2) varying overall accuracy at {:.1}M triples ({trials} trials)\n{}\n\
         paper shapes: flat in size; peaked at 50% accuracy.\n",
        sizes_ds.population.total_triples() as f64 / 1e6,
        t2.render()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_flat_in_size_and_peaked_at_half_accuracy() {
        let opts = Opts {
            quick: true,
            trial_scale: 0.3,
            ..Opts::default()
        };
        let out = run(&opts);
        // Size sweep: max/min mean hours within 50%.
        let hours: Vec<f64> = out
            .lines()
            .skip_while(|l| !l.starts_with("(1)"))
            .take_while(|l| !l.starts_with("(2)"))
            .filter(|l| l.contains('±'))
            .filter_map(|l| {
                l.split_whitespace()
                    .find(|w| w.contains('±'))?
                    .split('±')
                    .next()?
                    .parse()
                    .ok()
            })
            .collect();
        assert!(hours.len() >= 5, "{out}");
        let (lo, hi) = hours
            .iter()
            .fold((f64::MAX, f64::MIN), |(a, b), &h| (a.min(h), b.max(h)));
        assert!(hi / lo < 1.6, "size sweep not flat: {hours:?}\n{out}");

        // Accuracy sweep: 50% row is the most expensive.
        let acc_hours: Vec<(String, f64)> = out
            .lines()
            .skip_while(|l| !l.starts_with("(2)"))
            .filter(|l| l.contains('±') && l.contains('%'))
            .filter_map(|l| {
                let acc = l.split_whitespace().next()?.to_string();
                let h: f64 = l
                    .split_whitespace()
                    .find(|w| w.contains('±'))?
                    .split('±')
                    .next()?
                    .parse()
                    .ok()?;
                Some((acc, h))
            })
            .collect();
        let h50 = acc_hours
            .iter()
            .find(|(a, _)| a == "50%")
            .map(|&(_, h)| h)
            .unwrap();
        for (a, h) in &acc_hours {
            assert!(
                h50 >= *h - 1e-9,
                "50% ({h50}) not the peak vs {a} ({h})\n{out}"
            );
        }
    }
}

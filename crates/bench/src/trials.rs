//! Repeated-trial runner with per-metric aggregation.
//!
//! Experiments repeat each configuration over many seeded trials and
//! report mean ± standard deviation (§7.1.5). Trials are spread across the
//! available cores with plain scoped threads (on a single-core box this
//! degenerates to a sequential loop).

use kg_stats::RunningMoments;

/// Run `trials` seeded replications of `f`, each returning a fixed-length
/// metric vector; returns one [`RunningMoments`] per metric position.
///
/// Seeds are `base_seed + trial_index`, so results are deterministic and
/// independent of thread count.
pub fn run_trials<F>(trials: u64, base_seed: u64, metrics: usize, f: F) -> Vec<RunningMoments>
where
    F: Fn(u64) -> Vec<f64> + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(trials.max(1) as usize);
    let chunk = trials.div_ceil(threads as u64);
    let mut per_thread: Vec<Vec<RunningMoments>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads as u64)
            .map(|t| {
                let f = &f;
                scope.spawn(move || {
                    let mut acc = vec![RunningMoments::new(); metrics];
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(trials);
                    for trial in lo..hi {
                        let out = f(base_seed.wrapping_add(trial));
                        assert_eq!(
                            out.len(),
                            metrics,
                            "trial returned {} metrics, expected {metrics}",
                            out.len()
                        );
                        for (m, v) in acc.iter_mut().zip(out) {
                            m.push(v);
                        }
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("trial thread panicked"))
            .collect()
    });
    let mut total = per_thread
        .pop()
        .unwrap_or_else(|| vec![RunningMoments::new(); metrics]);
    for part in per_thread {
        for (t, p) in total.iter_mut().zip(part) {
            t.merge(&p);
        }
    }
    total
}

/// Format `mean ± std` with the given decimals.
pub fn pm(m: &RunningMoments, decimals: usize) -> String {
    format!("{:.d$}±{:.d$}", m.mean(), m.sample_std(), d = decimals)
}

/// Format a mean±std pair as percentages.
pub fn pm_pct(m: &RunningMoments, decimals: usize) -> String {
    format!(
        "{:.d$}%±{:.d$}%",
        m.mean() * 100.0,
        m.sample_std() * 100.0,
        d = decimals
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_across_trials_deterministically() {
        let f = |seed: u64| vec![seed as f64, 2.0 * seed as f64];
        let a = run_trials(100, 10, 2, f);
        let b = run_trials(100, 10, 2, f);
        assert_eq!(a[0].count(), 100);
        assert_eq!(a[0].mean(), b[0].mean());
        // Seeds 10..110 → mean 59.5, second metric doubled.
        assert!((a[0].mean() - 59.5).abs() < 1e-9);
        assert!((a[1].mean() - 119.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn wrong_metric_arity_panics() {
        run_trials(2, 0, 3, |_| vec![1.0]);
    }

    #[test]
    fn formatting_helpers() {
        let m = RunningMoments::from_slice(&[0.5, 0.7]);
        assert_eq!(pm(&m, 2), "0.60±0.14");
        assert!(pm_pct(&m, 1).starts_with("60.0%"));
    }

    #[test]
    fn single_trial_works() {
        let out = run_trials(1, 7, 1, |s| vec![s as f64]);
        assert_eq!(out[0].count(), 1);
        assert_eq!(out[0].mean(), 7.0);
    }
}

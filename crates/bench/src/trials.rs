//! Formatting helpers for trial-aggregated metrics.
//!
//! The repeated-trial runner itself lives in the core framework now:
//! [`kg_eval::executor`] shards seeded trials across workers with
//! counter-based RNG streams and a fixed-shape reduction, making every
//! aggregated mean ± std **bitwise identical at any worker count** (the
//! old chunk-order merge in this module silently drifted with core
//! count). Every experiment module imports
//! `kg_eval::executor::run_trials` directly; this module keeps only the
//! `mean ± std` rendering used by the tables.

use kg_stats::RunningMoments;

/// Format `mean ± std` with the given decimals.
pub fn pm(m: &RunningMoments, decimals: usize) -> String {
    format!("{:.d$}±{:.d$}", m.mean(), m.sample_std(), d = decimals)
}

/// Format a mean±std pair as percentages.
pub fn pm_pct(m: &RunningMoments, decimals: usize) -> String {
    format!(
        "{:.d$}%±{:.d$}%",
        m.mean() * 100.0,
        m.sample_std() * 100.0,
        d = decimals
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        let m = RunningMoments::from_slice(&[0.5, 0.7]);
        assert_eq!(pm(&m, 2), "0.60±0.14");
        assert!(pm_pct(&m, 1).starts_with("60.0%"));
    }

    #[test]
    fn formatting_is_nan_free_on_empty_and_singleton_aggregates() {
        // The executor returns count-0 / count-1 moments for 0/1-trial
        // runs; rendering them must produce clean zeros, not NaN.
        let empty = RunningMoments::new();
        assert_eq!(pm(&empty, 2), "0.00±0.00");
        let one = RunningMoments::from_slice(&[0.25]);
        assert_eq!(pm(&one, 2), "0.25±0.00");
        assert_eq!(pm_pct(&one, 1), "25.0%±0.0%");
    }
}

//! # kg-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§7). Each
//! experiment is a module with `run(&Opts) -> String`; the `repro` binary
//! dispatches by id (`fig1` … `fig9`, `table3` … `table8`, `all`).
//!
//! Absolute numbers are *simulated human hours* under the paper's fitted
//! cost function (c1 = 45 s, c2 = 25 s); what must match the paper is the
//! **shape** of each result — who wins, by what factor, where crossovers
//! fall. `EXPERIMENTS.md` records paper-vs-measured per experiment.

#![forbid(unsafe_code)]

pub mod ablation;
pub mod artifact;
pub mod chaos;
pub mod churn;
pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod granular;
pub mod parallel;
pub mod scenarios;
pub mod serve;
pub mod sharded;
pub mod skeleton;
pub mod streaming;
pub mod table;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table8;
pub mod throughput;
pub mod trials;

/// Experiment options shared by all modules.
#[derive(Debug, Clone, Copy)]
pub struct Opts {
    /// Trial multiplier: 1.0 = each experiment's default trial count
    /// (chosen to finish in minutes on a laptop core; the paper uses 1000
    /// everywhere — pass `--trials-scale 5` upward to match it on the small
    /// KGs).
    pub trial_scale: f64,
    /// Quick mode: shrink populations and trial counts ~10× for smoke runs
    /// and CI.
    pub quick: bool,
    /// Base RNG seed; every trial derives its own seed from this.
    pub seed: u64,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            trial_scale: 1.0,
            quick: false,
            seed: 20190923, // VLDB 2019 camera-ready month
        }
    }
}

impl Opts {
    /// Scale an experiment's default trial count, with a floor of 8.
    pub fn trials(&self, default: u64) -> u64 {
        let base = if self.quick {
            (default / 10).max(8)
        } else {
            default
        };
        ((base as f64 * self.trial_scale) as u64).max(8)
    }
}

/// All experiment ids in presentation order.
pub const EXPERIMENTS: &[&str] = &[
    "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table3", "table4", "table5",
    "table6", "table7", "table8", "ablation", "granular", "sharded",
];

/// Run one experiment by id.
pub fn run_experiment(id: &str, opts: &Opts) -> Option<String> {
    let out = match id {
        "fig1" => fig1::run(opts),
        "fig3" => fig3::run(opts),
        "fig4" => fig4::run(opts),
        "fig5" => fig5::run(opts),
        "fig6" => fig6::run(opts),
        "fig7" => fig7::run(opts),
        "fig8" => fig8::run(opts),
        "fig9" => fig9::run(opts),
        "table3" => table3::run(opts),
        "table4" => table4::run(opts),
        "table5" => table5::run(opts),
        "table6" => table6::run(opts),
        "table7" => table7::run(opts),
        "table8" => table8::run(opts),
        "ablation" => ablation::run(opts),
        "granular" => granular::run(opts),
        "sharded" => sharded::run(opts),
        _ => return None,
    };
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_experiment("fig2", &Opts::default()).is_none());
        assert!(run_experiment("", &Opts::default()).is_none());
    }

    #[test]
    fn opts_trials_scaling() {
        let mut o = Opts::default();
        assert_eq!(o.trials(1000), 1000);
        o.quick = true;
        assert_eq!(o.trials(1000), 100);
        o.trial_scale = 0.0;
        assert_eq!(o.trials(1000), 8); // floor
    }

    #[test]
    fn catalog_is_complete() {
        // Every listed id dispatches (checked cheaply via fig4/table8 which
        // are instant; the rest compile-time match the same function).
        assert_eq!(EXPERIMENTS.len(), 17);
        assert!(EXPERIMENTS.contains(&"table8"));
        assert!(EXPERIMENTS.contains(&"sharded"));
    }
}

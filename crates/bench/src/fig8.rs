//! Figure 8: evolving KG with a single update batch — Baseline (static
//! re-evaluation) vs RS (reservoir) vs SS (stratified incremental).
//!
//! Paper setup: base = 50% of MOVIE (REM 90%); updates drawn with the
//! MOVIE shape. (1) varies the update size 130K→796K triples at 90%
//! accuracy; (2) fixes 796K and varies update accuracy 20%→80%. Expected
//! shapes: Baseline worst everywhere; RS grows with update size; SS
//! cheapest (paper: ~50% below RS), nearly flat in update size, peaked
//! near 50% update accuracy.

use crate::table::TextTable;
use crate::trials::pm;
use crate::Opts;
use kg_annotate::annotator::{Annotator, SimulatedAnnotator};
use kg_annotate::cost::CostModel;
use kg_annotate::oracle::RemOracle;
use kg_annotate::piecewise::PiecewiseOracle;
use kg_datagen::evolve::UpdateGenerator;
use kg_datagen::profile::DatasetProfile;
use kg_eval::config::EvalConfig;
use kg_eval::dynamic::reservoir::ReservoirEvaluator;
use kg_eval::dynamic::stratified::StratifiedIncremental;
use kg_eval::dynamic::IncrementalEvaluator;
use kg_eval::executor::run_trials;
use kg_eval::framework::Evaluator;
use kg_model::implicit::{ClusterPopulation, ImplicitKg};
use kg_model::update::UpdateBatch;
use kg_sampling::PopulationIndex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// One evolving-KG trial: returns (baseline_h, rs_h, ss_h, overall_acc_est).
fn trial(
    base: &ImplicitKg,
    base_index: &Arc<PopulationIndex>,
    delta: &UpdateBatch,
    update_acc: f64,
    seed: u64,
) -> Vec<f64> {
    let config = EvalConfig::default();
    let mut oracle = PiecewiseOracle::new(Box::new(RemOracle::new(0.9, seed)));
    oracle.push_segment(
        base.num_clusters() as u32,
        Box::new(RemOracle::new(update_acc, seed ^ 0xdead)),
    );

    // Baseline: fresh static TWCS on the evolved KG.
    let (evolved, _) = delta.apply_to(base);
    let mut rng = StdRng::seed_from_u64(seed ^ 1);
    let baseline = Evaluator::twcs(5)
        .run(&evolved, &oracle, &config, &mut rng)
        .expect("valid population");

    // RS: base evaluation excluded from the reported cost.
    let mut rng = StdRng::seed_from_u64(seed ^ 2);
    let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
    let mut rs = ReservoirEvaluator::evaluate_base(base, 60, 5, config, &mut annotator, &mut rng);
    let before = annotator.seconds();
    let rs_est = rs.apply_update(delta, &mut annotator, &mut rng);
    let rs_hours = (annotator.seconds() - before) / 3600.0;

    // SS: base estimate from a static run (cost excluded).
    let mut rng = StdRng::seed_from_u64(seed ^ 3);
    let base_report = Evaluator::twcs(5)
        .run_with_index(base_index.clone(), &oracle, &config, &mut rng)
        .expect("valid population");
    let mut ss = StratifiedIncremental::from_base(base, base_report.estimate, 5, config);
    let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
    let ss_est = ss.apply_update(delta, &mut annotator, &mut rng);
    let ss_hours = annotator.seconds() / 3600.0;

    let _ = (rs_est, ss_est);
    vec![
        baseline.cost_hours(),
        rs_hours,
        ss_hours,
        baseline.estimate.mean,
    ]
}

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let scale = if opts.quick { 0.02 } else { 0.5 };
    let base_profile = DatasetProfile::movie().scaled(scale);
    let base = base_profile.generate(opts.seed).population;
    let base_index = Arc::new(PopulationIndex::from_population(&base).expect("non-empty"));
    let generator = UpdateGenerator::movie_like();
    let trials = opts.trials(60);
    let base_triples = base.total_triples();
    let mut out = format!(
        "Figure 8 — single update batch on evolving KG (base {:.2}M triples @90%, {} trials)\n\n",
        base_triples as f64 / 1e6,
        trials
    );

    // (1) Varying update size at 90% accuracy.
    let mut t1 = TextTable::new(["update", "Baseline h", "RS h", "SS h", "overall acc"]);
    for frac in [0.1, 0.2, 0.4, 0.6] {
        let update_triples = (base_triples as f64 * frac) as u64;
        let delta = generator.batch(update_triples, opts.seed ^ (frac * 100.0) as u64);
        let stats = run_trials(trials, opts.seed ^ 0xf181, 4, |seed| {
            trial(&base, &base_index, &delta, 0.9, seed)
        });
        t1.row([
            format!(
                "{:.0}K (~{:.0}%)",
                update_triples as f64 / 1e3,
                frac * 100.0
            ),
            pm(&stats[0], 2),
            pm(&stats[1], 2),
            pm(&stats[2], 2),
            format!("{:.0}%", stats[3].mean() * 100.0),
        ]);
    }
    out.push_str(&format!(
        "(1) varying update size, update accuracy 90%\n{}\n",
        t1.render()
    ));

    // (2) Varying update accuracy at ~50% update size.
    let update_triples = (base_triples as f64 * 0.6) as u64;
    let delta = generator.batch(update_triples, opts.seed ^ 0x5e1);
    let mut t2 = TextTable::new(["update acc", "Baseline h", "RS h", "SS h", "overall acc"]);
    for acc in [0.2, 0.4, 0.6, 0.8] {
        let stats = run_trials(trials, opts.seed ^ 0xf182, 4, |seed| {
            trial(&base, &base_index, &delta, acc, seed)
        });
        t2.row([
            format!("{:.0}%", acc * 100.0),
            pm(&stats[0], 2),
            pm(&stats[1], 2),
            pm(&stats[2], 2),
            format!("{:.0}%", stats[3].mean() * 100.0),
        ]);
    }
    out.push_str(&format!(
        "(2) varying update accuracy, update size {:.0}K\n{}\n\
         paper shapes: SS < RS < Baseline; RS grows with update size; SS peaks near 50% update accuracy.\n",
        update_triples as f64 / 1e3,
        t2.render()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ss_cheapest_baseline_most_expensive() {
        let opts = Opts {
            quick: true,
            trial_scale: 0.2,
            ..Opts::default()
        };
        let out = run(&opts);
        // Check the largest-update row of part (1): SS's near-flat cost
        // should undercut RS there (at 10% they are comparable).
        let row = out
            .lines()
            .skip_while(|l| !l.starts_with("(1)"))
            .filter(|l| l.contains('±') && l.contains('K'))
            .last()
            .unwrap_or_else(|| panic!("no data row\n{out}"));
        let nums: Vec<f64> = row
            .split_whitespace()
            .filter(|w| w.contains('±'))
            .filter_map(|w| w.split('±').next()?.parse().ok())
            .collect();
        let (baseline, rs, ss) = (nums[0], nums[1], nums[2]);
        assert!(ss <= rs * 1.2, "SS {ss} should be <= RS {rs}\n{out}");
        assert!(
            baseline > ss,
            "Baseline {baseline} should exceed SS {ss}\n{out}"
        );
    }
}

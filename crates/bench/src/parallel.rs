//! Tracked parallel-scaling harness: the static TWCS workload on the
//! [`kg_eval::executor::TrialExecutor`] at forced worker counts, plus an
//! **intra-trial** shard sweep on [`kg_eval::sharded::ShardedReplay`].
//!
//! `bench-report --parallel` times the same seeded trial set — iterative
//! TWCS(m=5) evaluation to a tight ε = 1% MoE target, the configuration
//! whose per-trial sample is large enough to be annotation-bound — at 1,
//! 2, 4, and 8 workers, under both annotation engines (fresh hash
//! annotator per trial vs one leased dense arena per worker). Schema v2
//! adds a second sweep one level down: a single fixed-size WCS sharded
//! replay at 1, 2, 4, and 8 *shard workers* per scale, measuring
//! single-replay latency rather than trial throughput. The artifact is
//! `BENCH_parallel.json` (schema `kg-bench-parallel/v2`).
//!
//! Two properties are recorded per sweep, and both matter:
//!
//! * **scaling** — trials/sec (or replay visits/sec) per worker count,
//!   with speedups relative to the 1-worker row. Wall-clock scaling is a
//!   property of the *host*: the committed baseline was generated inside a
//!   single-hardware-thread container (`host_workers: 1`, `affinity`
//!   recorded alongside), where the honest curve is flat; the CI
//!   determinism job regenerates the artifact on multi-core runners, where
//!   the curve is the point.
//! * **invariance** — the aggregated estimate mean/std must be **bitwise
//!   identical across every worker count and both engines**. This is the
//!   correctness half of both contracts ([`TrialExecutor`] across trials,
//!   `ShardedReplay` across shard workers) and is asserted by
//!   [`ParallelScaleReport::bitwise_invariant`] /
//!   [`ParallelScaleReport::engines_agree`] and their
//!   [`ShardSweep`] counterparts, which the JSON records.

use crate::throughput::synthetic_sizes;
use kg_annotate::cost::CostModel;
use kg_annotate::lease::DenseArenaPool;
use kg_annotate::oracle::RemOracle;
use kg_eval::config::EvalConfig;
use kg_eval::executor::TrialExecutor;
use kg_eval::framework::{Evaluator, TrialAggregate};
use kg_eval::sharded::{ShardDesign, ShardedReplay};
use kg_sampling::PopulationIndex;
use std::sync::Arc;
use std::time::Instant;

/// Options for a parallel-scaling run.
#[derive(Debug, Clone, Copy)]
pub struct ParallelOpts {
    /// Quick mode: shrink scales and trial counts (CI).
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ParallelOpts {
    fn default() -> Self {
        ParallelOpts {
            quick: false,
            seed: 20190923,
        }
    }
}

/// Forced worker counts of the scaling sweep.
pub const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Forced shard-worker counts of the intra-trial sweep.
pub const SHARD_WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Second-stage cap of the TWCS workload.
pub const M: usize = 5;

/// The CPUs this process may run on (`Cpus_allowed_list` from
/// `/proc/self/status`), or `"unknown"` where unavailable — context for
/// reading the scaling curves next to `host_workers`.
pub fn cpu_affinity() -> String {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Cpus_allowed_list:"))
                .map(|l| l.split(':').nth(1).unwrap_or("").trim().to_string())
        })
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn workload_config() -> EvalConfig {
    // ε = 1% sizes per-trial samples into the thousands of units, making
    // each trial annotation-bound; batch 25 keeps stop-rule overhead low.
    EvalConfig::default()
        .with_target_moe(0.01)
        .with_batch_size(25)
}

/// One (engine, worker-count) measurement.
#[derive(Debug, Clone)]
pub struct WorkerMeasurement {
    /// Engine name (`hash` / `dense`).
    pub engine: &'static str,
    /// Forced worker count.
    pub workers: usize,
    /// Trials executed.
    pub trials: u64,
    /// Wall-clock seconds for the whole trial set.
    pub elapsed_sec: f64,
    /// `trials / elapsed_sec`.
    pub trials_per_sec: f64,
    /// Aggregated estimate mean — must be bitwise identical across rows.
    pub mean_estimate: f64,
    /// Aggregated estimate sample std — must be bitwise identical too.
    pub std_estimate: f64,
    /// Mean simulated human seconds per trial (sanity: workload size).
    pub mean_cost_seconds: f64,
}

/// One (engine, shard-worker-count) cell of the intra-trial sweep.
#[derive(Debug, Clone)]
pub struct ShardMeasurement {
    /// Engine name (`hash` / `dense`).
    pub engine: &'static str,
    /// Forced shard-worker count.
    pub shard_workers: usize,
    /// Wall-clock seconds for the single sharded replay.
    pub elapsed_sec: f64,
    /// `units / elapsed_sec` — cluster visits per second.
    pub visits_per_sec: f64,
    /// Replay estimate mean — must be bitwise identical across rows.
    pub estimate_mean: f64,
    /// Replay estimator variance — must be bitwise identical too.
    pub estimate_var: f64,
    /// Simulated human seconds of the replay (bitwise-checked as well).
    pub cost_seconds: f64,
}

/// The intra-trial shard sweep at one KG scale: one fixed-size WCS sharded
/// replay per (engine, shard-worker-count) cell.
#[derive(Debug, Clone)]
pub struct ShardSweep {
    /// Cluster visits per replay.
    pub units: u64,
    /// Shards the fixed partition yields.
    pub shards: u64,
    /// Visits per shard (the partition key).
    pub shard_units: usize,
    /// Per-engine, per-shard-worker-count measurements.
    pub measurements: Vec<ShardMeasurement>,
}

impl ShardSweep {
    fn cell(&self, engine: &str, shard_workers: usize) -> Option<&ShardMeasurement> {
        self.measurements
            .iter()
            .find(|m| m.engine == engine && m.shard_workers == shard_workers)
    }

    /// Replay speedup of `shard_workers` over the 1-worker row.
    pub fn speedup(&self, engine: &str, shard_workers: usize) -> Option<f64> {
        Some(self.cell(engine, 1)?.elapsed_sec / self.cell(engine, shard_workers)?.elapsed_sec)
    }

    /// Whether every shard-worker count produced bitwise-identical
    /// estimate mean/variance and cost within each engine — the sharded
    /// replay's invariance contract.
    pub fn bitwise_invariant(&self) -> bool {
        for engine in ["hash", "dense"] {
            let rows: Vec<_> = self
                .measurements
                .iter()
                .filter(|m| m.engine == engine)
                .collect();
            if !rows.windows(2).all(|w| {
                w[0].estimate_mean.to_bits() == w[1].estimate_mean.to_bits()
                    && w[0].estimate_var.to_bits() == w[1].estimate_var.to_bits()
                    && w[0].cost_seconds.to_bits() == w[1].cost_seconds.to_bits()
            }) {
                return false;
            }
        }
        true
    }

    /// Whether hash and dense agree bitwise at every shard-worker count.
    pub fn engines_agree(&self) -> bool {
        SHARD_WORKER_COUNTS
            .iter()
            .all(|&w| match (self.cell("hash", w), self.cell("dense", w)) {
                (Some(h), Some(d)) => {
                    h.estimate_mean.to_bits() == d.estimate_mean.to_bits()
                        && h.estimate_var.to_bits() == d.estimate_var.to_bits()
                        && h.cost_seconds.to_bits() == d.cost_seconds.to_bits()
                }
                _ => false,
            })
    }
}

/// All measurements at one KG scale.
#[derive(Debug, Clone)]
pub struct ParallelScaleReport {
    /// Target (and ~actual) triple count.
    pub triples: u64,
    /// Cluster count of the synthetic KG.
    pub clusters: u64,
    /// Trials per (engine, worker-count) cell.
    pub trials: u64,
    /// One-time `LabelStore` materialization seconds (dense engine only).
    pub store_build_sec: f64,
    /// Per-engine, per-worker-count measurements.
    pub measurements: Vec<WorkerMeasurement>,
    /// The intra-trial shard sweep at this scale (schema v2).
    pub shard_sweep: ShardSweep,
}

impl ParallelScaleReport {
    fn cell(&self, engine: &str, workers: usize) -> Option<&WorkerMeasurement> {
        self.measurements
            .iter()
            .find(|m| m.engine == engine && m.workers == workers)
    }

    /// Speedup of `workers` over the 1-worker row for one engine.
    pub fn speedup(&self, engine: &str, workers: usize) -> Option<f64> {
        Some(self.cell(engine, 1)?.elapsed_sec / self.cell(engine, workers)?.elapsed_sec)
    }

    /// Speedup of `workers` over 1 worker with both engines' trial sets
    /// combined.
    pub fn combined_speedup(&self, workers: usize) -> Option<f64> {
        let total =
            |w: usize| Some(self.cell("hash", w)?.elapsed_sec + self.cell("dense", w)?.elapsed_sec);
        Some(total(1)? / total(workers)?)
    }

    /// Whether every worker count produced bitwise-identical estimate
    /// mean/std within each engine — the executor's invariance contract.
    pub fn bitwise_invariant(&self) -> bool {
        for engine in ["hash", "dense"] {
            let rows: Vec<_> = self
                .measurements
                .iter()
                .filter(|m| m.engine == engine)
                .collect();
            if !rows.windows(2).all(|w| {
                w[0].mean_estimate.to_bits() == w[1].mean_estimate.to_bits()
                    && w[0].std_estimate.to_bits() == w[1].std_estimate.to_bits()
            }) {
                return false;
            }
        }
        true
    }

    /// Whether hash and dense agree bitwise at every worker count (they
    /// replay identical draw sequences, so they must).
    pub fn engines_agree(&self) -> bool {
        WORKER_COUNTS
            .iter()
            .all(|&w| match (self.cell("hash", w), self.cell("dense", w)) {
                (Some(h), Some(d)) => {
                    h.mean_estimate.to_bits() == d.mean_estimate.to_bits()
                        && h.std_estimate.to_bits() == d.std_estimate.to_bits()
                }
                _ => false,
            })
    }
}

/// A full parallel-scaling report.
#[derive(Debug, Clone)]
pub struct ParallelReport {
    /// Whether this was a quick (CI) run.
    pub quick: bool,
    /// Base seed used.
    pub seed: u64,
    /// The host's default worker resolution (available parallelism unless
    /// `KG_EVAL_WORKERS` caps it) — the context for reading the curves.
    pub host_workers: usize,
    /// CPU affinity mask of the run ([`cpu_affinity`]).
    pub affinity: String,
    /// Per-scale results, ascending.
    pub scales: Vec<ParallelScaleReport>,
}

fn run_scale(target: u64, trials: u64, replay_units: u64, seed: u64) -> ParallelScaleReport {
    let sizes = synthetic_sizes(target);
    let oracle = RemOracle::new(0.9, seed ^ target);
    let idx = Arc::new(PopulationIndex::from_sizes(sizes).expect("non-empty synthetic KG"));

    let t0 = Instant::now();
    let store = Arc::new(idx.materialize_labels(&oracle));
    let store_build_sec = t0.elapsed().as_secs_f64();
    let pool = DenseArenaPool::new(store, CostModel::default());

    let config = workload_config();
    let evaluator = Evaluator::twcs(M);
    let base_seed = seed ^ 0x9a11;

    let mut measurements = Vec::new();
    for engine in ["hash", "dense"] {
        let run = |workers: usize, n: u64| -> TrialAggregate {
            let exec = TrialExecutor::new().with_workers(workers);
            match engine {
                "hash" => evaluator.run_trials(&idx, &oracle, &config, &exec, n, base_seed),
                _ => evaluator.run_trials_dense(&idx, &oracle, &pool, &config, &exec, n, base_seed),
            }
        };
        // Untimed full-size warmup at both sweep endpoints: page faults,
        // branch training, allocator free lists, and arena builds all
        // reach steady state before the first timed cell, so the 1-worker
        // baseline is not penalized for running first.
        run(1, trials);
        run(*WORKER_COUNTS.last().expect("non-empty sweep"), trials);
        for workers in WORKER_COUNTS {
            let t0 = Instant::now();
            let agg = run(workers, trials);
            let elapsed = t0.elapsed().as_secs_f64();
            measurements.push(WorkerMeasurement {
                engine,
                workers,
                trials,
                elapsed_sec: elapsed,
                trials_per_sec: trials as f64 / elapsed,
                mean_estimate: agg.estimate.mean(),
                std_estimate: agg.estimate.sample_std(),
                mean_cost_seconds: agg.cost_seconds.mean(),
            });
        }
    }
    // Intra-trial sweep: one fixed-size WCS sharded replay per cell —
    // WCS because its full-cluster visits are the dense engine's SIMD
    // fast path, so this measures single-replay latency on the hottest
    // kernel. The replay seed is fixed; only the claiming thread count
    // varies, so every cell must agree bitwise.
    let replay_seed = seed ^ 0x51AD;
    let mut shard_measurements = Vec::new();
    let sharded = ShardedReplay::new();
    for engine in ["hash", "dense"] {
        let run = |shard_workers: usize| {
            let replay = ShardedReplay::new().with_shard_workers(shard_workers);
            match engine {
                "hash" => replay.replay_hash(
                    ShardDesign::FullCluster,
                    &idx,
                    &oracle,
                    CostModel::default(),
                    replay_units,
                    replay_seed,
                ),
                _ => replay.replay_dense(
                    ShardDesign::FullCluster,
                    &idx,
                    &pool,
                    replay_units,
                    replay_seed,
                ),
            }
        };
        // Untimed warmup at both endpoints, as above.
        run(1);
        run(*SHARD_WORKER_COUNTS.last().expect("non-empty sweep"));
        for shard_workers in SHARD_WORKER_COUNTS {
            let t0 = Instant::now();
            let r = run(shard_workers);
            let elapsed = t0.elapsed().as_secs_f64();
            shard_measurements.push(ShardMeasurement {
                engine,
                shard_workers,
                elapsed_sec: elapsed,
                visits_per_sec: replay_units as f64 / elapsed,
                estimate_mean: r.estimate.mean,
                estimate_var: r.estimate.var_of_mean,
                cost_seconds: r.cost_seconds,
            });
        }
    }
    ParallelScaleReport {
        triples: idx.total_triples(),
        clusters: idx.num_clusters() as u64,
        trials,
        store_build_sec,
        measurements,
        shard_sweep: ShardSweep {
            units: replay_units,
            shards: sharded.num_shards(replay_units),
            shard_units: sharded.shard_units(),
            measurements: shard_measurements,
        },
    }
}

/// Run the harness.
pub fn run(opts: &ParallelOpts) -> ParallelReport {
    let scales: &[(u64, u64, u64)] = if opts.quick {
        // (target triples, trials per cell, visits per sharded replay)
        &[(100_000, 32, 2_000), (1_000_000, 16, 4_000)]
    } else {
        &[(1_000_000, 128, 20_000), (10_000_000, 48, 40_000)]
    };
    ParallelReport {
        quick: opts.quick,
        seed: opts.seed,
        host_workers: TrialExecutor::new().workers(),
        affinity: cpu_affinity(),
        scales: scales
            .iter()
            .map(|&(target, trials, replay_units)| {
                run_scale(target, trials, replay_units, opts.seed)
            })
            .collect(),
    }
}

/// Render the report as the `BENCH_parallel.json` document
/// (schema `kg-bench-parallel/v2`; see README § Parallel execution).
pub fn to_json(report: &ParallelReport) -> String {
    let cfg = workload_config();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"kg-bench-parallel/v2\",\n");
    s.push_str(&format!("  \"quick\": {},\n", report.quick));
    s.push_str(&format!("  \"seed\": {},\n", report.seed));
    s.push_str(&format!("  \"host_workers\": {},\n", report.host_workers));
    s.push_str(&format!("  \"affinity\": \"{}\",\n", report.affinity));
    s.push_str("  \"metric\": \"trials_per_second\",\n");
    s.push_str(&format!(
        "  \"workload\": {{\"design\": \"TWCS\", \"m\": {M}, \"target_moe\": {}, \
         \"alpha\": {}, \"batch_size\": {}}},\n",
        cfg.target_moe, cfg.alpha, cfg.batch_size
    ));
    s.push_str("  \"scales\": [\n");
    for (i, sc) in report.scales.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"triples\": {},\n", sc.triples));
        s.push_str(&format!("      \"clusters\": {},\n", sc.clusters));
        s.push_str(&format!("      \"trials\": {},\n", sc.trials));
        s.push_str(&format!(
            "      \"store_build_sec\": {:.6},\n",
            sc.store_build_sec
        ));
        s.push_str("      \"measurements\": [\n");
        for (j, m) in sc.measurements.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"engine\": \"{}\", \"workers\": {}, \"trials\": {}, \
                 \"elapsed_sec\": {:.6}, \"trials_per_sec\": {:.1}, \
                 \"mean_estimate\": {:.9}, \"std_estimate\": {:.9}, \
                 \"mean_cost_seconds\": {:.3}}}{}\n",
                m.engine,
                m.workers,
                m.trials,
                m.elapsed_sec,
                m.trials_per_sec,
                m.mean_estimate,
                m.std_estimate,
                m.mean_cost_seconds,
                if j + 1 < sc.measurements.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("      ],\n");
        let sweep = |engine: &str| -> Vec<String> {
            WORKER_COUNTS
                .iter()
                .skip(1)
                .filter_map(|&w| sc.speedup(engine, w).map(|x| format!("\"{w}\": {x:.2}")))
                .collect()
        };
        s.push_str(&format!(
            "      \"speedup_over_1_worker\": {{\"hash\": {{{}}}, \"dense\": {{{}}}, \
             \"combined\": {{{}}}}},\n",
            sweep("hash").join(", "),
            sweep("dense").join(", "),
            WORKER_COUNTS
                .iter()
                .skip(1)
                .filter_map(|&w| sc.combined_speedup(w).map(|x| format!("\"{w}\": {x:.2}")))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        s.push_str(&format!(
            "      \"bitwise_invariant\": {},\n",
            sc.bitwise_invariant()
        ));
        s.push_str(&format!(
            "      \"engines_agree\": {},\n",
            sc.engines_agree()
        ));
        let sw = &sc.shard_sweep;
        s.push_str("      \"intra_trial\": {\n");
        s.push_str("        \"metric\": \"replay_visits_per_second\",\n");
        s.push_str(&format!(
            "        \"design\": \"WCS\", \"units\": {}, \"shards\": {}, \"shard_units\": {},\n",
            sw.units, sw.shards, sw.shard_units
        ));
        s.push_str("        \"measurements\": [\n");
        for (j, m) in sw.measurements.iter().enumerate() {
            s.push_str(&format!(
                "          {{\"engine\": \"{}\", \"shard_workers\": {}, \
                 \"elapsed_sec\": {:.6}, \"visits_per_sec\": {:.1}, \
                 \"estimate_mean\": {:.9}, \"estimate_var\": {:.12}, \
                 \"cost_seconds\": {:.3}}}{}\n",
                m.engine,
                m.shard_workers,
                m.elapsed_sec,
                m.visits_per_sec,
                m.estimate_mean,
                m.estimate_var,
                m.cost_seconds,
                if j + 1 < sw.measurements.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("        ],\n");
        let shard_sweep_speedups = |engine: &str| -> Vec<String> {
            SHARD_WORKER_COUNTS
                .iter()
                .skip(1)
                .filter_map(|&w| sw.speedup(engine, w).map(|x| format!("\"{w}\": {x:.2}")))
                .collect()
        };
        s.push_str(&format!(
            "        \"speedup_over_1_shard_worker\": {{\"hash\": {{{}}}, \"dense\": {{{}}}}},\n",
            shard_sweep_speedups("hash").join(", "),
            shard_sweep_speedups("dense").join(", ")
        ));
        s.push_str(&format!(
            "        \"bitwise_invariant\": {},\n",
            sw.bitwise_invariant()
        ));
        s.push_str(&format!(
            "        \"engines_agree\": {}\n",
            sw.engines_agree()
        ));
        s.push_str("      }\n");
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < report.scales.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Human-readable table for the console.
pub fn render_table(report: &ParallelReport) -> String {
    let mut s = format!(
        "parallel scaling — TWCS(m={M}) to MoE 1%, host workers {} (affinity {})\n",
        report.host_workers, report.affinity
    );
    for sc in &report.scales {
        s.push_str(&format!(
            "scale {:>9} triples, {:>8} clusters, {} trials/cell (store {:.3}s)\n",
            sc.triples, sc.clusters, sc.trials, sc.store_build_sec
        ));
        s.push_str("  engine  workers   elapsed(s)   trials/s     estimate (mean±std)\n");
        for m in &sc.measurements {
            s.push_str(&format!(
                "  {:<6}  {:>7}  {:>11.4}  {:>9.1}     {:.6}±{:.6}\n",
                m.engine,
                m.workers,
                m.elapsed_sec,
                m.trials_per_sec,
                m.mean_estimate,
                m.std_estimate
            ));
        }
        for w in WORKER_COUNTS.iter().skip(1) {
            if let Some(x) = sc.combined_speedup(*w) {
                s.push_str(&format!("  combined speedup at {w} workers: {x:.2}x\n"));
            }
        }
        s.push_str(&format!(
            "  bitwise invariant across worker counts: {}; engines agree: {}\n",
            sc.bitwise_invariant(),
            sc.engines_agree()
        ));
        let sw = &sc.shard_sweep;
        s.push_str(&format!(
            "  intra-trial WCS replay: {} visits in {} shards of {}\n",
            sw.units, sw.shards, sw.shard_units
        ));
        s.push_str("  engine  shard-workers   elapsed(s)   visits/s\n");
        for m in &sw.measurements {
            s.push_str(&format!(
                "  {:<6}  {:>13}  {:>11.4}  {:>9.1}\n",
                m.engine, m.shard_workers, m.elapsed_sec, m.visits_per_sec
            ));
        }
        s.push_str(&format!(
            "  sharded replay bitwise invariant: {}; engines agree: {}\n\n",
            sw.bitwise_invariant(),
            sw.engines_agree()
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_is_invariant_across_workers_and_engines() {
        let sc = run_scale(5_000, 6, 700, 42);
        assert!(sc.triples >= 5_000);
        assert_eq!(sc.measurements.len(), 2 * WORKER_COUNTS.len());
        assert!(sc.bitwise_invariant(), "worker counts disagree: {sc:?}");
        assert!(sc.engines_agree(), "engines disagree: {sc:?}");
        assert!(sc.speedup("hash", 4).is_some());
        assert!(sc.combined_speedup(2).is_some());
        // The workload converged somewhere sensible.
        let m = &sc.measurements[0];
        assert!((m.mean_estimate - 0.9).abs() < 0.05, "{}", m.mean_estimate);
        assert!(m.mean_cost_seconds > 0.0);
        // The intra-trial sweep ran both engines at every cell and is
        // invariant to the shard-worker count.
        let sw = &sc.shard_sweep;
        assert_eq!(sw.units, 700);
        assert_eq!(sw.shards, 3); // 700 visits / 256 per shard
        assert_eq!(sw.measurements.len(), 2 * SHARD_WORKER_COUNTS.len());
        assert!(sw.bitwise_invariant(), "shard workers disagree: {sw:?}");
        assert!(sw.engines_agree(), "sharded engines disagree: {sw:?}");
        assert!(sw.speedup("dense", 8).is_some());
        let report = ParallelReport {
            quick: true,
            seed: 42,
            host_workers: TrialExecutor::new().workers(),
            affinity: cpu_affinity(),
            scales: vec![sc],
        };
        assert!(!report.affinity.is_empty());
        let json = to_json(&report);
        assert!(json.contains("\"schema\": \"kg-bench-parallel/v2\""));
        assert!(json.contains("\"affinity\": \""));
        assert!(json.contains("\"bitwise_invariant\": true"));
        assert!(!json.contains("\"bitwise_invariant\": false"));
        assert!(json.contains("\"engines_agree\": true"));
        assert!(json.contains("speedup_over_1_worker"));
        assert!(json.contains("\"intra_trial\""));
        assert!(json.contains("speedup_over_1_shard_worker"));
        let table = render_table(&report);
        assert!(table.contains("combined speedup at 4 workers"));
        assert!(table.contains("intra-trial WCS replay"));
    }
}

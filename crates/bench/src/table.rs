//! Minimal aligned text tables for experiment reports.

/// A text table with a header row and aligned columns.
#[derive(Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Render with space-padded columns and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].chars().count());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    s.push_str("  ");
                }
                s.push_str(cell);
                for _ in cell.chars().count()..widths[c] {
                    s.push(' ');
                }
            }
            s.trim_end().to_string()
        };
        let mut out = line(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["name", "hours"]);
        t.row(["SRS", "3.53"]);
        t.row(["TWCS", "1.4"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        // Columns align: "hours" starts at the same offset in every line.
        let col = lines[0].find("hours").unwrap();
        assert_eq!(&lines[2][col..col + 4], "3.53");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        TextTable::new(["a", "b"]).row(["only one"]);
    }

    #[test]
    fn unicode_width_is_char_based() {
        let mut t = TextTable::new(["μ̂", "±"]);
        t.row(["0.9", "0.05"]);
        let s = t.render();
        assert!(s.contains("0.9"));
    }
}

//! Table 6: TWCS vs KGEval on NELL and YAGO.
//!
//! Paper shape: TWCS's machine time is negligible (<1 s sample
//! generation) while KGEval's inference machinery needs hours (their PSL
//! grounding: >5 min per selection step); KGEval annotates a comparable
//! or larger number of triples, costs more human time (triple-level
//! tasks), and carries no statistical guarantee. Our structural KGEval
//! analogue is much faster than PSL in absolute terms — the preserved
//! shape is the orders-of-magnitude machine-time *ratio* and the human
//! cost relationship.

use crate::table::TextTable;
use crate::trials::{pm, pm_pct};
use crate::Opts;
use kg_annotate::annotator::SimulatedAnnotator;
use kg_annotate::cost::CostModel;
use kg_baselines::kgeval::eval::KgEvalBaseline;
use kg_datagen::profile::DatasetProfile;
use kg_eval::config::EvalConfig;
use kg_eval::executor::{run_trials, TrialExecutor};
use kg_eval::framework::Evaluator;
use kg_model::implicit::ClusterPopulation;
use kg_sampling::PopulationIndex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let mut out = String::from("Table 6 — TWCS vs KGEval on NELL and YAGO\n\n");
    for profile in [DatasetProfile::nell(), DatasetProfile::yago()] {
        // KGEval needs triple content: materialized graph + gold labels.
        // The loop is deterministic given its inputs, so one trial on the
        // shared executor reproduces the paper's single-run numbers.
        let (graph, gold) = profile.generate_materialized(opts.seed);
        let kgeval =
            KgEvalBaseline::new().run_trials(&TrialExecutor::new(), 1, opts.seed, |b, _| {
                let mut annotator = SimulatedAnnotator::new(&gold, CostModel::default());
                b.run(&graph, &mut annotator)
            });

        // TWCS on the same population (trial-averaged).
        let index = Arc::new(PopulationIndex::from_population(&graph).expect("non-empty"));
        let config = EvalConfig::default();
        let trials = opts.trials(1000);
        let machine_start = Instant::now();
        let gold_ref = &gold;
        let idx = index.clone();
        let stats = run_trials(trials, opts.seed ^ 0x7ab6, 3, move |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = Evaluator::twcs(5)
                .run_with_index(idx.clone(), gold_ref, &config, &mut rng)
                .expect("valid population");
            vec![r.triples_annotated as f64, r.cost_hours(), r.estimate.mean]
        });
        let twcs_machine = machine_start.elapsed().as_secs_f64() / trials as f64;

        let mut t = TextTable::new(["metric", "KGEval", "TWCS"]);
        t.row([
            "machine time (s)".to_string(),
            format!("{:.3}", kgeval.machine_seconds.mean()),
            format!("{:.6}", twcs_machine),
        ]);
        t.row([
            "triples annotated".to_string(),
            format!("{:.0}", kgeval.annotated.mean()),
            pm(&stats[0], 0),
        ]);
        t.row([
            "annotation time (h)".to_string(),
            format!("{:.2}", kgeval.human_seconds.mean() / 3600.0),
            pm(&stats[1], 2),
        ]);
        t.row([
            "estimation".to_string(),
            format!("{:.1}%", kgeval.estimate.mean() * 100.0),
            pm_pct(&stats[2], 1),
        ]);
        t.row([
            "statistical guarantee".to_string(),
            "none".to_string(),
            "MoE<=5% @95%".to_string(),
        ]);
        out.push_str(&format!(
            "{} ({} triples; KGEval resolved {:.0} by inference; {} TWCS trials)\n{}\n",
            profile.name,
            graph.total_triples(),
            kgeval.inferred.mean(),
            trials,
            t.render()
        ));
    }
    out.push_str(
        "paper: KGEval machine time 12.44 h (NELL) / 18.13 h (YAGO) vs <1 s for TWCS;\n\
         KGEval 140/204 triples vs TWCS 149/32; TWCS cuts annotation 20%/86%.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kgeval_machine_time_dwarfs_twcs() {
        let opts = Opts {
            quick: true,
            trial_scale: 0.2,
            ..Opts::default()
        };
        let out = run(&opts);
        let line = out
            .lines()
            .find(|l| l.starts_with("machine time"))
            .unwrap_or_else(|| panic!("no machine time row\n{out}"));
        let nums: Vec<f64> = line
            .split_whitespace()
            .filter_map(|w| w.parse().ok())
            .collect();
        assert!(
            nums[0] > nums[1] * 10.0,
            "KGEval {} should be >>10x TWCS {}\n{out}",
            nums[0],
            nums[1]
        );
    }
}

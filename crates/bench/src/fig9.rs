//! Figure 9: a sequence of updates — unbiasedness and fault tolerance of
//! RS vs SS.
//!
//! (1) 30 update batches (~10% of base each, 90% accurate) are applied;
//! both evaluators' per-batch estimates, averaged over trials, should
//! track the 90% ground truth (unbiasedness).
//!
//! (2)/(3) Fault tolerance: the *initial* evaluation is off by ±5% (an
//! unlucky base sample, emulated by biasing the initial annotations /
//! base estimate). RS recovers within a few batches — biased reservoir
//! members are evicted and diluted by fresh unbiased draws — while SS
//! keeps reusing the bad base estimate and recovers only by weight
//! dilution.

use crate::table::TextTable;
use crate::Opts;
use kg_annotate::annotator::SimulatedAnnotator;
use kg_annotate::cost::CostModel;
use kg_annotate::oracle::RemOracle;
use kg_datagen::evolve::UpdateGenerator;
use kg_datagen::profile::DatasetProfile;
use kg_eval::config::EvalConfig;
use kg_eval::dynamic::monitor::run_sequence;
use kg_eval::dynamic::reservoir::ReservoirEvaluator;
use kg_eval::dynamic::stratified::StratifiedIncremental;
use kg_eval::dynamic::IncrementalEvaluator;
use kg_eval::executor::run_trials;
use kg_model::implicit::{ClusterPopulation, ImplicitKg};
use kg_model::update::UpdateBatch;
use kg_sampling::PopulationIndex;
use kg_stats::PointEstimate;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const NUM_BATCHES: usize = 30;

struct Setup {
    base: ImplicitKg,
    batches: Vec<UpdateBatch>,
}

fn setup(opts: &Opts) -> Setup {
    let scale = if opts.quick { 0.01 } else { 0.25 };
    let base = DatasetProfile::movie()
        .scaled(scale)
        .generate(opts.seed)
        .population;
    let per_batch = base.total_triples() / 10;
    let batches = UpdateGenerator::movie_like().sequence(NUM_BATCHES, per_batch, opts.seed ^ 0x9e9);
    Setup { base, batches }
}

/// Per-batch estimates of one RS and one SS run (optionally bias-injected).
/// Index 0 is the initial (post-bias, pre-update) estimate; indices 1..=30
/// follow each batch.
fn one_run(s: &Setup, seed: u64, bias: f64) -> (Vec<f64>, Vec<f64>) {
    let config = EvalConfig::default();
    let oracle = RemOracle::new(0.9, seed);

    let mut rng = StdRng::seed_from_u64(seed ^ 0xa);
    let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
    let mut rs =
        ReservoirEvaluator::evaluate_base(&s.base, 60, 5, config, &mut annotator, &mut rng);
    if bias != 0.0 {
        rs.inject_initial_bias(bias);
    }
    let rs_initial = rs.estimate().mean;
    let rs_out = run_sequence(&mut rs, &s.batches, 0.05, &mut annotator, &mut rng);

    let mut rng = StdRng::seed_from_u64(seed ^ 0xb);
    let mut annotator = SimulatedAnnotator::new(&oracle, CostModel::default());
    // SS base estimate: honest static run, then the same bias applied.
    let base_index = Arc::new(PopulationIndex::from_population(&s.base).expect("non-empty"));
    let base_report = kg_eval::framework::Evaluator::twcs(5)
        .run_with_index(base_index, &oracle, &config, &mut rng)
        .expect("valid population");
    let biased = PointEstimate::new(
        (base_report.estimate.mean + bias).clamp(0.0, 1.0),
        base_report.estimate.var_of_mean,
        base_report.estimate.units,
    )
    .expect("valid variance");
    let mut ss = StratifiedIncremental::from_base(&s.base, biased, 5, config);
    let ss_initial = ss.estimate().mean;
    let ss_out = run_sequence(&mut ss, &s.batches, 0.05, &mut annotator, &mut rng);

    (
        std::iter::once(rs_initial)
            .chain(rs_out.iter().map(|o| o.estimate.mean))
            .collect(),
        std::iter::once(ss_initial)
            .chain(ss_out.iter().map(|o| o.estimate.mean))
            .collect(),
    )
}

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let s = setup(opts);
    let trials = opts.trials(40);
    let mut out = format!(
        "Figure 9 — sequence of {NUM_BATCHES} updates (~10% of base each, 90% accurate; base {:.2}M triples)\n\n",
        s.base.total_triples() as f64 / 1e6
    );

    // (1) Unbiasedness: trial-averaged estimates per batch.
    let per_series = NUM_BATCHES + 1;
    let stats = run_trials(trials, opts.seed ^ 0xf191, 2 * per_series, |seed| {
        let (rs, ss) = one_run(&s, seed, 0.0);
        rs.into_iter().chain(ss).collect()
    });
    let mut t1 = TextTable::new(["batch", "RS mean", "RS std", "SS mean", "SS std"]);
    for b in (5..=NUM_BATCHES).step_by(5) {
        t1.row([
            format!("{b}"),
            format!("{:.3}", stats[b].mean()),
            format!("{:.3}", stats[b].sample_std()),
            format!("{:.3}", stats[per_series + b].mean()),
            format!("{:.3}", stats[per_series + b].sample_std()),
        ]);
    }
    out.push_str(&format!(
        "(1) unbiasedness over {trials} trials (ground truth 0.900)\n{}\n",
        t1.render()
    ));

    // (2)/(3) Fault tolerance: single runs starting ±5% off.
    for (label, bias) in [
        ("over-estimation (+5%)", 0.05),
        ("under-estimation (-5%)", -0.05),
    ] {
        let (rs, ss) = one_run(&s, opts.seed ^ 0xf192, bias);
        let mut t = TextTable::new(["batch", "RS estimate", "SS estimate"]);
        for b in [0usize, 1, 3, 5, 10, 15, 20, 30] {
            t.row([
                if b == 0 {
                    "start".to_string()
                } else {
                    format!("{b}")
                },
                format!("{:.3}", rs[b]),
                format!("{:.3}", ss[b]),
            ]);
        }
        // Recovery: distance from truth at the end.
        let rs_err = (rs[NUM_BATCHES] - 0.9).abs();
        let ss_err = (ss[NUM_BATCHES] - 0.9).abs();
        out.push_str(&format!(
            "run starting with {label}: final |error| RS {:.3}, SS {:.3}\n{}\n",
            rs_err,
            ss_err,
            t.render()
        ));
    }
    out.push_str(
        "paper shapes: both unbiased on average; RS jumps back to truth within 5–10 batches\n\
         after a bad start, SS hardly recovers (only by weight dilution).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_track_truth_and_rs_recovers_faster() {
        let opts = Opts {
            quick: true,
            trial_scale: 0.3,
            ..Opts::default()
        };
        let s = setup(&opts);
        // Unbiased run stays near 0.9.
        let (rs, ss) = one_run(&s, 17, 0.0);
        assert!((rs[NUM_BATCHES] - 0.9).abs() < 0.06, "RS {rs:?}");
        assert!((ss[NUM_BATCHES] - 0.9).abs() < 0.06, "SS {ss:?}");
        // Biased start: RS ends closer to the truth than SS on average
        // over a few seeds.
        let mut rs_err = 0.0;
        let mut ss_err = 0.0;
        for seed in 0..5 {
            let (rs, ss) = one_run(&s, 100 + seed, 0.05);
            rs_err += (rs[NUM_BATCHES] - 0.9).abs();
            ss_err += (ss[NUM_BATCHES] - 0.9).abs();
        }
        assert!(
            rs_err <= ss_err + 0.02,
            "RS total err {rs_err} should be below SS {ss_err}"
        );
    }
}

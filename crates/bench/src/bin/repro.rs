//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!   repro [--quick] [--trials-scale X] [--seed N] <experiment>...
//!   repro all
//!
//! Experiments: fig1 fig3 fig4 fig5 fig6 fig7 fig8 fig9
//!              table3 table4 table5 table6 table7 table8

use kg_bench::{run_experiment, Opts, EXPERIMENTS};
use std::time::Instant;

fn main() {
    let mut opts = Opts::default();
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--trials-scale" => {
                opts.trial_scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--trials-scale needs a number"));
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            other if other.starts_with('-') => die(&format!("unknown flag {other}")),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        usage();
        std::process::exit(2);
    }
    if ids.iter().any(|i| i == "all") {
        ids = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        let start = Instant::now();
        match run_experiment(id, &opts) {
            Some(report) => {
                println!("=== {id} ===");
                println!("{report}");
                println!("[{id} took {:.1}s]\n", start.elapsed().as_secs_f64());
            }
            None => die(&format!(
                "unknown experiment `{id}` (known: {})",
                EXPERIMENTS.join(", ")
            )),
        }
    }
}

fn usage() {
    eprintln!(
        "repro — regenerate the paper's tables and figures\n\n\
         usage: repro [--quick] [--trials-scale X] [--seed N] <experiment>... | all\n\
         experiments: {}",
        EXPERIMENTS.join(" ")
    );
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

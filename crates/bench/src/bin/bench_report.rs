//! `bench-report` — time the hot sampling designs under the hash and dense
//! annotation engines and write the tracked `BENCH_throughput.json`.
//!
//! Usage:
//!   bench-report [--quick] [--seed N] [--out PATH]
//!
//! `--quick` drops the 10^7 scale and shrinks trial counts (CI); the
//! default output path is `BENCH_throughput.json` in the working
//! directory. Run release: `cargo run --release -p kg-bench --bin
//! bench-report`.

use kg_bench::throughput::{render_table, run, to_json, ThroughputOpts};

fn main() {
    let mut opts = ThroughputOpts::default();
    let mut out = String::from("BENCH_throughput.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--out" => {
                out = args.next().unwrap_or_else(|| die("--out needs a path"));
            }
            "--help" | "-h" => {
                eprintln!("bench-report [--quick] [--seed N] [--out PATH]");
                return;
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    #[cfg(debug_assertions)]
    eprintln!("warning: debug build — run with --release for meaningful numbers");

    let report = run(&opts);
    print!("{}", render_table(&report));
    std::fs::write(&out, to_json(&report)).unwrap_or_else(|e| die(&format!("write {out}: {e}")));
    println!("wrote {out}");
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

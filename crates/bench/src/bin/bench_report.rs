//! `bench-report` — time the hash and dense annotation engines and write
//! the tracked benchmark JSON.
//!
//! Usage:
//!   bench-report [--streaming] [--quick] [--seed N] [--out PATH]
//!
//! Default mode times the hot *static* sampling designs (SRS/WCS/TWCS
//! trial loops) and writes `BENCH_throughput.json`. `--streaming` instead
//! replays evolving-KG update sequences through the §6 incremental
//! evaluators (RS/SS) under both engines and writes `BENCH_streaming.json`
//! (schema `kg-bench-streaming/v1`).
//!
//! `--quick` drops the 10^7 scale and shrinks trial counts (CI); the
//! default output path is `BENCH_throughput.json` / `BENCH_streaming.json`
//! in the working directory. Run release: `cargo run --release -p kg-bench
//! --bin bench-report`.

use kg_bench::{streaming, throughput};

fn main() {
    let mut quick = false;
    let mut seed: Option<u64> = None;
    let mut out: Option<String> = None;
    let mut streaming_mode = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--streaming" => streaming_mode = true,
            "--quick" => quick = true,
            "--seed" => {
                seed = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--seed needs an integer")),
                );
            }
            "--out" => {
                out = Some(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            "--help" | "-h" => {
                eprintln!("bench-report [--streaming] [--quick] [--seed N] [--out PATH]");
                return;
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    #[cfg(debug_assertions)]
    eprintln!("warning: debug build — run with --release for meaningful numbers");

    if streaming_mode {
        let mut opts = streaming::StreamingOpts {
            quick,
            ..Default::default()
        };
        if let Some(s) = seed {
            opts.seed = s;
        }
        let out = out.unwrap_or_else(|| String::from("BENCH_streaming.json"));
        let report = streaming::run(&opts);
        print!("{}", streaming::render_table(&report));
        std::fs::write(&out, streaming::to_json(&report))
            .unwrap_or_else(|e| die(&format!("write {out}: {e}")));
        println!("wrote {out}");
    } else {
        let mut opts = throughput::ThroughputOpts {
            quick,
            ..Default::default()
        };
        if let Some(s) = seed {
            opts.seed = s;
        }
        let out = out.unwrap_or_else(|| String::from("BENCH_throughput.json"));
        let report = throughput::run(&opts);
        print!("{}", throughput::render_table(&report));
        std::fs::write(&out, throughput::to_json(&report))
            .unwrap_or_else(|e| die(&format!("write {out}: {e}")));
        println!("wrote {out}");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

//! `bench-report` — time the annotation engines and the parallel trial
//! runtime, writing the tracked benchmark JSON.
//!
//! Usage:
//!   bench-report [--streaming | --parallel | --skeleton | --churn | --scenarios | --serve | --resilience] [--quick] [--seed N] [--out PATH]
//!
//! Default mode times the hot *static* sampling designs (SRS/WCS/TWCS
//! trial loops) and writes `BENCH_throughput.json`. `--streaming` instead
//! replays evolving-KG update sequences through the §6 incremental
//! evaluators (RS/SS) under both engines and writes `BENCH_streaming.json`
//! (schema `kg-bench-streaming/v1`). `--parallel` sweeps the
//! `TrialExecutor` worker counts (1/2/4/8) over the static TWCS workload
//! under both engines and writes `BENCH_parallel.json` (schema
//! `kg-bench-parallel/v1`), recording both the scaling curve and the
//! bitwise worker-count-invariance check. `--skeleton` times the
//! engine-independent per-batch stream bookkeeping (reservoir offers +
//! PPS appends) under the per-item and batched offer paths and writes
//! `BENCH_skeleton.json` (schema `kg-bench-skeleton/v1`), including the
//! byte-identity check between the two. `--churn` replays deletion-aware
//! event streams (inserts + retractions at 0%/25%/50% delete fractions)
//! through RS/SS under both engines and writes `BENCH_churn.json` (schema
//! `kg-bench-churn/v1`), with a per-fraction cross-engine and cross-offer-
//! path identity check. `--scenarios` sweeps the adversarial scenario
//! matrix — every `kg_datagen::scenario` family through all eight
//! evaluators under both engines — and writes `BENCH_scenarios.json`
//! (schema `kg-bench-scenarios/v1`) with per-cell byte-identity and CI
//! coverage flags. `--serve` load-tests the kg-serve session service over
//! real TCP — thousands of tenant monitors registered and driven through
//! churn scripts, with served estimates byte-checked against in-process
//! evaluation and checkpoint/restore round-trips — and writes
//! `BENCH_serve.json` (schema `kg-bench-serve/v1`). `--resilience` runs
//! the deterministic chaos harness — seeded connection faults, abrupt
//! process kills, spill-file sabotage, and a final drain→restart cycle
//! over a tenant fleet, with every served estimate byte-checked against
//! a fault-free replay — and writes `BENCH_resilience.json` (schema
//! `kg-bench-resilience/v1`).
//!
//! `--quick` shrinks scales and trial counts (CI); the default output path
//! is `BENCH_<mode>.json` in the working directory. All artifacts are
//! written atomically (temp file + rename), so an interrupted run never
//! leaves a truncated JSON. Run release: `cargo run --release -p kg-bench
//! --bin bench-report`.

use kg_bench::artifact::write_atomic;
use kg_bench::{chaos, churn, parallel, scenarios, serve, skeleton, streaming, throughput};

enum Mode {
    Throughput,
    Streaming,
    Parallel,
    Skeleton,
    Churn,
    Scenarios,
    Serve,
    Resilience,
}

fn main() {
    let mut quick = false;
    let mut seed: Option<u64> = None;
    let mut out: Option<String> = None;
    let mut mode = Mode::Throughput;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--streaming" => mode = Mode::Streaming,
            "--parallel" => mode = Mode::Parallel,
            "--skeleton" => mode = Mode::Skeleton,
            "--churn" => mode = Mode::Churn,
            "--scenarios" => mode = Mode::Scenarios,
            "--serve" => mode = Mode::Serve,
            "--resilience" => mode = Mode::Resilience,
            "--quick" => quick = true,
            "--seed" => {
                seed = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--seed needs an integer")),
                );
            }
            "--out" => {
                out = Some(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            "--help" | "-h" => {
                eprintln!(
                    "bench-report [--streaming | --parallel | --skeleton | --churn | --scenarios | --serve | --resilience] [--quick] [--seed N] [--out PATH]"
                );
                return;
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    #[cfg(debug_assertions)]
    eprintln!("warning: debug build — run with --release for meaningful numbers");

    let (table, json, out) = match mode {
        Mode::Streaming => {
            let mut opts = streaming::StreamingOpts {
                quick,
                ..Default::default()
            };
            if let Some(s) = seed {
                opts.seed = s;
            }
            let report = streaming::run(&opts);
            (
                streaming::render_table(&report),
                streaming::to_json(&report),
                out.unwrap_or_else(|| String::from("BENCH_streaming.json")),
            )
        }
        Mode::Parallel => {
            let mut opts = parallel::ParallelOpts {
                quick,
                ..Default::default()
            };
            if let Some(s) = seed {
                opts.seed = s;
            }
            let report = parallel::run(&opts);
            (
                parallel::render_table(&report),
                parallel::to_json(&report),
                out.unwrap_or_else(|| String::from("BENCH_parallel.json")),
            )
        }
        Mode::Skeleton => {
            let mut opts = skeleton::SkeletonOpts {
                quick,
                ..Default::default()
            };
            if let Some(s) = seed {
                opts.seed = s;
            }
            let report = skeleton::run(&opts);
            (
                skeleton::render_table(&report),
                skeleton::to_json(&report),
                out.unwrap_or_else(|| String::from("BENCH_skeleton.json")),
            )
        }
        Mode::Churn => {
            let mut opts = churn::ChurnOpts {
                quick,
                ..Default::default()
            };
            if let Some(s) = seed {
                opts.seed = s;
            }
            let report = churn::run(&opts);
            (
                churn::render_table(&report),
                churn::to_json(&report),
                out.unwrap_or_else(|| String::from("BENCH_churn.json")),
            )
        }
        Mode::Scenarios => {
            let mut opts = scenarios::ScenarioOpts {
                quick,
                ..Default::default()
            };
            if let Some(s) = seed {
                opts.seed = s;
            }
            let report = scenarios::run(&opts);
            (
                scenarios::render_table(&report),
                scenarios::to_json(&report),
                out.unwrap_or_else(|| String::from("BENCH_scenarios.json")),
            )
        }
        Mode::Serve => {
            let mut opts = serve::ServeOpts {
                quick,
                ..Default::default()
            };
            if let Some(s) = seed {
                opts.seed = s;
            }
            let report = serve::run(&opts);
            (
                serve::render_table(&report),
                serve::to_json(&report),
                out.unwrap_or_else(|| String::from("BENCH_serve.json")),
            )
        }
        Mode::Resilience => {
            let mut opts = chaos::ChaosOpts {
                quick,
                ..Default::default()
            };
            if let Some(s) = seed {
                opts.seed = s;
            }
            let report = chaos::run(&opts);
            (
                chaos::render_table(&report),
                chaos::to_json(&report),
                out.unwrap_or_else(|| String::from("BENCH_resilience.json")),
            )
        }
        Mode::Throughput => {
            let mut opts = throughput::ThroughputOpts {
                quick,
                ..Default::default()
            };
            if let Some(s) = seed {
                opts.seed = s;
            }
            let report = throughput::run(&opts);
            (
                throughput::render_table(&report),
                throughput::to_json(&report),
                out.unwrap_or_else(|| String::from("BENCH_throughput.json")),
            )
        }
    };
    print!("{table}");
    write_atomic(&out, &json).unwrap_or_else(|e| die(&format!("write {out}: {e}")));
    println!("wrote {out}");
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

//! `--serve` mode: load-test the kg-serve accuracy-monitoring service.
//!
//! Starts the real serving stack **in-process** (the production
//! `kg_serve::serve` accept loop on an ephemeral port), then drives it
//! over actual TCP from a pool of client threads:
//!
//! 1. **Registration phase** — register `tenants` monitor sessions
//!    (quick: 1000, full: 2000) spread over eight spec families
//!    (reservoir/stratified × hash/dense × offer paths, distinct base
//!    KGs). Families exercise the registry's catalog interning: every
//!    tenant in a family shares one materialized label store.
//! 2. **Traffic phase** — each tenant receives a deterministic
//!    insert/retract/revise event script (one event per request, so the
//!    request-partitioning invariant is on the hot path) plus an
//!    estimate read. Tenants are partitioned by client thread, so each
//!    tenant's request order is sequential and replayable.
//! 3. **Checks** — for a sample of tenants, the served estimate is
//!    byte-compared (`mean_bits`/`var_bits`) against an in-process
//!    `SessionRegistry` replay of the same spec and event script; for a
//!    smaller sample, a checkpoint is taken over HTTP, restored via
//!    `POST /kg`, and both sessions are driven one more event and must
//!    stay byte-identical. Both checks are asserted — a mismatch fails
//!    the run, not just the report.
//!
//! The JSON artifact (`BENCH_serve.json`, schema `kg-bench-serve/v1`)
//! records tenants held, request throughput, and latency percentiles
//! for both phases, plus the check outcomes.

use kg_eval::dynamic::reservoir::OfferMode;
use kg_eval::session::{Engine, EvaluatorKind, SessionRegistry, SessionSpec};
use kg_eval::EvalConfig;
use kg_model::retract::{KgEvent, Retraction};
use kg_model::update::UpdateBatch;
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Instant;

/// Options for the serve load harness.
#[derive(Debug, Clone, Copy)]
pub struct ServeOpts {
    /// Quick mode: 1000 tenants instead of 2000 (still at the ≥1000
    /// sessions-held target).
    pub quick: bool,
    /// Base seed; tenant monitor seeds derive from it.
    pub seed: u64,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            quick: false,
            seed: 20190923,
        }
    }
}

/// Throughput and latency for one phase.
#[derive(Debug, Clone, Copy)]
pub struct PhaseStats {
    /// Requests issued.
    pub requests: usize,
    /// Wall-clock for the whole phase.
    pub elapsed_sec: f64,
    /// Aggregate requests per second across all client threads.
    pub requests_per_sec: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
}

/// Everything the serve harness measured.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Quick mode?
    pub quick: bool,
    /// Base seed.
    pub seed: u64,
    /// Client threads driving the server.
    pub clients: usize,
    /// Tenant sessions registered (and still held at the end of the run).
    pub tenants: usize,
    /// Distinct spec families (catalog-interned base KGs).
    pub spec_families: usize,
    /// Registration phase stats.
    pub registration: PhaseStats,
    /// Traffic phase stats (event posts + estimate reads).
    pub traffic: PhaseStats,
    /// Event POSTs in the traffic phase.
    pub event_posts: usize,
    /// Estimate GETs in the traffic phase.
    pub estimate_gets: usize,
    /// Sampled tenants whose served estimates were byte-compared against
    /// an in-process replay.
    pub sampled_tenants: usize,
    /// Did every sampled tenant match bytewise?
    pub estimates_match: bool,
    /// Sampled tenants taken through checkpoint → HTTP restore → resume.
    pub restored_tenants: usize,
    /// Did every restored tenant stay byte-identical to its source?
    pub restore_match: bool,
}

pub(crate) const FAMILIES: usize = 8;

pub(crate) fn spec_for(seed: u64, tenant: usize) -> SessionSpec {
    let f = tenant % FAMILIES;
    let kind = if f.is_multiple_of(2) {
        EvaluatorKind::Reservoir {
            capacity: 32 + 16 * ((f / 4) % 2),
        }
    } else {
        EvaluatorKind::Stratified
    };
    let engine = if (f / 2).is_multiple_of(2) {
        Engine::Hash
    } else {
        Engine::Dense
    };
    let offer_mode = if f >= 4 && f.is_multiple_of(2) {
        OfferMode::PerItem
    } else {
        OfferMode::Batched
    };
    let base = 96 + 8 * f;
    SessionSpec {
        kind,
        engine,
        offer_mode,
        m: 5,
        config: EvalConfig::default(),
        // Derived seeds must stay JSON-exact (≤ 2^53); the API rejects
        // anything an IEEE double cannot carry losslessly.
        seed: seed ^ ((tenant as u64) * 0x9E37_79B9),
        oracle_accuracy: 0.84 + 0.02 * (f % 6) as f64,
        oracle_seed: 11 + f as u64,
        base_sizes: (0..base).map(|i| 1 + ((i + f) as u32) % 7).collect(),
    }
}

/// The deterministic per-tenant traffic script: insert, retract, revise.
/// Retraction targets are distinct clusters (base > 3), each at offset 0
/// of a cluster whose size is ≥ 1, so the script is always valid.
pub(crate) fn script_for(tenant: usize) -> Vec<KgEvent> {
    let base = (96 + 8 * (tenant % FAMILIES)) as u32;
    vec![
        KgEvent::Insert(UpdateBatch::from_sizes(vec![3; 6 + tenant % 4]).expect("sizes")),
        KgEvent::Retract(
            Retraction::new(vec![((tenant as u32) % base, vec![0])]).expect("retraction"),
        ),
        KgEvent::Revise(
            Retraction::new(vec![((tenant as u32 + 3) % base, vec![0])]).expect("retraction"),
            UpdateBatch::from_sizes(vec![2; 5]).expect("sizes"),
        ),
    ]
}

fn join_u32(sizes: &[u32]) -> String {
    let parts: Vec<String> = sizes.iter().map(u32::to_string).collect();
    parts.join(",")
}

fn entries_json(r: &Retraction) -> String {
    let parts: Vec<String> = r
        .entries()
        .iter()
        .map(|(cluster, offsets)| {
            let offs: Vec<String> = offsets.iter().map(u32::to_string).collect();
            format!(r#"{{"cluster":{cluster},"offsets":[{}]}}"#, offs.join(","))
        })
        .collect();
    parts.join(",")
}

pub(crate) fn event_json(event: &KgEvent) -> String {
    match event {
        KgEvent::Insert(batch) => {
            format!(
                r#"{{"op":"insert","sizes":[{}]}}"#,
                join_u32(batch.delta_sizes())
            )
        }
        KgEvent::Retract(r) => format!(r#"{{"op":"retract","entries":[{}]}}"#, entries_json(r)),
        KgEvent::Revise(r, batch) => format!(
            r#"{{"op":"revise","entries":[{}],"sizes":[{}]}}"#,
            entries_json(r),
            join_u32(batch.delta_sizes())
        ),
    }
}

pub(crate) fn events_body(events: &[KgEvent]) -> String {
    let parts: Vec<String> = events.iter().map(event_json).collect();
    format!(r#"{{"events":[{}]}}"#, parts.join(","))
}

pub(crate) fn spec_json(spec: &SessionSpec) -> String {
    let kind = match spec.kind {
        EvaluatorKind::Reservoir { capacity } => {
            format!(r#""kind":"reservoir","capacity":{capacity}"#)
        }
        EvaluatorKind::Stratified => r#""kind":"stratified""#.to_string(),
    };
    let engine = match spec.engine {
        Engine::Hash => "hash",
        Engine::Dense => "dense",
    };
    let offer = match spec.offer_mode {
        OfferMode::PerItem => "per_item",
        OfferMode::Batched => "batched",
    };
    format!(
        r#"{{{kind},"engine":"{engine}","offer_mode":"{offer}","m":{},"seed":{},"oracle_accuracy":{},"oracle_seed":{},"base_sizes":[{}]}}"#,
        spec.m,
        spec.seed,
        spec.oracle_accuracy,
        spec.oracle_seed,
        join_u32(&spec.base_sizes)
    )
}

/// One HTTP exchange against the in-process server.
fn request(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to kg-serve");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: kg-serve\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .expect("header/body separator")
        .1
        .to_string();
    (status, body)
}

fn ok(addr: &str, method: &str, path: &str, body: &str) -> String {
    let (status, body) = request(addr, method, path, body);
    assert_eq!(status, 200, "{method} {path}: {body}");
    body
}

pub(crate) fn str_field(body: &str, key: &str) -> String {
    let tag = format!("\"{key}\":\"");
    let start = body.find(&tag).unwrap_or_else(|| panic!("{key} in {body}")) + tag.len();
    let end = body[start..].find('"').expect("closing quote") + start;
    body[start..end].to_string()
}

pub(crate) fn num_field(body: &str, key: &str) -> String {
    let tag = format!("\"{key}\":");
    let start = body.find(&tag).unwrap_or_else(|| panic!("{key} in {body}")) + tag.len();
    let end = body[start..].find([',', '}']).expect("field terminator") + start;
    body[start..end].to_string()
}

/// The served-estimate fingerprint used for byte comparisons.
pub(crate) fn served_bits(body: &str) -> (String, String, String) {
    (
        str_field(body, "mean_bits"),
        str_field(body, "var_bits"),
        num_field(body, "units"),
    )
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn phase_stats(requests: usize, elapsed_sec: f64, mut latencies_ms: Vec<f64>) -> PhaseStats {
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    PhaseStats {
        requests,
        elapsed_sec,
        requests_per_sec: if elapsed_sec > 0.0 {
            requests as f64 / elapsed_sec
        } else {
            0.0
        },
        p50_ms: percentile(&latencies_ms, 50.0),
        p99_ms: percentile(&latencies_ms, 99.0),
    }
}

/// Run the harness at the standard scale.
pub fn run(opts: &ServeOpts) -> ServeReport {
    let tenants = if opts.quick { 1000 } else { 2000 };
    let (sampled, restored) = if opts.quick { (16, 8) } else { (32, 8) };
    run_scaled(opts, tenants, 8, sampled, restored)
}

/// Run with explicit scales (unit tests use tiny ones).
fn run_scaled(
    opts: &ServeOpts,
    tenants: usize,
    clients: usize,
    sampled: usize,
    restored: usize,
) -> ServeReport {
    let registry = Arc::new(SessionRegistry::new());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("bound address").to_string();
    {
        let registry = Arc::clone(&registry);
        thread::spawn(move || kg_serve::serve(listener, registry));
    }

    // Registration: tenants partitioned over client threads.
    let seed = opts.seed;
    let reg_start = Instant::now();
    let mut ids = vec![0u64; tenants];
    let mut reg_lat: Vec<f64> = Vec::with_capacity(tenants);
    thread::scope(|s| {
        let addr = addr.as_str();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut out = Vec::new();
                    let mut lat = Vec::new();
                    let mut t = c;
                    while t < tenants {
                        let body = spec_json(&spec_for(seed, t));
                        let t0 = Instant::now();
                        let resp = ok(addr, "POST", "/kg", &body);
                        lat.push(t0.elapsed().as_secs_f64() * 1e3);
                        let id: u64 = num_field(&resp, "id").parse().expect("numeric id");
                        out.push((t, id));
                        t += clients;
                    }
                    (out, lat)
                })
            })
            .collect();
        for h in handles {
            let (pairs, lat) = h.join().expect("registration client");
            for (t, id) in pairs {
                ids[t] = id;
            }
            reg_lat.extend(lat);
        }
    });
    let registration = phase_stats(tenants, reg_start.elapsed().as_secs_f64(), reg_lat);

    // Traffic: one event per request (request partitioning on the hot
    // path) plus an estimate read per tenant.
    let traffic_start = Instant::now();
    let mut traffic_lat: Vec<f64> = Vec::new();
    thread::scope(|s| {
        let addr = addr.as_str();
        let ids = ids.as_slice();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                s.spawn(move || {
                    let mut lat = Vec::new();
                    let mut t = c;
                    while t < tenants {
                        let id = ids[t];
                        for event in script_for(t) {
                            let body = events_body(&[event]);
                            let t0 = Instant::now();
                            ok(addr, "POST", &format!("/kg/{id}/events"), &body);
                            lat.push(t0.elapsed().as_secs_f64() * 1e3);
                        }
                        let t0 = Instant::now();
                        ok(addr, "GET", &format!("/kg/{id}/estimate"), "");
                        lat.push(t0.elapsed().as_secs_f64() * 1e3);
                        t += clients;
                    }
                    lat
                })
            })
            .collect();
        for h in handles {
            traffic_lat.extend(h.join().expect("traffic client"));
        }
    });
    let event_posts = (0..tenants).map(|t| script_for(t).len()).sum::<usize>();
    let estimate_gets = tenants;
    let traffic = phase_stats(
        event_posts + estimate_gets,
        traffic_start.elapsed().as_secs_f64(),
        traffic_lat,
    );

    // Check 1: served estimates are byte-identical to an in-process
    // replay of the same spec + script.
    let sampled = sampled.min(tenants);
    let stride = (tenants / sampled.max(1)).max(1);
    let local = SessionRegistry::new();
    let mut estimates_match = true;
    for k in 0..sampled {
        let t = k * stride;
        let lid = local.register(spec_for(seed, t)).expect("local register");
        local
            .apply_events(lid, &script_for(t))
            .expect("local replay");
        let rep = local.estimate(lid).expect("local estimate");
        let want = (
            format!("{:016x}", rep.mean.to_bits()),
            format!("{:016x}", rep.var_of_mean.to_bits()),
            rep.units.to_string(),
        );
        let got = served_bits(&ok(&addr, "GET", &format!("/kg/{}/estimate", ids[t]), ""));
        if got != want {
            eprintln!("tenant {t}: served {got:?} != local {want:?}");
            estimates_match = false;
        }
    }
    assert!(
        estimates_match,
        "served estimates diverged from in-process evaluation"
    );

    // Check 2: checkpoint → HTTP restore → one more event stays
    // byte-identical to the source session.
    let restored = restored.min(tenants);
    let rstride = (tenants / restored.max(1)).max(1);
    let mut restore_match = true;
    for k in 0..restored {
        let t = (k * rstride + 1) % tenants;
        let id = ids[t];
        let payload = str_field(
            &ok(&addr, "POST", &format!("/kg/{id}/checkpoint"), ""),
            "checkpoint",
        );
        let resp = ok(
            &addr,
            "POST",
            "/kg",
            &format!(r#"{{"checkpoint":"{payload}"}}"#),
        );
        let rid: u64 = num_field(&resp, "id").parse().expect("restored id");
        let tail = events_body(&[KgEvent::Insert(
            UpdateBatch::from_sizes(vec![4, 4, 4]).expect("sizes"),
        )]);
        let a = served_bits(&ok(&addr, "POST", &format!("/kg/{id}/events"), &tail));
        let b = served_bits(&ok(&addr, "POST", &format!("/kg/{rid}/events"), &tail));
        if a != b {
            eprintln!("tenant {t}: restored session diverged: {a:?} != {b:?}");
            restore_match = false;
        }
    }
    assert!(
        restore_match,
        "restored sessions diverged from their source"
    );

    ServeReport {
        quick: opts.quick,
        seed,
        clients,
        tenants,
        spec_families: FAMILIES,
        registration,
        traffic,
        event_posts,
        estimate_gets,
        sampled_tenants: sampled,
        estimates_match,
        restored_tenants: restored,
        restore_match,
    }
}

/// Human-readable summary table.
pub fn render_table(r: &ServeReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "kg-serve load harness — {} tenants over {} spec families, {} clients{}\n",
        r.tenants,
        r.spec_families,
        r.clients,
        if r.quick { " (quick)" } else { "" }
    ));
    out.push_str("phase         requests    req/s   p50 ms   p99 ms\n");
    for (name, p) in [("registration", &r.registration), ("traffic", &r.traffic)] {
        out.push_str(&format!(
            "{name:<13} {:>8} {:>8.0} {:>8.3} {:>8.3}\n",
            p.requests, p.requests_per_sec, p.p50_ms, p.p99_ms
        ));
    }
    out.push_str(&format!(
        "checks: estimates_match={} ({} sampled)  restore_match={} ({} restored)\n",
        r.estimates_match, r.sampled_tenants, r.restore_match, r.restored_tenants
    ));
    out
}

fn phase_json(p: &PhaseStats) -> String {
    format!(
        r#"{{"requests":{},"elapsed_sec":{:.3},"requests_per_sec":{:.1},"p50_ms":{:.3},"p99_ms":{:.3}}}"#,
        p.requests, p.elapsed_sec, p.requests_per_sec, p.p50_ms, p.p99_ms
    )
}

/// Serialize for `BENCH_serve.json` (schema `kg-bench-serve/v1`).
pub fn to_json(r: &ServeReport) -> String {
    format!(
        "{{\n  \"schema\": \"kg-bench-serve/v1\",\n  \"quick\": {},\n  \"seed\": {},\n  \"clients\": {},\n  \"tenants\": {},\n  \"spec_families\": {},\n  \"registration\": {},\n  \"traffic\": {},\n  \"mix\": {{\"event_posts\": {}, \"estimate_gets\": {}}},\n  \"checks\": {{\"estimates_match\": {}, \"sampled_tenants\": {}, \"restore_match\": {}, \"restored_tenants\": {}}}\n}}\n",
        r.quick,
        r.seed,
        r.clients,
        r.tenants,
        r.spec_families,
        phase_json(&r.registration),
        phase_json(&r.traffic),
        r.event_posts,
        r.estimate_gets,
        r.estimates_match,
        r.sampled_tenants,
        r.restore_match,
        r.restored_tenants
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_harness_run_passes_both_checks() {
        let opts = ServeOpts {
            quick: true,
            ..Default::default()
        };
        let report = run_scaled(&opts, 16, 4, 8, 4);
        assert_eq!(report.tenants, 16);
        assert!(report.estimates_match);
        assert!(report.restore_match);
        assert_eq!(report.registration.requests, 16);
        assert_eq!(
            report.traffic.requests,
            report.event_posts + report.estimate_gets
        );
        let json = to_json(&report);
        assert!(json.contains("\"schema\": \"kg-bench-serve/v1\""));
        assert!(json.contains("\"estimates_match\": true"));
    }

    #[test]
    fn tenant_scripts_are_valid_and_deterministic() {
        for t in 0..FAMILIES * 2 {
            let spec = spec_for(20190923, t);
            assert_eq!(spec_json(&spec), spec_json(&spec_for(20190923, t)));
            let script = script_for(t);
            assert_eq!(script.len(), 3);
            assert_eq!(events_body(&script), events_body(&script_for(t)));
        }
    }
}

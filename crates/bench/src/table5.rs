//! Table 5: performance comparison of SRS / RCS / WCS / TWCS on static
//! KGs.
//!
//! Reproduces the paper's headline static-evaluation table: TWCS cheapest
//! everywhere; RCS blown up by cluster-size variance (the paper stopped
//! annotating at 5 h on MOVIE without convergence — we apply the same
//! cap); WCS between; all estimators unbiased.

use crate::table::TextTable;
use crate::trials::{pm, pm_pct};
use crate::Opts;
use kg_annotate::annotator::{Annotator, SimulatedAnnotator};
use kg_annotate::cost::CostModel;
use kg_datagen::profile::{Dataset, DatasetProfile};
use kg_eval::config::EvalConfig;
use kg_eval::executor::run_trials;
use kg_sampling::design::Design;
use kg_sampling::PopulationIndex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// The paper's annotation cap for non-converging designs: 5 hours.
const COST_CAP_SECONDS: f64 = 5.0 * 3600.0;

/// Run one design with the iterative loop plus the 5-hour cost cap.
/// Returns (hours, estimate, converged).
fn run_capped(
    design: &Design,
    ds: &Dataset,
    index: Arc<PopulationIndex>,
    config: &EvalConfig,
    seed: u64,
) -> (f64, f64, bool) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inst = design.instantiate(index, ds.oracle.as_ref());
    let mut annotator = SimulatedAnnotator::new(ds.oracle.as_ref(), CostModel::default());
    let mut converged = false;
    loop {
        // Unit granularity so the cost cap lands where an annotator would
        // actually stop (a single giant cluster must not overshoot by 6x).
        let drawn = inst.draw(&mut rng, &mut annotator, 1);
        if drawn == 0 {
            converged = true; // population exhausted: census
            break;
        }
        let est = inst.estimate();
        let moe = est.moe(config.alpha).expect("valid alpha");
        if inst.units() >= config.min_units && moe <= config.target_moe {
            converged = true;
            break;
        }
        if annotator.seconds() >= COST_CAP_SECONDS {
            break;
        }
    }
    (annotator.hours(), inst.estimate().mean, converged)
}

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let movie = if opts.quick {
        DatasetProfile::movie().scaled(0.05)
    } else {
        DatasetProfile::movie()
    };
    let mut out = String::from(
        "Table 5 — SRS / RCS / WCS / TWCS on static KGs (5% MoE at 95%; RCS/WCS capped at 5 h like the paper)\n\n",
    );
    for profile in [movie, DatasetProfile::nell(), DatasetProfile::yago()] {
        let ds = profile.generate(opts.seed);
        let index = Arc::new(PopulationIndex::from_population(&ds.population).expect("non-empty"));
        let trials = opts.trials(if ds.population.sizes().len() > 10_000 {
            200
        } else {
            1000
        });
        let config = EvalConfig::default();
        let mut t = TextTable::new(["design", "hours", "estimate", "converged"]);
        for design in [Design::Srs, Design::Rcs, Design::Wcs, Design::Twcs { m: 5 }] {
            let ds_ref = &ds;
            let idx = index.clone();
            let d = design.clone();
            let stats = run_trials(trials, opts.seed ^ 0x7ab5, 3, move |seed| {
                let (hours, est, conv) = run_capped(&d, ds_ref, idx.clone(), &config, seed);
                vec![hours, est, if conv { 1.0 } else { 0.0 }]
            });
            t.row([
                design.name().to_string(),
                pm(&stats[0], 2),
                pm_pct(&stats[1], 1),
                format!("{:.0}%", stats[2].mean() * 100.0),
            ]);
        }
        out.push_str(&format!(
            "{} (gold {:.0}%, {} trials)\n{}\n",
            ds.name,
            ds.gold_accuracy * 100.0,
            trials,
            t.render()
        ));
    }
    out.push_str(
        "paper shapes: TWCS lowest everywhere (MOVIE 1.4 h vs SRS 3.53 h); RCS worst\n\
         (>5 h MOVIE, ~8.25 h NELL, ~10 h YAGO); WCS ≈ TWCS on NELL/YAGO, capped on MOVIE.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hours_of(out: &str, block: &str, design: &str) -> f64 {
        out.lines()
            .skip_while(|l| !l.starts_with(block))
            .find(|l| l.starts_with(design))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.split('±').next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no hours for {design} in {block}\n{out}"))
    }

    #[test]
    fn twcs_cheapest_and_rcs_most_expensive_on_nell() {
        let opts = Opts {
            quick: true,
            trial_scale: 0.3,
            ..Opts::default()
        };
        let out = run(&opts);
        let srs = hours_of(&out, "NELL", "SRS");
        let rcs = hours_of(&out, "NELL", "RCS");
        let twcs = hours_of(&out, "NELL", "TWCS");
        assert!(twcs < srs, "TWCS {twcs} !< SRS {srs}\n{out}");
        assert!(rcs > twcs, "RCS {rcs} !> TWCS {twcs}\n{out}");
    }
}

//! Adversarial scenario sweep: every evaluator × engine cell of the
//! matrix replayed against every hostile workload family.
//!
//! `bench-report --scenarios` materializes each [`Scenario`] family from
//! `kg_datagen::scenario` — heavy-tailed sizes, accuracy drift, burst
//! churn, correlated annotator pools, heterogeneous costs — and pushes it
//! through all eight evaluators: the six static designs (SRS, RCS, WCS,
//! TWCS, TSRCS, TWCS+strat) over the **final evolved live KG**, and the
//! two §6 incremental monitors (RS, SS) replaying the **event stream**.
//! Every cell runs under both annotation engines and carries:
//!
//! * an **identity** flag — the full evaluation signature (estimates,
//!   MoE, costs, annotation accounting) byte-compared across the hash and
//!   dense engines, and, for RS, across the per-item and batched offer
//!   paths;
//! * a **coverage** estimate — the fraction of seeded trials whose
//!   final CI `μ̂ ± MoE` covers the scenario's exact live truth, with a
//!   `covered` flag testing ≈95% under the same binomial `3σ + 2%` band
//!   as the tier-1 coverage suites.
//!
//! The artifact is `BENCH_scenarios.json` (schema `kg-bench-scenarios/v1`);
//! CI runs `--scenarios --quick` and fails on any `"identity": false` or
//! `"covered": false`. Committed numbers come from a full run.

use kg_annotate::annotator::{Annotator, SimulatedAnnotator};
use kg_annotate::dense::DenseAnnotator;
use kg_annotate::label_store::LabelStore;
use kg_annotate::oracle::GoldLabels;
use kg_datagen::scenario::{MaterializedScenario, Scenario};
use kg_eval::config::EvalConfig;
use kg_eval::dynamic::monitor::run_event_sequence;
use kg_eval::dynamic::reservoir::{OfferMode, ReservoirEvaluator};
use kg_eval::dynamic::stratified::StratifiedIncremental;
use kg_eval::executor::run_trials;
use kg_eval::framework::Evaluator;
use kg_model::implicit::{ClusterPopulation, ImplicitKg};
use kg_sampling::PopulationIndex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Options for a scenario sweep.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioOpts {
    /// Quick mode: smaller KGs and fewer trials (CI).
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ScenarioOpts {
    fn default() -> Self {
        ScenarioOpts {
            quick: false,
            seed: 20190923,
        }
    }
}

/// Second-stage sample size for the two-stage designs and monitors.
const M: usize = 10;
/// Reservoir capacity |R|.
const CAPACITY: usize = 100;
/// Strata for the stratified static design.
const STRATA: usize = 4;

/// The static designs swept over the final evolved KG.
pub const STATIC_EVALUATORS: [&str; 6] = ["SRS", "RCS", "WCS", "TWCS", "TSRCS", "TWCS+strat"];
/// The incremental monitors replaying the event stream.
pub const DYNAMIC_EVALUATORS: [&str; 2] = ["RS", "SS"];

fn sweep_config() -> EvalConfig {
    EvalConfig::default()
}

fn static_evaluator(name: &str) -> Evaluator {
    match name {
        "SRS" => Evaluator::srs(),
        "RCS" => Evaluator::rcs(),
        "WCS" => Evaluator::wcs(),
        "TWCS" => Evaluator::twcs(M),
        "TSRCS" => Evaluator::new(kg_sampling::Design::TsRcs { m: M }),
        "TWCS+strat" => Evaluator::twcs_size_stratified(M, STRATA),
        other => panic!("unknown static evaluator {other}"),
    }
}

/// One evaluator × engine cell.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Evaluator name.
    pub evaluator: &'static str,
    /// Engine name (`hash` / `dense`).
    pub engine: &'static str,
    /// Seeded trials behind the coverage estimate.
    pub trials: u64,
    /// Byte-identity across engines (and, for RS, across offer paths).
    pub identity: bool,
    /// Fraction of trials whose final CI covered the live truth.
    pub coverage: f64,
    /// `coverage` within the binomial `0.95 − 3σ − 0.02` band.
    pub covered: bool,
    /// Final estimate averaged over trials.
    pub mean_estimate: f64,
    /// Wall-clock seconds for this cell's trial loop.
    pub sec: f64,
}

/// All cells for one scenario family.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario family name.
    pub name: &'static str,
    /// Base KG triples.
    pub base_triples: u64,
    /// Live triples after the full event stream.
    pub live_triples: u64,
    /// Triples inserted / retracted across the stream.
    pub inserted: u64,
    /// Triples retracted across the stream.
    pub retracted: u64,
    /// Exact live accuracy of the evolved KG — the coverage ground truth
    /// (pool-resolved for pool scenarios).
    pub truth: f64,
    /// One cell per evaluator × engine.
    pub cells: Vec<CellReport>,
}

/// A full sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Whether this was a quick (CI) run.
    pub quick: bool,
    /// Base seed.
    pub seed: u64,
    /// One report per scenario family.
    pub scenarios: Vec<ScenarioReport>,
}

/// A materialized scenario with everything the cells need precomputed.
struct SweepSetup {
    m: MaterializedScenario,
    /// Compacted live population (empty clusters dropped).
    live_kg: ImplicitKg,
    /// Live labels aligned with `live_kg`.
    gold: GoldLabels,
    live_index: Arc<PopulationIndex>,
    /// Dense store over the compacted live KG (static cells).
    live_store: Arc<LabelStore>,
    /// Event-folded store in raw coordinates (dynamic dense replays).
    evolved_store: Arc<LabelStore>,
    base_index: Arc<PopulationIndex>,
    truth: f64,
    inserted: u64,
    retracted: u64,
}

fn setup(scenario: &Scenario, target: u64, seed: u64) -> SweepSetup {
    let m = scenario.materialize(target, seed);
    let mut store = LabelStore::materialize(&m.base, m.oracle.as_ref());
    let (mut inserted, mut retracted) = (0u64, 0u64);
    for event in &m.events {
        if let Some(r) = event.retracted() {
            store.retract(r);
            retracted += r.total_retracted();
        }
        if let Some(b) = event.inserted() {
            store.extend_with_batch(b, m.oracle.as_ref());
            inserted += b.total_triples();
        }
    }
    let truth = store.true_accuracy();

    // Compact the live view: per cluster, the labels of non-retracted
    // triples in raw order; clusters churned empty are dropped.
    let mut live_sizes = Vec::with_capacity(store.num_clusters());
    let mut live_labels = Vec::with_capacity(store.num_clusters());
    for c in 0..store.num_clusters() {
        let base = store.cluster_base(c);
        let labels: Vec<bool> = (0..store.cluster_size(c) as u64)
            .filter(|&o| !store.is_retracted(base + o))
            .map(|o| store.label_at(base + o))
            .collect();
        if !labels.is_empty() {
            live_sizes.push(labels.len() as u32);
            live_labels.push(labels);
        }
    }
    let live_kg = ImplicitKg::new(live_sizes).expect("live KG is non-empty");
    let gold = GoldLabels::new(live_labels);
    let live_store = Arc::new(LabelStore::materialize(&live_kg, &gold));
    SweepSetup {
        live_index: Arc::new(PopulationIndex::from_population(&live_kg).expect("non-empty")),
        base_index: Arc::new(PopulationIndex::from_population(&m.base).expect("non-empty")),
        live_kg,
        gold,
        live_store,
        evolved_store: Arc::new(store),
        truth,
        inserted,
        retracted,
        m,
    }
}

/// Full evaluation signature of a static run — the byte-identity payload.
fn static_signature(
    s: &SweepSetup,
    evaluator: &str,
    annotator: &mut dyn Annotator,
    seed: u64,
) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let report = static_evaluator(evaluator)
        .run_with_annotator(
            s.live_index.clone(),
            &s.gold,
            annotator,
            &sweep_config(),
            &mut rng,
        )
        .expect("valid live population");
    vec![
        report.estimate.mean.to_bits(),
        report.estimate.var_of_mean.to_bits(),
        report.estimate.units as u64,
        report.moe.to_bits(),
        report.cost_seconds.to_bits(),
        report.triples_annotated as u64,
        report.entities_identified as u64,
        annotator.seconds().to_bits(),
    ]
}

/// One static trial: (coverage hit, final estimate).
fn static_trial(
    s: &SweepSetup,
    evaluator: &str,
    annotator: &mut dyn Annotator,
    seed: u64,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let report = static_evaluator(evaluator)
        .run_with_annotator(
            s.live_index.clone(),
            &s.gold,
            annotator,
            &sweep_config(),
            &mut rng,
        )
        .expect("valid live population");
    vec![
        ((report.estimate.mean - s.truth).abs() <= report.moe) as u64 as f64,
        report.estimate.mean,
    ]
}

/// Full per-event replay signature of a dynamic run (churn-harness idiom).
fn dynamic_signature(
    s: &SweepSetup,
    evaluator: &str,
    mode: OfferMode,
    annotator: &mut dyn Annotator,
    seed: u64,
) -> Vec<u64> {
    let config = sweep_config();
    let mut rng = StdRng::seed_from_u64(seed);
    let outcomes = match evaluator {
        "RS" => {
            let mut rs = ReservoirEvaluator::evaluate_base_with_mode(
                &s.m.base, CAPACITY, M, config, mode, annotator, &mut rng,
            );
            run_event_sequence(&mut rs, &s.m.events, config.alpha, annotator, &mut rng)
        }
        "SS" => {
            let report = Evaluator::twcs(M)
                .run_with_index(s.base_index.clone(), s.m.oracle.as_ref(), &config, &mut rng)
                .expect("valid base population");
            let mut ss = StratifiedIncremental::from_base(&s.m.base, report.estimate, M, config);
            run_event_sequence(&mut ss, &s.m.events, config.alpha, annotator, &mut rng)
        }
        other => panic!("unknown evaluator {other}"),
    };
    let mut sig: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| {
            [
                o.estimate.mean.to_bits(),
                o.estimate.var_of_mean.to_bits(),
                o.estimate.units as u64,
                o.moe.to_bits(),
                o.batch_cost_seconds.to_bits(),
            ]
        })
        .collect();
    sig.push(annotator.seconds().to_bits());
    sig.push(annotator.triples_annotated() as u64);
    sig
}

/// One dynamic trial: (final-event coverage hit, final estimate). The SS
/// base estimate resamples per trial so its frozen sampling error stays
/// honest (the ci_coverage idiom).
fn dynamic_trial(
    s: &SweepSetup,
    evaluator: &str,
    annotator: &mut dyn Annotator,
    seed: u64,
) -> Vec<f64> {
    let config = sweep_config();
    let mut rng = StdRng::seed_from_u64(seed);
    let outcomes = match evaluator {
        "RS" => {
            let mut rs = ReservoirEvaluator::evaluate_base(
                &s.m.base, CAPACITY, M, config, annotator, &mut rng,
            );
            run_event_sequence(&mut rs, &s.m.events, config.alpha, annotator, &mut rng)
        }
        "SS" => {
            let report = Evaluator::twcs(M)
                .run_with_index(s.base_index.clone(), s.m.oracle.as_ref(), &config, &mut rng)
                .expect("valid base population");
            let mut ss = StratifiedIncremental::from_base(&s.m.base, report.estimate, M, config);
            run_event_sequence(&mut ss, &s.m.events, config.alpha, annotator, &mut rng)
        }
        other => panic!("unknown evaluator {other}"),
    };
    let last = outcomes.last().expect("non-empty stream");
    vec![
        ((last.estimate.mean - s.truth).abs() <= last.moe) as u64 as f64,
        last.estimate.mean,
    ]
}

fn coverage_band_lo(trials: u64) -> f64 {
    // Binomial 3σ around the nominal 95% plus 2% approximation slack —
    // the same band as the tier-1 coverage suites.
    let sigma = (0.95f64 * 0.05 / trials as f64).sqrt();
    0.95 - 3.0 * sigma - 0.02
}

/// Sweep one scenario family: all 8 evaluators × both engines.
pub fn sweep_scenario(scenario: &Scenario, target: u64, trials: u64, seed: u64) -> ScenarioReport {
    let s = setup(scenario, target, seed);
    let cost = s.m.cost;
    let lo = coverage_band_lo(trials);
    let mut cells = Vec::new();

    for evaluator in STATIC_EVALUATORS {
        // Identity gate: one seeded run byte-compared across engines.
        let identity = {
            let mut hash = SimulatedAnnotator::new(&s.gold, cost);
            let h = static_signature(&s, evaluator, &mut hash, seed ^ 1);
            let mut dense = DenseAnnotator::new(s.live_store.clone(), cost);
            let d = static_signature(&s, evaluator, &mut dense, seed ^ 1);
            h == d
        };
        for engine in ["hash", "dense"] {
            let t0 = Instant::now();
            let stats = run_trials(trials, seed, 2, |trial_seed| match engine {
                "hash" => {
                    let mut ann = SimulatedAnnotator::new(&s.gold, cost);
                    static_trial(&s, evaluator, &mut ann, trial_seed)
                }
                _ => {
                    let mut ann = DenseAnnotator::new(s.live_store.clone(), cost);
                    static_trial(&s, evaluator, &mut ann, trial_seed)
                }
            });
            let coverage = stats[0].mean();
            cells.push(CellReport {
                evaluator,
                engine,
                trials,
                identity,
                coverage,
                covered: (lo..=1.0).contains(&coverage),
                mean_estimate: stats[1].mean(),
                sec: t0.elapsed().as_secs_f64(),
            });
        }
    }

    for evaluator in DYNAMIC_EVALUATORS {
        // Identity gate: engines must agree, and RS must also replay
        // byte-identically under both offer paths × both engines.
        let modes: &[OfferMode] = if evaluator == "RS" {
            &[OfferMode::PerItem, OfferMode::Batched]
        } else {
            &[OfferMode::PerItem]
        };
        let sigs: Vec<Vec<u64>> = modes
            .iter()
            .flat_map(|&mode| {
                let mut hash = SimulatedAnnotator::new(s.m.oracle.as_ref(), cost);
                let h = dynamic_signature(&s, evaluator, mode, &mut hash, seed ^ 1);
                let mut dense = DenseAnnotator::new(s.evolved_store.clone(), cost);
                let d = dynamic_signature(&s, evaluator, mode, &mut dense, seed ^ 1);
                [h, d]
            })
            .collect();
        let identity = sigs.iter().all(|sig| sig == &sigs[0]);
        for engine in ["hash", "dense"] {
            let t0 = Instant::now();
            let stats = run_trials(trials, seed, 2, |trial_seed| match engine {
                "hash" => {
                    let mut ann = SimulatedAnnotator::new(s.m.oracle.as_ref(), cost);
                    dynamic_trial(&s, evaluator, &mut ann, trial_seed)
                }
                _ => {
                    let mut ann = DenseAnnotator::new(s.evolved_store.clone(), cost);
                    dynamic_trial(&s, evaluator, &mut ann, trial_seed)
                }
            });
            let coverage = stats[0].mean();
            cells.push(CellReport {
                evaluator,
                engine,
                trials,
                identity,
                coverage,
                covered: (lo..=1.0).contains(&coverage),
                mean_estimate: stats[1].mean(),
                sec: t0.elapsed().as_secs_f64(),
            });
        }
    }

    ScenarioReport {
        name: scenario.name,
        base_triples: s.m.base.total_triples(),
        live_triples: s.live_kg.total_triples(),
        inserted: s.inserted,
        retracted: s.retracted,
        truth: s.truth,
        cells,
    }
}

/// Run the full sweep over [`Scenario::families`].
pub fn run(opts: &ScenarioOpts) -> SweepReport {
    let (target, trials) = if opts.quick { (2_000, 48) } else { (6_000, 96) };
    SweepReport {
        quick: opts.quick,
        seed: opts.seed,
        scenarios: Scenario::families()
            .iter()
            .map(|sc| sweep_scenario(sc, target, trials, opts.seed))
            .collect(),
    }
}

/// Render the sweep as the `BENCH_scenarios.json` document
/// (schema `kg-bench-scenarios/v1`; see README § Scenario matrix).
pub fn to_json(report: &SweepReport) -> String {
    let cfg = sweep_config();
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"kg-bench-scenarios/v1\",\n");
    s.push_str(&format!("  \"quick\": {},\n", report.quick));
    s.push_str(&format!("  \"seed\": {},\n", report.seed));
    s.push_str(&format!(
        "  \"config\": {{\"target_moe\": {}, \"alpha\": {}, \"m\": {M}, \
         \"reservoir_capacity\": {CAPACITY}, \"strata\": {STRATA}}},\n",
        cfg.target_moe, cfg.alpha
    ));
    s.push_str("  \"scenarios\": [\n");
    for (i, sc) in report.scenarios.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"name\": \"{}\",\n", sc.name));
        s.push_str(&format!("      \"base_triples\": {},\n", sc.base_triples));
        s.push_str(&format!("      \"live_triples\": {},\n", sc.live_triples));
        s.push_str(&format!("      \"inserted\": {},\n", sc.inserted));
        s.push_str(&format!("      \"retracted\": {},\n", sc.retracted));
        s.push_str(&format!("      \"truth\": {:.6},\n", sc.truth));
        s.push_str("      \"cells\": [\n");
        for (k, c) in sc.cells.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"evaluator\": \"{}\", \"engine\": \"{}\", \"trials\": {}, \
                 \"identity\": {}, \"coverage\": {:.4}, \"covered\": {}, \
                 \"mean_estimate\": {:.6}, \"sec\": {:.4}}}{}\n",
                c.evaluator,
                c.engine,
                c.trials,
                c.identity,
                c.coverage,
                c.covered,
                c.mean_estimate,
                c.sec,
                if k + 1 < sc.cells.len() { "," } else { "" }
            ));
        }
        s.push_str("      ]\n");
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < report.scenarios.len() {
                ","
            } else {
                ""
            }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Human-readable table for the console.
pub fn render_table(report: &SweepReport) -> String {
    let mut s = String::new();
    for sc in &report.scenarios {
        s.push_str(&format!(
            "{}: base {} → live {} triples (+{} −{}), truth {:.4}\n",
            sc.name, sc.base_triples, sc.live_triples, sc.inserted, sc.retracted, sc.truth
        ));
        s.push_str("  evaluator   engine  trials  identity  coverage  covered  mean est   sec\n");
        for c in &sc.cells {
            s.push_str(&format!(
                "  {:<10}  {:<6}  {:>6}  {:>8}  {:>8.3}  {:>7}  {:.4}  {:>6.2}\n",
                c.evaluator,
                c.engine,
                c.trials,
                c.identity,
                c.coverage,
                c.covered,
                c.mean_estimate,
                c.sec
            ));
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_cell_structure_and_identity() {
        // One benign and one hostile family at a tiny scale: the structure
        // (8 evaluators × 2 engines), identity in every cell, and the
        // engine pairs' estimates agreeing bitwise.
        let families = Scenario::families();
        for name in ["baseline", "burst_churn"] {
            let scenario = families.iter().find(|sc| sc.name == name).unwrap();
            let report = sweep_scenario(scenario, 1_200, 16, 42);
            assert_eq!(report.cells.len(), 16, "{name}");
            assert!(report.truth > 0.0 && report.truth < 1.0);
            for cell in &report.cells {
                assert!(
                    cell.identity,
                    "{name}/{}/{}: engines diverged",
                    cell.evaluator, cell.engine
                );
            }
            for pair in report.cells.chunks(2) {
                assert_eq!(pair[0].evaluator, pair[1].evaluator);
                assert_eq!(
                    pair[0].mean_estimate.to_bits(),
                    pair[1].mean_estimate.to_bits(),
                    "{name}/{}: engine estimates disagree",
                    pair[0].evaluator
                );
                assert_eq!(pair[0].coverage.to_bits(), pair[1].coverage.to_bits());
            }
        }
    }

    #[test]
    fn json_schema_and_flags_render() {
        let families = Scenario::families();
        let scenario = families.iter().find(|sc| sc.name == "baseline").unwrap();
        let report = SweepReport {
            quick: true,
            seed: 7,
            scenarios: vec![sweep_scenario(scenario, 1_200, 16, 7)],
        };
        let json = to_json(&report);
        assert!(json.contains("\"schema\": \"kg-bench-scenarios/v1\""));
        assert!(json.contains("\"identity\": true"));
        assert!(!json.contains("\"identity\": false"));
        for evaluator in STATIC_EVALUATORS.iter().chain(DYNAMIC_EVALUATORS.iter()) {
            assert!(
                json.contains(&format!("\"evaluator\": \"{evaluator}\"")),
                "{evaluator} missing from artifact"
            );
        }
        let table = render_table(&report);
        assert!(table.contains("baseline"));
    }

    #[test]
    fn pool_scenario_sweeps_against_the_pool_resolved_truth() {
        // The correlated-pool family must evaluate against the degraded
        // pool-resolved accuracy — identity in every cell and the truth
        // clearly below the gold 0.9.
        let families = Scenario::families();
        let scenario = families
            .iter()
            .find(|sc| sc.name == "correlated_pool")
            .unwrap();
        let report = sweep_scenario(scenario, 1_500, 16, 11);
        assert!(report.truth < 0.85, "pool truth {}", report.truth);
        assert!(report.cells.iter().all(|c| c.identity));
    }
}

//! Figure 6: the optimal second-stage sample size m.
//!
//! Sweeps m = 1..20 on NELL and two MOVIE-SYN instances, reporting the
//! simulated first-stage cluster count and annotation hours (± std) next
//! to the theoretical ribbon from Eq. 10/12: required `n(m) = V(m)z²/ε²`
//! and the cost bounds `n(m)(c1+c2)` (all clusters of size 1) to
//! `n(m)(c1+m·c2)` (all of size ≥ m). SRS is the reference row.
//!
//! Expected shape: cluster count plummets from m=1 then plateaus; hours
//! are U-shaped (or plateau on NELL, whose clusters are mostly smaller
//! than m); the optimum sits in m≈3–5; and TWCS(m*) beats SRS — by the
//! widest margin on the homogeneous-accuracy instance.

use crate::table::TextTable;
use crate::trials::pm;
use crate::Opts;
use kg_annotate::cost::CostModel;
use kg_datagen::profile::{Dataset, DatasetProfile};
use kg_eval::config::EvalConfig;
use kg_eval::executor::run_trials;
use kg_eval::framework::Evaluator;
use kg_model::implicit::ClusterPopulation;
use kg_sampling::cost_model::{twcs_cost_lower, twcs_cost_upper};
use kg_sampling::optimal_m::optimal_m_exact;
use kg_sampling::variance::PopulationTruth;
use kg_sampling::PopulationIndex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn truth_of(ds: &Dataset) -> PopulationTruth {
    let sizes = ds.population.sizes().to_vec();
    // Exact *realized* cluster accuracies (full enumeration): the V(m)
    // ribbon must describe the actual finite population, not the BMM's
    // expected parameters — realized small-cluster accuracies carry extra
    // binomial spread that the expectation misses.
    let accs: Vec<f64> = (0..sizes.len())
        .map(|c| ds.oracle.cluster_accuracy(c as u32, sizes[c] as usize))
        .collect();
    PopulationTruth::new(sizes, accs).expect("non-empty population")
}

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let scale = if opts.quick { 0.03 } else { 0.3 };
    // Full-scale MOVIE-SYN sweeps cost little statistically but pay an
    // index rebuild per dataset; 30% scale preserves the size distribution
    // while keeping the 20-point sweep fast. NELL runs at full size.
    let datasets = vec![
        DatasetProfile::nell().generate(opts.seed),
        DatasetProfile::movie_syn(0.01, 0.1)
            .scaled(scale)
            .generate(opts.seed),
        DatasetProfile::movie_syn(0.05, 0.5)
            .scaled(scale)
            .generate(opts.seed),
    ];
    let config = EvalConfig::default();
    let cost = CostModel::default();
    let mut out = String::from("Figure 6 — optimal second-stage size m (5% MoE at 95%)\n\n");
    for ds in datasets {
        let index = Arc::new(PopulationIndex::from_population(&ds.population).expect("non-empty"));
        let trials = opts.trials(if ds.population.num_clusters() > 10_000 {
            150
        } else {
            500
        });
        let truth = truth_of(&ds);
        let optimum = optimal_m_exact(&truth, cost, config.target_moe, config.alpha, 20)
            .expect("valid search");

        // SRS reference.
        let oracle = ds.oracle.clone();
        let idx = index.clone();
        let srs = run_trials(trials, opts.seed ^ 0xf166, 2, move |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = Evaluator::srs()
                .run_with_index(idx.clone(), oracle.as_ref(), &config, &mut rng)
                .expect("valid population");
            vec![r.units as f64, r.cost_hours()]
        });

        let mut t = TextTable::new([
            "m",
            "clusters (sim)",
            "hours (sim)",
            "n theory",
            "hours lo..up (theory)",
        ]);
        t.row([
            "SRS".to_string(),
            format!("{:.0} triples", srs[0].mean()),
            pm(&srs[1], 2),
            "-".to_string(),
            "-".to_string(),
        ]);
        for m in [1usize, 2, 3, 4, 5, 6, 8, 10, 12, 15, 20] {
            let oracle = ds.oracle.clone();
            let idx = index.clone();
            let stats = run_trials(trials, opts.seed ^ 0xf167, 2, move |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let r = Evaluator::twcs(m)
                    .run_with_index(idx.clone(), oracle.as_ref(), &config, &mut rng)
                    .expect("valid population");
                vec![r.units as f64, r.cost_hours()]
            });
            let n_theory = truth
                .required_n(m, config.target_moe, config.alpha)
                .expect("valid eps");
            // The iterative loop never stops below the CLT floor.
            let n_eff = n_theory.max(config.min_units as f64);
            t.row([
                format!("{m}{}", if m == optimum.m { " *" } else { "" }),
                format!("{:.0}", stats[0].mean()),
                pm(&stats[1], 2),
                format!("{:.0}", n_theory),
                format!(
                    "{:.2}..{:.2}",
                    twcs_cost_lower(n_eff, cost) / 3600.0,
                    twcs_cost_upper(n_eff, m, cost) / 3600.0
                ),
            ]);
        }
        out.push_str(&format!(
            "{} ({} clusters, gold {:.1}%, {} trials; * = Eq.12 optimum m={})\n{}\n",
            ds.name,
            ds.population.num_clusters(),
            ds.gold_accuracy * 100.0,
            trials,
            optimum.m,
            t.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_is_small_and_marked() {
        let opts = Opts {
            quick: true,
            trial_scale: 0.2,
            ..Opts::default()
        };
        let out = run(&opts);
        // Each dataset block declares an optimum; all should be ≤ 10.
        for line in out.lines().filter(|l| l.contains("optimum m=")) {
            let m: usize = line
                .split("optimum m=")
                .nth(1)
                .and_then(|s| s.trim_end_matches(')').parse().ok())
                .unwrap_or_else(|| panic!("unparseable optimum: {line}"));
            assert!(m <= 10, "optimum {m} too large: {line}\n{out}");
        }
        assert!(out.matches('*').count() >= 3, "optima not marked\n{out}");
    }
}

//! Skeleton benchmark: the engine-independent per-batch stream
//! bookkeeping that every streaming replay pays regardless of annotation
//! engine — reservoir offers over each `Δe` cluster, per-weight PPS-frame
//! appends, and size-table growth.
//!
//! At 10^7 triples this skeleton is what compressed the dense engine's
//! streaming advantage (annotation is cheap enough that O(N + |Δ|)
//! bookkeeping dominates a replay). `bench-report --skeleton` times a full
//! stream's bookkeeping — base-KG reservoir fill plus every update batch —
//! with annotation stripped out, under both offer paths:
//!
//! * **per-item** — one `WeightedReservoirExpJ::offer` call and one
//!   `GrowablePps::push` per `Δe` cluster: the pre-batching reference,
//!   recorded as the baseline the batched path is measured against.
//! * **batched** — `offer_batch` binary-searching jump landings over each
//!   batch's cached `UpdateBatch::weight_prefix`, with the PPS frame
//!   adopting the same prefix as an O(1) `Arc`-shared segment
//!   (`GrowablePps::extend_shared`): per-batch bookkeeping is sublinear
//!   in |Δ| — O(a·log|Δ|) for `a` reservoir acceptances plus a descriptor
//!   push.
//!
//! Both paths are driven by the same seeds and the report records an
//! `identity` check (members, keys, counters, and RNG position byte-equal
//! after the full stream), so the speedup is *for free* in distribution
//! terms. Results go to `BENCH_skeleton.json` (schema
//! `kg-bench-skeleton/v1`).

use kg_datagen::evolve::UpdateGenerator;
use kg_datagen::generator::cluster_sizes;
use kg_model::update::UpdateBatch;
use kg_stats::pps::GrowablePps;
use kg_stats::reservoir::WeightedReservoirExpJ;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::time::Instant;

/// Options for a skeleton run.
#[derive(Debug, Clone, Copy)]
pub struct SkeletonOpts {
    /// Quick mode: drop the 10^7 scale and shrink replay counts (CI).
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for SkeletonOpts {
    fn default() -> Self {
        SkeletonOpts {
            quick: false,
            seed: 20190923,
        }
    }
}

/// Update batches per sequence (matches the streaming harness).
pub const NUM_BATCHES: usize = 6;
/// Each batch inserts this fraction of the base triple count.
pub const UPDATE_FRACTION: f64 = 0.2;
/// Reservoir capacity |R|.
const CAPACITY: usize = 100;

/// End-of-stream fingerprint of one skeleton replay — everything the
/// bookkeeping can influence downstream.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Fingerprint {
    members: Vec<(u32, u64)>,
    replacements: u64,
    offered: u64,
    pps_len: usize,
    pps_total: u64,
    rng_probe: u64,
}

struct Workload {
    base_sizes: Vec<u32>,
    batches: Vec<UpdateBatch>,
    evolved_triples: u64,
    evolved_clusters: u64,
}

fn workload(target: u64, seed: u64) -> Workload {
    let clusters = ((target as f64 / 9.2) as usize).max(1);
    let base_sizes = cluster_sizes(clusters, target.max(clusters as u64), 1.9, 4000, seed);
    let per_batch = ((target as f64 * UPDATE_FRACTION) as u64).max(1);
    let batches = UpdateGenerator::movie_like().sequence(NUM_BATCHES, per_batch, seed ^ 0x5eed);
    let base_triples: u64 = base_sizes.iter().map(|&s| s as u64).sum();
    let delta_triples: u64 = batches.iter().map(|b| b.total_triples()).sum();
    let delta_clusters: u64 = batches.iter().map(|b| b.num_delta_clusters() as u64).sum();
    Workload {
        evolved_triples: base_triples + delta_triples,
        evolved_clusters: base_sizes.len() as u64 + delta_clusters,
        base_sizes,
        batches,
    }
}

fn fingerprint(
    reservoir: &WeightedReservoirExpJ<u32>,
    pps: &GrowablePps,
    rng: &mut StdRng,
) -> Fingerprint {
    let mut members: Vec<(u32, u64)> = reservoir
        .iter()
        .map(|k| (k.item, k.key.to_bits()))
        .collect();
    members.sort_unstable();
    Fingerprint {
        members,
        replacements: reservoir.replacements(),
        offered: reservoir.offered(),
        pps_len: pps.len(),
        pps_total: pps.total(),
        rng_probe: rng.next_u64(),
    }
}

/// Phase timings of one full-stream skeleton replay: the one-time base
/// bookkeeping (reservoir fill over all base clusters + PPS frame build)
/// and the per-batch bookkeeping the §6 evaluators pay on every update.
#[derive(Debug, Clone, Copy, Default)]
struct ReplayTiming {
    base_sec: f64,
    batch_sec: f64,
}

/// One full-stream skeleton replay through the per-item reference path:
/// exactly the pre-batching bookkeeping of `ReservoirEvaluator` — one
/// offer and one PPS push per cluster.
fn replay_per_item(w: &Workload, seed: u64) -> (Fingerprint, ReplayTiming) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reservoir = WeightedReservoirExpJ::new(CAPACITY);
    let t0 = Instant::now();
    for (c, &s) in w.base_sizes.iter().enumerate() {
        reservoir.offer(&mut rng, c as u32, s as f64);
    }
    let mut pps = GrowablePps::from_sizes(&w.base_sizes).expect("positive cluster sizes");
    let mut sizes = w.base_sizes.clone();
    let base_sec = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    for batch in &w.batches {
        for &d in batch.delta_sizes() {
            let id = sizes.len() as u32;
            sizes.push(d);
            pps.push(d).expect("Δe groups are non-empty");
            let _ = reservoir.offer(&mut rng, id, d as f64);
        }
    }
    let batch_sec = t0.elapsed().as_secs_f64();
    std::hint::black_box(&sizes);
    (
        fingerprint(&reservoir, &pps, &mut rng),
        ReplayTiming {
            base_sec,
            batch_sec,
        },
    )
}

/// The same replay through the batched path: per batch, the cached weight
/// prefix is adopted as an O(1) shared PPS segment and `offer_batch`
/// binary-searches the jump landings — no per-cluster work at all.
fn replay_batched(w: &Workload, seed: u64) -> (Fingerprint, ReplayTiming) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut reservoir = WeightedReservoirExpJ::new(CAPACITY);
    let t0 = Instant::now();
    let mut pps = GrowablePps::from_sizes(&w.base_sizes).expect("positive cluster sizes");
    reservoir.offer_batch(&mut rng, pps.prefix(), |c| c as u32, |_, _, _| {});
    let base_sec = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    for batch in &w.batches {
        let first = pps.len() as u32;
        pps.extend_shared(batch.weight_prefix_shared())
            .expect("Δe groups are non-empty");
        reservoir.offer_batch(
            &mut rng,
            batch.weight_prefix(),
            |i| first + i as u32,
            |_, _, _| {},
        );
    }
    let batch_sec = t0.elapsed().as_secs_f64();
    (
        fingerprint(&reservoir, &pps, &mut rng),
        ReplayTiming {
            base_sec,
            batch_sec,
        },
    )
}

/// Timing of one offer path at one scale.
#[derive(Debug, Clone, Copy)]
pub struct PathMeasurement {
    /// Wall-clock seconds for all timed replays (base + batches).
    pub elapsed_sec: f64,
    /// **Per-batch** bookkeeping nanoseconds per inserted Δ triple — the
    /// headline metric: what one update batch costs the stream skeleton.
    pub batch_ns_per_triple: f64,
    /// One-time base bookkeeping nanoseconds per base triple (reservoir
    /// fill + PPS frame build).
    pub base_ns_per_triple: f64,
}

/// All skeleton measurements at one base scale.
#[derive(Debug, Clone)]
pub struct SkeletonScaleReport {
    /// Base KG triple count (~target).
    pub base_triples: u64,
    /// Base KG cluster count.
    pub base_clusters: u64,
    /// Triple count after the full update sequence.
    pub evolved_triples: u64,
    /// Cluster count after the full update sequence.
    pub evolved_clusters: u64,
    /// Full-stream replays timed per path.
    pub replays: u64,
    /// Per-item reference path (the recorded pre-batching baseline).
    pub per_item: PathMeasurement,
    /// Batched path.
    pub batched: PathMeasurement,
    /// per_item / batched **per-batch** bookkeeping time — the number the
    /// acceptance gate reads.
    pub speedup: f64,
    /// Whether the two paths ended the stream in byte-identical state
    /// (reservoir members + keys, counters, PPS frame, RNG position).
    pub identity: bool,
}

/// A full skeleton report.
#[derive(Debug, Clone)]
pub struct SkeletonReport {
    /// Whether this was a quick (CI) run.
    pub quick: bool,
    /// Base seed used.
    pub seed: u64,
    /// Per-scale results, ascending.
    pub scales: Vec<SkeletonScaleReport>,
}

fn run_scale(target: u64, replays: u64, seed: u64) -> SkeletonScaleReport {
    let w = workload(target, seed);
    let base_triples: u64 = w.base_sizes.iter().map(|&s| s as u64).sum();
    let delta_triples = w.evolved_triples - base_triples;

    // Identity first (also serves as the untimed warmup for both paths).
    let identity =
        (0..3).all(|t| replay_per_item(&w, seed ^ t).0 == replay_batched(&w, seed ^ t).0);

    let measure = |replay: &dyn Fn(&Workload, u64) -> (Fingerprint, ReplayTiming)| {
        let mut total = ReplayTiming::default();
        for t in 0..replays {
            let (fp, timing) = replay(&w, seed ^ (t * 7919));
            std::hint::black_box(fp);
            total.base_sec += timing.base_sec;
            total.batch_sec += timing.batch_sec;
        }
        PathMeasurement {
            elapsed_sec: total.base_sec + total.batch_sec,
            batch_ns_per_triple: total.batch_sec * 1e9 / (delta_triples * replays) as f64,
            base_ns_per_triple: total.base_sec * 1e9 / (base_triples * replays) as f64,
        }
    };
    let per_item = measure(&replay_per_item);
    let batched = measure(&replay_batched);

    SkeletonScaleReport {
        base_triples,
        base_clusters: w.base_sizes.len() as u64,
        evolved_triples: w.evolved_triples,
        evolved_clusters: w.evolved_clusters,
        replays,
        per_item,
        batched,
        speedup: per_item.batch_ns_per_triple / batched.batch_ns_per_triple,
        identity,
    }
}

/// Run the harness.
pub fn run(opts: &SkeletonOpts) -> SkeletonReport {
    let scales: &[(u64, u64)] = if opts.quick {
        // (base triples, replays)
        &[(100_000, 20), (1_000_000, 6)]
    } else {
        &[(100_000, 60), (1_000_000, 20), (10_000_000, 5)]
    };
    SkeletonReport {
        quick: opts.quick,
        seed: opts.seed,
        scales: scales
            .iter()
            .map(|&(target, replays)| run_scale(target, replays, opts.seed))
            .collect(),
    }
}

/// Render the report as the `BENCH_skeleton.json` document
/// (schema `kg-bench-skeleton/v1`; see README § Evolving KGs).
pub fn to_json(report: &SkeletonReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"kg-bench-skeleton/v1\",\n");
    s.push_str(&format!("  \"quick\": {},\n", report.quick));
    s.push_str(&format!("  \"seed\": {},\n", report.seed));
    s.push_str("  \"metric\": \"per_batch_bookkeeping_ns_per_delta_triple\",\n");
    s.push_str(&format!(
        "  \"config\": {{\"reservoir_capacity\": {CAPACITY}, \"num_batches\": {NUM_BATCHES}, \
         \"update_fraction\": {UPDATE_FRACTION}}},\n"
    ));
    s.push_str("  \"scales\": [\n");
    for (i, sc) in report.scales.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"base_triples\": {},\n", sc.base_triples));
        s.push_str(&format!("      \"base_clusters\": {},\n", sc.base_clusters));
        s.push_str(&format!(
            "      \"evolved_triples\": {},\n",
            sc.evolved_triples
        ));
        s.push_str(&format!(
            "      \"evolved_clusters\": {},\n",
            sc.evolved_clusters
        ));
        s.push_str(&format!("      \"replays\": {},\n", sc.replays));
        for (name, m) in [("per_item", sc.per_item), ("batched", sc.batched)] {
            s.push_str(&format!(
                "      \"{name}\": {{\"elapsed_sec\": {:.6}, \"batch_ns_per_triple\": {:.3}, \
                 \"base_ns_per_triple\": {:.3}}},\n",
                m.elapsed_sec, m.batch_ns_per_triple, m.base_ns_per_triple
            ));
        }
        s.push_str(&format!(
            "      \"speedup_batched_over_per_item\": {:.2},\n",
            sc.speedup
        ));
        s.push_str(&format!("      \"identity\": {}\n", sc.identity));
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < report.scales.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Human-readable table for the console.
pub fn render_table(report: &SkeletonReport) -> String {
    let mut s = String::new();
    s.push_str(
        "scale      clusters   replays  batch ns/t (per-item → batched)  base ns/t  speedup  identity\n",
    );
    for sc in &report.scales {
        s.push_str(&format!(
            "{:>9}  {:>9}  {:>7}  {:>14.3} → {:>7.3}          {:>5.2} → {:<5.2}  {:>5.2}x  {}\n",
            sc.base_triples,
            sc.evolved_clusters,
            sc.replays,
            sc.per_item.batch_ns_per_triple,
            sc.batched.batch_ns_per_triple,
            sc.per_item.base_ns_per_triple,
            sc.batched.base_ns_per_triple,
            sc.speedup,
            sc.identity
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_skeleton_run_is_consistent_and_renders() {
        let report = SkeletonReport {
            quick: true,
            seed: 7,
            scales: vec![run_scale(5_000, 2, 42)],
        };
        let sc = &report.scales[0];
        assert!(sc.identity, "offer paths must end byte-identical");
        assert!(sc.base_triples >= 4_000);
        assert!(sc.evolved_triples > sc.base_triples);
        assert!(sc.evolved_clusters > sc.base_clusters);
        assert!(sc.per_item.elapsed_sec > 0.0 && sc.batched.elapsed_sec > 0.0);
        assert!(sc.per_item.batch_ns_per_triple > 0.0);
        assert!(sc.per_item.base_ns_per_triple > 0.0);
        let json = to_json(&report);
        assert!(json.contains("\"schema\": \"kg-bench-skeleton/v1\""));
        assert!(json.contains("\"identity\": true"));
        assert!(json.contains("speedup_batched_over_per_item"));
        let table = render_table(&report);
        assert!(table.contains("identity"));
    }

    #[test]
    fn fingerprints_differ_across_seeds() {
        // Sanity that the fingerprint actually fingerprints: different
        // seeds must not collide (otherwise identity checks are vacuous).
        let w = workload(4_000, 11);
        assert_ne!(replay_per_item(&w, 1).0, replay_per_item(&w, 2).0);
    }
}

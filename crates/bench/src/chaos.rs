//! `--resilience` mode: deterministic chaos harness for the kg-serve
//! fault-tolerance stack.
//!
//! Runs the hardened in-process server ([`kg_serve::Server`]) with a
//! seeded [`FaultHook`] over a disk spill store, and drives a tenant
//! fleet through its churn scripts while the harness injects every fault
//! class the serving layer claims to survive:
//!
//! 1. **Connection faults** — a deterministic hash of the accept
//!    sequence number drops connections before the request is read,
//!    after it is read but before the response, or after a stall
//!    (a wedged server from the client's view). All faults fire
//!    *pre-dispatch*, so a faulted request never half-applies a
//!    mutation and the client's retry is exact-once in effect.
//! 2. **Process kills** — at scripted quiescent points the server is
//!    killed abruptly (no drain, no checkpoint sweep); the write-through
//!    lifecycle policy is what makes the restart lossless.
//! 3. **Spill-file sabotage** — while the process is down, scripted
//!    victim tenants have their spill records truncated or deleted.
//!    On restart the torn record must fail typed (500 then 404, never a
//!    panic, co-tenants untouched) and the client re-registers the
//!    tenant from its own earlier HTTP checkpoint.
//! 4. **Eviction churn** — `max_live` is far below the tenant count, so
//!    every phase runs over constant TTL/LRU spill-and-revive traffic.
//!
//! The client retries retriable outcomes (connect/read failures, 408,
//! 503) with capped exponential backoff and deterministic jitter, so
//! the whole run is replayable from `--seed`.
//!
//! **Checks** (all recorded in `BENCH_resilience.json`, schema
//! `kg-bench-resilience/v1`, and asserted by CI):
//! - *Zero served-estimate divergence*: every `200` estimate the fleet
//!   ever receives — after each event post, at end of run, and after
//!   the final drain→restart cycle — is byte-compared
//!   (`mean_bits`/`var_bits`/`units`) against a fault-free in-process
//!   `SessionRegistry` replay of the same specs and scripts.
//! - *Full recovery*: the final graceful drain persists every live
//!   session, and the restarted server revives 100% of the fleet
//!   byte-identically.
//! - *Fault floor*: the run actually injected at least the scripted
//!   minimum number of faults (quick: 16, full: 50).

use kg_eval::session::{LifecyclePolicy, SessionRegistry};
use kg_eval::{CheckpointStore, TrialExecutor};
use kg_serve::{FaultAction, FaultHook, Server, ServerConfig};
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::serve::{
    events_body, num_field, script_for, served_bits, spec_for, spec_json, str_field,
};

/// Options for the resilience chaos harness.
#[derive(Debug, Clone, Copy)]
pub struct ChaosOpts {
    /// Quick mode: 120 tenants / 1 kill instead of 600 / 2 (CI).
    pub quick: bool,
    /// Base seed; the fault plan, client jitter, and every tenant spec
    /// derive from it.
    pub seed: u64,
}

impl Default for ChaosOpts {
    fn default() -> Self {
        ChaosOpts {
            quick: false,
            seed: 20190923,
        }
    }
}

/// Everything the chaos harness measured and checked.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Quick mode?
    pub quick: bool,
    /// Base seed.
    pub seed: u64,
    /// Tenant sessions driven through the run.
    pub tenants: usize,
    /// Events per tenant script.
    pub rounds: usize,
    /// Resident-session cap forcing eviction churn.
    pub max_live: usize,
    /// Server lives (initial + one per kill + post-drain restart).
    pub lives: usize,
    /// Abrupt process kills (no drain, no checkpoint sweep).
    pub kills: usize,
    /// Spill records truncated while the server was down.
    pub torn_spills: usize,
    /// Spill records deleted while the server was down.
    pub vanished_spills: usize,
    /// Tenants the client re-registered from its own checkpoint after
    /// their spill record was sabotaged.
    pub reregistered: usize,
    /// HTTP requests issued (including retries).
    pub requests: u64,
    /// Retries forced by injected faults, shedding, or timeouts.
    pub retries: u64,
    /// Connections sacrificed by the fault hook, all lives summed.
    pub faults_injected: u64,
    /// Scripted minimum the run must inject to count as a chaos run.
    pub min_faults: u64,
    /// Connections shed with 503 across all lives.
    pub shed: u64,
    /// Exchanges cut off by the read deadline across all lives.
    pub timeouts: u64,
    /// Sessions spilled by TTL/LRU pressure, all lives summed.
    pub evictions: u64,
    /// Sessions revived from the spill store, all lives summed.
    pub revivals: u64,
    /// Poisoned spill records dropped (== torn + vanished victims hit).
    pub corrupt_dropped: u64,
    /// Served estimates byte-compared against the fault-free replay.
    pub estimates_checked: usize,
    /// Comparisons that diverged (must be 0).
    pub diverged: usize,
    /// `diverged == 0` over every comparison the run made.
    pub estimates_match: bool,
    /// Sessions the final graceful drain checkpointed.
    pub drain_persisted: usize,
    /// Sessions present after the post-drain restart.
    pub recovered: usize,
    /// Did the post-drain restart revive 100% of the fleet
    /// byte-identically?
    pub revived_all: bool,
    /// `faults_injected >= min_faults`.
    pub faults_floor_met: bool,
    /// Wall-clock for the whole run.
    pub elapsed_sec: f64,
}

/// SplitMix64 — the deterministic hash behind the fault plan and the
/// client's backoff jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Seeded per-connection fault plan: one connection in `period` is
/// sacrificed, cycling through the three abort flavours.
struct ChaosHook {
    seed: u64,
    period: u64,
}

impl FaultHook for ChaosHook {
    fn plan(&self, conn_seq: u64) -> FaultAction {
        let h = splitmix64(self.seed ^ conn_seq.wrapping_mul(0xA24B_AED4_963E_E407));
        if !h.is_multiple_of(self.period) {
            return FaultAction::None;
        }
        match (h >> 8) % 3 {
            0 => FaultAction::AbortBeforeRead,
            1 => FaultAction::AbortAfterRead,
            _ => FaultAction::StallThenAbort(Duration::from_millis(15)),
        }
    }
}

/// A fault-tolerant single-threaded HTTP client: connect/read failures,
/// 408s, and 503s are retried with capped exponential backoff and
/// deterministic jitter; anything else (including 404/500 — those are
/// *answers* under chaos) is returned to the caller.
struct Client {
    addr: String,
    seed: u64,
    requests: u64,
    retries: u64,
}

impl Client {
    const MAX_ATTEMPTS: u32 = 12;

    fn one_shot(&self, method: &str, path: &str, body: &str) -> Option<(u16, String)> {
        let mut stream = TcpStream::connect(&self.addr).ok()?;
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .ok()?;
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nhost: kg-serve\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        )
        .ok()?;
        let mut response = String::new();
        stream.read_to_string(&mut response).ok()?;
        let status: u16 = response.split_whitespace().nth(1)?.parse().ok()?;
        let body = response.split_once("\r\n\r\n")?.1.to_string();
        Some((status, body))
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        for attempt in 0..Self::MAX_ATTEMPTS {
            self.requests += 1;
            match self.one_shot(method, path, body) {
                Some((status, body)) if status != 408 && status != 503 => {
                    return (status, body);
                }
                // Dropped connection (an injected fault or a kill racing
                // the exchange), deadline trip, or load shed: back off
                // and retry. Faults fire pre-dispatch, so the retry hits
                // unchanged state.
                _ => {
                    self.retries += 1;
                    let jitter =
                        splitmix64(self.seed ^ self.requests ^ u64::from(attempt) << 32) % 4;
                    let backoff = (2u64 << attempt.min(5)).min(50) + jitter;
                    std::thread::sleep(Duration::from_millis(backoff));
                }
            }
        }
        panic!(
            "{method} {path}: no answer after {} attempts",
            Self::MAX_ATTEMPTS
        );
    }

    fn ok(&mut self, method: &str, path: &str, body: &str) -> String {
        let (status, body) = self.request(method, path, body);
        assert_eq!(status, 200, "{method} {path}: {body}");
        body
    }
}

/// Per-kill sabotage script: which tenants lose their spill record, and
/// how.
struct KillPlan {
    /// Tenants whose spill file is truncated (typed 500 on first touch).
    torn: Vec<usize>,
    /// Tenant whose spill file is deleted (404 straight away).
    vanished: usize,
}

fn kill_plan(kill: usize, tenants: usize) -> KillPlan {
    let pick = |salt: usize| (salt + 13 * kill) % tenants;
    let torn = vec![pick(7), pick(29)];
    let mut vanished = pick(47);
    while torn.contains(&vanished) {
        vanished = (vanished + 1) % tenants;
    }
    KillPlan { torn, vanished }
}

/// Stats carried across server lives.
#[derive(Default)]
struct RunTotals {
    faults: u64,
    shed: u64,
    timeouts: u64,
    evictions: u64,
    revivals: u64,
    corrupt_dropped: u64,
}

impl RunTotals {
    fn absorb(&mut self, server: &Server, registry: &SessionRegistry) {
        let s = server.stats();
        self.faults += s.faults_injected;
        self.shed += s.shed;
        self.timeouts += s.timeouts;
        let r = registry.stats();
        self.evictions += r.evictions;
        self.revivals += r.revivals;
        self.corrupt_dropped += r.corrupt_dropped;
        assert_eq!(r.persist_failures, 0, "write-through persistence failed");
    }
}

/// Start one server life over the shared spill directory; returns the
/// handle, the registry, and how many sessions the store recovered.
fn start_life(
    dir: &Path,
    seed: u64,
    life: usize,
    max_live: usize,
    period: u64,
) -> (Server, Arc<SessionRegistry>, usize) {
    let store = CheckpointStore::open(dir).expect("open spill store");
    let policy = LifecyclePolicy {
        max_live: Some(max_live),
        idle_ttl: None,
        write_through: true,
    };
    let registry = Arc::new(SessionRegistry::with_lifecycle(
        TrialExecutor::new().with_workers(2),
        policy,
        store,
    ));
    let recovered = registry.recover_from_store().expect("recover spills");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let config = ServerConfig {
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        max_in_flight: 64,
        drain_deadline: Duration::from_secs(5),
    };
    let hook: Arc<dyn FaultHook> = Arc::new(ChaosHook {
        seed: splitmix64(seed ^ (life as u64).wrapping_mul(0x5851_F42D_4C95_7F2D)),
        period,
    });
    let server =
        Server::start(listener, Arc::clone(&registry), config, Some(hook)).expect("start server");
    (server, registry, recovered)
}

fn scratch_dir(seed: u64) -> PathBuf {
    std::env::temp_dir().join(format!("kg-chaos-{}-{seed:x}", std::process::id()))
}

/// Run the harness at the standard scale.
pub fn run(opts: &ChaosOpts) -> ChaosReport {
    if opts.quick {
        run_scaled(opts, 120, 1, 24, 16, 16)
    } else {
        run_scaled(opts, 600, 2, 64, 16, 50)
    }
}

/// Run with explicit scales (unit tests use tiny ones).
#[allow(clippy::needless_range_loop)] // t/r index ids, scripts, and expected in lockstep
fn run_scaled(
    opts: &ChaosOpts,
    tenants: usize,
    kills: usize,
    max_live: usize,
    period: u64,
    min_faults: u64,
) -> ChaosReport {
    let seed = opts.seed;
    let start = Instant::now();
    let dir = scratch_dir(seed);
    let _ = std::fs::remove_dir_all(&dir);

    // Fault-free in-process replay first: expected estimate bits for
    // every tenant after every round. The served run must match these
    // byte for byte, no matter what the fault plan does to it.
    let rounds = script_for(0).len();
    let local = SessionRegistry::new();
    let mut expected: Vec<Vec<(String, String, String)>> = Vec::with_capacity(tenants);
    for t in 0..tenants {
        let lid = local.register(spec_for(seed, t)).expect("local register");
        let mut per_round = Vec::with_capacity(rounds);
        for event in script_for(t) {
            let rep = local
                .apply_events(lid, std::slice::from_ref(&event))
                .expect("local replay");
            per_round.push((
                format!("{:016x}", rep.mean.to_bits()),
                format!("{:016x}", rep.var_of_mean.to_bits()),
                rep.units.to_string(),
            ));
        }
        expected.push(per_round);
    }

    let (mut server, mut registry, _) = start_life(&dir, seed, 0, max_live, period);
    let mut client = Client {
        addr: server.addr().to_string(),
        seed,
        requests: 0,
        retries: 0,
    };
    let mut totals = RunTotals::default();
    let mut lives = 1;
    let mut estimates_checked = 0usize;
    let mut diverged = 0usize;
    let mut torn_spills = 0usize;
    let mut vanished_spills = 0usize;
    let mut reregistered = 0usize;

    // Registration.
    let mut ids = vec![0u64; tenants];
    for (t, id) in ids.iter_mut().enumerate() {
        let body = client.ok("POST", "/kg", &spec_json(&spec_for(seed, t)));
        *id = num_field(&body, "id").parse().expect("numeric id");
    }

    // Traffic rounds, with scripted kills at the quiescent points
    // between rounds.
    for r in 0..rounds {
        for t in 0..tenants {
            let body = events_body(std::slice::from_ref(&script_for(t)[r]));
            let resp = client.ok("POST", &format!("/kg/{}/events", ids[t]), &body);
            estimates_checked += 1;
            if served_bits(&resp) != expected[t][r] {
                diverged += 1;
            }
        }

        if r + 1 < rounds && r < kills {
            // The client snapshots the victims' state over HTTP before
            // the crash — the backup it later re-registers from.
            let plan = kill_plan(r, tenants);
            let mut backups = Vec::new();
            for &t in plan.torn.iter().chain(std::iter::once(&plan.vanished)) {
                let body = client.ok("POST", &format!("/kg/{}/checkpoint", ids[t]), "");
                backups.push((t, str_field(&body, "checkpoint")));
            }

            // Crash: no drain, no checkpoint sweep. Write-through is the
            // only reason nothing is lost.
            totals.absorb(&server, &registry);
            server.kill();
            drop(registry);

            // Sabotage the spill records while the process is down.
            let store = CheckpointStore::open(&dir).expect("reopen store");
            for &t in &plan.torn {
                let path = store.path_for(ids[t]);
                let full = std::fs::read(&path).expect("read spill record");
                std::fs::write(&path, &full[..full.len() / 3]).expect("tear spill record");
                torn_spills += 1;
            }
            std::fs::remove_file(store.path_for(ids[plan.vanished])).expect("delete spill record");
            vanished_spills += 1;

            // Restart over the sabotaged store and sweep the fleet.
            let (s, reg, recovered) = start_life(&dir, seed, lives, max_live, period);
            server = s;
            registry = reg;
            lives += 1;
            assert_eq!(
                recovered,
                tenants - 1,
                "restart must see every spill record except the deleted one"
            );
            client.addr = server.addr().to_string();
            for t in 0..tenants {
                let (status, _) = client.request("GET", &format!("/kg/{}/estimate", ids[t]), "");
                if status == 200 {
                    continue;
                }
                // Victims fail typed: torn records 500 (Codec) on first
                // touch, deleted records 404 — then the client restores
                // from its own backup under a fresh id.
                if plan.torn.contains(&t) {
                    assert_eq!(status, 500, "torn spill must fail typed for tenant {t}");
                    let (status, _) =
                        client.request("GET", &format!("/kg/{}/estimate", ids[t]), "");
                    assert_eq!(status, 404, "poisoned session must be dropped");
                } else {
                    assert_eq!(t, plan.vanished, "unexpected casualty: tenant {t}");
                    assert_eq!(status, 404, "deleted spill must read as unknown");
                }
                let (_, hex) = backups
                    .iter()
                    .find(|(bt, _)| *bt == t)
                    .expect("victim backup");
                let body = client.ok("POST", "/kg", &format!(r#"{{"checkpoint":"{hex}"}}"#));
                ids[t] = num_field(&body, "id").parse().expect("numeric id");
                reregistered += 1;
            }
        }
    }

    // End-of-run estimates, byte-checked against the fault-free replay.
    let mut finals = Vec::with_capacity(tenants);
    for t in 0..tenants {
        let got = served_bits(&client.ok("GET", &format!("/kg/{}/estimate", ids[t]), ""));
        estimates_checked += 1;
        if got != expected[t][rounds - 1] {
            diverged += 1;
        }
        finals.push(got);
    }

    // Final cycle: graceful drain, restart, 100% byte-identical revival.
    totals.absorb(&server, &registry);
    let live_at_drain = registry.stats().live;
    drop(registry);
    let outcome = server.drain();
    assert_eq!(
        outcome.persisted, live_at_drain,
        "drain must checkpoint every live session"
    );

    let (server, registry, recovered) = start_life(&dir, seed, lives, max_live, period);
    lives += 1;
    client.addr = server.addr().to_string();
    let mut revived_all = recovered == tenants;
    for t in 0..tenants {
        let got = served_bits(&client.ok("GET", &format!("/kg/{}/estimate", ids[t]), ""));
        estimates_checked += 1;
        if got != expected[t][rounds - 1] {
            diverged += 1;
        }
        if got != finals[t] {
            revived_all = false;
        }
    }
    totals.absorb(&server, &registry);
    server.kill();
    drop(registry);
    let _ = std::fs::remove_dir_all(&dir);

    ChaosReport {
        quick: opts.quick,
        seed,
        tenants,
        rounds,
        max_live,
        lives,
        kills,
        torn_spills,
        vanished_spills,
        reregistered,
        requests: client.requests,
        retries: client.retries,
        faults_injected: totals.faults,
        min_faults,
        shed: totals.shed,
        timeouts: totals.timeouts,
        evictions: totals.evictions,
        revivals: totals.revivals,
        corrupt_dropped: totals.corrupt_dropped,
        estimates_checked,
        diverged,
        estimates_match: diverged == 0,
        drain_persisted: outcome.persisted,
        recovered,
        revived_all,
        faults_floor_met: totals.faults >= min_faults,
        elapsed_sec: start.elapsed().as_secs_f64(),
    }
}

/// Human-readable summary table.
pub fn render_table(r: &ChaosReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "chaos resilience — {} tenants × {} rounds, max_live {}, {} server lives{}\n",
        r.tenants,
        r.rounds,
        r.max_live,
        r.lives,
        if r.quick { " (quick)" } else { "" }
    ));
    out.push_str(&format!(
        "  faults injected   {:>8}  (floor {}, met: {})\n",
        r.faults_injected, r.min_faults, r.faults_floor_met
    ));
    out.push_str(&format!(
        "  kills / torn / vanished {:>2} / {} / {}  re-registered {}\n",
        r.kills, r.torn_spills, r.vanished_spills, r.reregistered
    ));
    out.push_str(&format!(
        "  requests          {:>8}  retries {}  shed {}  timeouts {}\n",
        r.requests, r.retries, r.shed, r.timeouts
    ));
    out.push_str(&format!(
        "  evictions         {:>8}  revivals {}  corrupt dropped {}\n",
        r.evictions, r.revivals, r.corrupt_dropped
    ));
    out.push_str(&format!(
        "  estimates checked {:>8}  diverged {}  match: {}\n",
        r.estimates_checked, r.diverged, r.estimates_match
    ));
    out.push_str(&format!(
        "  drain persisted   {:>8}  recovered {}  revived_all: {}\n",
        r.drain_persisted, r.recovered, r.revived_all
    ));
    out.push_str(&format!("  elapsed           {:>8.1}s\n", r.elapsed_sec));
    out
}

/// The tracked JSON artifact (schema `kg-bench-resilience/v1`).
pub fn to_json(r: &ChaosReport) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"schema\": \"kg-bench-resilience/v1\",\n",
            "  \"quick\": {quick},\n",
            "  \"seed\": {seed},\n",
            "  \"tenants\": {tenants},\n",
            "  \"rounds\": {rounds},\n",
            "  \"max_live\": {max_live},\n",
            "  \"lives\": {lives},\n",
            "  \"faults\": {{\n",
            "    \"injected\": {faults_injected},\n",
            "    \"min_required\": {min_faults},\n",
            "    \"faults_floor_met\": {floor},\n",
            "    \"kills\": {kills},\n",
            "    \"torn_spills\": {torn},\n",
            "    \"vanished_spills\": {vanished},\n",
            "    \"client_retries\": {retries}\n",
            "  }},\n",
            "  \"traffic\": {{\n",
            "    \"requests\": {requests},\n",
            "    \"shed\": {shed},\n",
            "    \"timeouts\": {timeouts}\n",
            "  }},\n",
            "  \"lifecycle\": {{\n",
            "    \"evictions\": {evictions},\n",
            "    \"revivals\": {revivals},\n",
            "    \"corrupt_dropped\": {corrupt},\n",
            "    \"reregistered\": {rereg}\n",
            "  }},\n",
            "  \"checks\": {{\n",
            "    \"estimates_checked\": {checked},\n",
            "    \"diverged\": {diverged},\n",
            "    \"estimates_match\": {match_},\n",
            "    \"drain_persisted\": {persisted},\n",
            "    \"recovered\": {recovered},\n",
            "    \"revived_all\": {revived}\n",
            "  }},\n",
            "  \"elapsed_sec\": {elapsed:.3}\n",
            "}}\n",
        ),
        quick = r.quick,
        seed = r.seed,
        tenants = r.tenants,
        rounds = r.rounds,
        max_live = r.max_live,
        lives = r.lives,
        faults_injected = r.faults_injected,
        min_faults = r.min_faults,
        floor = r.faults_floor_met,
        kills = r.kills,
        torn = r.torn_spills,
        vanished = r.vanished_spills,
        retries = r.retries,
        requests = r.requests,
        shed = r.shed,
        timeouts = r.timeouts,
        evictions = r.evictions,
        revivals = r.revivals,
        corrupt = r.corrupt_dropped,
        rereg = r.reregistered,
        checked = r.estimates_checked,
        diverged = r.diverged,
        match_ = r.estimates_match,
        persisted = r.drain_persisted,
        recovered = r.recovered,
        revived = r.revived_all,
        elapsed = r.elapsed_sec,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_chaos_run_survives_and_stays_byte_identical() {
        // Aggressive fault period (1 in 4) over a tiny fleet: one kill,
        // sabotage, and the full drain→restart cycle.
        let opts = ChaosOpts {
            quick: true,
            seed: 4242,
        };
        let r = run_scaled(&opts, 12, 1, 4, 4, 1);
        assert!(r.estimates_match, "diverged: {}", r.diverged);
        assert!(r.revived_all, "post-drain revival incomplete");
        assert!(r.faults_floor_met, "only {} faults", r.faults_injected);
        assert_eq!(r.torn_spills, 2);
        assert_eq!(r.vanished_spills, 1);
        assert_eq!(r.reregistered, 3);
        assert_eq!(r.recovered, 12);
        assert!(r.retries >= r.faults_injected.min(1));
        assert!(r.evictions > 0, "max_live 4 over 12 tenants must churn");
    }

    #[test]
    fn fault_plan_is_deterministic_and_covers_every_flavour() {
        let hook = ChaosHook {
            seed: 99,
            period: 4,
        };
        let plan: Vec<_> = (0..256).map(|c| hook.plan(c)).collect();
        let again: Vec<_> = (0..256).map(|c| hook.plan(c)).collect();
        assert_eq!(plan, again, "fault plan must be a pure function");
        let faults = plan.iter().filter(|a| **a != FaultAction::None).count();
        assert!(faults > 256 / 8, "period 4 must fire often: {faults}");
        for flavour in [
            FaultAction::AbortBeforeRead,
            FaultAction::AbortAfterRead,
            FaultAction::StallThenAbort(Duration::from_millis(15)),
        ] {
            assert!(plan.contains(&flavour), "missing {flavour:?}");
        }
    }
}

//! Table 8: qualitative comparison of KG accuracy evaluation methods.

use crate::table::TextTable;
use crate::Opts;

/// Run the experiment (a static feature matrix — no simulation involved).
pub fn run(_opts: &Opts) -> String {
    let mut t = TextTable::new(["property", "SRS", "KGEval", "Ours"]);
    t.row(["unbiased evaluation", "yes", "no", "yes"]);
    t.row(["efficient evaluation", "no", "yes", "yes"]);
    t.row(["incremental evaluation on evolving KG", "no", "no", "yes"]);
    t.row(["statistical guarantee (MoE at 1-alpha)", "yes", "no", "yes"]);
    t.row(["scales to 100M+ triples", "yes", "no", "yes"]);
    format!("Table 8 — summary of evaluation methods\n\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_paper_claims() {
        let out = run(&Opts::default());
        assert!(out.contains("incremental"));
        // Ours column: every data row ends with yes.
        for line in out.lines().skip(4) {
            if !line.is_empty() && !line.starts_with('-') {
                assert!(line.trim_end().ends_with("yes"), "{line}");
            }
        }
    }
}

//! Sharded-replay determinism experiment: exact metric dump of intra-trial
//! sharded replays under the **default** (environment-resolved) shard
//! worker count.
//!
//! This is the `KG_EVAL_SHARDS` counterpart of the worker-count matrix in
//! the CI determinism job: the job runs `repro sharded` under
//! `KG_EVAL_SHARDS=1` and `=4` and byte-diffs the output. Every number
//! below is printed with full bit fidelity (hex-encoded f64 bits next to
//! the rounded decimal), so a single low-bit divergence anywhere in the
//! sharded walk, merge tree, or kernel layer fails the diff.

use crate::table::TextTable;
use crate::throughput::synthetic_sizes;
use crate::Opts;
use kg_annotate::cost::CostModel;
use kg_annotate::lease::DenseArenaPool;
use kg_annotate::oracle::RemOracle;
use kg_eval::sharded::{ShardDesign, ShardedReplay};
use kg_sampling::PopulationIndex;
use std::sync::Arc;

/// Run the experiment: both designs × both engines over two synthetic
/// scales, replayed with the default shard-worker resolution.
pub fn run(opts: &Opts) -> String {
    let scales: &[(u64, u64)] = if opts.quick {
        // (target triples, visits per replay)
        &[(50_000, 1_500), (200_000, 3_000)]
    } else {
        &[(200_000, 6_000), (2_000_000, 12_000)]
    };
    let replay = ShardedReplay::new();
    let mut table = TextTable::new(vec![
        "scale",
        "design",
        "engine",
        "shards",
        "estimate",
        "moe95",
        "labeled",
        "correct",
        "entities",
        "cost_bits",
    ]);
    for &(target, units) in scales {
        let sizes = synthetic_sizes(target);
        let oracle = RemOracle::new(0.9, opts.seed ^ target);
        let idx = PopulationIndex::from_sizes(sizes).expect("non-empty synthetic KG");
        let store = Arc::new(idx.materialize_labels(&oracle));
        let pool = DenseArenaPool::new(store, CostModel::default());
        for design in [ShardDesign::FullCluster, ShardDesign::TwoStage { m: 5 }] {
            for engine in ["hash", "dense"] {
                let r = match engine {
                    "hash" => replay.replay_hash(
                        design,
                        &idx,
                        &oracle,
                        CostModel::default(),
                        units,
                        opts.seed ^ 0x51AD,
                    ),
                    _ => replay.replay_dense(design, &idx, &pool, units, opts.seed ^ 0x51AD),
                };
                table.row(vec![
                    format!("{target}"),
                    r.design.to_string(),
                    engine.to_string(),
                    format!("{}", r.shards),
                    format!("{:.9}={:016x}", r.estimate.mean, r.estimate.mean.to_bits()),
                    format!(
                        "{:.9}={:016x}",
                        r.estimate.moe(0.05).expect("valid alpha"),
                        r.estimate.moe(0.05).expect("valid alpha").to_bits()
                    ),
                    format!("{}", r.labeled),
                    format!("{}", r.correct),
                    format!("{}", r.entities),
                    format!("{:016x}", r.cost_seconds.to_bits()),
                ]);
            }
        }
    }
    format!(
        "sharded replay determinism dump (shard_units {}; results must be \
         byte-identical at any KG_EVAL_SHARDS)\n{}",
        replay.shard_units(),
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_is_reproducible_and_engine_agnostic() {
        let opts = Opts {
            quick: true,
            ..Opts::default()
        };
        let a = run(&opts);
        let b = run(&opts);
        assert_eq!(a, b, "same opts must reproduce byte-identically");
        // Hash and dense rows must carry identical metric columns: strip
        // the engine column and compare pairs.
        let rows: Vec<&str> = a.lines().filter(|l| l.contains("/sharded")).collect();
        assert!(!rows.is_empty());
        for pair in rows.chunks(2) {
            if let [h, d] = pair {
                // Column padding differs with engine-name width, so
                // normalize whitespace as well as the engine label.
                let strip = |s: &str| {
                    s.replace("hash", "X")
                        .replace("dense", "X")
                        .split_whitespace()
                        .collect::<Vec<_>>()
                        .join(" ")
                };
                assert_eq!(strip(h), strip(d), "engines diverged");
            }
        }
    }
}

//! Table 3: data characteristics of the four KGs.

use crate::table::TextTable;
use crate::Opts;
use kg_datagen::profile::DatasetProfile;
use kg_model::stats::KgStatistics;

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let mut profiles = vec![
        DatasetProfile::nell(),
        DatasetProfile::yago(),
        DatasetProfile::movie(),
    ];
    if opts.quick {
        profiles.push(DatasetProfile::movie_full(0.9).scaled(0.02));
    } else {
        profiles.push(DatasetProfile::movie_full(0.9));
    }

    let mut t = TextTable::new([
        "KG",
        "entities",
        "triples",
        "avg cluster",
        "max cluster",
        "<5 frac",
        "gold accuracy",
    ]);
    for p in profiles {
        let ds = p.generate(opts.seed);
        let st = KgStatistics::of(&ds.population);
        t.row([
            ds.name.clone(),
            format!("{}", st.num_entities),
            format!("{}", st.num_triples),
            format!("{:.1}", st.avg_cluster_size),
            format!("{}", st.max_cluster_size),
            format!("{:.0}%", st.fraction_smaller_than(5) * 100.0),
            format!("{:.0}%", ds.gold_accuracy * 100.0),
        ]);
    }
    format!(
        "Table 3 — data characteristics (paper: NELL 817/1860/2.3/91%, YAGO 822/1386/1.7/99%,\n\
         MOVIE 288770/2653870/9.2/90%, MOVIE-FULL 14495142/130591799/9.0)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_exact_table3_counts() {
        let out = run(&Opts {
            quick: true,
            ..Opts::default()
        });
        assert!(out.contains("817"), "{out}");
        assert!(out.contains("1860"), "{out}");
        assert!(out.contains("822"), "{out}");
        assert!(out.contains("2653870"), "{out}");
    }
}

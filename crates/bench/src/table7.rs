//! Table 7: TWCS with stratification (cumulative-√F size strata vs the
//! oracle lower bound) on NELL, MOVIE-SYN(c=0.01, σ=0.1), and MOVIE.
//!
//! Paper shapes: on MOVIE-SYN (where BMM makes size genuinely predict
//! accuracy) size stratification cuts cost up to 40% below SRS (~20% below
//! plain TWCS) and oracle stratification goes further; on NELL size
//! stratification barely helps (size is a weak signal for the tiny
//! clusters) and can be slightly worse than plain TWCS, while the oracle
//! bound shows large headroom. On MOVIE (REM labels), oracle
//! stratification is meaningless (all clusters share one expected
//! accuracy) — reported as N/A, as in the paper.

use crate::table::TextTable;
use crate::trials::{pm, pm_pct};
use crate::Opts;
use kg_datagen::profile::DatasetProfile;
use kg_eval::config::EvalConfig;
use kg_eval::executor::run_trials;
use kg_eval::framework::Evaluator;
use kg_sampling::PopulationIndex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let scale = if opts.quick { 0.05 } else { 1.0 };
    let configs: Vec<(DatasetProfile, usize, bool)> = vec![
        // (profile, strata per the paper's caption, oracle applicable?)
        (DatasetProfile::nell(), 2, true),
        (
            if opts.quick {
                DatasetProfile::movie_syn(0.01, 0.1).scaled(scale)
            } else {
                DatasetProfile::movie_syn(0.01, 0.1)
            },
            4,
            true,
        ),
        (
            if opts.quick {
                DatasetProfile::movie().scaled(scale)
            } else {
                DatasetProfile::movie()
            },
            4,
            false,
        ),
    ];
    let mut out = String::from(
        "Table 7 — TWCS with stratification (cum-√F size strata; oracle = accuracy strata)\n\n",
    );
    for (profile, strata, oracle_ok) in configs {
        let ds = profile.generate(opts.seed);
        let index = Arc::new(PopulationIndex::from_population(&ds.population).expect("non-empty"));
        let trials = opts.trials(if ds.population.sizes().len() > 10_000 {
            200
        } else {
            1000
        });
        let config = EvalConfig::default();
        let mut evals: Vec<(String, Evaluator)> = vec![
            ("SRS".into(), Evaluator::srs()),
            ("TWCS".into(), Evaluator::twcs(5)),
            (
                format!("TWCS w/ size strat (H={strata})"),
                Evaluator::twcs_size_stratified(5, strata),
            ),
        ];
        if oracle_ok {
            evals.push((
                format!("TWCS w/ oracle strat (H={strata})"),
                Evaluator::twcs_oracle_stratified(5, strata),
            ));
        }
        let mut t = TextTable::new(["design", "hours", "estimate"]);
        for (name, eval) in evals {
            let oracle = ds.oracle.clone();
            let idx = index.clone();
            let stats = run_trials(trials, opts.seed ^ 0x7ab7, 2, move |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let r = eval
                    .run_with_index(idx.clone(), oracle.as_ref(), &config, &mut rng)
                    .expect("valid population");
                vec![r.cost_hours(), r.estimate.mean]
            });
            t.row([name, pm(&stats[0], 2), pm_pct(&stats[1], 1)]);
        }
        if !oracle_ok {
            t.row([
                "TWCS w/ oracle strat".to_string(),
                "N/A".to_string(),
                "N/A (REM labels: no oracle accuracy signal)".to_string(),
            ]);
        }
        out.push_str(&format!(
            "{} (gold {:.1}%, {} trials)\n{}\n",
            ds.name,
            ds.gold_accuracy * 100.0,
            trials,
            t.render()
        ));
    }
    out.push_str(
        "paper: MOVIE-SYN — SRS 6.99 h, TWCS 5.25 h, size-strat 3.97 h, oracle 2.87 h;\n\
         NELL — size-strat ≈ TWCS (1.90 vs 1.85 h), oracle 1.04 h.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_stratification_beats_plain_twcs_on_movie_syn() {
        let opts = Opts {
            quick: true,
            trial_scale: 0.2,
            ..Opts::default()
        };
        let out = run(&opts);
        let hours = |block: &str, design: &str| -> f64 {
            out.lines()
                .skip_while(|l| !l.starts_with(block))
                .find(|l| l.starts_with(design))
                .and_then(|l| l.split_whitespace().find(|w| w.contains('±')))
                .and_then(|s| s.split('±').next())
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("no hours for {design} in {block}\n{out}"))
        };
        let twcs = hours("MOVIE-SYN", "TWCS ");
        let oracle = hours("MOVIE-SYN", "TWCS w/ oracle");
        assert!(
            oracle < twcs * 1.05,
            "oracle {oracle} should not exceed TWCS {twcs}\n{out}"
        );
    }
}

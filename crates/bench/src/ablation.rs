//! Ablation study (beyond the paper's tables): the design choices
//! DESIGN.md calls out, each isolated.
//!
//! 1. **PPS vs uniform first stage** — TWCS vs TSRCS (the two-stage
//!    *random* cluster variant §5.2.3 omits as inferior): same second
//!    stage, only the first-stage inclusion probabilities differ.
//! 2. **Second stage on/off** — TWCS vs WCS: the cap's contribution.
//! 3. **Batch size** — stop-rule granularity: coarse batches overshoot the
//!    MoE target on expensive cluster units.
//! 4. **CLT floor** — min_units 10 vs 30: stopping earlier forfeits
//!    coverage on accurate KGs.

use crate::table::TextTable;
use crate::trials::{pm, pm_pct};
use crate::Opts;
use kg_datagen::profile::DatasetProfile;
use kg_eval::config::EvalConfig;
use kg_eval::executor::run_trials;
use kg_eval::framework::Evaluator;
use kg_sampling::design::Design;
use kg_sampling::PopulationIndex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let profile = if opts.quick {
        DatasetProfile::movie().scaled(0.02)
    } else {
        DatasetProfile::movie().scaled(0.2)
    };
    let ds = profile.generate(opts.seed);
    let index = Arc::new(PopulationIndex::from_population(&ds.population).expect("non-empty"));
    let trials = opts.trials(300);
    let truth = ds.gold_accuracy;
    let mut out = format!(
        "Ablation — design choices isolated on {} (gold {:.0}%, {} trials)\n\n",
        ds.name,
        truth * 100.0,
        trials
    );

    // (1)+(2) First-stage weighting and second-stage cap.
    let mut t1 = TextTable::new(["design", "hours", "estimate", "|err|>5% runs"]);
    for design in [
        Design::Twcs { m: 5 },
        Design::TsRcs { m: 5 },
        Design::Wcs,
        Design::Srs,
    ] {
        let oracle = ds.oracle.clone();
        let idx = index.clone();
        let d = design.clone();
        let config = EvalConfig::default();
        let stats = run_trials(trials, opts.seed ^ 0xab1a, 3, move |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = Evaluator::new(d.clone())
                .run_with_index(idx.clone(), oracle.as_ref(), &config, &mut rng)
                .expect("valid population");
            vec![
                r.cost_hours(),
                r.estimate.mean,
                if (r.estimate.mean - truth).abs() > 0.05 {
                    1.0
                } else {
                    0.0
                },
            ]
        });
        t1.row([
            design.name().to_string(),
            pm(&stats[0], 2),
            pm_pct(&stats[1], 1),
            format!("{:.0}%", stats[2].mean() * 100.0),
        ]);
    }
    out.push_str(&format!(
        "(1) first-stage weighting and second-stage cap (m = 5 where applicable)\n{}\n",
        t1.render()
    ));

    // (3) Batch size of the iterative loop.
    let mut t2 = TextTable::new(["batch size", "hours", "overshoot vs batch=1"]);
    let mut base_hours = None;
    for batch in [1usize, 5, 20, 50] {
        let oracle = ds.oracle.clone();
        let idx = index.clone();
        let config = EvalConfig::default().with_batch_size(batch);
        let stats = run_trials(trials, opts.seed ^ 0xab1b, 1, move |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = Evaluator::twcs(5)
                .run_with_index(idx.clone(), oracle.as_ref(), &config, &mut rng)
                .expect("valid population");
            vec![r.cost_hours()]
        });
        let h = stats[0].mean();
        let base = *base_hours.get_or_insert(h);
        t2.row([
            format!("{batch}"),
            pm(&stats[0], 2),
            format!("{:+.0}%", (h / base - 1.0) * 100.0),
        ]);
    }
    out.push_str(&format!(
        "(2) stop-rule batch size (TWCS m=5)\n{}\n",
        t2.render()
    ));

    // (4) CLT floor on an accurate KG: coverage vs cost.
    let yago = DatasetProfile::yago().generate(opts.seed);
    let yago_idx = Arc::new(PopulationIndex::from_population(&yago.population).expect("non-empty"));
    let mut t3 = TextTable::new(["min units", "hours", "|err|<=5% coverage"]);
    for min_units in [5usize, 15, 30, 60] {
        let oracle = yago.oracle.clone();
        let idx = yago_idx.clone();
        let config = EvalConfig::default().with_min_units(min_units);
        let stats = run_trials(trials, opts.seed ^ 0xab1c, 2, move |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let r = Evaluator::twcs(5)
                .run_with_index(idx.clone(), oracle.as_ref(), &config, &mut rng)
                .expect("valid population");
            vec![
                r.cost_hours(),
                if (r.estimate.mean - 0.99).abs() <= 0.05 {
                    1.0
                } else {
                    0.0
                },
            ]
        });
        t3.row([
            format!("{min_units}"),
            pm(&stats[0], 2),
            format!("{:.0}%", stats[1].mean() * 100.0),
        ]);
    }
    out.push_str(&format!(
        "(3) CLT floor on YAGO (99% accurate): cost vs coverage\n{}\n\
         expected: TSRCS/WCS estimates far noisier than TWCS at similar or higher cost;\n\
         big batches overshoot; dropping the CLT floor saves hours but costs coverage headroom.\n",
        t3.render()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twcs_beats_its_unweighted_twin() {
        let opts = Opts {
            quick: true,
            trial_scale: 0.2,
            ..Opts::default()
        };
        let out = run(&opts);
        let metric = |design: &str, col: usize| -> f64 {
            out.lines()
                .find(|l| l.starts_with(design))
                .and_then(|l| {
                    l.split_whitespace()
                        .filter(|w| w.contains('±'))
                        .nth(col)?
                        .split('±')
                        .next()?
                        .parse()
                        .ok()
                })
                .unwrap_or_else(|| panic!("no metric for {design}\n{out}"))
        };
        // TSRCS costs at least as much as TWCS (same second stage, worse
        // first stage) and its estimate error rate is higher.
        let twcs_hours = metric("TWCS ", 0);
        let tsrcs_hours = metric("TSRCS", 0);
        assert!(
            tsrcs_hours > twcs_hours * 0.8,
            "TSRCS {tsrcs_hours} vs TWCS {twcs_hours}\n{out}"
        );
    }
}

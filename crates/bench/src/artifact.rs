//! Atomic benchmark-artifact writes.
//!
//! `bench-report` used to write `BENCH_*.json` in place, so a run
//! interrupted mid-write (Ctrl-C, OOM-kill, CI timeout) left a truncated
//! artifact that the next diff would misread as a real regression. The
//! temp-file + rename implementation now lives in
//! [`kg_stats::atomicfile`], where the session spill store
//! (`kg_eval::spill::CheckpointStore`) shares it; this module re-exports
//! it so every bench call site keeps its historical path.

pub use kg_stats::atomicfile::write_atomic;

//! Figure 1: cumulative evaluation cost of triple-level vs entity-level
//! annotation tasks on MOVIE.
//!
//! Paper setup (Example 3.1): 50 triples with all-distinct subjects
//! (triple-level) vs 50 triples drawn ≤5 per cluster from 11 clusters
//! (entity-level). The triple-level curve should be roughly linear at
//! `c1 + c2` per triple; the entity-level curve jumps by `c1 + c2` on each
//! first-of-cluster triple and climbs by only `c2` within a cluster,
//! landing far below.

use crate::table::TextTable;
use crate::Opts;
use kg_annotate::annotator::SimulatedAnnotator;
use kg_annotate::cost::CostModel;
use kg_datagen::profile::DatasetProfile;
use kg_model::implicit::ClusterPopulation;
use kg_model::triple::TripleRef;
use kg_stats::srswor::sample_without_replacement;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let profile = if opts.quick {
        DatasetProfile::movie().scaled(0.02)
    } else {
        DatasetProfile::movie().scaled(0.2) // structure only; full scale unneeded
    };
    let ds = profile.generate(opts.seed);
    let pop = &ds.population;
    let mut rng = StdRng::seed_from_u64(opts.seed ^ 0xf161);

    // Triple-level task: 50 clusters, one triple each (all-distinct
    // subjects, as the paper ensures).
    let clusters = sample_without_replacement(&mut rng, pop.num_clusters(), 50);
    let triple_level: Vec<TripleRef> = clusters
        .iter()
        .map(|&c| TripleRef::new(c as u32, 0))
        .collect();

    // Entity-level task: random clusters, up to 5 triples each, until 50.
    let mut entity_level: Vec<TripleRef> = Vec::new();
    let order =
        sample_without_replacement(&mut rng, pop.num_clusters(), pop.num_clusters().min(200));
    let mut used_clusters = 0;
    for c in order {
        if entity_level.len() >= 50 {
            break;
        }
        let take = pop.cluster_size(c).min(5).min(50 - entity_level.len());
        for o in 0..take {
            entity_level.push(TripleRef::new(c as u32, o as u32));
        }
        used_clusters += 1;
    }

    let timeline = |refs: &[TripleRef]| {
        let mut a =
            SimulatedAnnotator::new(ds.oracle.as_ref(), CostModel::default()).with_timeline();
        a.annotate(refs);
        a.timeline().to_vec()
    };
    let tl_triple = timeline(&triple_level);
    let tl_entity = timeline(&entity_level);

    let mut t = TextTable::new([
        "triples annotated",
        "triple-level (min)",
        "entity-level (min)",
        "entity-level new-entity?",
    ]);
    for i in (4..50).step_by(5) {
        t.row([
            format!("{}", i + 1),
            format!("{:.1}", tl_triple[i].seconds / 60.0),
            format!("{:.1}", tl_entity[i].seconds / 60.0),
            if tl_entity[i].new_entity {
                "▲".into()
            } else {
                "".into()
            },
        ]);
    }
    let total_t = tl_triple.last().map_or(0.0, |p| p.seconds);
    let total_e = tl_entity.last().map_or(0.0, |p| p.seconds);
    format!(
        "Figure 1 — cumulative annotation time, triple-level vs entity-level (MOVIE)\n\
         entity-level used {used_clusters} clusters for 50 triples (paper: 11)\n\n{}\n\
         totals: triple-level {:.1} min, entity-level {:.1} min ({:.0}% saving)\n",
        t.render(),
        total_t / 60.0,
        total_e / 60.0,
        (1.0 - total_e / total_t) * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_level_is_substantially_cheaper() {
        let out = run(&Opts {
            quick: true,
            ..Opts::default()
        });
        assert!(out.contains("totals"), "{out}");
        // Saving percentage printed and positive.
        let saving = out
            .rsplit('(')
            .next()
            .and_then(|s| s.split('%').next())
            .and_then(|s| s.trim().parse::<f64>().ok())
            .expect("saving parseable");
        assert!(saving > 20.0, "saving {saving}% too small\n{out}");
    }
}

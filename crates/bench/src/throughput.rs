//! Tracked throughput harness: hash vs dense annotation engine on the hot
//! sampling designs, at three synthetic-KG scales.
//!
//! This is the perf trajectory of the repository: `bench-report` (the
//! binary over this module) times SRS, WCS, and TWCS(5) trial loops —
//! exactly the loops every Table 3–7 / Fig. 5–9 experiment pumps millions
//! of annotations through — under both engines and writes the results to
//! `BENCH_throughput.json`, which CI regenerates and uploads on every PR
//! and whose committed baseline future PRs diff against.
//!
//! The headline metric is **annotated triples per second**: distinct
//! triples charged to the simulated annotator, divided by wall-clock time
//! of the full trial loop (including per-trial engine setup — a fresh pair
//! of hash tables for the hash engine, an O(1) `reset` for the dense
//! arena). One-time per-KG costs (population index, label store) are
//! reported separately, since real experiments amortize them over ~1000
//! trials.

use kg_annotate::annotator::{Annotator, SimulatedAnnotator};
use kg_annotate::cost::CostModel;
use kg_annotate::dense::DenseAnnotator;
use kg_annotate::oracle::RemOracle;
use kg_sampling::design::Design;
use kg_sampling::PopulationIndex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Options for a throughput run.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputOpts {
    /// Quick mode: drop the 10^7 scale and shrink trial counts (CI).
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for ThroughputOpts {
    fn default() -> Self {
        ThroughputOpts {
            quick: false,
            seed: 20190923,
        }
    }
}

/// One (scale, design, engine) measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Design name (`SRS` / `WCS` / `TWCS`).
    pub design: &'static str,
    /// Engine name (`hash` / `dense`).
    pub engine: &'static str,
    /// Trials timed.
    pub trials: u64,
    /// Sampling units drawn across all trials.
    pub units: u64,
    /// Distinct triples annotated across all trials.
    pub annotated: u64,
    /// Wall-clock seconds for the whole trial loop.
    pub elapsed_sec: f64,
    /// `annotated / elapsed_sec`.
    pub annotated_per_sec: f64,
    /// Mean of the trial estimates (sanity: engines must agree).
    pub mean_estimate: f64,
}

/// All measurements at one KG scale.
#[derive(Debug, Clone)]
pub struct ScaleReport {
    /// Target (and ~actual) triple count.
    pub triples: u64,
    /// Cluster count of the synthetic KG.
    pub clusters: u64,
    /// One-time `PopulationIndex` build seconds.
    pub index_build_sec: f64,
    /// One-time `LabelStore` materialization seconds (dense engine only).
    pub store_build_sec: f64,
    /// Per-design, per-engine measurements.
    pub measurements: Vec<Measurement>,
}

impl ScaleReport {
    /// dense / hash throughput ratio for one design at this scale.
    pub fn speedup(&self, design: &str) -> Option<f64> {
        let get = |engine: &str| {
            self.measurements
                .iter()
                .find(|m| m.design == design && m.engine == engine)
                .map(|m| m.annotated_per_sec)
        };
        Some(get("dense")? / get("hash")?)
    }
}

/// A full throughput report.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Whether this was a quick (CI) run.
    pub quick: bool,
    /// Base seed used.
    pub seed: u64,
    /// Per-scale results, ascending.
    pub scales: Vec<ScaleReport>,
}

/// Long-tail synthetic cluster sizes totalling ≈ `target` triples: mostly
/// small clusters (1–13) with a sprinkling of 120-triple heads, matching
/// the shape the paper's KGs exhibit (Table 3) and keeping `triple_at` on
/// its general binary-search path.
pub fn synthetic_sizes(target: u64) -> Vec<u32> {
    let mut sizes = Vec::new();
    let mut total = 0u64;
    let mut i = 0u64;
    while total < target {
        let s = if i.is_multiple_of(97) {
            120
        } else {
            1 + (i % 13) as u32
        };
        sizes.push(s);
        total += s as u64;
        i += 1;
    }
    sizes
}

struct DesignSpec {
    design: Design,
    name: &'static str,
    /// Sampling units per trial (triples for SRS, clusters otherwise),
    /// sized so each trial annotates a few thousand triples.
    units: usize,
}

fn specs() -> Vec<DesignSpec> {
    vec![
        DesignSpec {
            design: Design::Srs,
            name: "SRS",
            units: 3000,
        },
        DesignSpec {
            design: Design::Wcs,
            name: "WCS",
            units: 300,
        },
        DesignSpec {
            design: Design::Twcs { m: 5 },
            name: "TWCS",
            units: 600,
        },
    ]
}

/// Run the harness.
pub fn run(opts: &ThroughputOpts) -> ThroughputReport {
    let scales: &[(u64, u64)] = if opts.quick {
        // (target triples, trials)
        &[(100_000, 12), (1_000_000, 6)]
    } else {
        &[(100_000, 48), (1_000_000, 16), (10_000_000, 5)]
    };
    let mut reports = Vec::new();
    for &(target, trials) in scales {
        reports.push(run_scale(target, trials, opts.seed));
    }
    ThroughputReport {
        quick: opts.quick,
        seed: opts.seed,
        scales: reports,
    }
}

fn run_scale(target: u64, trials: u64, seed: u64) -> ScaleReport {
    let sizes = synthetic_sizes(target);
    let oracle = RemOracle::new(0.9, seed ^ target);

    let t0 = Instant::now();
    let idx = Arc::new(PopulationIndex::from_sizes(sizes).unwrap());
    let index_build_sec = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let store = Arc::new(idx.materialize_labels(&oracle));
    let store_build_sec = t0.elapsed().as_secs_f64();

    let mut dense = DenseAnnotator::new(store, CostModel::default());
    let mut measurements = Vec::new();
    for spec in specs() {
        // Hash engine: a fresh SimulatedAnnotator per trial, as every
        // pre-dense experiment in this repository ran. One untimed warmup
        // trial per engine takes page faults and branch training out of
        // the measurement.
        let run_hash = |t: u64| -> (u64, u64, f64) {
            let mut rng = StdRng::seed_from_u64(seed ^ (t * 7919));
            let mut design = spec.design.instantiate(idx.clone(), &oracle);
            let mut ann = SimulatedAnnotator::new(&oracle, CostModel::default());
            let units = design.draw(&mut rng, &mut ann, spec.units) as u64;
            (
                units,
                ann.triples_annotated() as u64,
                design.estimate().mean,
            )
        };
        run_hash(trials); // warmup (fresh seed, untimed)
        let mut units = 0u64;
        let mut annotated = 0u64;
        let mut est_sum = 0.0;
        let t0 = Instant::now();
        for t in 0..trials {
            let (u, a, e) = run_hash(t);
            units += u;
            annotated += a;
            est_sum += e;
        }
        let elapsed = t0.elapsed().as_secs_f64();
        measurements.push(Measurement {
            design: spec.name,
            engine: "hash",
            trials,
            units,
            annotated,
            elapsed_sec: elapsed,
            annotated_per_sec: annotated as f64 / elapsed,
            mean_estimate: est_sum / trials as f64,
        });

        // Dense engine: one shared arena, journal-bounded reset per trial.
        let mut run_dense = |t: u64| -> (u64, u64, f64) {
            let mut rng = StdRng::seed_from_u64(seed ^ (t * 7919));
            let mut design = spec.design.instantiate(idx.clone(), &oracle);
            dense.reset();
            let units = design.draw(&mut rng, &mut dense, spec.units) as u64;
            (
                units,
                dense.triples_annotated() as u64,
                design.estimate().mean,
            )
        };
        run_dense(trials); // warmup (fresh seed, untimed)
        let mut units = 0u64;
        let mut annotated = 0u64;
        let mut est_sum = 0.0;
        let t0 = Instant::now();
        for t in 0..trials {
            let (u, a, e) = run_dense(t);
            units += u;
            annotated += a;
            est_sum += e;
        }
        let elapsed = t0.elapsed().as_secs_f64();
        measurements.push(Measurement {
            design: spec.name,
            engine: "dense",
            trials,
            units,
            annotated,
            elapsed_sec: elapsed,
            annotated_per_sec: annotated as f64 / elapsed,
            mean_estimate: est_sum / trials as f64,
        });
    }
    ScaleReport {
        triples: idx.total_triples(),
        clusters: idx.num_clusters() as u64,
        index_build_sec,
        store_build_sec,
        measurements,
    }
}

/// Render the report as the `BENCH_throughput.json` document
/// (schema `kg-bench-throughput/v1`; see README § Performance).
pub fn to_json(report: &ThroughputReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"kg-bench-throughput/v1\",\n");
    s.push_str(&format!("  \"quick\": {},\n", report.quick));
    s.push_str(&format!("  \"seed\": {},\n", report.seed));
    s.push_str("  \"metric\": \"annotated_triples_per_second\",\n");
    s.push_str("  \"scales\": [\n");
    for (i, sc) in report.scales.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"triples\": {},\n", sc.triples));
        s.push_str(&format!("      \"clusters\": {},\n", sc.clusters));
        s.push_str(&format!(
            "      \"index_build_sec\": {:.6},\n",
            sc.index_build_sec
        ));
        s.push_str(&format!(
            "      \"store_build_sec\": {:.6},\n",
            sc.store_build_sec
        ));
        s.push_str("      \"measurements\": [\n");
        for (j, m) in sc.measurements.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"design\": \"{}\", \"engine\": \"{}\", \"trials\": {}, \
                 \"units\": {}, \"annotated\": {}, \"elapsed_sec\": {:.6}, \
                 \"annotated_per_sec\": {:.1}, \"mean_estimate\": {:.6}}}{}\n",
                m.design,
                m.engine,
                m.trials,
                m.units,
                m.annotated,
                m.elapsed_sec,
                m.annotated_per_sec,
                m.mean_estimate,
                if j + 1 < sc.measurements.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("      ],\n");
        s.push_str("      \"speedup_dense_over_hash\": {");
        let names: Vec<String> = specs()
            .iter()
            .filter_map(|sp| {
                sc.speedup(sp.name)
                    .map(|x| format!("\"{}\": {:.2}", sp.name, x))
            })
            .collect();
        s.push_str(&names.join(", "));
        s.push_str("}\n");
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < report.scales.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Human-readable table for the console.
pub fn render_table(report: &ThroughputReport) -> String {
    let mut s = String::new();
    for sc in &report.scales {
        s.push_str(&format!(
            "scale {:>9} triples, {:>8} clusters  (index {:.3}s, label store {:.3}s)\n",
            sc.triples, sc.clusters, sc.index_build_sec, sc.store_build_sec
        ));
        s.push_str(
            "  design  engine  trials      units  annotated   elapsed(s)  annotated/s   est\n",
        );
        for m in &sc.measurements {
            s.push_str(&format!(
                "  {:<6}  {:<6}  {:>6}  {:>9}  {:>9}  {:>11.4}  {:>11.0}  {:.4}\n",
                m.design,
                m.engine,
                m.trials,
                m.units,
                m.annotated,
                m.elapsed_sec,
                m.annotated_per_sec,
                m.mean_estimate
            ));
        }
        for sp in specs() {
            if let Some(x) = sc.speedup(sp.name) {
                s.push_str(&format!("  {:<6} dense/hash speedup: {:.2}x\n", sp.name, x));
            }
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_sizes_hit_target() {
        let sizes = synthetic_sizes(100_000);
        let total: u64 = sizes.iter().map(|&s| s as u64).sum();
        assert!((100_000..100_200).contains(&total), "total {total}");
        assert!(sizes.contains(&120));
    }

    #[test]
    fn tiny_run_produces_consistent_report() {
        // A micro-scale smoke run: engines agree on estimates and distinct
        // annotated counts; JSON and table render.
        let report = ThroughputReport {
            quick: true,
            seed: 1,
            scales: vec![run_scale(5_000, 2, 42)],
        };
        let sc = &report.scales[0];
        assert!(sc.triples >= 5_000);
        assert_eq!(sc.measurements.len(), 6);
        for pair in sc.measurements.chunks(2) {
            assert_eq!(pair[0].design, pair[1].design);
            assert_eq!(pair[0].engine, "hash");
            assert_eq!(pair[1].engine, "dense");
            assert_eq!(pair[0].annotated, pair[1].annotated, "{}", pair[0].design);
            assert!(
                (pair[0].mean_estimate - pair[1].mean_estimate).abs() < 1e-12,
                "{}: {} vs {}",
                pair[0].design,
                pair[0].mean_estimate,
                pair[1].mean_estimate
            );
        }
        let json = to_json(&report);
        assert!(json.contains("\"schema\": \"kg-bench-throughput/v1\""));
        assert!(json.contains("speedup_dense_over_hash"));
        let table = render_table(&report);
        assert!(table.contains("dense/hash speedup"));
    }
}

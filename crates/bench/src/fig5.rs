//! Figure 5: SRS vs TWCS across confidence levels on NELL, YAGO, MOVIE.
//!
//! For each KG and confidence level (90/95/99%), run both designs to a 5%
//! MoE and report (1) sample sizes — clusters and triples — and (2)
//! evaluation time with the TWCS cost-reduction ratio on top (the bar
//! labels of Fig. 5-2). Expected shape: TWCS draws far fewer clusters than
//! SRS touches entities, total triples slightly higher, net time lower by
//! up to ~20% (less on the highly accurate YAGO, where tiny samples make
//! the cluster overhead visible — the paper even reports a negative ratio
//! at 90%).

use crate::table::TextTable;
use crate::trials::pm;
use crate::Opts;
use kg_datagen::profile::DatasetProfile;
use kg_eval::config::EvalConfig;
use kg_eval::executor::run_trials;
use kg_eval::framework::Evaluator;
use kg_sampling::PopulationIndex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let profiles = if opts.quick {
        vec![
            DatasetProfile::nell(),
            DatasetProfile::yago(),
            DatasetProfile::movie().scaled(0.05),
        ]
    } else {
        vec![
            DatasetProfile::nell(),
            DatasetProfile::yago(),
            DatasetProfile::movie(),
        ]
    };
    let mut out = String::from(
        "Figure 5 — SRS vs TWCS(m=5): sample size and evaluation time vs confidence level\n\n",
    );
    for profile in profiles {
        let ds = profile.generate(opts.seed);
        let index = Arc::new(PopulationIndex::from_population(&ds.population).expect("non-empty"));
        let trials = opts.trials(if ds.population.sizes().len() > 10_000 {
            300
        } else {
            1000
        });
        let mut t = TextTable::new([
            "confidence",
            "SRS units(triples)",
            "SRS hours",
            "TWCS clusters",
            "TWCS triples",
            "TWCS hours",
            "reduction",
        ]);
        for alpha in [0.10, 0.05, 0.01] {
            let config = EvalConfig::default().with_alpha(alpha);
            let metrics = |eval: Evaluator| {
                let oracle = ds.oracle.clone();
                let idx = index.clone();
                run_trials(trials, opts.seed ^ 0xf165, 4, move |seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let r = eval
                        .run_with_index(idx.clone(), oracle.as_ref(), &config, &mut rng)
                        .expect("valid population");
                    vec![
                        r.units as f64,
                        r.triples_annotated as f64,
                        r.entities_identified as f64,
                        r.cost_hours(),
                    ]
                })
            };
            let srs = metrics(Evaluator::srs());
            let twcs = metrics(Evaluator::twcs(5));
            let reduction = 1.0 - twcs[3].mean() / srs[3].mean();
            t.row([
                format!("{:.0}%", (1.0 - alpha) * 100.0),
                format!("{:.0}", srs[1].mean()),
                pm(&srs[3], 2),
                format!("{:.0}", twcs[0].mean()),
                format!("{:.0}", twcs[1].mean()),
                pm(&twcs[3], 2),
                format!("{:+.0}%", reduction * 100.0),
            ]);
        }
        out.push_str(&format!(
            "{} (gold {:.0}%, {} trials)\n{}\n",
            ds.name,
            ds.gold_accuracy * 100.0,
            trials,
            t.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twcs_reduces_cost_on_nell_at_95() {
        let opts = Opts {
            quick: true,
            trial_scale: 0.3,
            ..Opts::default()
        };
        let out = run(&opts);
        // NELL's 95% row should show a positive reduction.
        let nell_block: String = out
            .lines()
            .skip_while(|l| !l.starts_with("NELL"))
            .take(7)
            .collect::<Vec<_>>()
            .join("\n");
        let row95 = nell_block
            .lines()
            .find(|l| l.starts_with("95%"))
            .unwrap_or_else(|| panic!("no 95% row\n{out}"));
        assert!(
            row95.trim_end().ends_with('%') && row95.contains('+'),
            "expected positive reduction: {row95}\n{out}"
        );
    }
}

//! Table 4: manual evaluation cost on MOVIE — SRS vs TWCS(m = 10).
//!
//! The paper's Table 4 reports two *fixed-size* human annotation tasks:
//! an SRS of 174 triples (→ 174 distinct entities, 3.53 h measured) and a
//! TWCS(m=10) sample of 24 clusters (→ 178 triples, 1.4 h measured). We
//! reproduce the same task shapes — fixed sample sizes, not the iterative
//! loop (that is Table 5 / Fig. 5) — and report Eq. 4 hours plus the
//! estimates with their MoE, averaged over trials.

use crate::table::TextTable;
use crate::trials::pm;
use crate::Opts;
use kg_annotate::annotator::{Annotator, SimulatedAnnotator};
use kg_annotate::cost::CostModel;
use kg_datagen::profile::DatasetProfile;
use kg_eval::executor::run_trials;
use kg_sampling::design::StaticDesign;
use kg_sampling::srs::SrsDesign;
use kg_sampling::twcs::TwcsDesign;
use kg_sampling::PopulationIndex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let profile = if opts.quick {
        DatasetProfile::movie().scaled(0.05)
    } else {
        DatasetProfile::movie()
    };
    let ds = profile.generate(opts.seed);
    let index = Arc::new(PopulationIndex::from_population(&ds.population).expect("non-empty"));
    let trials = opts.trials(500);

    // Paper task shapes.
    const SRS_TRIPLES: usize = 174;
    const TWCS_CLUSTERS: usize = 24;
    const TWCS_M: usize = 10;

    let mut t = TextTable::new([
        "design",
        "entities",
        "triples",
        "hours (Eq.4)",
        "estimate",
        "MoE@95%",
    ]);
    for fixed_twcs in [false, true] {
        let oracle = ds.oracle.clone();
        let idx = index.clone();
        let stats = run_trials(trials, opts.seed ^ 0x7ab4, 5, move |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut annotator = SimulatedAnnotator::new(oracle.as_ref(), CostModel::default());
            let (est, moe) = if fixed_twcs {
                let mut d = TwcsDesign::new(idx.clone(), TWCS_M);
                d.draw(&mut rng, &mut annotator, TWCS_CLUSTERS);
                let e = d.estimate();
                (e.mean, e.moe(0.05).expect("valid alpha"))
            } else {
                let mut d = SrsDesign::new(idx.clone());
                d.draw(&mut rng, &mut annotator, SRS_TRIPLES);
                let e = d.estimate();
                (e.mean, e.moe(0.05).expect("valid alpha"))
            };
            vec![
                annotator.entities_identified() as f64,
                annotator.triples_annotated() as f64,
                annotator.hours(),
                est,
                moe,
            ]
        });
        t.row([
            if fixed_twcs {
                format!("TWCS (n={TWCS_CLUSTERS}, m={TWCS_M})")
            } else {
                format!("SRS (n={SRS_TRIPLES})")
            },
            format!("{:.0}", stats[0].mean()),
            format!("{:.0}", stats[1].mean()),
            pm(&stats[2], 2),
            format!("{:.1}%", stats[3].mean() * 100.0),
            format!("{:.1}%", stats[4].mean() * 100.0),
        ]);
    }
    format!(
        "Table 4 — fixed-size annotation tasks on {} (gold {:.0}%, {} trials)\n\
         paper: SRS 174 ent/174 tr, 3.53 h measured (3.38 h by Eq.4), est 88% (MoE 4.85%);\n\
         TWCS 24 ent/178 tr, 1.4 h measured (1.54 h by Eq.4), est 90% (MoE 4.97%)\n\n{}",
        ds.name,
        ds.gold_accuracy * 100.0,
        trials,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hours_of(out: &str, design: &str) -> f64 {
        out.lines()
            .find(|l| l.starts_with(design) && l.contains('±'))
            .and_then(|l| l.split_whitespace().find(|w| w.contains('±')))
            .and_then(|s| s.split('±').next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no hours for {design}\n{out}"))
    }

    #[test]
    fn twcs_task_costs_less_than_half_of_srs_task() {
        let out = run(&Opts {
            quick: true,
            trial_scale: 0.2,
            ..Opts::default()
        });
        let srs = hours_of(&out, "SRS");
        let twcs = hours_of(&out, "TWCS");
        // Paper ratio: 1.4/3.53 ≈ 0.40; Eq.4 ratio 1.54/3.38 ≈ 0.46.
        assert!(twcs < srs * 0.75, "TWCS {twcs} vs SRS {srs}\n{out}");
    }
}

//! Figure 3: correlation between entity (cluster) accuracy and cluster
//! size on NELL and YAGO.
//!
//! The paper's observation motivating stratification (§5.3): larger entity
//! clusters tend to have higher accuracy and lower accuracy variance. We
//! print the binned scatter (mean ± std of cluster accuracy per size bin)
//! and the size–accuracy Pearson correlation.

use crate::table::TextTable;
use crate::Opts;
use kg_annotate::oracle::cluster_accuracies;
use kg_datagen::profile::DatasetProfile;
use kg_model::implicit::ClusterPopulation;
use kg_stats::RunningMoments;

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let (mut sxy, mut sxx, mut syy) = (0.0, 0.0, 0.0);
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        0.0
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let mut out = String::from("Figure 3 — entity accuracy vs cluster size\n\n");
    for profile in [DatasetProfile::nell(), DatasetProfile::yago()] {
        let ds = profile.generate(opts.seed);
        let accs = cluster_accuracies(&ds.population, ds.oracle.as_ref());
        let sizes: Vec<f64> = (0..ds.population.num_clusters())
            .map(|c| ds.population.cluster_size(c) as f64)
            .collect();

        // Bin by size.
        let bins: &[(u64, u64, &str)] = &[
            (1, 2, "1"),
            (2, 3, "2"),
            (3, 5, "3-4"),
            (5, 9, "5-8"),
            (9, 17, "9-16"),
            (17, u64::MAX, "17+"),
        ];
        let mut t = TextTable::new(["cluster size", "clusters", "mean accuracy", "std"]);
        for &(lo, hi, label) in bins {
            let mut m = RunningMoments::new();
            for (i, &s) in sizes.iter().enumerate() {
                if (s as u64) >= lo && (s as u64) < hi {
                    m.push(accs[i]);
                }
            }
            if m.count() == 0 {
                continue;
            }
            t.row([
                label.to_string(),
                format!("{}", m.count()),
                format!("{:.3}", m.mean()),
                format!("{:.3}", m.sample_std()),
            ]);
        }
        let r = pearson(&sizes, &accs);
        out.push_str(&format!(
            "{} (gold accuracy {:.0}%): Pearson(size, accuracy) = {:+.3}\n{}\n",
            ds.name,
            ds.gold_accuracy * 100.0,
            r,
            t.render()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_is_positive_on_nell() {
        let out = run(&Opts::default());
        assert!(out.contains("NELL"), "{out}");
        let r: f64 = out
            .lines()
            .find(|l| l.starts_with("NELL"))
            .and_then(|l| l.split("= ").nth(1))
            .and_then(|s| s.trim().parse().ok())
            .expect("correlation parseable");
        assert!(r > 0.05, "NELL correlation {r} should be positive\n{out}");
    }
}

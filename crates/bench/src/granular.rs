//! Granular evaluation experiment (the paper's §9 future work): per-
//! predicate accuracies on a NELL-like KG where predicates have distinct
//! error rates, plus the cross-predicate identification savings of the
//! shared annotator.

use crate::table::TextTable;
use crate::Opts;
use kg_annotate::oracle::{GoldLabels, LabelOracle};
use kg_datagen::profile::DatasetProfile;
use kg_eval::config::EvalConfig;
use kg_eval::executor::TrialExecutor;
use kg_eval::granular::evaluate_per_predicate_trials;
use kg_model::graph::KnowledgeGraph;
use kg_model::implicit::ClusterPopulation;
use kg_model::triple::TripleRef;

/// Oracle with per-predicate accuracy: predicate `p<i>`'s triples are
/// correct with probability depending on `i` (stable hash labels).
struct PerPredicateOracle<'a> {
    graph: &'a KnowledgeGraph,
    gold: GoldLabels,
}

impl<'a> PerPredicateOracle<'a> {
    fn new(graph: &'a KnowledgeGraph, seed: u64) -> Self {
        // Target accuracy per predicate id: 0.95 − 0.05·(id mod 8).
        let labels: Vec<Vec<bool>> = graph
            .clusters()
            .iter()
            .enumerate()
            .map(|(ci, c)| {
                c.triples
                    .iter()
                    .enumerate()
                    .map(|(oi, t)| {
                        let target = 0.95 - 0.05 * (t.predicate.0 % 8) as f64;
                        // Deterministic pseudo-uniform from coordinates.
                        let mut h = seed
                            ^ (ci as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            ^ (oi as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                        h ^= h >> 31;
                        h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
                        h ^= h >> 29;
                        ((h >> 11) as f64 / (1u64 << 53) as f64) < target
                    })
                    .collect()
            })
            .collect();
        PerPredicateOracle {
            graph,
            gold: GoldLabels::new(labels),
        }
    }

    fn true_predicate_accuracy(&self, predicate: u32) -> f64 {
        let (mut correct, mut total) = (0u64, 0u64);
        for (r, t) in self.graph.iter_refs() {
            if t.predicate.0 == predicate {
                total += 1;
                if self.gold.label(r) {
                    correct += 1;
                }
            }
        }
        correct as f64 / total.max(1) as f64
    }
}

impl LabelOracle for PerPredicateOracle<'_> {
    fn label(&self, t: TripleRef) -> bool {
        self.gold.label(t)
    }
}

/// Run the experiment.
pub fn run(opts: &Opts) -> String {
    let mut profile = DatasetProfile::nell();
    // A bigger materialized KG so most predicates have enough triples to
    // sample rather than census.
    profile.entities = if opts.quick { 1_000 } else { 8_000 };
    profile.triples = if opts.quick { 6_000 } else { 60_000 };
    let sizes = kg_datagen::generator::cluster_sizes(
        profile.entities,
        profile.triples,
        profile.zipf_exponent,
        profile.max_cluster,
        opts.seed,
    );
    let graph = kg_datagen::generator::materialize_graph(&sizes, 8, opts.seed);
    let oracle = PerPredicateOracle::new(&graph, opts.seed ^ 0x6a);

    let config = EvalConfig::default();
    // Trial-averaged on the shared executor (worker-count invariant).
    let trials = opts.trials(24);
    let stats = evaluate_per_predicate_trials(
        &graph,
        &oracle,
        &config,
        5,
        100,
        &TrialExecutor::new(),
        trials,
        opts.seed ^ 0x61a,
    );

    let mut t = TextTable::new([
        "predicate",
        "triples",
        "estimate",
        "MoE",
        "true accuracy",
        "within MoE?",
    ]);
    let mut hits = 0;
    for r in &stats.predicates {
        let truth = oracle.true_predicate_accuracy(r.predicate.0);
        let ok = (r.estimate.mean() - truth).abs() <= r.moe.mean().max(0.001);
        if ok {
            hits += 1;
        }
        t.row([
            graph
                .predicates()
                .resolve(r.predicate.0)
                .unwrap_or("?")
                .to_string(),
            format!("{}", r.triples),
            format!("{:.1}%", r.estimate.mean() * 100.0),
            format!("{:.1}%", r.moe.mean() * 100.0),
            format!("{:.1}%", truth * 100.0),
            if ok { "yes".into() } else { "NO".to_string() },
        ]);
    }
    format!(
        "Granular evaluation (paper §9 future work) — per-predicate accuracy\n\
         KG: {} entities / {} triples, {} predicates with distinct error rates ({} trials)\n\n{}\n\
         {}/{} predicate estimates within their MoE of the truth;\n\
         shared annotator: {:.0} entities identified for {:.0} triples across all groups ({:.1} h total).\n",
        graph.num_clusters(),
        graph.total_triples(),
        stats.predicates.len(),
        trials,
        t.render(),
        hits,
        stats.predicates.len(),
        stats.entities_identified.mean(),
        stats.triples_annotated.mean(),
        stats.cost_seconds.mean() / 3600.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_predicate_estimates_hit_their_moe() {
        let out = run(&Opts {
            quick: true,
            ..Opts::default()
        });
        // "7/8 predicate estimates within ..." — demand a strong majority.
        let line = out
            .lines()
            .find(|l| l.contains("predicate estimates within"))
            .unwrap_or_else(|| panic!("missing summary\n{out}"));
        let (hits, total) = line
            .trim()
            .split('/')
            .next()
            .zip(
                line.split('/')
                    .nth(1)
                    .and_then(|s| s.split_whitespace().next()),
            )
            .and_then(|(h, t)| Some((h.trim().parse::<u32>().ok()?, t.parse::<u32>().ok()?)))
            .unwrap_or_else(|| panic!("unparseable summary: {line}"));
        assert!(hits * 4 >= total * 3, "{hits}/{total}\n{out}");
    }
}

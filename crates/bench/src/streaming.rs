//! Tracked streaming harness: hash vs growable-dense annotation engine on
//! the §6 incremental evaluators, replaying evolving-KG update sequences.
//!
//! `bench-report --streaming` is the evolving-scenario counterpart of the
//! static throughput harness: at each base scale it generates a movie-like
//! base KG, a fixed [`UpdateGenerator`] sequence of update batches, and
//! replays the whole stream — reservoir (RS) and stratified (SS)
//! incremental evaluation — under both engines, writing the results to
//! `BENCH_streaming.json` (schema `kg-bench-streaming/v1`).
//!
//! The headline metric is again **annotated triples per second**: distinct
//! triples charged to the simulated annotator across all trials of the
//! full stream (base evaluation + every batch), divided by wall-clock time
//! of the trial loop. One-time per-scale costs are reported separately:
//! `store_build_sec` (materializing base labels) and `store_extend_sec`
//! (growing the store over the whole sequence — the amortized O(|Δ|) path),
//! since experiments amortize them over many trials: the dense engine
//! replays trials against the pre-evolved store, whose ids
//! `Annotator::extend_population` recognizes as already covered.
//!
//! Labels come from the paper's **Binomial Mixture Model** (§7.1.2,
//! Eq. 15), the realistic synthetic source whose per-query cost is what
//! the label store amortizes: every `BmmOracle::label` recomputes the
//! cluster's `p̂_i` (sigmoid + Box–Muller from hashed uniforms), so the
//! hash engine pays that per validated triple while the dense engine reads
//! one materialized bit. The monitoring configuration is tighter than the
//! paper's §7 default (ε = 1% at 95%, m = 10): a production accuracy
//! monitor tracks small regressions, and under BMM's between-cluster
//! variance the tight target is what sizes per-batch samples into the
//! thousands of units, making the replay annotation-bound rather than
//! bookkeeping-bound. RS re-draws its top-up sample every batch (its frame
//! goes stale), so it is the annotation-heavy evaluator; SS samples only
//! the newest stratum and stays cheaper in absolute terms.

use kg_annotate::annotator::{Annotator, SimulatedAnnotator};
use kg_annotate::cost::CostModel;
use kg_annotate::dense::DenseAnnotator;
use kg_annotate::label_store::LabelStore;
use kg_annotate::oracle::BmmOracle;
use kg_datagen::evolve::UpdateGenerator;
use kg_datagen::generator::cluster_sizes;
use kg_eval::config::EvalConfig;
use kg_eval::dynamic::monitor::run_sequence;
use kg_eval::dynamic::reservoir::ReservoirEvaluator;
use kg_eval::dynamic::stratified::StratifiedIncremental;
use kg_eval::executor::run_trials;
use kg_model::implicit::{ClusterPopulation, ImplicitKg};
use kg_model::update::UpdateBatch;
use kg_sampling::PopulationIndex;
use kg_stats::PointEstimate;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Instant;

/// Options for a streaming run.
#[derive(Debug, Clone, Copy)]
pub struct StreamingOpts {
    /// Quick mode: drop the 10^7 scale and shrink trial counts (CI).
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for StreamingOpts {
    fn default() -> Self {
        StreamingOpts {
            quick: false,
            seed: 20190923,
        }
    }
}

/// Update batches per sequence.
pub const NUM_BATCHES: usize = 6;
/// Each batch inserts this fraction of the base triple count.
pub const UPDATE_FRACTION: f64 = 0.2;
/// Second-stage sample size per drawn cluster.
const M: usize = 10;
/// Reservoir capacity |R|.
const CAPACITY: usize = 100;

fn monitor_config() -> EvalConfig {
    EvalConfig::default()
        .with_target_moe(0.01)
        .with_batch_size(100)
}

/// One (scale, evaluator, engine) measurement.
#[derive(Debug, Clone)]
pub struct StreamingMeasurement {
    /// Evaluator name (`RS` / `SS`).
    pub evaluator: &'static str,
    /// Engine name (`hash` / `dense`).
    pub engine: &'static str,
    /// Full-stream replays timed.
    pub trials: u64,
    /// Distinct triples annotated across all trials.
    pub annotated: u64,
    /// Wall-clock seconds for the whole trial loop.
    pub elapsed_sec: f64,
    /// `annotated / elapsed_sec`.
    pub annotated_per_sec: f64,
    /// Estimate after the final batch, averaged over trials (sanity:
    /// engines are byte-identical per trial, so these must agree exactly).
    pub mean_final_estimate: f64,
}

/// All measurements at one base scale.
#[derive(Debug, Clone)]
pub struct StreamingScaleReport {
    /// Base KG triple count (~target).
    pub base_triples: u64,
    /// Base KG cluster count.
    pub base_clusters: u64,
    /// Triple count after the full update sequence.
    pub evolved_triples: u64,
    /// Cluster count after the full update sequence.
    pub evolved_clusters: u64,
    /// One-time base `LabelStore` materialization seconds (dense only).
    pub store_build_sec: f64,
    /// One-time store growth over all `NUM_BATCHES` batches (dense only).
    pub store_extend_sec: f64,
    /// Per-evaluator, per-engine measurements.
    pub measurements: Vec<StreamingMeasurement>,
}

impl StreamingScaleReport {
    /// dense / hash throughput ratio for one evaluator at this scale.
    pub fn speedup(&self, evaluator: &str) -> Option<f64> {
        let get = |engine: &str| {
            self.measurements
                .iter()
                .find(|m| m.evaluator == evaluator && m.engine == engine)
                .map(|m| m.annotated_per_sec)
        };
        Some(get("dense")? / get("hash")?)
    }

    /// dense / hash ratio over the combined stream (both evaluators).
    pub fn combined_speedup(&self) -> Option<f64> {
        let total = |engine: &str| {
            let (mut ann, mut sec) = (0u64, 0f64);
            for m in self.measurements.iter().filter(|m| m.engine == engine) {
                ann += m.annotated;
                sec += m.elapsed_sec;
            }
            (sec > 0.0).then_some(ann as f64 / sec)
        };
        Some(total("dense")? / total("hash")?)
    }
}

/// A full streaming report.
#[derive(Debug, Clone)]
pub struct StreamingReport {
    /// Whether this was a quick (CI) run.
    pub quick: bool,
    /// Base seed used.
    pub seed: u64,
    /// Per-scale results, ascending.
    pub scales: Vec<StreamingScaleReport>,
}

struct Setup {
    base: ImplicitKg,
    oracle: BmmOracle,
    batches: Vec<UpdateBatch>,
    base_estimate: PointEstimate,
}

fn setup(target: u64, seed: u64) -> Setup {
    // Movie-like long-tail base (the §7.3 evolving setting).
    let clusters = ((target as f64 / 9.2) as usize).max(1);
    let sizes = cluster_sizes(clusters, target.max(clusters as u64), 1.9, 4000, seed);
    let base = ImplicitKg::new(sizes).expect("generator emits non-empty clusters");
    let per_batch = ((target as f64 * UPDATE_FRACTION) as u64).max(1);
    let batches = UpdateGenerator::movie_like().sequence(NUM_BATCHES, per_batch, seed ^ 0x5eed);
    // BMM needs the size of every cluster it will ever label — base plus
    // all delta-minted ones (ids are assigned positionally, batch order).
    let mut evolved_sizes = base.sizes().to_vec();
    for b in &batches {
        evolved_sizes.extend_from_slice(b.delta_sizes());
    }
    let oracle = BmmOracle::with_defaults(Arc::new(evolved_sizes), seed ^ target);
    // Honest frozen base estimate for SS: one static TWCS run at the
    // monitoring target (untimed; identical input for both engines).
    let idx = Arc::new(PopulationIndex::from_population(&base).expect("non-empty base"));
    let mut rng = StdRng::seed_from_u64(seed ^ 0xba5e);
    let base_estimate = kg_eval::framework::Evaluator::twcs(M)
        .run_with_index(idx, &oracle, &monitor_config(), &mut rng)
        .expect("valid base population")
        .estimate;
    Setup {
        base,
        oracle,
        batches,
        base_estimate,
    }
}

/// Replay the full stream once under the given annotator; returns the
/// final-batch estimate.
fn replay(
    evaluator: &'static str,
    s: &Setup,
    config: EvalConfig,
    annotator: &mut dyn Annotator,
    trial_seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(trial_seed);
    let outcomes = match evaluator {
        "RS" => {
            let mut rs = ReservoirEvaluator::evaluate_base(
                &s.base, CAPACITY, M, config, annotator, &mut rng,
            );
            run_sequence(&mut rs, &s.batches, config.alpha, annotator, &mut rng)
        }
        "SS" => {
            let mut ss = StratifiedIncremental::from_base(&s.base, s.base_estimate, M, config);
            run_sequence(&mut ss, &s.batches, config.alpha, annotator, &mut rng)
        }
        other => panic!("unknown evaluator {other}"),
    };
    outcomes.last().expect("non-empty sequence").estimate.mean
}

fn run_scale(target: u64, trials: u64, seed: u64) -> StreamingScaleReport {
    let s = setup(target, seed);
    let config = monitor_config();

    // Dense label state: base store materialized once, then grown over the
    // whole sequence — the amortized O(|Δ|) append path. Trials replay
    // against the evolved store (extend_population no-ops on covered ids).
    let t0 = Instant::now();
    let mut store = LabelStore::materialize(&s.base, &s.oracle);
    let store_build_sec = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    for batch in &s.batches {
        store.extend_with_batch(batch, &s.oracle);
    }
    let store_extend_sec = t0.elapsed().as_secs_f64();
    let evolved_triples = store.total_triples();
    let evolved_clusters = store.num_clusters() as u64;
    let mut dense = DenseAnnotator::new(Arc::new(store), CostModel::default());

    let mut measurements = Vec::new();
    for evaluator in ["RS", "SS"] {
        // Hash engine: a fresh SimulatedAnnotator per replay, exactly how
        // every pre-dense evolving experiment ran. One untimed warmup
        // replay per engine takes page faults and branch training out of
        // the measurement.
        let run_hash = |t: u64| -> (u64, f64) {
            let mut ann = SimulatedAnnotator::new(&s.oracle, CostModel::default());
            let est = replay(evaluator, &s, config, &mut ann, seed ^ (t * 7919));
            (ann.triples_annotated() as u64, est)
        };
        run_hash(trials); // warmup (fresh seed, untimed)
        let mut annotated = 0u64;
        let mut est_sum = 0.0;
        let t0 = Instant::now();
        for t in 0..trials {
            let (a, e) = run_hash(t);
            annotated += a;
            est_sum += e;
        }
        let elapsed = t0.elapsed().as_secs_f64();
        measurements.push(StreamingMeasurement {
            evaluator,
            engine: "hash",
            trials,
            annotated,
            elapsed_sec: elapsed,
            annotated_per_sec: annotated as f64 / elapsed,
            mean_final_estimate: est_sum / trials as f64,
        });

        // Dense engine: one shared arena over the pre-evolved store,
        // journal-bounded reset per replay.
        let mut run_dense = |t: u64| -> (u64, f64) {
            dense.reset();
            let est = replay(evaluator, &s, config, &mut dense, seed ^ (t * 7919));
            (dense.triples_annotated() as u64, est)
        };
        run_dense(trials); // warmup (fresh seed, untimed)
        let mut annotated = 0u64;
        let mut est_sum = 0.0;
        let t0 = Instant::now();
        for t in 0..trials {
            let (a, e) = run_dense(t);
            annotated += a;
            est_sum += e;
        }
        let elapsed = t0.elapsed().as_secs_f64();
        measurements.push(StreamingMeasurement {
            evaluator,
            engine: "dense",
            trials,
            annotated,
            elapsed_sec: elapsed,
            annotated_per_sec: annotated as f64 / elapsed,
            mean_final_estimate: est_sum / trials as f64,
        });
    }
    StreamingScaleReport {
        base_triples: s.base.total_triples(),
        base_clusters: s.base.num_clusters() as u64,
        evolved_triples,
        evolved_clusters,
        store_build_sec,
        store_extend_sec,
        measurements,
    }
}

/// Run the harness.
pub fn run(opts: &StreamingOpts) -> StreamingReport {
    let scales: &[(u64, u64)] = if opts.quick {
        // (base triples, trials)
        &[(100_000, 10), (1_000_000, 6)]
    } else {
        &[(100_000, 40), (1_000_000, 16), (10_000_000, 4)]
    };
    StreamingReport {
        quick: opts.quick,
        seed: opts.seed,
        scales: scales
            .iter()
            .map(|&(target, trials)| run_scale(target, trials, opts.seed))
            .collect(),
    }
}

/// Render the report as the `BENCH_streaming.json` document
/// (schema `kg-bench-streaming/v1`; see README § Evolving KGs).
pub fn to_json(report: &StreamingReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"kg-bench-streaming/v1\",\n");
    s.push_str(&format!("  \"quick\": {},\n", report.quick));
    s.push_str(&format!("  \"seed\": {},\n", report.seed));
    s.push_str("  \"metric\": \"annotated_triples_per_second\",\n");
    let cfg = monitor_config();
    s.push_str(&format!(
        "  \"config\": {{\"target_moe\": {}, \"alpha\": {}, \"m\": {M}, \
         \"reservoir_capacity\": {CAPACITY}, \"num_batches\": {NUM_BATCHES}, \
         \"update_fraction\": {UPDATE_FRACTION}}},\n",
        cfg.target_moe, cfg.alpha
    ));
    s.push_str("  \"scales\": [\n");
    for (i, sc) in report.scales.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"base_triples\": {},\n", sc.base_triples));
        s.push_str(&format!("      \"base_clusters\": {},\n", sc.base_clusters));
        s.push_str(&format!(
            "      \"evolved_triples\": {},\n",
            sc.evolved_triples
        ));
        s.push_str(&format!(
            "      \"evolved_clusters\": {},\n",
            sc.evolved_clusters
        ));
        s.push_str(&format!(
            "      \"store_build_sec\": {:.6},\n",
            sc.store_build_sec
        ));
        s.push_str(&format!(
            "      \"store_extend_sec\": {:.6},\n",
            sc.store_extend_sec
        ));
        s.push_str("      \"measurements\": [\n");
        for (j, m) in sc.measurements.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"evaluator\": \"{}\", \"engine\": \"{}\", \"trials\": {}, \
                 \"annotated\": {}, \"elapsed_sec\": {:.6}, \"annotated_per_sec\": {:.1}, \
                 \"mean_final_estimate\": {:.6}}}{}\n",
                m.evaluator,
                m.engine,
                m.trials,
                m.annotated,
                m.elapsed_sec,
                m.annotated_per_sec,
                m.mean_final_estimate,
                if j + 1 < sc.measurements.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("      ],\n");
        s.push_str("      \"speedup_dense_over_hash\": {");
        let mut parts: Vec<String> = ["RS", "SS"]
            .iter()
            .filter_map(|ev| sc.speedup(ev).map(|x| format!("\"{ev}\": {x:.2}")))
            .collect();
        if let Some(c) = sc.combined_speedup() {
            parts.push(format!("\"combined\": {c:.2}"));
        }
        s.push_str(&parts.join(", "));
        s.push_str("}\n");
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < report.scales.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Human-readable table for the console.
pub fn render_table(report: &StreamingReport) -> String {
    let mut s = String::new();
    for sc in &report.scales {
        s.push_str(&format!(
            "base {:>9} triples, {:>8} clusters → evolved {:>9} triples \
             (store {:.3}s, extend {:.3}s)\n",
            sc.base_triples,
            sc.base_clusters,
            sc.evolved_triples,
            sc.store_build_sec,
            sc.store_extend_sec
        ));
        s.push_str("  eval  engine  trials  annotated   elapsed(s)  annotated/s   final est\n");
        for m in &sc.measurements {
            s.push_str(&format!(
                "  {:<4}  {:<6}  {:>6}  {:>9}  {:>11.4}  {:>11.0}  {:.4}\n",
                m.evaluator,
                m.engine,
                m.trials,
                m.annotated,
                m.elapsed_sec,
                m.annotated_per_sec,
                m.mean_final_estimate
            ));
        }
        for ev in ["RS", "SS"] {
            if let Some(x) = sc.speedup(ev) {
                s.push_str(&format!("  {ev:<4} dense/hash speedup: {x:.2}x\n"));
            }
        }
        if let Some(c) = sc.combined_speedup() {
            s.push_str(&format!("  combined dense/hash speedup: {c:.2}x\n"));
        }
        s.push('\n');
    }
    s
}

/// Deterministic cross-engine agreement check used by the test below and
/// available to callers: every trial's final estimate must be
/// byte-identical across engines (the monitor is engine-agnostic).
pub fn engines_agree(target: u64, seed: u64) -> bool {
    let s = setup(target, seed);
    let config = monitor_config();
    let mut evolved = LabelStore::materialize(&s.base, &s.oracle);
    for b in &s.batches {
        evolved.extend_with_batch(b, &s.oracle);
    }
    let mut dense = DenseAnnotator::new(Arc::new(evolved), CostModel::default());
    ["RS", "SS"].iter().all(|ev| {
        let mut hash = SimulatedAnnotator::new(&s.oracle, CostModel::default());
        let h = replay(ev, &s, config, &mut hash, seed ^ 1);
        dense.reset();
        let d = replay(ev, &s, config, &mut dense, seed ^ 1);
        h.to_bits() == d.to_bits()
            && hash.seconds().to_bits() == dense.seconds().to_bits()
            && hash.triples_annotated() == dense.triples_annotated()
    })
}

/// Deterministic offer-path agreement check: replay the full RS stream
/// under the **batched** (`offer_batch` + bulk PPS appends) and
/// **per-item** reservoir offer paths, under both annotation engines, and
/// byte-compare every per-batch estimate, the final cost, and the
/// annotated-triple accounting. The batched skeleton is designed to be
/// bitwise stream-identical; CI byte-diffs a replay through this hook.
pub fn offer_modes_agree(target: u64, seed: u64) -> bool {
    use kg_eval::dynamic::reservoir::OfferMode;
    let s = setup(target, seed);
    let config = monitor_config();
    let mut evolved = LabelStore::materialize(&s.base, &s.oracle);
    for b in &s.batches {
        evolved.extend_with_batch(b, &s.oracle);
    }
    let mut dense = DenseAnnotator::new(Arc::new(evolved), CostModel::default());
    let run = |mode: OfferMode, annotator: &mut dyn Annotator| -> Vec<u64> {
        let mut rng = StdRng::seed_from_u64(seed ^ 3);
        let mut rs = ReservoirEvaluator::evaluate_base_with_mode(
            &s.base, CAPACITY, M, config, mode, annotator, &mut rng,
        );
        let outcomes = run_sequence(&mut rs, &s.batches, config.alpha, annotator, &mut rng);
        let mut sig: Vec<u64> = outcomes
            .iter()
            .flat_map(|o| {
                [
                    o.estimate.mean.to_bits(),
                    o.estimate.var_of_mean.to_bits(),
                    o.moe.to_bits(),
                    o.batch_cost_seconds.to_bits(),
                ]
            })
            .collect();
        sig.push(rs.replacements());
        sig.push(rs.total_triples());
        sig.push(annotator.seconds().to_bits());
        sig
    };
    let sigs: Vec<Vec<u64>> = [OfferMode::PerItem, OfferMode::Batched]
        .iter()
        .flat_map(|&mode| {
            let mut hash = SimulatedAnnotator::new(&s.oracle, CostModel::default());
            let h = run(mode, &mut hash);
            dense.reset();
            let d = run(mode, &mut dense);
            [h, d]
        })
        .collect();
    sigs.iter().all(|sig| sig == &sigs[0])
}

/// Average per-batch CI coverage of the truth across seeded replays — the
/// statistical backbone the slow `--ignored` suites assert on at higher
/// trial counts.
pub fn coverage_after_stream(
    evaluator: &'static str,
    engine: &'static str,
    target: u64,
    trials: u64,
    base_seed: u64,
) -> f64 {
    let s = setup(target, base_seed);
    let config = monitor_config();
    let mut evolved = LabelStore::materialize(&s.base, &s.oracle);
    for b in &s.batches {
        evolved.extend_with_batch(b, &s.oracle);
    }
    let truth = evolved.true_accuracy();
    let store = Arc::new(evolved);
    let stats = run_trials(trials, base_seed, 1, |trial_seed| {
        let hit = match engine {
            "hash" => {
                let mut ann = SimulatedAnnotator::new(&s.oracle, CostModel::default());
                let est = replay(evaluator, &s, config, &mut ann, trial_seed);
                (est - truth).abs() <= config.target_moe
            }
            "dense" => {
                let mut ann = DenseAnnotator::new(store.clone(), CostModel::default());
                let est = replay(evaluator, &s, config, &mut ann, trial_seed);
                (est - truth).abs() <= config.target_moe
            }
            other => panic!("unknown engine {other}"),
        };
        vec![hit as u64 as f64]
    });
    stats[0].mean()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_streaming_run_is_consistent_and_renders() {
        let report = StreamingReport {
            quick: true,
            seed: 7,
            scales: vec![run_scale(4_000, 2, 42)],
        };
        let sc = &report.scales[0];
        assert!(sc.base_triples >= 3_000);
        assert!(sc.evolved_triples > sc.base_triples);
        assert_eq!(sc.measurements.len(), 4);
        for pair in sc.measurements.chunks(2) {
            assert_eq!(pair[0].evaluator, pair[1].evaluator);
            assert_eq!(pair[0].engine, "hash");
            assert_eq!(pair[1].engine, "dense");
            assert_eq!(
                pair[0].annotated, pair[1].annotated,
                "{}: engines annotated different triple counts",
                pair[0].evaluator
            );
            assert_eq!(
                pair[0].mean_final_estimate.to_bits(),
                pair[1].mean_final_estimate.to_bits(),
                "{}: engines disagree",
                pair[0].evaluator
            );
        }
        let json = to_json(&report);
        assert!(json.contains("\"schema\": \"kg-bench-streaming/v1\""));
        assert!(json.contains("speedup_dense_over_hash"));
        assert!(json.contains("\"combined\""));
        let table = render_table(&report);
        assert!(table.contains("dense/hash speedup"));
    }

    #[test]
    fn engines_agree_on_a_small_stream() {
        assert!(engines_agree(3_000, 99));
    }
}

//! Stratified TWCS (§5.3).
//!
//! Clusters are partitioned into `H` strata; TWCS runs independently inside
//! each; the combined estimator is `μ̂_ss = Σ_h W_h·μ̂_{w,m,h}` with variance
//! `Σ_h W_h²·Var(μ̂_{w,m,h})` (Eq. 13), where `W_h` is the stratum's share
//! of *triples*. When strata are accuracy-homogeneous the combined variance
//! drops below unstratified TWCS, cutting the required sample size.
//!
//! Two strategies from the paper's §7.2.3:
//!
//! * **Size stratification** — the observable signal: cluster size, cut by
//!   the cumulative-√F rule (Table 7 uses 2 strata on NELL, 4 on MOVIE).
//! * **Oracle stratification** — the unobservable ideal: stratify directly
//!   on (expected) cluster accuracy. Not realizable in practice; reported
//!   as the lower bound of achievable cost.

use crate::design::StaticDesign;
use crate::index::PopulationIndex;
use crate::twcs::annotate_cluster_subset;
use kg_annotate::annotator::Annotator;
use kg_annotate::oracle::LabelOracle;
use kg_stats::alias::AliasTable;
use kg_stats::stratify::{assign_strata, cum_sqrt_f_boundaries, Allocation};
use kg_stats::{PointEstimate, RunningMoments};
use rand::RngCore;
use std::sync::Arc;

/// How to partition clusters into strata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StratificationStrategy {
    /// Cumulative-√F over cluster sizes.
    Size {
        /// Desired number of strata.
        strata: usize,
    },
    /// Quantile groups over the oracle's expected cluster accuracy (the
    /// "perfect but impossible in practice" baseline of Table 7).
    Oracle {
        /// Desired number of strata.
        strata: usize,
    },
}

struct Stratum {
    /// Global cluster ids belonging to the stratum.
    clusters: Vec<u32>,
    /// PPS table over the stratum's cluster sizes.
    alias: AliasTable,
    /// Stratum triple-share `W_h`.
    weight: f64,
    /// Per-draw second-stage accuracies.
    accuracies: RunningMoments,
}

/// Per-stratum draw count below which the variance plug-in is distrusted:
/// a stratum's `s²` from a handful of draws can be spuriously zero, and a
/// single under-sampled stratum with zero reported variance silently drops
/// out of the combined MoE (Eq. 13), stopping the loop on a biased
/// estimate.
const MIN_PER_STRATUM: u64 = 10;

impl Stratum {
    fn estimate(&self, m: usize) -> PointEstimate {
        let n = self.accuracies.count();
        if n < 2 {
            // No variance information at all: worst-case Bernoulli.
            return PointEstimate::new(
                if n == 1 { self.accuracies.mean() } else { 0.5 },
                0.25,
                n as usize,
            )
            .expect("constant variance is valid");
        }
        let mut var = kg_sampling_floored(&self.accuracies, m);
        if n < MIN_PER_STRATUM {
            // Distrust s² from a handful of draws: keep the stratum's MoE
            // contribution conservative so sampling continues.
            var = var.max(0.25 / n as f64);
        }
        PointEstimate::new(self.accuracies.mean(), var, n as usize)
            .expect("plug-in variance is non-negative")
    }
}

use crate::twcs::floored_variance_of_mean as kg_sampling_floored;

/// Stratified TWCS design (Eq. 13).
pub struct StratifiedTwcs {
    index: Arc<PopulationIndex>,
    strata: Vec<Stratum>,
    m: usize,
    allocation: Allocation,
    /// Reusable second-stage offset buffer shared by all strata.
    offsets_scratch: Vec<usize>,
}

impl StratifiedTwcs {
    /// Build strata over the population and return the design.
    ///
    /// `oracle` is consulted only by [`StratificationStrategy::Oracle`].
    pub fn new(
        index: Arc<PopulationIndex>,
        m: usize,
        strategy: StratificationStrategy,
        oracle: &dyn LabelOracle,
    ) -> Self {
        assert!(m >= 1, "second-stage size m must be at least 1");
        let assignment = match &strategy {
            StratificationStrategy::Size { strata } => {
                let sizes: Vec<u64> = index.sizes().iter().map(|&s| s as u64).collect();
                let bounds = cum_sqrt_f_boundaries(&sizes, *strata)
                    .expect("non-empty population with >= 1 stratum");
                assign_strata(&sizes, &bounds)
            }
            StratificationStrategy::Oracle { strata } => {
                let h = (*strata).max(1);
                let n = index.num_clusters();
                // Rank clusters by their exact realized accuracy — the
                // paper's "perfect stratification" — and split into H
                // quantile groups of (nearly) equal cluster counts.
                let mut ranked: Vec<(usize, f64)> = (0..n)
                    .map(|c| (c, oracle.cluster_accuracy(c as u32, index.cluster_size(c))))
                    .collect();
                ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("accuracies are finite"));
                let mut assignment = vec![0usize; n];
                for (rank, (c, _)) in ranked.into_iter().enumerate() {
                    assignment[c] = (rank * h / n).min(h - 1);
                }
                assignment
            }
        };

        let h = assignment.iter().copied().max().map_or(1, |m| m + 1);
        let total = index.total_triples() as f64;
        let mut strata: Vec<Stratum> = Vec::with_capacity(h);
        for s in 0..h {
            let clusters: Vec<u32> = (0..index.num_clusters())
                .filter(|&c| assignment[c] == s)
                .map(|c| c as u32)
                .collect();
            if clusters.is_empty() {
                continue;
            }
            let sizes: Vec<u32> = clusters
                .iter()
                .map(|&c| index.cluster_size(c as usize) as u32)
                .collect();
            let weight = sizes.iter().map(|&x| x as f64).sum::<f64>() / total;
            let alias = AliasTable::from_sizes(&sizes).expect("non-empty stratum");
            strata.push(Stratum {
                clusters,
                alias,
                weight,
                accuracies: RunningMoments::new(),
            });
        }
        StratifiedTwcs {
            index,
            strata,
            m,
            allocation: Allocation::Neyman,
            offsets_scratch: Vec::with_capacity(m),
        }
    }

    /// Number of (non-empty) strata.
    pub fn num_strata(&self) -> usize {
        self.strata.len()
    }

    /// Override the allocation policy (default: Neyman with proportional
    /// fallback before variances are known).
    pub fn with_allocation(mut self, allocation: Allocation) -> Self {
        self.allocation = allocation;
        self
    }

    /// Stratum triple-share weights `W_h`.
    pub fn weights(&self) -> Vec<f64> {
        self.strata.iter().map(|s| s.weight).collect()
    }
}

impl StaticDesign for StratifiedTwcs {
    fn draw(
        &mut self,
        rng: &mut dyn RngCore,
        annotator: &mut dyn Annotator,
        batch: usize,
    ) -> usize {
        let weights: Vec<f64> = self.strata.iter().map(|s| s.weight).collect();
        let m = self.m;
        let stds: Vec<f64> = self
            .strata
            .iter()
            .map(|s| {
                let n = s.accuracies.count();
                if n < MIN_PER_STRATUM {
                    // Under-explored: worst-case Bernoulli std pushes
                    // allocation toward the stratum.
                    0.5
                } else {
                    // Floor the allocation score by the same within-cluster
                    // bound as the variance plug-in: a stratum whose few
                    // draws happen to coincide must keep receiving draws,
                    // otherwise its conservative variance deadlocks the
                    // MoE loop (score 0 ⇒ no draws ⇒ variance never
                    // updates).
                    let per_draw_floor = kg_sampling_floored(&s.accuracies, m) * n as f64;
                    s.accuracies.sample_std().max(per_draw_floor.sqrt())
                }
            })
            .collect();
        let alloc = self.allocation.allocate(batch, &weights, &stds);
        let mut drawn = 0;
        for (h, &n_h) in alloc.iter().enumerate() {
            for _ in 0..n_h {
                let stratum = &mut self.strata[h];
                let local = stratum.alias.sample(rng);
                let cluster = stratum.clusters[local] as usize;
                let acc = annotate_cluster_subset(
                    cluster as u32,
                    self.index.cluster_size(cluster),
                    self.m,
                    rng,
                    annotator,
                    &mut self.offsets_scratch,
                );
                stratum.accuracies.push(acc);
                drawn += 1;
            }
        }
        drawn
    }

    fn estimate(&self) -> PointEstimate {
        if self.strata.iter().all(|s| s.accuracies.count() == 0) {
            return PointEstimate::uninformative();
        }
        let m = self.m;
        PointEstimate::stratified(self.strata.iter().map(|s| (s.weight, s.estimate(m))))
            .expect("stratum weights sum to one")
    }

    fn units(&self) -> usize {
        self.strata
            .iter()
            .map(|s| s.accuracies.count() as usize)
            .sum()
    }

    fn name(&self) -> &'static str {
        "TWCS+strat"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::twcs::TwcsDesign;
    use kg_annotate::annotator::SimulatedAnnotator;
    use kg_annotate::cost::CostModel;
    use kg_annotate::oracle::{true_accuracy, BmmOracle};
    use kg_model::implicit::ImplicitKg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bmm_setup() -> (ImplicitKg, BmmOracle) {
        // Long-tail sizes with BMM labels: size strongly predicts accuracy.
        let sizes: Vec<u32> = (0..800)
            .map(|i| match i % 8 {
                0 => 400,
                1 | 2 => 40,
                _ => 1 + (i % 3),
            })
            .collect();
        let kg = ImplicitKg::new(sizes.clone()).unwrap();
        let oracle = BmmOracle::new(Arc::new(sizes), 3, 0.05, 0.05, 42);
        (kg, oracle)
    }

    #[test]
    fn weights_sum_to_one_and_partition() {
        let (kg, oracle) = bmm_setup();
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let d = StratifiedTwcs::new(
            idx.clone(),
            5,
            StratificationStrategy::Size { strata: 4 },
            &oracle,
        );
        let wsum: f64 = d.weights().iter().sum();
        assert!((wsum - 1.0).abs() < 1e-9, "weights sum {wsum}");
        assert!(d.num_strata() >= 2);
        // Every cluster in exactly one stratum.
        let total: usize = d.strata.iter().map(|s| s.clusters.len()).sum();
        assert_eq!(total, idx.num_clusters());
    }

    #[test]
    fn stratified_estimator_is_unbiased() {
        let (kg, oracle) = bmm_setup();
        let truth = true_accuracy(&kg, &oracle);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let reps = 300;
        let mut sum = 0.0;
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut d = StratifiedTwcs::new(
                idx.clone(),
                5,
                StratificationStrategy::Size { strata: 4 },
                &oracle,
            );
            let mut a = SimulatedAnnotator::new(&oracle, CostModel::default());
            d.draw(&mut rng, &mut a, 60);
            sum += d.estimate().mean;
        }
        let avg = sum / reps as f64;
        assert!((avg - truth).abs() < 0.015, "avg {avg} vs truth {truth}");
    }

    #[test]
    fn oracle_stratification_reduces_variance_vs_plain_twcs() {
        let (kg, oracle) = bmm_setup();
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let reps = 200;
        let units = 60;
        let mut strat = RunningMoments::new();
        let mut plain = RunningMoments::new();
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut d = StratifiedTwcs::new(
                idx.clone(),
                5,
                StratificationStrategy::Oracle { strata: 4 },
                &oracle,
            );
            let mut a = SimulatedAnnotator::new(&oracle, CostModel::default());
            d.draw(&mut rng, &mut a, units);
            strat.push(d.estimate().mean);

            let mut rng = StdRng::seed_from_u64(seed + 55_555);
            let mut t = TwcsDesign::new(idx.clone(), 5);
            let mut a = SimulatedAnnotator::new(&oracle, CostModel::default());
            t.draw(&mut rng, &mut a, units);
            plain.push(t.estimate().mean);
        }
        assert!(
            strat.sample_variance() < plain.sample_variance(),
            "stratified var {} !< plain var {}",
            strat.sample_variance(),
            plain.sample_variance()
        );
    }

    #[test]
    fn undersampled_strata_keep_moe_conservative() {
        let (kg, oracle) = bmm_setup();
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let mut rng = StdRng::seed_from_u64(1);
        let mut d =
            StratifiedTwcs::new(idx, 5, StratificationStrategy::Size { strata: 4 }, &oracle)
                .with_allocation(Allocation::Proportional);
        let mut a = SimulatedAnnotator::new(&oracle, CostModel::default());
        // One draw lands in one stratum; the others are unexplored → MoE
        // must stay large.
        d.draw(&mut rng, &mut a, 1);
        assert!(d.estimate().moe(0.05).unwrap() > 0.2);
    }
}

//! The [`StaticDesign`] trait implemented by every sampling design, and the
//! [`Design`] factory enum used by the evaluation framework and experiment
//! harness to select designs by name.

use crate::index::PopulationIndex;
use crate::rcs::RcsDesign;
use crate::srs::SrsDesign;
use crate::stratified::{StratificationStrategy, StratifiedTwcs};
use crate::tsrcs::TsRcsDesign;
use crate::twcs::TwcsDesign;
use crate::wcs::WcsDesign;
use kg_annotate::annotator::Annotator;
use kg_annotate::oracle::LabelOracle;
use kg_stats::PointEstimate;
use rand::RngCore;
use std::sync::Arc;

/// A sampling design running the paper's iterative loop: draw a batch of
/// sampling units, annotate them, and re-estimate.
///
/// Implementations keep all per-sample state internally so the framework can
/// alternate `draw` / `estimate` until the MoE target is met (Fig. 2).
///
/// The annotator is any [`Annotator`] engine — the hash-based
/// `SimulatedAnnotator` reference or the dense arena-backed
/// `DenseAnnotator`; designs only use the allocation-free batch APIs
/// (`annotate_cluster` / `annotate_offsets` / `annotate_into`), so the
/// engine choice is purely a throughput knob.
pub trait StaticDesign {
    /// Draw up to `batch` additional sampling units (triples for SRS,
    /// clusters for the cluster designs), annotating through `annotator`.
    /// Returns the number of units actually drawn — 0 means the population
    /// is exhausted (finite designs only).
    fn draw(&mut self, rng: &mut dyn RngCore, annotator: &mut dyn Annotator, batch: usize)
        -> usize;

    /// Current unbiased estimate of the KG accuracy with its estimated
    /// variance; [`PointEstimate::uninformative`] before any draws.
    fn estimate(&self) -> PointEstimate;

    /// Number of independent sampling units drawn so far.
    fn units(&self) -> usize;

    /// Human-readable design name for reports.
    fn name(&self) -> &'static str;
}

/// Factory enum selecting a design and its parameters.
#[derive(Debug, Clone)]
pub enum Design {
    /// Simple random sampling of triples (§5.1).
    Srs,
    /// Random cluster sampling (§5.2.1).
    Rcs,
    /// Weighted (PPS) cluster sampling (§5.2.2).
    Wcs,
    /// Two-stage weighted cluster sampling with second-stage cap `m`
    /// (§5.2.3).
    Twcs {
        /// Maximum triples drawn per sampled cluster.
        m: usize,
    },
    /// Two-stage *random* (uniform) cluster sampling — the variant §5.2.3
    /// omits as inferior; kept for the ablation experiment.
    TsRcs {
        /// Maximum triples drawn per sampled cluster.
        m: usize,
    },
    /// TWCS inside strata (§5.3).
    StratifiedTwcs {
        /// Second-stage cap within each stratum.
        m: usize,
        /// How to build the strata.
        strategy: StratificationStrategy,
    },
}

impl Design {
    /// Instantiate the design over a population index.
    ///
    /// `oracle` is consulted only by oracle stratification (to rank clusters
    /// by expected accuracy); all other designs ignore it.
    pub fn instantiate(
        &self,
        index: Arc<PopulationIndex>,
        oracle: &dyn LabelOracle,
    ) -> Box<dyn StaticDesign> {
        match self {
            Design::Srs => Box::new(SrsDesign::new(index)),
            Design::Rcs => Box::new(RcsDesign::new(index)),
            Design::Wcs => Box::new(WcsDesign::new(index)),
            Design::Twcs { m } => Box::new(TwcsDesign::new(index, *m)),
            Design::TsRcs { m } => Box::new(TsRcsDesign::new(index, *m)),
            Design::StratifiedTwcs { m, strategy } => {
                Box::new(StratifiedTwcs::new(index, *m, strategy.clone(), oracle))
            }
        }
    }

    /// Report name.
    pub fn name(&self) -> &'static str {
        match self {
            Design::Srs => "SRS",
            Design::Rcs => "RCS",
            Design::Wcs => "WCS",
            Design::Twcs { .. } => "TWCS",
            Design::TsRcs { .. } => "TSRCS",
            Design::StratifiedTwcs { .. } => "TWCS+strat",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_annotate::oracle::RemOracle;

    #[test]
    fn factory_names() {
        assert_eq!(Design::Srs.name(), "SRS");
        assert_eq!(Design::Twcs { m: 5 }.name(), "TWCS");
        assert_eq!(
            Design::StratifiedTwcs {
                m: 5,
                strategy: StratificationStrategy::Size { strata: 2 }
            }
            .name(),
            "TWCS+strat"
        );
    }

    #[test]
    fn factory_instantiates_all_designs() {
        let idx = Arc::new(PopulationIndex::from_sizes(vec![2, 3, 4]).unwrap());
        let oracle = RemOracle::new(0.9, 1);
        for d in [
            Design::Srs,
            Design::Rcs,
            Design::Wcs,
            Design::Twcs { m: 3 },
            Design::TsRcs { m: 3 },
            Design::StratifiedTwcs {
                m: 3,
                strategy: StratificationStrategy::Size { strata: 2 },
            },
        ] {
            let inst = d.instantiate(idx.clone(), &oracle);
            assert_eq!(inst.units(), 0);
            assert_eq!(inst.name(), d.name());
        }
    }
}

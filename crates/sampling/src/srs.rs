//! Simple random sampling of triples (§5.1).
//!
//! Triples are drawn uniformly **without replacement** from the global
//! triple index space. The estimator is the sample mean (Eq. 5) with the
//! paper's plug-in variance `μ̂_s(1−μ̂_s)/n_s`.
//!
//! Even though units are individual triples, annotation still groups drawn
//! triples by subject id to save identification cost (§5.1 "Cost
//! Analysis") — that grouping happens inside the annotator, so SRS
//! automatically benefits whenever two drawn triples share a subject.

use crate::design::StaticDesign;
use crate::index::PopulationIndex;
use kg_annotate::annotator::Annotator;
use kg_model::triple::TripleRef;
use kg_stats::srswor::IncrementalSrswor;
use kg_stats::PointEstimate;
use rand::RngCore;
use std::sync::Arc;

/// Incremental SRS design over a population index.
pub struct SrsDesign {
    index: Arc<PopulationIndex>,
    sampler: IncrementalSrswor,
    drawn: usize,
    correct: usize,
    /// Reusable per-batch buffers (sorted global indices, triple refs, and
    /// their labels), so the steady-state draw loop performs no allocation.
    globals_scratch: Vec<u64>,
    refs_scratch: Vec<TripleRef>,
    labels_scratch: Vec<bool>,
}

impl SrsDesign {
    /// New SRS design.
    pub fn new(index: Arc<PopulationIndex>) -> Self {
        let total = index.total_triples();
        assert!(
            total <= usize::MAX as u64,
            "population too large for this platform"
        );
        SrsDesign {
            sampler: IncrementalSrswor::new(total as usize),
            index,
            drawn: 0,
            correct: 0,
            globals_scratch: Vec::new(),
            refs_scratch: Vec::new(),
            labels_scratch: Vec::new(),
        }
    }

    /// Number of correct triples observed so far.
    pub fn correct(&self) -> usize {
        self.correct
    }
}

impl StaticDesign for SrsDesign {
    fn draw(
        &mut self,
        rng: &mut dyn RngCore,
        annotator: &mut dyn Annotator,
        batch: usize,
    ) -> usize {
        let globals = self.sampler.draw_batch(rng, batch);
        if globals.is_empty() {
            return 0;
        }
        // Annotation order within a batch is free (the estimator sums, and
        // cost is a pure function of the distinct sets), so process the
        // batch in ascending global order: the prefix walk and the
        // annotator's memo then touch memory near-sequentially.
        self.globals_scratch.clear();
        self.globals_scratch
            .extend(globals.iter().map(|&g| g as u64));
        self.globals_scratch.sort_unstable();
        self.index
            .map_sorted_globals(&self.globals_scratch, &mut self.refs_scratch);
        annotator.annotate_indexed_into(
            &self.refs_scratch,
            &self.globals_scratch,
            &mut self.labels_scratch,
        );
        self.drawn += self.labels_scratch.len();
        self.correct += self.labels_scratch.iter().filter(|&&b| b).count();
        self.labels_scratch.len()
    }

    fn estimate(&self) -> PointEstimate {
        if self.drawn == 0 {
            return PointEstimate::uninformative();
        }
        let n = self.drawn as f64;
        let p = self.correct as f64 / n;
        // Point estimate stays the unbiased sample mean (Eq. 5); the
        // variance plug-in uses the Agresti–Coull adjustment (add 2
        // successes and 2 failures) so that extreme small samples (e.g. 30
        // straight corrects on a 99%-accurate KG) don't report zero
        // variance and stop the iterative loop with a fictitious MoE of 0.
        let p_adj = (self.correct as f64 + 2.0) / (n + 4.0);
        PointEstimate::new(p, p_adj * (1.0 - p_adj) / n, self.drawn)
            .expect("plug-in variance is non-negative")
    }

    fn units(&self) -> usize {
        self.drawn
    }

    fn name(&self) -> &'static str {
        "SRS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_annotate::annotator::SimulatedAnnotator;
    use kg_annotate::cost::CostModel;
    use kg_annotate::oracle::{GoldLabels, RemOracle};
    use kg_model::implicit::ImplicitKg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exhausts_population_with_exact_mean() {
        // Drawing the whole population recovers the true accuracy exactly.
        let gold = GoldLabels::new(vec![vec![true, false], vec![true, true]]);
        let idx = Arc::new(PopulationIndex::from_sizes(vec![2, 2]).unwrap());
        let mut d = SrsDesign::new(idx);
        let mut a = SimulatedAnnotator::new(&gold, CostModel::default());
        let mut rng = StdRng::seed_from_u64(1);
        let drawn = d.draw(&mut rng, &mut a, 100);
        assert_eq!(drawn, 4);
        assert_eq!(d.draw(&mut rng, &mut a, 1), 0); // exhausted
        let est = d.estimate();
        assert!((est.mean - 0.75).abs() < 1e-12);
        assert_eq!(d.units(), 4);
        assert_eq!(d.correct(), 3);
    }

    #[test]
    fn estimate_is_uninformative_before_draws() {
        let idx = Arc::new(PopulationIndex::from_sizes(vec![5]).unwrap());
        let d = SrsDesign::new(idx);
        assert!(d.estimate().moe(0.05).unwrap() > 0.5);
        assert_eq!(d.name(), "SRS");
    }

    #[test]
    fn estimator_is_unbiased_over_replications() {
        let kg = ImplicitKg::new(vec![10; 200]).unwrap();
        let oracle = RemOracle::new(0.8, 99);
        let truth = kg_annotate::oracle::true_accuracy(&kg, &oracle);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let reps = 400;
        let mut sum = 0.0;
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut d = SrsDesign::new(idx.clone());
            let mut a = SimulatedAnnotator::new(&oracle, CostModel::default());
            d.draw(&mut rng, &mut a, 50);
            sum += d.estimate().mean;
        }
        let avg = sum / reps as f64;
        // SE of the average of 400 reps of a mean of 50 draws ≈ 0.003.
        assert!((avg - truth).abs() < 0.012, "avg {avg} vs truth {truth}");
    }

    #[test]
    fn variance_shrinks_with_sample_size() {
        let kg = ImplicitKg::new(vec![1; 5000]).unwrap();
        let oracle = RemOracle::new(0.5, 3);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let mut rng = StdRng::seed_from_u64(5);
        let mut d = SrsDesign::new(idx);
        let mut a = SimulatedAnnotator::new(&oracle, CostModel::default());
        d.draw(&mut rng, &mut a, 50);
        let v1 = d.estimate().var_of_mean;
        d.draw(&mut rng, &mut a, 450);
        let v2 = d.estimate().var_of_mean;
        assert!(v2 < v1, "{v2} !< {v1}");
        assert_eq!(d.units(), 500);
    }
}

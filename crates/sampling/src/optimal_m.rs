//! Optimal second-stage sample size (Eq. 12).
//!
//! TWCS's expected annotation cost is bounded above by `n·(c1 + m·c2)` —
//! achieved when every sampled cluster has at least `m` triples — and the
//! MoE constraint pins `n = V(m)·z²_{α/2}/ε²`. The optimal `m` minimizes
//!
//! ```text
//! cost(m) = V(m)·z²_{α/2}/ε² · (c1 + m·c2)
//! ```
//!
//! There is no closed form; the discrete domain is tiny (the paper finds
//! the optimum in 3–5 across all KGs, §7.2.2), so a linear search over
//! `1..=m_max` is exact and instant.
//!
//! When the true cluster accuracies are unknown (always, in practice), a
//! pilot TWCS sample yields plug-in estimates of the between/within
//! variance components; [`optimal_m_from_pilot`] runs the same search on
//! the plug-in `V̂(m)`.

use crate::variance::PopulationTruth;
use kg_annotate::cost::CostModel;
use kg_stats::error::StatsError;
use kg_stats::normal::z_critical;

/// Result of an optimal-m search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimalM {
    /// The minimizing second-stage size.
    pub m: usize,
    /// Expected cost upper bound at the optimum, in seconds.
    pub cost_seconds: f64,
    /// Required first-stage cluster count at the optimum.
    pub n: f64,
}

/// Exact optimal `m` via Eq. 12 given full population truth.
pub fn optimal_m_exact(
    truth: &PopulationTruth,
    cost: CostModel,
    eps: f64,
    alpha: f64,
    m_max: usize,
) -> Result<OptimalM, StatsError> {
    if eps <= 0.0 || eps.is_nan() {
        return Err(StatsError::invalid("eps", "> 0", eps));
    }
    if m_max == 0 {
        return Err(StatsError::invalid("m_max", ">= 1", 0.0));
    }
    let z = z_critical(alpha)?;
    let z2_over_eps2 = z * z / (eps * eps);
    let mut best = OptimalM {
        m: 1,
        cost_seconds: f64::INFINITY,
        n: 0.0,
    };
    for m in 1..=m_max {
        let n = truth.v_of_m(m) * z2_over_eps2;
        let c = n * (cost.c1 + m as f64 * cost.c2);
        if c < best.cost_seconds {
            best = OptimalM {
                m,
                cost_seconds: c,
                n,
            };
        }
    }
    Ok(best)
}

/// Plug-in variance components estimated from a pilot TWCS sample.
///
/// `between` estimates `(1/M)Σ M_i(μ_i−μ)²` (the variance of per-cluster
/// accuracies under PPS sampling); `within` estimates the average
/// within-cluster Bernoulli variance `(1/M)Σ M_i μ_i(1−μ_i)` (the `m`-free
/// part of the second term, ignoring the FPC, which is conservative).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PilotVariance {
    /// Between-cluster component.
    pub between: f64,
    /// Within-cluster component (before the 1/m factor).
    pub within: f64,
}

impl PilotVariance {
    /// Estimate from pilot observations: `(cluster_accuracy, cluster_size)`
    /// pairs drawn PPS (e.g. a short WCS/TWCS run with full-ish clusters).
    pub fn from_pilot(observations: &[(f64, u32)]) -> Result<Self, StatsError> {
        if observations.len() < 2 {
            return Err(StatsError::EmptyInput(
                "pilot needs >= 2 cluster observations",
            ));
        }
        let n = observations.len() as f64;
        let mean = observations.iter().map(|&(a, _)| a).sum::<f64>() / n;
        let between = observations
            .iter()
            .map(|&(a, _)| (a - mean) * (a - mean))
            .sum::<f64>()
            / (n - 1.0);
        let within = observations
            .iter()
            .map(|&(a, _)| a * (1.0 - a))
            .sum::<f64>()
            / n;
        Ok(PilotVariance { between, within })
    }

    /// Plug-in `V̂(m) = between + within/m`.
    pub fn v_of_m(&self, m: usize) -> f64 {
        self.between + self.within / m as f64
    }
}

/// Optimal `m` from pilot estimates (the practical path).
pub fn optimal_m_from_pilot(
    pilot: &PilotVariance,
    cost: CostModel,
    eps: f64,
    alpha: f64,
    m_max: usize,
) -> Result<OptimalM, StatsError> {
    if eps <= 0.0 || eps.is_nan() {
        return Err(StatsError::invalid("eps", "> 0", eps));
    }
    if m_max == 0 {
        return Err(StatsError::invalid("m_max", ">= 1", 0.0));
    }
    let z = z_critical(alpha)?;
    let z2_over_eps2 = z * z / (eps * eps);
    let mut best = OptimalM {
        m: 1,
        cost_seconds: f64::INFINITY,
        n: 0.0,
    };
    for m in 1..=m_max {
        let n = pilot.v_of_m(m) * z2_over_eps2;
        let c = n * (cost.c1 + m as f64 * cost.c2);
        if c < best.cost_seconds {
            best = OptimalM {
                m,
                cost_seconds: c,
                n,
            };
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heterogeneous_truth() -> PopulationTruth {
        // Mixed sizes and accuracies resembling a BMM-labelled KG.
        let sizes: Vec<u32> = (0..400)
            .map(|i| match i % 10 {
                0 => 120,
                1..=3 => 12,
                _ => 2,
            })
            .collect();
        let accs: Vec<f64> = sizes
            .iter()
            .map(|&s| {
                if s > 50 {
                    0.97
                } else if s > 5 {
                    0.85
                } else {
                    0.6
                }
            })
            .collect();
        PopulationTruth::new(sizes, accs).unwrap()
    }

    #[test]
    fn optimum_is_in_the_papers_range() {
        let truth = heterogeneous_truth();
        let best = optimal_m_exact(&truth, CostModel::default(), 0.05, 0.05, 20).unwrap();
        assert!(
            (2..=8).contains(&best.m),
            "optimal m {} outside plausible range",
            best.m
        );
        assert!(best.cost_seconds.is_finite());
        assert!(best.n > 0.0);
    }

    #[test]
    fn cost_curve_is_u_shaped_around_optimum() {
        // cost(1) and cost(m_max) should both exceed the optimum.
        let truth = heterogeneous_truth();
        let cost = CostModel::default();
        let z = z_critical(0.05).unwrap();
        let z2e2 = z * z / (0.05_f64 * 0.05);
        let cost_at = |m: usize| truth.v_of_m(m) * z2e2 * (cost.c1 + m as f64 * cost.c2);
        let best = optimal_m_exact(&truth, cost, 0.05, 0.05, 20).unwrap();
        assert!(cost_at(1) > best.cost_seconds);
        assert!(cost_at(20) > best.cost_seconds);
    }

    #[test]
    fn pure_between_variance_pushes_m_to_one() {
        // Perfectly homogeneous clusters (within = 0): extra triples per
        // cluster buy nothing, so m* = 1.
        let sizes = vec![10u32; 100];
        let accs: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 0.0 }).collect();
        let truth = PopulationTruth::new(sizes, accs).unwrap();
        let best = optimal_m_exact(&truth, CostModel::default(), 0.05, 0.05, 20).unwrap();
        assert_eq!(best.m, 1);
    }

    #[test]
    fn cheap_validation_pushes_m_up() {
        // When c2 ≪ c1, deep second stages are nearly free → larger m*.
        let truth = heterogeneous_truth();
        let cheap = optimal_m_exact(&truth, CostModel::new(45.0, 0.1), 0.05, 0.05, 50).unwrap();
        let dear = optimal_m_exact(&truth, CostModel::new(45.0, 50.0), 0.05, 0.05, 50).unwrap();
        assert!(cheap.m > dear.m, "cheap {} vs dear {}", cheap.m, dear.m);
    }

    #[test]
    fn pilot_estimates_recover_plausible_m() {
        let truth = heterogeneous_truth();
        // Fake a pilot: the true per-cluster accuracies sampled PPS-ish.
        let obs: Vec<(f64, u32)> = truth
            .sizes
            .iter()
            .zip(&truth.accuracies)
            .filter(|(&s, _)| s > 1)
            .map(|(&s, &a)| (a, s))
            .take(50)
            .collect();
        let pilot = PilotVariance::from_pilot(&obs).unwrap();
        let from_pilot =
            optimal_m_from_pilot(&pilot, CostModel::default(), 0.05, 0.05, 20).unwrap();
        let exact = optimal_m_exact(&truth, CostModel::default(), 0.05, 0.05, 20).unwrap();
        assert!(
            (from_pilot.m as i64 - exact.m as i64).abs() <= 3,
            "pilot m {} vs exact m {}",
            from_pilot.m,
            exact.m
        );
    }

    #[test]
    fn input_validation() {
        let truth = heterogeneous_truth();
        assert!(optimal_m_exact(&truth, CostModel::default(), 0.0, 0.05, 20).is_err());
        assert!(optimal_m_exact(&truth, CostModel::default(), 0.05, 0.05, 0).is_err());
        assert!(PilotVariance::from_pilot(&[(0.5, 3)]).is_err());
    }
}

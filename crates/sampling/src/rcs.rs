//! Random cluster sampling (§5.2.1).
//!
//! Clusters are drawn uniformly without replacement and **fully annotated**.
//! The estimator is `μ̂_r = N/(M·n) Σ_k τ_{I_k}` (Eq. 7): each cluster
//! contributes its *count* of correct triples scaled by `N/M`. Because the
//! contribution is proportional to cluster size, the estimator's variance
//! explodes when cluster sizes have a wide spread — which is exactly why
//! the paper moves on to weighted designs (§5.2.2) and why Table 5 shows
//! RCS needing >5 h on MOVIE and ~10 h on YAGO.

use crate::design::StaticDesign;
use crate::index::PopulationIndex;
use kg_annotate::annotator::Annotator;
use kg_stats::srswor::IncrementalSrswor;
use kg_stats::{PointEstimate, RunningMoments};
use rand::RngCore;
use std::sync::Arc;

/// Incremental RCS design.
pub struct RcsDesign {
    index: Arc<PopulationIndex>,
    sampler: IncrementalSrswor,
    /// Per-cluster scaled contributions `(N/M)·τ_I`.
    contributions: RunningMoments,
}

impl RcsDesign {
    /// New RCS design.
    pub fn new(index: Arc<PopulationIndex>) -> Self {
        RcsDesign {
            sampler: IncrementalSrswor::new(index.num_clusters()),
            index,
            contributions: RunningMoments::new(),
        }
    }
}

impl StaticDesign for RcsDesign {
    fn draw(
        &mut self,
        rng: &mut dyn RngCore,
        annotator: &mut dyn Annotator,
        batch: usize,
    ) -> usize {
        let clusters = self.sampler.draw_batch(rng, batch);
        if clusters.is_empty() {
            return 0;
        }
        let scale = self.index.num_clusters() as f64 / self.index.total_triples() as f64;
        for &c in &clusters {
            let size = self.index.cluster_size(c);
            let tau = annotator.annotate_cluster(c as u32, size);
            self.contributions.push(scale * tau as f64);
        }
        clusters.len()
    }

    fn estimate(&self) -> PointEstimate {
        let n = self.contributions.count() as usize;
        if n == 0 {
            return PointEstimate::uninformative();
        }
        PointEstimate::new(
            self.contributions.mean(),
            self.contributions.variance_of_mean(),
            n,
        )
        .expect("sample variance is non-negative")
    }

    fn units(&self) -> usize {
        self.contributions.count() as usize
    }

    fn name(&self) -> &'static str {
        "RCS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_annotate::annotator::SimulatedAnnotator;
    use kg_annotate::cost::CostModel;
    use kg_annotate::oracle::{true_accuracy, RemOracle};
    use kg_model::implicit::ClusterPopulation;
    use kg_model::implicit::ImplicitKg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_enumeration_recovers_truth() {
        let kg = ImplicitKg::new(vec![3, 1, 6, 2]).unwrap();
        let oracle = RemOracle::new(0.7, 21);
        let truth = true_accuracy(&kg, &oracle);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let mut rng = StdRng::seed_from_u64(2);
        let mut d = RcsDesign::new(idx);
        let mut a = SimulatedAnnotator::new(&oracle, CostModel::default());
        assert_eq!(d.draw(&mut rng, &mut a, 100), 4);
        assert_eq!(d.draw(&mut rng, &mut a, 1), 0);
        // All clusters annotated: μ̂_r = (N/M)·mean(τ) = total correct / M.
        assert!((d.estimate().mean - truth).abs() < 1e-12);
        assert_eq!(a.triples_annotated() as u64, kg.total_triples());
    }

    #[test]
    fn unbiased_over_replications() {
        // Mixed cluster sizes to exercise the N/M scaling.
        let sizes: Vec<u32> = (0..300).map(|i| 1 + (i % 10)).collect();
        let kg = ImplicitKg::new(sizes).unwrap();
        let oracle = RemOracle::new(0.85, 7);
        let truth = true_accuracy(&kg, &oracle);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let reps = 500;
        let mut sum = 0.0;
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut d = RcsDesign::new(idx.clone());
            let mut a = SimulatedAnnotator::new(&oracle, CostModel::default());
            d.draw(&mut rng, &mut a, 40);
            sum += d.estimate().mean;
        }
        let avg = sum / reps as f64;
        assert!((avg - truth).abs() < 0.02, "avg {avg} vs truth {truth}");
    }

    #[test]
    fn high_variance_with_wide_size_spread() {
        // RCS variance should dwarf the equal-size case, reflecting the
        // paper's motivation for weighted sampling.
        let wide: Vec<u32> = (0..200)
            .map(|i| if i % 20 == 0 { 100 } else { 1 })
            .collect();
        let kg_wide = ImplicitKg::new(wide).unwrap();
        let kg_flat = ImplicitKg::new(vec![6; 200]).unwrap();
        let oracle = RemOracle::new(0.9, 13);
        let var_of = |kg: &ImplicitKg| {
            let idx = Arc::new(PopulationIndex::from_population(kg).unwrap());
            let mut rng = StdRng::seed_from_u64(31);
            let mut d = RcsDesign::new(idx);
            let mut a = SimulatedAnnotator::new(&oracle, CostModel::default());
            d.draw(&mut rng, &mut a, 50);
            d.estimate().var_of_mean
        };
        assert!(var_of(&kg_wide) > 5.0 * var_of(&kg_flat));
    }
}

//! # kg-sampling — sampling designs and estimators (§5 of the paper)
//!
//! The four estimators of KG accuracy, all unbiased, differing in cost:
//!
//! | Design | Unit | First stage | Second stage | Estimator |
//! |--------|------|-------------|--------------|-----------|
//! | [`srs::SrsDesign`] | triple | uniform w/o replacement | — | sample mean (Eq. 5) |
//! | [`rcs::RcsDesign`] | cluster | uniform w/o replacement | all triples | `N/(Mn) Σ τ_I` (Eq. 7) |
//! | [`wcs::WcsDesign`] | cluster | PPS with replacement | all triples | Hansen–Hurwitz mean of `μ_I` (Eq. 8) |
//! | [`twcs::TwcsDesign`] | cluster | PPS with replacement | SRS of ≤ m | mean of `μ̂_I` (Eq. 9) |
//! | [`tsrcs::TsRcsDesign`] | cluster | uniform with replacement | SRS of ≤ m | size-scaled mean (ablation; the variant §5.2.3 omits as inferior) |
//!
//! plus [`stratified::StratifiedTwcs`] (Eq. 13) which runs TWCS inside
//! strata built from cluster size (cumulative-√F) or an accuracy oracle.
//!
//! Supporting analysis modules:
//!
//! * [`variance`] — the theoretical TWCS variance `V(m)` (Eq. 10) and the
//!   required first-stage sample size `n(m) = V(m)·z²_{α/2}/ε²`.
//! * [`optimal_m`] — minimizes the cost upper bound `n(m)·(c1 + m·c2)`
//!   (Eq. 12) by linear search, and a pilot-sample variant for when true
//!   cluster accuracies are unknown.
//! * [`cost_model`] — expected-cost formulas: the SRS objective (Eq. 6) with
//!   its expected distinct-entity count, and the TWCS upper/lower cost
//!   bounds used for Fig. 6's theoretical ribbon.
//! * [`index::PopulationIndex`] — prefix sums + alias table over cluster
//!   sizes; built once per KG and shared across designs and trials.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cost_model;
pub mod design;
pub mod index;
pub mod optimal_m;
pub mod rcs;
pub mod srs;
pub mod stratified;
pub mod tsrcs;
pub mod twcs;
pub mod variance;
pub mod wcs;

pub use design::{Design, StaticDesign};
pub use index::PopulationIndex;

//! Theoretical TWCS variance (Eq. 10) and derived sample-size requirements.
//!
//! ```text
//! Var(μ̂_{w,m}) = V(m)/n,
//! V(m) = (1/M) [ Σ_i M_i(μ_i − μ)²
//!              + (1/m) Σ_{i: M_i > m} (M_i − m)/(M_i − 1) · M_i · μ_i(1 − μ_i) ]
//! ```
//!
//! The first term is the *between-cluster* variance (irreducible by m); the
//! second is the *within-cluster* sampling variance with the finite
//! population correction `(M_i − m)/(M_i − 1)` — it vanishes for clusters
//! fully enumerated by the second stage (`M_i ≤ m`).
//!
//! To hit an MoE of ε at level 1−α the first-stage size must satisfy
//! `n ≥ V(m)·z²_{α/2}/ε²` (§5.2.3 "Cost Analysis").

use kg_stats::error::StatsError;
use kg_stats::normal::z_critical;

/// Exact population inputs for the variance formula: per-cluster sizes and
/// accuracies, plus the overall accuracy.
#[derive(Debug, Clone)]
pub struct PopulationTruth {
    /// Cluster sizes `M_i`.
    pub sizes: Vec<u32>,
    /// Cluster accuracies `μ_i = τ_i / M_i`.
    pub accuracies: Vec<f64>,
    /// Overall accuracy `μ` (triple-weighted mean of `μ_i`).
    pub mu: f64,
}

impl PopulationTruth {
    /// Assemble from sizes and accuracies, computing `μ`.
    pub fn new(sizes: Vec<u32>, accuracies: Vec<f64>) -> Result<Self, StatsError> {
        if sizes.len() != accuracies.len() {
            return Err(StatsError::InvalidWeights(
                "sizes and accuracies must have equal length",
            ));
        }
        if sizes.is_empty() {
            return Err(StatsError::EmptyInput("population truth"));
        }
        let total: f64 = sizes.iter().map(|&s| s as f64).sum();
        let mu = sizes
            .iter()
            .zip(&accuracies)
            .map(|(&s, &a)| s as f64 * a)
            .sum::<f64>()
            / total;
        Ok(PopulationTruth {
            sizes,
            accuracies,
            mu,
        })
    }

    /// Total triples `M`.
    pub fn total_triples(&self) -> f64 {
        self.sizes.iter().map(|&s| s as f64).sum()
    }

    /// The paper's `V(m)` (Eq. 10, per-draw variance factor).
    pub fn v_of_m(&self, m: usize) -> f64 {
        assert!(m >= 1, "m must be at least 1");
        let m_f = m as f64;
        let total = self.total_triples();
        let mut between = 0.0;
        let mut within = 0.0;
        for (&size, &mu_i) in self.sizes.iter().zip(&self.accuracies) {
            let mi = size as f64;
            let d = mu_i - self.mu;
            between += mi * d * d;
            if size as usize > m {
                within += (mi - m_f) / (mi - 1.0) * mi * mu_i * (1.0 - mu_i);
            }
        }
        (between + within / m_f) / total
    }

    /// Required first-stage cluster count `n(m) = V(m)·z²_{α/2}/ε²` to reach
    /// margin of error `eps` at level `1−alpha`.
    pub fn required_n(&self, m: usize, eps: f64, alpha: f64) -> Result<f64, StatsError> {
        if eps <= 0.0 || eps.is_nan() {
            return Err(StatsError::invalid("eps", "> 0", eps));
        }
        let z = z_critical(alpha)?;
        Ok(self.v_of_m(m) * z * z / (eps * eps))
    }

    /// Theoretical variance of the TWCS estimator with `n` first-stage
    /// draws: `V(m)/n`.
    pub fn var_of_estimator(&self, m: usize, n: usize) -> f64 {
        assert!(n >= 1, "n must be at least 1");
        self.v_of_m(m) / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v_of_m_reduces_to_triple_variance_at_m1() {
        // With m = 1 and all M_i = 1, V(1) = population Bernoulli variance.
        let truth = PopulationTruth::new(
            vec![1; 10],
            vec![1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0],
        )
        .unwrap();
        assert!((truth.mu - 0.7).abs() < 1e-12);
        // All clusters size 1 → within term empty; between = Σ(μi−μ)²/N =
        // p(1−p) = 0.21.
        assert!((truth.v_of_m(1) - 0.21).abs() < 1e-12);
    }

    #[test]
    fn v_decreases_monotonically_in_m() {
        let sizes: Vec<u32> = (1..=60).collect();
        let accs: Vec<f64> = (1..=60).map(|i| 0.5 + 0.4 * (i as f64 / 60.0)).collect();
        let truth = PopulationTruth::new(sizes, accs).unwrap();
        let mut prev = f64::INFINITY;
        for m in 1..=20 {
            let v = truth.v_of_m(m);
            assert!(v <= prev + 1e-12, "V({m}) = {v} > V({}) = {prev}", m - 1);
            prev = v;
        }
        // And V(m) never drops below the pure between-cluster term.
        let between_only = {
            let t = &truth;
            let total = t.total_triples();
            t.sizes
                .iter()
                .zip(&t.accuracies)
                .map(|(&s, &a)| s as f64 * (a - t.mu).powi(2))
                .sum::<f64>()
                / total
        };
        assert!(truth.v_of_m(1000) >= between_only - 1e-12);
    }

    #[test]
    fn matches_empirical_variance_on_small_population() {
        use kg_annotate::annotator::SimulatedAnnotator;
        use kg_annotate::cost::CostModel;
        use kg_annotate::oracle::{cluster_accuracies, GoldLabels};
        use kg_model::implicit::ImplicitKg;
        use kg_stats::RunningMoments;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use std::sync::Arc;

        // Small population with known labels.
        let sizes = vec![4u32, 8, 2, 6, 10];
        let kg = ImplicitKg::new(sizes.clone()).unwrap();
        let labels: Vec<Vec<bool>> = vec![
            vec![true, true, false, true],
            vec![true; 8],
            vec![false, true],
            vec![true, false, true, false, true, true],
            vec![
                true, true, true, false, false, true, true, true, false, true,
            ],
        ];
        let gold = GoldLabels::new(labels);
        let accs = cluster_accuracies(&kg, &gold);
        let truth = PopulationTruth::new(sizes, accs).unwrap();

        let m = 3;
        let n = 10;
        let theoretical = truth.var_of_estimator(m, n);

        // Empirical variance of μ̂ over many replications.
        let idx = Arc::new(crate::index::PopulationIndex::from_population(&kg).unwrap());
        let mut ests = RunningMoments::new();
        for seed in 0..4000u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut d = crate::twcs::TwcsDesign::new(idx.clone(), m);
            let mut a = SimulatedAnnotator::new(&gold, CostModel::default());
            use crate::design::StaticDesign;
            d.draw(&mut rng, &mut a, n);
            ests.push(d.estimate().mean);
        }
        let empirical = ests.sample_variance();
        let rel = (empirical - theoretical).abs() / theoretical;
        assert!(
            rel < 0.15,
            "empirical {empirical} vs theoretical {theoretical} (rel {rel})"
        );
    }

    #[test]
    fn required_n_scales_with_precision() {
        let truth = PopulationTruth::new(vec![20; 100], vec![0.8; 100]).unwrap();
        let n5 = truth.required_n(5, 0.05, 0.05).unwrap();
        let n1 = truth.required_n(5, 0.01, 0.05).unwrap();
        assert!((n1 / n5 - 25.0).abs() < 1e-6, "ratio {}", n1 / n5);
        assert!(truth.required_n(5, 0.0, 0.05).is_err());
    }

    #[test]
    fn constructor_validations() {
        assert!(PopulationTruth::new(vec![1], vec![0.5, 0.5]).is_err());
        assert!(PopulationTruth::new(vec![], vec![]).is_err());
    }
}

//! Two-stage **random** cluster sampling — the design the paper mentions
//! and dismisses in §5.2.3: "A similar approach can be applied to
//! two-stage random cluster sampling; however, due to its inferior
//! performance, we omit the discussion."
//!
//! We implement it so the claim is testable (see the `ablation` experiment
//! in `kg-bench`): stage 1 draws clusters *uniformly* (not PPS), stage 2
//! draws `min{M_I, m}` triples. Because inclusion is not proportional to
//! size, the per-cluster contribution must be scaled back by the cluster
//! size, `(N/(n·M)) Σ_k M_{I_k}·μ̂_{I_k}` — reintroducing exactly the
//! size-proportional variance that made RCS blow up (Eq. 7), only
//! partially tamed by the second-stage cap.

use crate::design::StaticDesign;
use crate::index::PopulationIndex;
use crate::twcs::annotate_cluster_subset;
use kg_annotate::annotator::Annotator;
use kg_stats::{PointEstimate, RunningMoments};
use rand::Rng;
use rand::RngCore;
use std::sync::Arc;

/// Two-stage random cluster sampling (the paper's omitted variant).
pub struct TsRcsDesign {
    index: Arc<PopulationIndex>,
    m: usize,
    /// Per-draw scaled contributions `(N/M)·M_I·μ̂_I`.
    contributions: RunningMoments,
    /// Reusable second-stage offset buffer.
    offsets_scratch: Vec<usize>,
}

impl TsRcsDesign {
    /// New design with second-stage cap `m`. Clusters are drawn uniformly
    /// **with replacement** (the estimator stays unbiased and the design
    /// mirrors TWCS's first stage mechanics).
    pub fn new(index: Arc<PopulationIndex>, m: usize) -> Self {
        assert!(m >= 1, "second-stage size m must be at least 1");
        TsRcsDesign {
            index,
            m,
            contributions: RunningMoments::new(),
            offsets_scratch: Vec::with_capacity(m),
        }
    }

    /// The second-stage cap.
    pub fn m(&self) -> usize {
        self.m
    }
}

impl StaticDesign for TsRcsDesign {
    fn draw(
        &mut self,
        rng: &mut dyn RngCore,
        annotator: &mut dyn Annotator,
        batch: usize,
    ) -> usize {
        let n_clusters = self.index.num_clusters();
        let scale = n_clusters as f64 / self.index.total_triples() as f64;
        for _ in 0..batch {
            let c = rng.gen_range(0..n_clusters);
            let size = self.index.cluster_size(c);
            let acc = annotate_cluster_subset(
                c as u32,
                size,
                self.m,
                rng,
                annotator,
                &mut self.offsets_scratch,
            );
            self.contributions.push(scale * size as f64 * acc);
        }
        batch
    }

    fn estimate(&self) -> PointEstimate {
        let n = self.contributions.count() as usize;
        if n == 0 {
            return PointEstimate::uninformative();
        }
        PointEstimate::new(
            self.contributions.mean(),
            self.contributions.variance_of_mean(),
            n,
        )
        .expect("sample variance is non-negative")
    }

    fn units(&self) -> usize {
        self.contributions.count() as usize
    }

    fn name(&self) -> &'static str {
        "TSRCS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_annotate::annotator::SimulatedAnnotator;
    use kg_annotate::cost::CostModel;
    use kg_annotate::oracle::{true_accuracy, RemOracle};
    use kg_model::implicit::ImplicitKg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn skewed_kg() -> ImplicitKg {
        let sizes: Vec<u32> = (0..400)
            .map(|i| if i % 40 == 0 { 150 } else { 1 + (i % 5) })
            .collect();
        ImplicitKg::new(sizes).unwrap()
    }

    #[test]
    fn estimator_is_unbiased() {
        let kg = skewed_kg();
        let oracle = RemOracle::new(0.85, 3);
        let truth = true_accuracy(&kg, &oracle);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let reps = 800;
        let mut sum = 0.0;
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut d = TsRcsDesign::new(idx.clone(), 5);
            let mut a = SimulatedAnnotator::new(&oracle, CostModel::default());
            d.draw(&mut rng, &mut a, 50);
            sum += d.estimate().mean;
        }
        let avg = sum / reps as f64;
        assert!((avg - truth).abs() < 0.02, "avg {avg} vs truth {truth}");
    }

    #[test]
    fn inferior_variance_vs_twcs_on_skewed_sizes() {
        // The paper's reason for omitting the design: under a wide cluster
        // size spread, the size-scaled estimator's variance dwarfs TWCS's.
        use crate::twcs::TwcsDesign;
        let kg = skewed_kg();
        let oracle = RemOracle::new(0.9, 5);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let mut tsrcs_ests = RunningMoments::new();
        let mut twcs_ests = RunningMoments::new();
        for seed in 0..300 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut d = TsRcsDesign::new(idx.clone(), 5);
            let mut a = SimulatedAnnotator::new(&oracle, CostModel::default());
            d.draw(&mut rng, &mut a, 40);
            tsrcs_ests.push(d.estimate().mean);

            let mut rng = StdRng::seed_from_u64(seed + 44_444);
            let mut t = TwcsDesign::new(idx.clone(), 5);
            let mut a = SimulatedAnnotator::new(&oracle, CostModel::default());
            t.draw(&mut rng, &mut a, 40);
            twcs_ests.push(t.estimate().mean);
        }
        assert!(
            tsrcs_ests.sample_variance() > 3.0 * twcs_ests.sample_variance(),
            "TSRCS var {} should dwarf TWCS var {}",
            tsrcs_ests.sample_variance(),
            twcs_ests.sample_variance()
        );
    }

    #[test]
    fn second_stage_caps_cost_relative_to_plain_rcs() {
        // TSRCS's one virtue over RCS: a drawn giant cluster costs at most
        // m validations instead of its full size.
        let kg = ImplicitKg::new(vec![1000, 1, 1, 1]).unwrap();
        let oracle = RemOracle::new(0.9, 7);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let mut rng = StdRng::seed_from_u64(1);
        let mut d = TsRcsDesign::new(idx, 5);
        let mut a = SimulatedAnnotator::new(&oracle, CostModel::default());
        d.draw(&mut rng, &mut a, 20);
        assert!(a.triples_annotated() <= 20 * 5, "{}", a.triples_annotated());
        assert_eq!(d.units(), 20);
        assert_eq!(d.m(), 5);
        assert_eq!(d.name(), "TSRCS");
    }
}

//! Two-stage weighted cluster sampling — the paper's headline design
//! (§5.2.3).
//!
//! Stage 1 draws clusters PPS-with-replacement like WCS; stage 2 draws only
//! `min{M_{I_k}, m}` triples *without replacement* inside each sampled
//! cluster. The estimator is the mean of second-stage sample accuracies,
//! `μ̂_{w,m} = (1/n) Σ μ̂_{I_k}` (Eq. 9), unbiased by Proposition 1, with the
//! between-cluster plug-in variance `s²/n` for the CI.
//!
//! With `m = 1` the design degenerates to SRS (Proposition 2): each draw is
//! a uniformly random triple. The property test in `tests/` verifies the
//! distributional equivalence.

use crate::design::StaticDesign;
use crate::index::PopulationIndex;
use kg_annotate::annotator::Annotator;
use kg_stats::srswor::sample_without_replacement_into;
use kg_stats::{PointEstimate, RunningMoments};
use rand::RngCore;
use std::sync::Arc;

/// Incremental TWCS design with second-stage cap `m`.
pub struct TwcsDesign {
    index: Arc<PopulationIndex>,
    m: usize,
    /// Per-draw second-stage sample accuracies `μ̂_{I_k}`.
    accuracies: RunningMoments,
    /// Reusable second-stage offset buffer (≤ `m` entries): the draw loop
    /// allocates nothing in steady state.
    offsets_scratch: Vec<usize>,
}

impl TwcsDesign {
    /// New TWCS design; `m ≥ 1` is the per-cluster triple cap.
    pub fn new(index: Arc<PopulationIndex>, m: usize) -> Self {
        assert!(m >= 1, "second-stage size m must be at least 1");
        TwcsDesign {
            index,
            m,
            accuracies: RunningMoments::new(),
            offsets_scratch: Vec::with_capacity(m),
        }
    }

    /// The second-stage cap.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Draw one first-stage cluster and its second-stage triples through the
    /// annotator, returning the second-stage sample accuracy `μ̂_I`.
    ///
    /// Exposed for the dynamic evaluators (§6), which need to annotate
    /// reservoir clusters outside a `StaticDesign` loop.
    pub fn annotate_cluster(
        index: &PopulationIndex,
        cluster: usize,
        m: usize,
        rng: &mut dyn RngCore,
        annotator: &mut dyn Annotator,
    ) -> f64 {
        annotate_cluster_sized(
            cluster as u32,
            index.cluster_size(cluster),
            m,
            rng,
            annotator,
        )
    }
}

/// Variance-of-mean plug-in for a set of per-cluster sample accuracies,
/// floored by an Agresti–Coull-adjusted within-cluster Bernoulli bound.
///
/// The raw `s²/n` can be exactly zero on small samples from accurate KGs
/// (e.g. 30 consecutive all-correct clusters on a 99%-accurate KG), which
/// would stop the iterative loop with a fictitious MoE of 0. The floor
/// `p̃(1−p̃)/(m·n)` — the sampling variance the second stage alone would
/// contribute if cluster accuracies were homogeneous at the adjusted mean
/// `p̃ = (Σμ̂ + 1)/(n + 2)` — keeps the plug-in strictly positive without
/// materially inflating well-estimated variances.
pub fn floored_variance_of_mean(accuracies: &RunningMoments, m: usize) -> f64 {
    let n = accuracies.count() as f64;
    if n == 0.0 {
        return 1.0;
    }
    let p_adj = (accuracies.mean() * n + 1.0) / (n + 2.0);
    let floor = p_adj * (1.0 - p_adj) / (m.max(1) as f64) / n;
    accuracies.variance_of_mean().max(floor)
}

/// Second-stage annotation of one cluster identified by a *global* cluster
/// id and its size: SRS-without-replacement of `min{size, m}` triples,
/// returning the sample accuracy `μ̂_I`.
///
/// The dynamic evaluators (§6) call this directly because their cluster ids
/// extend past any single [`PopulationIndex`] (base clusters plus appended
/// `Δe` clusters).
///
/// Allocates a fresh offset buffer per call; hot loops should hold a
/// scratch buffer and call [`annotate_cluster_subset`] instead.
pub fn annotate_cluster_sized(
    cluster: u32,
    size: usize,
    m: usize,
    rng: &mut dyn RngCore,
    annotator: &mut dyn Annotator,
) -> f64 {
    let mut scratch = Vec::with_capacity(size.min(m));
    annotate_cluster_subset(cluster, size, m, rng, annotator, &mut scratch)
}

/// Allocation-free core of [`annotate_cluster_sized`]: the second-stage
/// offsets are drawn into the caller's `scratch` buffer and annotated via
/// the engine's subset API — no per-draw `Vec` of refs or labels.
pub fn annotate_cluster_subset(
    cluster: u32,
    size: usize,
    m: usize,
    rng: &mut dyn RngCore,
    annotator: &mut dyn Annotator,
    scratch: &mut Vec<usize>,
) -> f64 {
    assert!(size >= 1, "clusters are non-empty");
    assert!(m >= 1, "second-stage size m must be at least 1");
    let take = size.min(m);
    sample_without_replacement_into(rng, size, take, scratch);
    let tau = annotator.annotate_offsets(cluster, scratch);
    tau as f64 / take as f64
}

impl StaticDesign for TwcsDesign {
    fn draw(
        &mut self,
        rng: &mut dyn RngCore,
        annotator: &mut dyn Annotator,
        batch: usize,
    ) -> usize {
        for _ in 0..batch {
            let (c, size) = self.index.sample_cluster_pps_sized(rng);
            let acc = annotate_cluster_subset(
                c as u32,
                size,
                self.m,
                rng,
                annotator,
                &mut self.offsets_scratch,
            );
            self.accuracies.push(acc);
        }
        batch
    }

    fn estimate(&self) -> PointEstimate {
        let n = self.accuracies.count() as usize;
        if n == 0 {
            return PointEstimate::uninformative();
        }
        PointEstimate::new(
            self.accuracies.mean(),
            floored_variance_of_mean(&self.accuracies, self.m),
            n,
        )
        .expect("plug-in variance is non-negative")
    }

    fn units(&self) -> usize {
        self.accuracies.count() as usize
    }

    fn name(&self) -> &'static str {
        "TWCS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_annotate::annotator::SimulatedAnnotator;
    use kg_annotate::cost::CostModel;
    use kg_annotate::oracle::{true_accuracy, RemOracle};
    use kg_model::implicit::ImplicitKg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn long_tail_kg() -> ImplicitKg {
        let sizes: Vec<u32> = (0..500)
            .map(|i| match i % 50 {
                0 => 200,
                1..=5 => 20,
                _ => 1 + (i % 4),
            })
            .collect();
        ImplicitKg::new(sizes).unwrap()
    }

    #[test]
    fn unbiased_over_replications() {
        let kg = long_tail_kg();
        let oracle = RemOracle::new(0.9, 17);
        let truth = true_accuracy(&kg, &oracle);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let reps = 500;
        let mut sum = 0.0;
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut d = TwcsDesign::new(idx.clone(), 5);
            let mut a = SimulatedAnnotator::new(&oracle, CostModel::default());
            d.draw(&mut rng, &mut a, 40);
            sum += d.estimate().mean;
        }
        let avg = sum / reps as f64;
        assert!((avg - truth).abs() < 0.01, "avg {avg} vs truth {truth}");
    }

    #[test]
    fn second_stage_caps_annotation_per_cluster() {
        let kg = ImplicitKg::new(vec![100, 100]).unwrap();
        let oracle = RemOracle::new(0.9, 2);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let mut rng = StdRng::seed_from_u64(4);
        let mut d = TwcsDesign::new(idx, 10);
        let mut a = SimulatedAnnotator::new(&oracle, CostModel::default());
        d.draw(&mut rng, &mut a, 3);
        // At most 10 triples per distinct cluster, 2 clusters → ≤ 20... but
        // repeat draws resample offsets, so allow up to 30; the real bound
        // is m per draw.
        assert!(a.triples_annotated() <= 30);
        assert_eq!(d.m(), 10);
        assert_eq!(d.units(), 3);
    }

    #[test]
    fn small_clusters_fully_enumerated() {
        let kg = ImplicitKg::new(vec![2, 3]).unwrap();
        let oracle = RemOracle::new(1.0, 6);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let mut rng = StdRng::seed_from_u64(5);
        let acc = TwcsDesign::annotate_cluster(&idx, 1, 10, &mut rng, &mut {
            SimulatedAnnotator::new(&oracle, CostModel::default())
        });
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn m1_matches_srs_moments() {
        // Proposition 2: TWCS(m=1) ≡ SRS. Compare estimator mean and spread
        // over replications.
        let kg = long_tail_kg();
        let oracle = RemOracle::new(0.7, 23);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let reps = 400;
        let n_units = 60;
        let mut twcs_stats = RunningMoments::new();
        let mut srs_stats = RunningMoments::new();
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut d = TwcsDesign::new(idx.clone(), 1);
            let mut a = SimulatedAnnotator::new(&oracle, CostModel::default());
            d.draw(&mut rng, &mut a, n_units);
            twcs_stats.push(d.estimate().mean);

            let mut rng = StdRng::seed_from_u64(seed + 777_777);
            let mut s = crate::srs::SrsDesign::new(idx.clone());
            let mut a = SimulatedAnnotator::new(&oracle, CostModel::default());
            s.draw(&mut rng, &mut a, n_units);
            srs_stats.push(s.estimate().mean);
        }
        assert!(
            (twcs_stats.mean() - srs_stats.mean()).abs() < 0.01,
            "means {} vs {}",
            twcs_stats.mean(),
            srs_stats.mean()
        );
        // Spreads agree within 25% (same up to with/without-replacement
        // finite-population effects, negligible at 60/1500 sampling rate).
        let ratio = twcs_stats.sample_variance() / srs_stats.sample_variance();
        assert!((0.6..1.6).contains(&ratio), "variance ratio {ratio}");
    }

    #[test]
    fn larger_m_needs_fewer_clusters_for_same_moe() {
        // With within-cluster homogeneity absent (REM), larger m reduces the
        // per-draw variance contribution 1/m·p(1-p), so at fixed n the MoE
        // shrinks as m grows.
        let kg = ImplicitKg::new(vec![50; 300]).unwrap();
        let oracle = RemOracle::new(0.5, 8);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let moe_for_m = |m: usize| {
            let mut acc = 0.0;
            for seed in 0..30 {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut d = TwcsDesign::new(idx.clone(), m);
                let mut a = SimulatedAnnotator::new(&oracle, CostModel::default());
                d.draw(&mut rng, &mut a, 50);
                acc += d.estimate().moe(0.05).unwrap();
            }
            acc / 30.0
        };
        assert!(moe_for_m(10) < moe_for_m(1));
    }
}

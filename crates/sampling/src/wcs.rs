//! Weighted cluster sampling (§5.2.2).
//!
//! Clusters are drawn **with replacement**, with probability proportional to
//! size (`π_i = M_i/M`), and fully annotated. The Hansen–Hurwitz estimator
//! is simply the mean of sampled-cluster accuracies, `μ̂_w = (1/n) Σ μ_{I_k}`
//! (Eq. 8) — summing cluster *proportions* instead of counts, which keeps
//! the variance bounded even under wildly skewed cluster sizes.
//!
//! If the same cluster is drawn twice it contributes twice to the estimator
//! (that is what keeps Hansen–Hurwitz unbiased); the annotator memoizes, so
//! the *human cost* of the duplicate draw is zero.

use crate::design::StaticDesign;
use crate::index::PopulationIndex;
use kg_annotate::annotator::Annotator;
use kg_stats::{PointEstimate, RunningMoments};
use rand::RngCore;
use std::sync::Arc;

/// Incremental WCS design.
pub struct WcsDesign {
    index: Arc<PopulationIndex>,
    /// Per-draw cluster accuracies `μ_{I_k}`.
    accuracies: RunningMoments,
}

impl WcsDesign {
    /// New WCS design.
    pub fn new(index: Arc<PopulationIndex>) -> Self {
        WcsDesign {
            index,
            accuracies: RunningMoments::new(),
        }
    }
}

impl StaticDesign for WcsDesign {
    fn draw(
        &mut self,
        rng: &mut dyn RngCore,
        annotator: &mut dyn Annotator,
        batch: usize,
    ) -> usize {
        // The sited draw serves the cluster id, size, and global base from
        // the one alias-slot cache line, and the sited annotation stamps
        // `[base, base + size)` directly — the visit's serial miss chain is
        // slot load → arena stamp, with no dependent directory load in
        // between. At 10^6+ triples every level of that chain is a cache
        // miss, so chain depth (not instruction count) is what bounds
        // throughput here.
        for _ in 0..batch {
            let (c, size, base) = self.index.sample_cluster_pps_sited(rng);
            let tau = annotator.annotate_cluster_sited(c as u32, base, size);
            self.accuracies.push(tau as f64 / size as f64);
        }
        batch
    }

    fn estimate(&self) -> PointEstimate {
        let n = self.accuracies.count() as usize;
        if n == 0 {
            return PointEstimate::uninformative();
        }
        PointEstimate::new(
            self.accuracies.mean(),
            self.accuracies.variance_of_mean(),
            n,
        )
        .expect("sample variance is non-negative")
    }

    fn units(&self) -> usize {
        self.accuracies.count() as usize
    }

    fn name(&self) -> &'static str {
        "WCS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_annotate::annotator::SimulatedAnnotator;
    use kg_annotate::cost::CostModel;
    use kg_annotate::oracle::{true_accuracy, GoldLabels, RemOracle};
    use kg_model::implicit::ImplicitKg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unbiased_under_skewed_sizes() {
        // Sizes 1..50 with size-correlated accuracy: the unweighted mean of
        // cluster accuracies would be *biased*; PPS weighting corrects it.
        let sizes: Vec<u32> = (1..=50).collect();
        let kg = ImplicitKg::new(sizes.clone()).unwrap();
        // Big clusters perfect, small clusters bad.
        let labels: Vec<Vec<bool>> = sizes
            .iter()
            .map(|&s| (0..s).map(|_| s > 25).collect())
            .collect();
        let gold = GoldLabels::new(labels);
        let truth = true_accuracy(&kg, &gold);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let reps = 600;
        let mut sum = 0.0;
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut d = WcsDesign::new(idx.clone());
            let mut a = SimulatedAnnotator::new(&gold, CostModel::default());
            d.draw(&mut rng, &mut a, 30);
            sum += d.estimate().mean;
        }
        let avg = sum / reps as f64;
        assert!((avg - truth).abs() < 0.02, "avg {avg} vs truth {truth}");
    }

    #[test]
    fn lower_variance_than_rcs_on_wide_spread() {
        use crate::rcs::RcsDesign;
        let sizes: Vec<u32> = (0..200)
            .map(|i| if i % 20 == 0 { 100 } else { 1 })
            .collect();
        let kg = ImplicitKg::new(sizes).unwrap();
        let oracle = RemOracle::new(0.9, 5);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        // Empirical estimator variance over replications.
        let reps = 200;
        let mut wcs_est = RunningMoments::new();
        let mut rcs_est = RunningMoments::new();
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut w = WcsDesign::new(idx.clone());
            let mut a = SimulatedAnnotator::new(&oracle, CostModel::default());
            w.draw(&mut rng, &mut a, 30);
            wcs_est.push(w.estimate().mean);

            let mut rng = StdRng::seed_from_u64(seed + 10_000);
            let mut r = RcsDesign::new(idx.clone());
            let mut a = SimulatedAnnotator::new(&oracle, CostModel::default());
            r.draw(&mut rng, &mut a, 30);
            rcs_est.push(r.estimate().mean);
        }
        assert!(
            wcs_est.sample_variance() * 3.0 < rcs_est.sample_variance(),
            "WCS var {} vs RCS var {}",
            wcs_est.sample_variance(),
            rcs_est.sample_variance()
        );
    }

    #[test]
    fn duplicate_draws_cost_nothing_extra() {
        let kg = ImplicitKg::new(vec![5]).unwrap(); // single cluster: every draw repeats
        let oracle = RemOracle::new(0.8, 9);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = WcsDesign::new(idx);
        let mut a = SimulatedAnnotator::new(&oracle, CostModel::new(45.0, 25.0));
        d.draw(&mut rng, &mut a, 10);
        assert_eq!(d.units(), 10);
        assert_eq!(a.entities_identified(), 1);
        assert_eq!(a.triples_annotated(), 5);
        assert!((a.seconds() - (45.0 + 5.0 * 25.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_before_draws() {
        let idx = Arc::new(PopulationIndex::from_sizes(vec![2]).unwrap());
        let d = WcsDesign::new(idx);
        assert_eq!(d.units(), 0);
        assert_eq!(d.name(), "WCS");
        assert!(d.estimate().moe(0.05).unwrap() > 0.5);
    }
}

//! Expected-cost analysis for the sampling designs (§5.1 and §5.2.3 "Cost
//! Analysis").
//!
//! * SRS: the sample size needed for MoE ε is
//!   `n_s = μ̂(1−μ̂)·z²_{α/2}/ε²`, and its expected *entity* cost follows the
//!   coupon-collector-style count `E[n_c] = Σ_i (1 − (1 − M_i/M)^{n_s})`
//!   (Eq. 6).
//! * TWCS: the cost upper bound `n·c1 + n·m·c2` (Eq. 11, all sampled
//!   clusters of size ≥ m) and lower bound `n·(c1 + c2)` (all of size 1),
//!   plotted as the theoretical ribbon in Fig. 6.

use kg_annotate::cost::CostModel;
use kg_stats::error::StatsError;
use kg_stats::normal::z_critical;

/// SRS sample size required for margin `eps` at level `1−alpha` when the
/// (anticipated) accuracy is `p` (§5.1: `n_s = μ̂(1−μ̂)z²/ε²`).
pub fn srs_required_n(p: f64, eps: f64, alpha: f64) -> Result<f64, StatsError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::invalid("p", "0 <= p <= 1", p));
    }
    if eps <= 0.0 || eps.is_nan() {
        return Err(StatsError::invalid("eps", "> 0", eps));
    }
    let z = z_critical(alpha)?;
    Ok(p * (1.0 - p) * z * z / (eps * eps))
}

/// Expected number of *distinct entities* touched by an SRS of `n_s`
/// triples: `E[n_c] = Σ_i (1 − (1 − M_i/M)^{n_s})` (Eq. 6).
///
/// Uses `exp(n_s·ln(1−w))` per cluster for numerical stability on tiny
/// weights.
pub fn srs_expected_entities(sizes: &[u32], n_s: f64) -> f64 {
    let total: f64 = sizes.iter().map(|&s| s as f64).sum();
    if total == 0.0 {
        return 0.0;
    }
    sizes
        .iter()
        .map(|&s| {
            let w = s as f64 / total;
            1.0 - (n_s * (1.0 - w).ln()).exp()
        })
        .sum()
}

/// Expected SRS annotation cost (seconds) for `n_s` triples (the objective
/// of Eq. 6): `E[n_c]·c1 + n_s·c2`.
pub fn srs_expected_cost(sizes: &[u32], n_s: f64, cost: CostModel) -> f64 {
    srs_expected_entities(sizes, n_s) * cost.c1 + n_s * cost.c2
}

/// TWCS cost *upper bound* (Eq. 11): `n·c1 + n·m·c2`, reached when every
/// sampled cluster has at least `m` triples.
pub fn twcs_cost_upper(n: f64, m: usize, cost: CostModel) -> f64 {
    n * cost.c1 + n * m as f64 * cost.c2
}

/// TWCS cost *lower bound*: `n·(c1 + c2)`, reached when every sampled
/// cluster has a single triple.
pub fn twcs_cost_lower(n: f64, cost: CostModel) -> f64 {
    n * (cost.c1 + cost.c2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn srs_n_matches_textbook_value() {
        // p=0.5, ε=5%, α=5%: n = 0.25·(1.96)²/0.0025 ≈ 384.1.
        let n = srs_required_n(0.5, 0.05, 0.05).unwrap();
        assert!((n - 384.1).abs() < 0.5, "n {n}");
        // p=0.9 is cheaper.
        assert!(srs_required_n(0.9, 0.05, 0.05).unwrap() < n);
        assert!(srs_required_n(1.5, 0.05, 0.05).is_err());
        assert!(srs_required_n(0.5, 0.0, 0.05).is_err());
    }

    #[test]
    fn expected_entities_bounds() {
        let sizes = vec![10u32; 100]; // 1000 triples

        // Drawing 0 triples touches 0 entities.
        assert!(srs_expected_entities(&sizes, 0.0).abs() < 1e-12);
        // Drawing a huge sample touches ~all entities.
        let big = srs_expected_entities(&sizes, 10_000.0);
        assert!((big - 100.0).abs() < 1e-6, "{big}");
        // Monotone in n_s and ≤ min(n_s, N).
        let e50 = srs_expected_entities(&sizes, 50.0);
        let e100 = srs_expected_entities(&sizes, 100.0);
        assert!(e50 < e100);
        assert!(e50 <= 50.0);
    }

    #[test]
    fn expected_entities_nearly_ns_when_clusters_tiny() {
        // With all clusters of size 1 (and many of them), nearly every drawn
        // triple is a fresh entity.
        let sizes = vec![1u32; 100_000];
        let e = srs_expected_entities(&sizes, 174.0);
        assert!((e - 174.0).abs() < 1.0, "{e}");
    }

    #[test]
    fn srs_cost_combines_terms() {
        let sizes = vec![1u32; 1000];
        let cost = CostModel::new(45.0, 25.0);
        let c = srs_expected_cost(&sizes, 100.0, cost);
        // ~100 entities · 45 + 100 · 25 ≈ 7000 − small collision slack.
        assert!(c > 6500.0 && c <= 7000.0, "{c}");
    }

    #[test]
    fn twcs_bounds_order() {
        let cost = CostModel::default();
        for m in 1..20 {
            let up = twcs_cost_upper(30.0, m, cost);
            let lo = twcs_cost_lower(30.0, cost);
            assert!(up >= lo, "m={m}: {up} < {lo}");
        }
        // Equality exactly at m = 1.
        assert!((twcs_cost_upper(30.0, 1, cost) - twcs_cost_lower(30.0, cost)).abs() < 1e-9);
    }

    #[test]
    fn empty_population_cost_is_zero() {
        assert_eq!(srs_expected_entities(&[], 10.0), 0.0);
    }
}

//! Pre-processed population index: prefix sums and an alias table over
//! cluster sizes.
//!
//! Built once per KG (O(N)), then shared (`Arc`) across every design and
//! every experiment trial. Provides the two primitives all designs need:
//!
//! * uniform triple addressing — map a global triple index in `0..M` to a
//!   [`TripleRef`] by binary search over the prefix sums (SRS), with a
//!   divide-only fast path when every cluster has the same size;
//! * PPS cluster draws — sample a cluster with probability `M_i/M` in O(1)
//!   via the alias table (WCS/TWCS first stage).
//!
//! The prefix-sum vector is held in an `Arc` so the dense annotation engine
//! ([`kg_annotate::label_store::LabelStore`]) can share the exact same
//! global-index layout without copying it — see
//! [`PopulationIndex::materialize_labels`].

use kg_annotate::label_store::LabelStore;
use kg_annotate::oracle::LabelOracle;
use kg_model::implicit::ClusterPopulation;
use kg_model::triple::TripleRef;
use kg_stats::alias::AliasTable;
use kg_stats::error::StatsError;
use rand::Rng;
use std::sync::Arc;

/// Immutable sampling index over a cluster population.
#[derive(Debug, Clone)]
pub struct PopulationIndex {
    sizes: Vec<u32>,
    prefix: Arc<Vec<u64>>,
    alias: AliasTable,
    /// Cached `M` (= `prefix.last()`), so the hot `cluster_weight` /
    /// `triple_at` paths never re-derive it through a bounds-checked
    /// `last()` chain.
    total: u64,
    /// `Some(s)` when every cluster has size `s`: `triple_at` then resolves
    /// by division instead of binary search.
    uniform_size: Option<u32>,
    /// Narrow mirror of `prefix` when `M < 2^32`: half the memory traffic
    /// for the batch mapper's probe-heavy walk.
    prefix32: Option<Vec<u32>>,
}

impl PopulationIndex {
    /// Build from explicit cluster sizes.
    pub fn from_sizes(sizes: Vec<u32>) -> Result<Self, StatsError> {
        if sizes.is_empty() {
            return Err(StatsError::EmptyInput("population has no clusters"));
        }
        let mut prefix = Vec::with_capacity(sizes.len() + 1);
        let mut acc = 0u64;
        prefix.push(0);
        for &s in &sizes {
            acc += s as u64;
            prefix.push(acc);
        }
        let alias = AliasTable::from_sizes(&sizes)?;
        let first = sizes[0];
        let uniform_size = (first > 0 && sizes.iter().all(|&s| s == first)).then_some(first);
        let prefix32 = (acc <= u32::MAX as u64)
            .then(|| prefix.iter().map(|&p| p as u32).collect::<Vec<u32>>());
        Ok(PopulationIndex {
            total: acc,
            sizes,
            prefix: Arc::new(prefix),
            alias,
            uniform_size,
            prefix32,
        })
    }

    /// Build from any cluster population.
    pub fn from_population<P: ClusterPopulation + ?Sized>(pop: &P) -> Result<Self, StatsError> {
        let sizes: Vec<u32> = (0..pop.num_clusters())
            .map(|i| pop.cluster_size(i) as u32)
            .collect();
        Self::from_sizes(sizes)
    }

    /// Number of clusters `N`.
    pub fn num_clusters(&self) -> usize {
        self.sizes.len()
    }

    /// Total triples `M`.
    #[inline]
    pub fn total_triples(&self) -> u64 {
        self.total
    }

    /// Size of one cluster.
    #[inline]
    pub fn cluster_size(&self, cluster: usize) -> usize {
        self.sizes[cluster] as usize
    }

    /// The size vector.
    pub fn sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// The shared prefix-sum vector (`prefix[c]` = global index of cluster
    /// `c`'s first triple; `prefix[N] = M`).
    pub fn prefix_sums(&self) -> &Arc<Vec<u64>> {
        &self.prefix
    }

    /// Materialize a label oracle into a dense [`LabelStore`] sharing this
    /// index's prefix-sum layout (no copy), so the two agree on global
    /// triple addressing by construction.
    pub fn materialize_labels<O: LabelOracle + ?Sized>(&self, oracle: &O) -> LabelStore {
        LabelStore::from_prefix(self.prefix.clone(), oracle)
    }

    /// Map a global triple index in `0..M` to its `TripleRef`.
    #[inline]
    pub fn triple_at(&self, global: u64) -> TripleRef {
        debug_assert!(global < self.total);
        if let Some(s) = self.uniform_size {
            // Equal-sized clusters: one division, no search.
            let s = s as u64;
            return TripleRef::new((global / s) as u32, (global % s) as u32);
        }
        // partition_point gives the first prefix > global; cluster is that-1.
        let cluster = self.prefix.partition_point(|&p| p <= global) - 1;
        let offset = global - self.prefix[cluster];
        TripleRef::new(cluster as u32, offset as u32)
    }

    /// Map a batch of **ascending** global triple indices to `TripleRef`s,
    /// appended to `out` (cleared first).
    ///
    /// Resolves by interpolation: the prefix array is close to linear
    /// (clusters have bounded sizes), so `g · N/M` lands within a few
    /// clusters of the answer; an exponential probe from the guess —
    /// floored at the previous hit, since the batch ascends — then a short
    /// binary search finish the job in O(1) expected probes of hot memory
    /// per draw, versus a full `log N` cold binary search per call to
    /// [`PopulationIndex::triple_at`]. This mapping is most of SRS's
    /// per-draw machine time at the 10^6-triple scale.
    pub fn map_sorted_globals(&self, globals: &[u64], out: &mut Vec<TripleRef>) {
        out.clear();
        out.reserve(globals.len());
        if let Some(s) = self.uniform_size {
            let s = s as u64;
            out.extend(
                globals
                    .iter()
                    .map(|&g| TripleRef::new((g / s) as u32, (g % s) as u32)),
            );
            return;
        }
        let n = self.sizes.len();
        let inv_avg = n as f64 / self.total as f64;
        match &self.prefix32 {
            Some(p32) => walk_ascending(p32, n, self.total, inv_avg, globals, out),
            None => walk_ascending(&self.prefix, n, self.total, inv_avg, globals, out),
        }
    }

    /// Draw a cluster with probability proportional to size (`π_i = M_i/M`).
    #[inline]
    pub fn sample_cluster_pps<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.alias.sample(rng)
    }

    /// Draw a cluster with probability proportional to size, returning its
    /// size as well. Stream-identical to
    /// [`PopulationIndex::sample_cluster_pps`] (same RNG consumption, same
    /// cluster), but the size rides along in the alias slot's cache line
    /// instead of costing a separate random `sizes[c]` load — the PPS
    /// designs' draw loops are memory-latency-bound at the 10^6+ scale, so
    /// every random access saved shows up directly in throughput.
    #[inline]
    pub fn sample_cluster_pps_sized<R: Rng + ?Sized>(&self, rng: &mut R) -> (usize, usize) {
        let (c, size) = self.alias.sample_sized(rng);
        debug_assert_eq!(size as usize, self.cluster_size(c));
        (c, size as usize)
    }

    /// Draw a cluster with probability proportional to size, returning its
    /// size and global base offset. Stream-identical to
    /// [`PopulationIndex::sample_cluster_pps`] (same RNG consumption, same
    /// cluster); size and base both ride in the alias slot's cache line.
    /// Carrying the base cuts the *serial* miss depth of a full-cluster
    /// visit: the annotation engine can touch the triple range
    /// `[base, base + size)` as soon as the slot load lands, instead of
    /// chaining a dependent cluster-directory load first.
    #[inline]
    pub fn sample_cluster_pps_sited<R: Rng + ?Sized>(&self, rng: &mut R) -> (usize, usize, u64) {
        if self.alias.has_bases() {
            let (c, size, base) = self.alias.sample_sited(rng);
            debug_assert_eq!(size as usize, self.cluster_size(c));
            debug_assert_eq!(base, self.prefix[c]);
            return (c, size as usize, base);
        }
        // Populations past 2^32 triples: the narrow slot base doesn't fit,
        // so serve the base from the prefix sums (one extra random load,
        // exactly what the sited path saves everywhere else).
        let (c, size) = self.alias.sample_sized(rng);
        debug_assert_eq!(size as usize, self.cluster_size(c));
        (c, size as usize, self.prefix[c])
    }

    /// Probability-weight `M_i / M` of a cluster.
    #[inline]
    pub fn cluster_weight(&self, cluster: usize) -> f64 {
        self.sizes[cluster] as f64 / self.total as f64
    }
}

/// The interpolation-guess walk behind
/// [`PopulationIndex::map_sorted_globals`], generic over the prefix word
/// width. Invariant maintained across iterations: `prefix[c] <= g` for the
/// current and all later (ascending) globals.
///
/// Works in chunks of 16: a first loop computes every chunk member's
/// interpolation guess and loads `prefix[guess]` with no cross-iteration
/// dependency — the out-of-order core overlaps those cache misses — and
/// the fix-up loop then runs against warm lines. Random probes into a
/// megabyte-scale prefix array are latency-bound, so this memory-level
/// parallelism, not probe count, is what the batch shape buys.
fn walk_ascending<T: Copy + Into<u64>>(
    prefix: &[T],
    n: usize,
    total: u64,
    inv_avg: f64,
    globals: &[u64],
    out: &mut Vec<TripleRef>,
) {
    let at = |i: usize| -> u64 { prefix[i].into() };
    let mut c = 0usize;
    for chunk in globals.chunks(16) {
        let mut guesses = [0usize; 16];
        let mut loaded = [0u64; 16];
        for (i, &g) in chunk.iter().enumerate() {
            let q = ((g as f64 * inv_avg) as usize).min(n - 1);
            guesses[i] = q;
            loaded[i] = at(q);
        }
        for (i, &g) in chunk.iter().enumerate() {
            debug_assert!(g < total, "global index out of range");
            debug_assert!(at(c) <= g, "globals must be ascending");
            let mut lo = c;
            let mut hi; // exclusive bound: prefix[hi] > g (prefix[n] = M > g)
            let (guess, val) = if guesses[i] >= c {
                (guesses[i], loaded[i])
            } else {
                (c, at(c)) // guess fell behind the walk; its line is warm
            };
            if val <= g {
                lo = guess;
                let mut step = 1usize;
                hi = guess + 1;
                while hi < n && at(hi) <= g {
                    lo = hi;
                    hi = (hi + step).min(n);
                    step <<= 1;
                }
            } else {
                hi = guess;
                let mut step = 1usize;
                loop {
                    let probe = hi.saturating_sub(step).max(lo);
                    if probe == lo || at(probe) <= g {
                        lo = probe;
                        break;
                    }
                    hi = probe;
                    step <<= 1;
                }
            }
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if at(mid) <= g {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            c = lo;
            out.push(TripleRef::new(c as u32, (g - at(c)) as u32));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_annotate::oracle::RemOracle;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn prefix_addressing_covers_every_triple() {
        let idx = PopulationIndex::from_sizes(vec![3, 1, 4]).unwrap();
        assert_eq!(idx.total_triples(), 8);
        assert_eq!(idx.num_clusters(), 3);
        let expected = [
            (0, 0),
            (0, 1),
            (0, 2),
            (1, 0),
            (2, 0),
            (2, 1),
            (2, 2),
            (2, 3),
        ];
        for (g, &(c, o)) in expected.iter().enumerate() {
            assert_eq!(idx.triple_at(g as u64), TripleRef::new(c, o), "global {g}");
        }
    }

    #[test]
    fn uniform_fast_path_matches_binary_search() {
        let idx = PopulationIndex::from_sizes(vec![7; 13]).unwrap();
        // Force the general path for comparison by building a same-shape
        // index that is *not* detected uniform (one cluster differs, then
        // compare only the shared range).
        for g in 0..idx.total_triples() {
            let t = idx.triple_at(g);
            assert_eq!(t.cluster as u64, g / 7, "global {g}");
            assert_eq!(t.offset as u64, g % 7, "global {g}");
            // Round-trip through the prefix layout.
            assert_eq!(idx.prefix_sums()[t.cluster as usize] + t.offset as u64, g);
        }
    }

    #[test]
    fn empty_population_rejected() {
        assert!(PopulationIndex::from_sizes(vec![]).is_err());
    }

    #[test]
    fn pps_sampling_frequencies_match_sizes() {
        let idx = PopulationIndex::from_sizes(vec![1, 9]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 100_000;
        let mut big = 0;
        for _ in 0..trials {
            if idx.sample_cluster_pps(&mut rng) == 1 {
                big += 1;
            }
        }
        let freq = big as f64 / trials as f64;
        assert!((freq - 0.9).abs() < 0.01, "freq {freq}");
        assert!((idx.cluster_weight(1) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn from_population_agrees_with_from_sizes() {
        use kg_model::implicit::ImplicitKg;
        let kg = ImplicitKg::new(vec![2, 5]).unwrap();
        let idx = PopulationIndex::from_population(&kg).unwrap();
        assert_eq!(idx.sizes(), &[2, 5]);
        assert_eq!(idx.total_triples(), 7);
        assert_eq!(idx.cluster_size(1), 5);
    }

    #[test]
    fn sorted_mapping_agrees_with_point_lookups() {
        use rand::Rng;
        // Skewed sizes exercise the galloping walk; a uniform index takes
        // the division path; both must agree with `triple_at`.
        for sizes in [
            (0..200).map(|i| 1 + (i % 17)).collect::<Vec<u32>>(),
            vec![6; 300],
            vec![1000, 1, 1, 1, 500],
        ] {
            let idx = PopulationIndex::from_sizes(sizes).unwrap();
            let mut rng = StdRng::seed_from_u64(8);
            let mut globals: Vec<u64> = (0..128)
                .map(|_| rng.gen_range(0..idx.total_triples()))
                .collect();
            globals.sort_unstable();
            globals.dedup();
            let mut out = Vec::new();
            idx.map_sorted_globals(&globals, &mut out);
            assert_eq!(out.len(), globals.len());
            for (&g, &r) in globals.iter().zip(&out) {
                assert_eq!(r, idx.triple_at(g), "global {g}");
            }
            // Every global, in order, round-trips too.
            let all: Vec<u64> = (0..idx.total_triples()).collect();
            idx.map_sorted_globals(&all, &mut out);
            for (&g, &r) in all.iter().zip(&out) {
                assert_eq!(r, idx.triple_at(g), "global {g}");
            }
        }
    }

    #[test]
    fn materialized_labels_share_the_prefix_layout() {
        let idx = PopulationIndex::from_sizes(vec![3, 1, 4]).unwrap();
        let oracle = RemOracle::new(0.7, 11);
        let store = idx.materialize_labels(&oracle);
        assert!(Arc::ptr_eq(store.prefix_sums(), idx.prefix_sums()));
        for g in 0..idx.total_triples() {
            let t = idx.triple_at(g);
            assert_eq!(store.label_at(g), oracle.label(t), "global {g}");
        }
    }
}

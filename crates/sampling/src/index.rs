//! Pre-processed population index: prefix sums and an alias table over
//! cluster sizes.
//!
//! Built once per KG (O(N)), then shared (`Arc`) across every design and
//! every experiment trial. Provides the two primitives all designs need:
//!
//! * uniform triple addressing — map a global triple index in `0..M` to a
//!   [`TripleRef`] by binary search over the prefix sums (SRS);
//! * PPS cluster draws — sample a cluster with probability `M_i/M` in O(1)
//!   via the alias table (WCS/TWCS first stage).

use kg_model::implicit::ClusterPopulation;
use kg_model::triple::TripleRef;
use kg_stats::alias::AliasTable;
use kg_stats::error::StatsError;
use rand::Rng;

/// Immutable sampling index over a cluster population.
#[derive(Debug, Clone)]
pub struct PopulationIndex {
    sizes: Vec<u32>,
    prefix: Vec<u64>,
    alias: AliasTable,
}

impl PopulationIndex {
    /// Build from explicit cluster sizes.
    pub fn from_sizes(sizes: Vec<u32>) -> Result<Self, StatsError> {
        if sizes.is_empty() {
            return Err(StatsError::EmptyInput("population has no clusters"));
        }
        let mut prefix = Vec::with_capacity(sizes.len() + 1);
        let mut acc = 0u64;
        prefix.push(0);
        for &s in &sizes {
            acc += s as u64;
            prefix.push(acc);
        }
        let alias = AliasTable::from_sizes(&sizes)?;
        Ok(PopulationIndex {
            sizes,
            prefix,
            alias,
        })
    }

    /// Build from any cluster population.
    pub fn from_population<P: ClusterPopulation + ?Sized>(pop: &P) -> Result<Self, StatsError> {
        let sizes: Vec<u32> = (0..pop.num_clusters())
            .map(|i| pop.cluster_size(i) as u32)
            .collect();
        Self::from_sizes(sizes)
    }

    /// Number of clusters `N`.
    pub fn num_clusters(&self) -> usize {
        self.sizes.len()
    }

    /// Total triples `M`.
    pub fn total_triples(&self) -> u64 {
        *self.prefix.last().expect("prefix non-empty")
    }

    /// Size of one cluster.
    pub fn cluster_size(&self, cluster: usize) -> usize {
        self.sizes[cluster] as usize
    }

    /// The size vector.
    pub fn sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// Map a global triple index in `0..M` to its `TripleRef`.
    pub fn triple_at(&self, global: u64) -> TripleRef {
        debug_assert!(global < self.total_triples());
        // partition_point gives the first prefix > global; cluster is that-1.
        let cluster = self.prefix.partition_point(|&p| p <= global) - 1;
        let offset = global - self.prefix[cluster];
        TripleRef::new(cluster as u32, offset as u32)
    }

    /// Draw a cluster with probability proportional to size (`π_i = M_i/M`).
    pub fn sample_cluster_pps<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.alias.sample(rng)
    }

    /// Probability-weight `M_i / M` of a cluster.
    pub fn cluster_weight(&self, cluster: usize) -> f64 {
        self.sizes[cluster] as f64 / self.total_triples() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn prefix_addressing_covers_every_triple() {
        let idx = PopulationIndex::from_sizes(vec![3, 1, 4]).unwrap();
        assert_eq!(idx.total_triples(), 8);
        assert_eq!(idx.num_clusters(), 3);
        let expected = [
            (0, 0),
            (0, 1),
            (0, 2),
            (1, 0),
            (2, 0),
            (2, 1),
            (2, 2),
            (2, 3),
        ];
        for (g, &(c, o)) in expected.iter().enumerate() {
            assert_eq!(idx.triple_at(g as u64), TripleRef::new(c, o), "global {g}");
        }
    }

    #[test]
    fn empty_population_rejected() {
        assert!(PopulationIndex::from_sizes(vec![]).is_err());
    }

    #[test]
    fn pps_sampling_frequencies_match_sizes() {
        let idx = PopulationIndex::from_sizes(vec![1, 9]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 100_000;
        let mut big = 0;
        for _ in 0..trials {
            if idx.sample_cluster_pps(&mut rng) == 1 {
                big += 1;
            }
        }
        let freq = big as f64 / trials as f64;
        assert!((freq - 0.9).abs() < 0.01, "freq {freq}");
        assert!((idx.cluster_weight(1) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn from_population_agrees_with_from_sizes() {
        use kg_model::implicit::ImplicitKg;
        let kg = ImplicitKg::new(vec![2, 5]).unwrap();
        let idx = PopulationIndex::from_population(&kg).unwrap();
        assert_eq!(idx.sizes(), &[2, 5]);
        assert_eq!(idx.total_triples(), 7);
        assert_eq!(idx.cluster_size(1), 5);
    }
}

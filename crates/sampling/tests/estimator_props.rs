//! Property tests on the sampling designs (paper §5): estimator sanity for
//! SRS/WCS/TWCS, margin-of-error monotonicity in the sample size, and TWCS
//! cost bookkeeping against Definition 3 / Eq. 4, `Cost(G') = |E'|·c1 +
//! |G'|·c2`.

use kg_annotate::annotator::{Annotator, SimulatedAnnotator};
use kg_annotate::cost::CostModel;
use kg_annotate::oracle::{cluster_accuracies, GoldLabels};
use kg_model::implicit::ImplicitKg;
use kg_sampling::design::StaticDesign;
use kg_sampling::srs::SrsDesign;
use kg_sampling::twcs::TwcsDesign;
use kg_sampling::variance::PopulationTruth;
use kg_sampling::wcs::WcsDesign;
use kg_sampling::PopulationIndex;
use kg_stats::z_critical;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Arbitrary labeled population: 2–25 clusters of size 1–15, labels i.i.d.
fn arb_population() -> impl Strategy<Value = (Vec<u32>, Vec<Vec<bool>>)> {
    prop::collection::vec(1u32..15, 2..25).prop_flat_map(|sizes| {
        let label_strategies: Vec<_> = sizes
            .iter()
            .map(|&s| prop::collection::vec(any::<bool>(), s as usize))
            .collect();
        (Just(sizes), label_strategies)
    })
}

/// Every design under test, freshly instantiated over `idx`.
fn designs(idx: &Arc<PopulationIndex>, m: usize) -> Vec<Box<dyn StaticDesign>> {
    vec![
        Box::new(SrsDesign::new(idx.clone())),
        Box::new(WcsDesign::new(idx.clone())),
        Box::new(TwcsDesign::new(idx.clone(), m)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// SRS, WCS, and TWCS point estimates are accuracies, so they must land
    /// in [0, 1] no matter the population, batch pattern, or seed — unlike
    /// RCS (Eq. 7), whose unbiased estimator can overshoot by design.
    #[test]
    fn point_estimates_land_in_unit_interval(
        (sizes, labels) in arb_population(),
        m in 1usize..6,
        seed in any::<u64>(),
        batch in 1usize..12,
    ) {
        let kg = ImplicitKg::new(sizes).unwrap();
        let gold = GoldLabels::new(labels);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        for mut design in designs(&idx, m) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut annotator = SimulatedAnnotator::new(&gold, CostModel::default());
            for _ in 0..4 {
                design.draw(&mut rng, &mut annotator, batch);
                let est = design.estimate();
                prop_assert!(
                    (0.0..=1.0).contains(&est.mean),
                    "{} estimate {} outside [0,1]", design.name(), est.mean
                );
                prop_assert!(
                    est.var_of_mean >= 0.0 && est.var_of_mean.is_finite(),
                    "{} variance {} invalid", design.name(), est.var_of_mean
                );
            }
        }
    }

    /// The theoretical TWCS margin of error `z_{α/2}·sqrt(V(m)/n)` (Eq. 10
    /// with Eq. 1) is non-increasing in the first-stage sample size `n` for
    /// any fixed population and second-stage cap `m`.
    #[test]
    fn theoretical_moe_shrinks_monotonically_in_n(
        (sizes, labels) in arb_population(),
        m in 1usize..6,
    ) {
        let kg = ImplicitKg::new(sizes.clone()).unwrap();
        let gold = GoldLabels::new(labels);
        let accs = cluster_accuracies(&kg, &gold);
        let truth = PopulationTruth::new(sizes, accs).unwrap();
        let z = z_critical(0.05).unwrap();
        let mut prev = f64::INFINITY;
        for n in 1usize..60 {
            let moe = z * (truth.var_of_estimator(m, n)).sqrt();
            prop_assert!(
                moe <= prev + 1e-12,
                "MoE({n})={moe} > MoE({})={prev} for m={m}", n - 1
            );
            prev = moe;
        }
    }

    /// The *achieved* margin of error also shrinks with more drawn units,
    /// checked on seed-averaged estimates so sampling noise cannot flip the
    /// comparison: with var_of_mean ≈ V(m)/n (Eq. 10), quadrupling the
    /// units should roughly halve the MoE; we assert the weaker claim that
    /// the average does not increase.
    #[test]
    fn empirical_moe_shrinks_with_more_units(
        (sizes, labels) in arb_population(),
        m in 1usize..5,
    ) {
        let kg = ImplicitKg::new(sizes).unwrap();
        let gold = GoldLabels::new(labels);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let seeds = 30u64;
        let mut moe_small = 0.0;
        let mut moe_large = 0.0;
        for seed in 0..seeds {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut design = TwcsDesign::new(idx.clone(), m);
            let mut annotator = SimulatedAnnotator::new(&gold, CostModel::default());
            design.draw(&mut rng, &mut annotator, 10);
            moe_small += design.estimate().moe(0.05).unwrap();
            design.draw(&mut rng, &mut annotator, 30);
            moe_large += design.estimate().moe(0.05).unwrap();
        }
        prop_assert!(
            moe_large <= moe_small + 1e-9,
            "mean MoE grew from {} (n=10) to {} (n=40)",
            moe_small / seeds as f64,
            moe_large / seeds as f64
        );
    }

    /// TWCS cost bookkeeping matches Definition 3 / Eq. 4 exactly:
    /// `seconds = |E'|·c1 + |G'|·c2` with `|E'|` the distinct entities
    /// identified and `|G'|` the distinct triples annotated; re-drawn
    /// clusters and triples are never double-charged.
    #[test]
    fn twcs_cost_bookkeeping_matches_eq4(
        (sizes, labels) in arb_population(),
        m in 1usize..6,
        seed in any::<u64>(),
        c1 in 0.0f64..120.0,
        c2 in 0.0f64..60.0,
    ) {
        let kg = ImplicitKg::new(sizes).unwrap();
        let gold = GoldLabels::new(labels);
        let idx = Arc::new(PopulationIndex::from_population(&kg).unwrap());
        let cost = CostModel::new(c1, c2);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut design = TwcsDesign::new(idx.clone(), m);
        let mut annotator = SimulatedAnnotator::new(&gold, cost);
        let drawn = design.draw(&mut rng, &mut annotator, 25);
        prop_assert_eq!(drawn, design.units());

        let entities = annotator.entities_identified() as u64;
        let triples = annotator.triples_annotated() as u64;
        let expected = cost.seconds(entities, triples);
        prop_assert!(
            (annotator.seconds() - expected).abs() <= 1e-9 * expected.max(1.0),
            "charged {} s but Eq. 4 gives {} s (|E'|={}, |G'|={})",
            annotator.seconds(), expected, entities, triples
        );

        // Distinctness bounds: at most one entity per first-stage draw and
        // at most m second-stage triples per draw.
        prop_assert!(entities as usize <= design.units());
        prop_assert!(triples as usize <= design.units() * m);
        prop_assert!(entities as usize <= idx.num_clusters());
        prop_assert!(triples <= idx.total_triples());
    }
}

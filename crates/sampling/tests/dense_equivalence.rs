//! Dense-engine equivalence: the arena-backed `DenseAnnotator` over a
//! materialized `LabelStore` must be **byte-identical** — labels, cost
//! seconds, and estimator output — to the hash-based `SimulatedAnnotator`
//! reference on random cluster populations and random draw sequences,
//! across every sampling design.
//!
//! This is the safety net that lets every experiment switch to the fast
//! path: both engines charge `Cost(G') = |E'|·c1 + |G'|·c2` from their memo
//! counts (not an order-dependent float accumulation), and the designs
//! consume the RNG identically regardless of engine, so any disagreement
//! here is a real memoization or addressing bug, not float noise.

use kg_annotate::annotator::{Annotator, SimulatedAnnotator};
use kg_annotate::cost::CostModel;
use kg_annotate::dense::DenseAnnotator;
use kg_annotate::oracle::RemOracle;
use kg_model::triple::TripleRef;
use kg_sampling::design::Design;
use kg_sampling::stratified::StratificationStrategy;
use kg_sampling::PopulationIndex;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn designs() -> Vec<Design> {
    vec![
        Design::Srs,
        Design::Rcs,
        Design::Wcs,
        Design::Twcs { m: 1 },
        Design::Twcs { m: 5 },
        Design::TsRcs { m: 4 },
        Design::StratifiedTwcs {
            m: 3,
            strategy: StratificationStrategy::Size { strata: 3 },
        },
        Design::StratifiedTwcs {
            m: 3,
            strategy: StratificationStrategy::Oracle { strata: 2 },
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every design, driven by both engines from the same seed, yields the
    /// same estimate (mean, variance, units) and the same cost books.
    #[test]
    fn estimators_and_costs_are_byte_identical(
        sizes in prop::collection::vec(1u32..40, 1..50),
        accuracy in 0.0f64..1.0,
        oracle_seed in 0u64..1_000_000,
        rng_seed in 0u64..1_000_000,
        batches in prop::collection::vec(1usize..12, 1..4),
    ) {
        let oracle = RemOracle::new(accuracy, oracle_seed);
        let idx = Arc::new(PopulationIndex::from_sizes(sizes).unwrap());
        let store = Arc::new(idx.materialize_labels(&oracle));
        let mut dense = DenseAnnotator::new(store, CostModel::default());

        for design in designs() {
            let mut hash_design = design.instantiate(idx.clone(), &oracle);
            let mut dense_design = design.instantiate(idx.clone(), &oracle);
            let mut hash_ann = SimulatedAnnotator::new(&oracle, CostModel::default());
            dense.reset();

            let mut hash_rng = StdRng::seed_from_u64(rng_seed);
            let mut dense_rng = StdRng::seed_from_u64(rng_seed);
            for &b in &batches {
                let h = hash_design.draw(&mut hash_rng, &mut hash_ann, b);
                let d = dense_design.draw(&mut dense_rng, &mut dense, b);
                prop_assert_eq!(h, d, "{}: drawn units diverged", design.name());
            }

            let he = hash_design.estimate();
            let de = dense_design.estimate();
            prop_assert_eq!(
                he.mean.to_bits(), de.mean.to_bits(),
                "{}: mean {} vs {}", design.name(), he.mean, de.mean
            );
            prop_assert_eq!(
                he.var_of_mean.to_bits(), de.var_of_mean.to_bits(),
                "{}: var {} vs {}", design.name(), he.var_of_mean, de.var_of_mean
            );
            prop_assert_eq!(hash_design.units(), dense_design.units());
            prop_assert_eq!(
                hash_ann.seconds().to_bits(), dense.seconds().to_bits(),
                "{}: cost {} vs {}", design.name(), hash_ann.seconds(), dense.seconds()
            );
            prop_assert_eq!(hash_ann.entities_identified(), dense.entities_identified());
            prop_assert_eq!(hash_ann.triples_annotated(), dense.triples_annotated());
        }
    }

    /// Raw label streams agree on arbitrary (repeating, interleaved)
    /// reference sequences, and so do the memo counts afterwards.
    #[test]
    fn labels_are_byte_identical(
        sizes in prop::collection::vec(1u32..30, 1..40),
        accuracy in 0.0f64..1.0,
        oracle_seed in 0u64..1_000_000,
        raw_refs in prop::collection::vec((0u32..1000, 0u32..1000), 1..120),
    ) {
        let oracle = RemOracle::new(accuracy, oracle_seed);
        let idx = Arc::new(PopulationIndex::from_sizes(sizes.clone()).unwrap());
        let store = Arc::new(idx.materialize_labels(&oracle));
        let refs: Vec<TripleRef> = raw_refs
            .into_iter()
            .map(|(c, o)| {
                let cluster = c as usize % sizes.len();
                TripleRef::new(cluster as u32, o % sizes[cluster])
            })
            .collect();

        let mut hash_ann = SimulatedAnnotator::new(&oracle, CostModel::default());
        let mut dense = DenseAnnotator::new(store, CostModel::default());
        let (mut hash_out, mut dense_out) = (Vec::new(), Vec::new());
        // Split the sequence into two batches to exercise cross-batch
        // memoization as well.
        let mid = refs.len() / 2;
        for part in [&refs[..mid], &refs[mid..]] {
            hash_ann.annotate_into(part, &mut hash_out);
            dense.annotate_into(part, &mut dense_out);
            prop_assert_eq!(&hash_out, &dense_out);
        }
        prop_assert_eq!(hash_ann.seconds().to_bits(), dense.seconds().to_bits());
        prop_assert_eq!(hash_ann.entities_identified(), dense.entities_identified());
        prop_assert_eq!(hash_ann.triples_annotated(), dense.triples_annotated());

        // Singleton API agrees too.
        for &r in refs.iter().rev() {
            prop_assert_eq!(hash_ann.annotate_one(r), dense.annotate_one(r));
        }
    }
}

//! Dense-engine equivalence: the arena-backed `DenseAnnotator` over a
//! materialized `LabelStore` must be **byte-identical** — labels, cost
//! seconds, and estimator output — to the hash-based `SimulatedAnnotator`
//! reference on random cluster populations and random draw sequences,
//! across every sampling design.
//!
//! This is the safety net that lets every experiment switch to the fast
//! path: both engines charge `Cost(G') = |E'|·c1 + |G'|·c2` from their memo
//! counts (not an order-dependent float accumulation), and the designs
//! consume the RNG identically regardless of engine, so any disagreement
//! here is a real memoization or addressing bug, not float noise.

use kg_annotate::annotator::{Annotator, SimulatedAnnotator};
use kg_annotate::cost::CostModel;
use kg_annotate::dense::DenseAnnotator;
use kg_annotate::label_store::LabelStore;
use kg_annotate::oracle::RemOracle;
use kg_datagen::evolve::{ChurnGenerator, UpdateGenerator};
use kg_eval::config::EvalConfig;
use kg_eval::dynamic::monitor::{run_event_sequence, run_sequence};
use kg_eval::dynamic::reservoir::ReservoirEvaluator;
use kg_eval::dynamic::stratified::StratifiedIncremental;
use kg_model::implicit::{ClusterPopulation, ImplicitKg};
use kg_model::retract::KgEvent;
use kg_model::triple::TripleRef;
use kg_model::update::UpdateBatch;
use kg_sampling::design::Design;
use kg_sampling::stratified::StratificationStrategy;
use kg_sampling::PopulationIndex;
use kg_stats::PointEstimate;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn designs() -> Vec<Design> {
    vec![
        Design::Srs,
        Design::Rcs,
        Design::Wcs,
        Design::Twcs { m: 1 },
        Design::Twcs { m: 5 },
        Design::TsRcs { m: 4 },
        Design::StratifiedTwcs {
            m: 3,
            strategy: StratificationStrategy::Size { strata: 3 },
        },
        Design::StratifiedTwcs {
            m: 3,
            strategy: StratificationStrategy::Oracle { strata: 2 },
        },
    ]
}

// ---------------------------------------------------------------------------
// Incremental suite: the §6 evaluators over an evolving KG.
//
// The growable dense engine (store extended batch by batch through
// `Annotator::extend_population`) must be byte-identical to the hash engine
// on the *dynamic* evaluators too: per-batch estimates, cost seconds, memo
// counts, and raw labels of the delta-minted clusters. Both evaluators run
// a 10-batch `UpdateGenerator::movie_like()` sequence under both MoE
// configurations.
// ---------------------------------------------------------------------------

struct SequenceTrace {
    per_batch: Vec<(u64, u64, f64)>, // (est mean bits, est var bits, cum cost)
    seconds: f64,
    entities: usize,
    triples: usize,
}

fn run_incremental(
    evaluator: &'static str,
    base: &ImplicitKg,
    batches: &[UpdateBatch],
    config: EvalConfig,
    annotator: &mut dyn Annotator,
    seed: u64,
) -> SequenceTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let outcomes = match evaluator {
        "RS" => {
            let mut rs =
                ReservoirEvaluator::evaluate_base(base, 40, 5, config, annotator, &mut rng);
            run_sequence(&mut rs, batches, config.alpha, annotator, &mut rng)
        }
        "SS" => {
            // A frozen synthetic base estimate: identical for both engines,
            // so every difference downstream is the engines' own.
            let base_est = PointEstimate::new(0.9, 0.0004, 60).unwrap();
            let mut ss = StratifiedIncremental::from_base(base, base_est, 5, config);
            run_sequence(&mut ss, batches, config.alpha, annotator, &mut rng)
        }
        other => panic!("unknown evaluator {other}"),
    };
    SequenceTrace {
        per_batch: outcomes
            .iter()
            .map(|o| {
                (
                    o.estimate.mean.to_bits(),
                    o.estimate.var_of_mean.to_bits(),
                    o.cumulative_cost_seconds,
                )
            })
            .collect(),
        seconds: annotator.seconds(),
        entities: annotator.entities_identified(),
        triples: annotator.triples_annotated(),
    }
}

#[test]
fn incremental_evaluators_are_byte_identical_across_engines() {
    let base = ImplicitKg::new((0..800).map(|i| 1 + (i % 12)).collect()).unwrap();
    let oracle = RemOracle::new(0.88, 41);
    let batches = UpdateGenerator::movie_like().sequence(10, base.total_triples() / 10, 0x5eed);
    let configs = [
        EvalConfig::default(),
        EvalConfig::default()
            .with_target_moe(0.03)
            .with_batch_size(8),
    ];
    for (ci, config) in configs.into_iter().enumerate() {
        for evaluator in ["RS", "SS"] {
            let seed = 1000 + ci as u64;
            let mut hash = SimulatedAnnotator::new(&oracle, CostModel::default());
            let h = run_incremental(evaluator, &base, &batches, config, &mut hash, seed);

            let store = Arc::new(LabelStore::materialize(&base, &oracle));
            let mut dense = DenseAnnotator::growable(store, CostModel::default(), Arc::new(oracle));
            let d = run_incremental(evaluator, &base, &batches, config, &mut dense, seed);

            assert_eq!(h.per_batch.len(), 10, "{evaluator} config {ci}");
            for (b, (hb, db)) in h.per_batch.iter().zip(&d.per_batch).enumerate() {
                assert_eq!(hb.0, db.0, "{evaluator} config {ci} batch {b}: mean bits");
                assert_eq!(hb.1, db.1, "{evaluator} config {ci} batch {b}: var bits");
                assert_eq!(
                    hb.2.to_bits(),
                    db.2.to_bits(),
                    "{evaluator} config {ci} batch {b}: cumulative cost"
                );
            }
            assert_eq!(h.seconds.to_bits(), d.seconds.to_bits(), "{evaluator}");
            assert_eq!(h.entities, d.entities, "{evaluator}");
            assert_eq!(h.triples, d.triples, "{evaluator}");

            // The grown store labels every delta-minted triple exactly as
            // the live oracle would.
            let evolved_store = dense.store();
            assert_eq!(
                evolved_store.num_clusters(),
                base.num_clusters()
                    + batches
                        .iter()
                        .map(|b| b.num_delta_clusters())
                        .sum::<usize>()
            );
            for c in (base.num_clusters()..evolved_store.num_clusters()).step_by(97) {
                for o in 0..evolved_store.cluster_size(c).min(4) {
                    let t = TripleRef::new(c as u32, o as u32);
                    use kg_annotate::oracle::LabelOracle;
                    assert_eq!(evolved_store.label(t), oracle.label(t), "{t:?}");
                }
            }
        }
    }
}

#[test]
fn incremental_replay_over_pre_evolved_store_matches_live_growth() {
    // A trial loop over a fixed evolved sequence (the streaming benchmark's
    // shape): the store is extended once up front, and each replay reuses
    // it via reset() — extend_population sees already-covered ids and
    // no-ops. Results must equal the grow-as-you-go run.
    let base = ImplicitKg::new(vec![5; 400]).unwrap();
    let oracle = RemOracle::new(0.92, 77);
    let batches = UpdateGenerator::movie_like().sequence(6, 200, 3);
    let config = EvalConfig::default();

    let grow_store = Arc::new(LabelStore::materialize(&base, &oracle));
    let mut grown = DenseAnnotator::growable(grow_store, CostModel::default(), Arc::new(oracle));
    let g = run_incremental("RS", &base, &batches, config, &mut grown, 9);

    let mut evolved = LabelStore::materialize(&base, &oracle);
    for b in &batches {
        evolved.extend_with_batch(b, &oracle);
    }
    let mut replayed = DenseAnnotator::new(Arc::new(evolved), CostModel::default());
    for _ in 0..3 {
        replayed.reset();
        let r = run_incremental("RS", &base, &batches, config, &mut replayed, 9);
        assert_eq!(g.per_batch, r.per_batch);
        assert_eq!(g.seconds.to_bits(), r.seconds.to_bits());
        assert_eq!(g.triples, r.triples);
    }
}

// ---------------------------------------------------------------------------
// Churn suite: the §6 evaluators under interleaved inserts, deletions, and
// revisions.
//
// Retractions tombstone the annotators' live coordinate view, decrement the
// evaluators' PPS weights, and evict fully-dead reservoir members — all of
// it trial state on the engine side, so the hash and dense engines must
// remain byte-identical event by event, and replays over a pre-evolved
// store must match grow-as-you-go runs.
// ---------------------------------------------------------------------------

/// A movie-like churn stream with all three event kinds interleaved: the
/// generator emits revisions, and every third one is split into a pure
/// retraction followed by a pure insertion.
fn churn_events(
    base: &ImplicitKg,
    fraction: f64,
    count: usize,
    per_batch: u64,
    seed: u64,
) -> Vec<KgEvent> {
    let events = ChurnGenerator::movie_like(fraction).events(base, count, per_batch, seed);
    let mut out = Vec::new();
    for (i, event) in events.into_iter().enumerate() {
        match event {
            KgEvent::Revise(r, b) if i % 3 == 2 => {
                out.push(KgEvent::Retract(r));
                out.push(KgEvent::Insert(b));
            }
            event => out.push(event),
        }
    }
    out
}

fn run_churn(
    evaluator: &'static str,
    base: &ImplicitKg,
    events: &[KgEvent],
    config: EvalConfig,
    annotator: &mut dyn Annotator,
    seed: u64,
) -> SequenceTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let outcomes = match evaluator {
        "RS" => {
            let mut rs =
                ReservoirEvaluator::evaluate_base(base, 40, 5, config, annotator, &mut rng);
            run_event_sequence(&mut rs, events, config.alpha, annotator, &mut rng)
        }
        "SS" => {
            let base_est = PointEstimate::new(0.9, 0.0004, 60).unwrap();
            let mut ss = StratifiedIncremental::from_base(base, base_est, 5, config);
            run_event_sequence(&mut ss, events, config.alpha, annotator, &mut rng)
        }
        other => panic!("unknown evaluator {other}"),
    };
    SequenceTrace {
        per_batch: outcomes
            .iter()
            .map(|o| {
                (
                    o.estimate.mean.to_bits(),
                    o.estimate.var_of_mean.to_bits(),
                    o.cumulative_cost_seconds,
                )
            })
            .collect(),
        seconds: annotator.seconds(),
        entities: annotator.entities_identified(),
        triples: annotator.triples_annotated(),
    }
}

#[test]
fn churny_streams_are_byte_identical_across_engines() {
    let base = ImplicitKg::new((0..800).map(|i| 1 + (i % 12)).collect()).unwrap();
    let oracle = RemOracle::new(0.88, 43);
    for (fi, fraction) in [0.25, 0.5].into_iter().enumerate() {
        let events = churn_events(&base, fraction, 8, base.total_triples() / 10, 0x0dd);
        // All three event kinds actually appear in the stream.
        assert!(events.iter().any(|e| matches!(e, KgEvent::Insert(_))));
        assert!(events.iter().any(|e| matches!(e, KgEvent::Retract(_))));
        assert!(events.iter().any(|e| matches!(e, KgEvent::Revise(..))));
        for evaluator in ["RS", "SS"] {
            let seed = 2000 + fi as u64;
            let config = EvalConfig::default();
            let mut hash = SimulatedAnnotator::new(&oracle, CostModel::default());
            let h = run_churn(evaluator, &base, &events, config, &mut hash, seed);

            let store = Arc::new(LabelStore::materialize(&base, &oracle));
            let mut dense = DenseAnnotator::growable(store, CostModel::default(), Arc::new(oracle));
            let d = run_churn(evaluator, &base, &events, config, &mut dense, seed);

            assert_eq!(h.per_batch.len(), events.len(), "{evaluator} {fraction}");
            for (b, (hb, db)) in h.per_batch.iter().zip(&d.per_batch).enumerate() {
                assert_eq!(
                    hb.0, db.0,
                    "{evaluator} fraction {fraction} event {b}: mean bits"
                );
                assert_eq!(
                    hb.1, db.1,
                    "{evaluator} fraction {fraction} event {b}: var bits"
                );
                assert_eq!(
                    hb.2.to_bits(),
                    db.2.to_bits(),
                    "{evaluator} fraction {fraction} event {b}: cumulative cost"
                );
            }
            assert_eq!(h.seconds.to_bits(), d.seconds.to_bits(), "{evaluator}");
            assert_eq!(h.entities, d.entities, "{evaluator}");
            assert_eq!(h.triples, d.triples, "{evaluator}");
        }
    }
}

#[test]
fn churny_replay_over_pre_evolved_store_matches_live_growth() {
    // Same shape as the insert-only replay test, but with deletions in the
    // stream: tombstones are trial state cleared by reset(), so replays
    // over the pre-extended store must stay byte-identical to the
    // grow-as-you-go run — and to each other.
    let base = ImplicitKg::new(vec![5; 400]).unwrap();
    let oracle = RemOracle::new(0.92, 79);
    let events = churn_events(&base, 0.4, 6, 200, 5);
    let config = EvalConfig::default();

    let grow_store = Arc::new(LabelStore::materialize(&base, &oracle));
    let mut grown = DenseAnnotator::growable(grow_store, CostModel::default(), Arc::new(oracle));
    let g = run_churn("RS", &base, &events, config, &mut grown, 13);

    let mut evolved = LabelStore::materialize(&base, &oracle);
    for event in &events {
        if let Some(b) = event.inserted() {
            evolved.extend_with_batch(b, &oracle);
        }
    }
    let mut replayed = DenseAnnotator::new(Arc::new(evolved), CostModel::default());
    for _ in 0..3 {
        replayed.reset();
        let r = run_churn("RS", &base, &events, config, &mut replayed, 13);
        assert_eq!(g.per_batch, r.per_batch);
        assert_eq!(g.seconds.to_bits(), r.seconds.to_bits());
        assert_eq!(g.triples, r.triples);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every design, driven by both engines from the same seed, yields the
    /// same estimate (mean, variance, units) and the same cost books.
    #[test]
    fn estimators_and_costs_are_byte_identical(
        sizes in prop::collection::vec(1u32..40, 1..50),
        accuracy in 0.0f64..1.0,
        oracle_seed in 0u64..1_000_000,
        rng_seed in 0u64..1_000_000,
        batches in prop::collection::vec(1usize..12, 1..4),
    ) {
        let oracle = RemOracle::new(accuracy, oracle_seed);
        let idx = Arc::new(PopulationIndex::from_sizes(sizes).unwrap());
        let store = Arc::new(idx.materialize_labels(&oracle));
        let mut dense = DenseAnnotator::new(store, CostModel::default());

        for design in designs() {
            let mut hash_design = design.instantiate(idx.clone(), &oracle);
            let mut dense_design = design.instantiate(idx.clone(), &oracle);
            let mut hash_ann = SimulatedAnnotator::new(&oracle, CostModel::default());
            dense.reset();

            let mut hash_rng = StdRng::seed_from_u64(rng_seed);
            let mut dense_rng = StdRng::seed_from_u64(rng_seed);
            for &b in &batches {
                let h = hash_design.draw(&mut hash_rng, &mut hash_ann, b);
                let d = dense_design.draw(&mut dense_rng, &mut dense, b);
                prop_assert_eq!(h, d, "{}: drawn units diverged", design.name());
            }

            let he = hash_design.estimate();
            let de = dense_design.estimate();
            prop_assert_eq!(
                he.mean.to_bits(), de.mean.to_bits(),
                "{}: mean {} vs {}", design.name(), he.mean, de.mean
            );
            prop_assert_eq!(
                he.var_of_mean.to_bits(), de.var_of_mean.to_bits(),
                "{}: var {} vs {}", design.name(), he.var_of_mean, de.var_of_mean
            );
            prop_assert_eq!(hash_design.units(), dense_design.units());
            prop_assert_eq!(
                hash_ann.seconds().to_bits(), dense.seconds().to_bits(),
                "{}: cost {} vs {}", design.name(), hash_ann.seconds(), dense.seconds()
            );
            prop_assert_eq!(hash_ann.entities_identified(), dense.entities_identified());
            prop_assert_eq!(hash_ann.triples_annotated(), dense.triples_annotated());
        }
    }

    /// Raw label streams agree on arbitrary (repeating, interleaved)
    /// reference sequences, and so do the memo counts afterwards.
    #[test]
    fn labels_are_byte_identical(
        sizes in prop::collection::vec(1u32..30, 1..40),
        accuracy in 0.0f64..1.0,
        oracle_seed in 0u64..1_000_000,
        raw_refs in prop::collection::vec((0u32..1000, 0u32..1000), 1..120),
    ) {
        let oracle = RemOracle::new(accuracy, oracle_seed);
        let idx = Arc::new(PopulationIndex::from_sizes(sizes.clone()).unwrap());
        let store = Arc::new(idx.materialize_labels(&oracle));
        let refs: Vec<TripleRef> = raw_refs
            .into_iter()
            .map(|(c, o)| {
                let cluster = c as usize % sizes.len();
                TripleRef::new(cluster as u32, o % sizes[cluster])
            })
            .collect();

        let mut hash_ann = SimulatedAnnotator::new(&oracle, CostModel::default());
        let mut dense = DenseAnnotator::new(store, CostModel::default());
        let (mut hash_out, mut dense_out) = (Vec::new(), Vec::new());
        // Split the sequence into two batches to exercise cross-batch
        // memoization as well.
        let mid = refs.len() / 2;
        for part in [&refs[..mid], &refs[mid..]] {
            hash_ann.annotate_into(part, &mut hash_out);
            dense.annotate_into(part, &mut dense_out);
            prop_assert_eq!(&hash_out, &dense_out);
        }
        prop_assert_eq!(hash_ann.seconds().to_bits(), dense.seconds().to_bits());
        prop_assert_eq!(hash_ann.entities_identified(), dense.entities_identified());
        prop_assert_eq!(hash_ann.triples_annotated(), dense.triples_annotated());

        // Singleton API agrees too.
        for &r in refs.iter().rev() {
            prop_assert_eq!(hash_ann.annotate_one(r), dense.annotate_one(r));
        }
    }
}

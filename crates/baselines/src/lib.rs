//! # kg-baselines — comparison evaluators
//!
//! The paper's Table 6 compares TWCS against **KGEval** (Ojha & Talukdar,
//! EMNLP 2017): an inference-based method that exploits dependencies among
//! triples — type consistency, Horn-clause coupling constraints — to
//! *propagate* the correctness of manually evaluated triples to unevaluated
//! ones via Probabilistic Soft Logic, selecting at each step the triple
//! whose annotation would propagate the furthest.
//!
//! The original KGEval is closed research code on top of a PSL engine; this
//! crate implements a faithful structural analogue (see `DESIGN.md`
//! substitution #4) with the properties the comparison depends on:
//!
//! 1. label propagation over a coupling-constraint graph built from triple
//!    content ([`kgeval::coupling`]);
//! 2. an expensive next-triple selection step — its machine time per
//!    iteration is what makes KGEval unusable beyond tiny KGs (the paper
//!    reports >5 minutes per selection even on 2k-triple KGs);
//! 3. estimates without statistical guarantees: propagation can be wrong,
//!    the estimator is biased, and no CI is available (Table 8).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod kgeval;

pub use kgeval::eval::{KgEvalBaseline, KgEvalReport};

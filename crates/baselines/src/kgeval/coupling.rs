//! Coupling-constraint graph over triples.
//!
//! Nodes are triples; weighted edges encode the dependency signals KGEval
//! propagates along:
//!
//! * **entity coherence** — triples about the same subject tend to share
//!   correctness (a mis-resolved entity poisons its whole cluster);
//! * **type consistency** — triples sharing `(predicate, object)` support
//!   each other (many movies "directedBy" the same director);
//! * **functional coupling** — triples sharing `(subject, predicate)`
//!   interact (a functional predicate with two objects flags an error).
//!
//! Groups larger than a cap are connected as a ring instead of a clique to
//! keep the edge count linear — propagation quality is indistinguishable
//! and construction stays O(M).

use kg_model::graph::KnowledgeGraph;
use kg_model::triple::{Object, TripleRef};
use std::collections::HashMap;

/// Edge weights per coupling type.
const W_SAME_SUBJECT: f32 = 0.5;
const W_PRED_OBJECT: f32 = 1.0;
const W_SUBJ_PRED: f32 = 0.8;

/// Clique cap: beyond this, groups become rings.
const CLIQUE_CAP: usize = 24;

/// A weighted undirected coupling graph over the KG's triples.
#[derive(Debug)]
pub struct CouplingGraph {
    /// Triple handle of each node (node id = position).
    pub nodes: Vec<TripleRef>,
    /// Adjacency list: `(neighbor, weight)`.
    pub adjacency: Vec<Vec<(u32, f32)>>,
    edges: usize,
}

impl CouplingGraph {
    /// Build the coupling graph from a materialized KG.
    pub fn build(graph: &KnowledgeGraph) -> Self {
        let nodes: Vec<TripleRef> = graph.iter_refs().map(|(r, _)| r).collect();
        let node_of: HashMap<TripleRef, u32> = nodes
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, i as u32))
            .collect();
        let mut adjacency = vec![Vec::new(); nodes.len()];
        let mut edges = 0usize;

        let mut add_group = |group: &[u32], weight: f32, adjacency: &mut Vec<Vec<(u32, f32)>>| {
            if group.len() < 2 {
                return;
            }
            if group.len() <= CLIQUE_CAP {
                for (i, &a) in group.iter().enumerate() {
                    for &b in &group[i + 1..] {
                        adjacency[a as usize].push((b, weight));
                        adjacency[b as usize].push((a, weight));
                        edges += 1;
                    }
                }
            } else {
                // Ring keeps the group connected with O(k) edges.
                for w in group.windows(2) {
                    adjacency[w[0] as usize].push((w[1], weight));
                    adjacency[w[1] as usize].push((w[0], weight));
                    edges += 1;
                }
                adjacency[group[group.len() - 1] as usize].push((group[0], weight));
                adjacency[group[0] as usize].push((group[group.len() - 1], weight));
                edges += 1;
            }
        };

        // Same-subject groups are exactly the entity clusters.
        for (ci, cluster) in graph.clusters().iter().enumerate() {
            let group: Vec<u32> = (0..cluster.triples.len())
                .map(|o| node_of[&TripleRef::new(ci as u32, o as u32)])
                .collect();
            add_group(&group, W_SAME_SUBJECT, &mut adjacency);
        }

        // (predicate, object) and (subject, predicate) groups.
        let mut by_pred_obj: HashMap<(u32, u64), Vec<u32>> = HashMap::new();
        let mut by_subj_pred: HashMap<(u32, u32), Vec<u32>> = HashMap::new();
        for (r, t) in graph.iter_refs() {
            let node = node_of[&r];
            let okey = match t.object {
                Object::Entity(e) => (e.0 as u64) << 1,
                Object::Literal(l) => ((l.0 as u64) << 1) | 1,
            };
            by_pred_obj
                .entry((t.predicate.0, okey))
                .or_default()
                .push(node);
            by_subj_pred
                .entry((t.subject.0, t.predicate.0))
                .or_default()
                .push(node);
        }
        for group in by_pred_obj.values() {
            add_group(group, W_PRED_OBJECT, &mut adjacency);
        }
        for group in by_subj_pred.values() {
            add_group(group, W_SUBJ_PRED, &mut adjacency);
        }

        CouplingGraph {
            nodes,
            adjacency,
            edges,
        }
    }

    /// Number of triple nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Weighted degree of one node.
    pub fn weighted_degree(&self, node: usize) -> f32 {
        self.adjacency[node].iter().map(|&(_, w)| w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_model::builder::KgBuilder;

    fn sample_graph() -> KnowledgeGraph {
        let mut b = KgBuilder::new();
        b.add_entity_triple("mj", "bornIn", "la");
        b.add_entity_triple("mj", "playedIn", "spacejam");
        b.add_entity_triple("kobe", "bornIn", "la"); // shares (bornIn, la) with mj
        b.add_literal_triple("mj", "bornIn", "1963"); // shares (mj, bornIn)
        b.build()
    }

    #[test]
    fn builds_expected_couplings() {
        let g = sample_graph();
        let cg = CouplingGraph::build(&g);
        assert_eq!(cg.num_nodes(), 4);
        assert!(cg.num_edges() >= 4, "edges {}", cg.num_edges());
        // Node 0 (mj bornIn la) couples with: node 1 & 3 (same subject),
        // node 2 (pred-obj), node 3 again (subj-pred).
        let deg0 = cg.adjacency[0].len();
        assert!(deg0 >= 3, "degree {deg0}");
        assert!(cg.weighted_degree(0) > 1.5);
    }

    #[test]
    fn singleton_groups_produce_no_edges() {
        let mut b = KgBuilder::new();
        b.add_entity_triple("a", "p1", "x");
        b.add_entity_triple("b", "p2", "y");
        let cg = CouplingGraph::build(&b.build());
        assert_eq!(cg.num_edges(), 0);
        assert_eq!(cg.num_nodes(), 2);
    }

    #[test]
    fn large_groups_become_rings() {
        // 100 triples about one subject with one predicate and distinct
        // objects: the same-subject group (100 > cap) must be a ring, not a
        // 4950-edge clique.
        let mut b = KgBuilder::new();
        for i in 0..100 {
            b.add_literal_triple("hub", "p", &format!("v{i}"));
        }
        let cg = CouplingGraph::build(&b.build());
        // same-subject ring (100) + subj-pred ring (100) = 200 edges.
        assert!(cg.num_edges() <= 250, "edges {}", cg.num_edges());
        // Still connected through the ring: every node has degree ≥ 2.
        assert!(cg.adjacency.iter().all(|a| a.len() >= 2));
    }

    #[test]
    fn adjacency_is_symmetric() {
        let cg = CouplingGraph::build(&sample_graph());
        for (a, nbrs) in cg.adjacency.iter().enumerate() {
            for &(b, w) in nbrs {
                assert!(
                    cg.adjacency[b as usize]
                        .iter()
                        .any(|&(x, wx)| x as usize == a && (wx - w).abs() < 1e-6),
                    "edge {a}->{b} not mirrored"
                );
            }
        }
    }
}

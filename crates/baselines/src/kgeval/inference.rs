//! Belief propagation over the coupling graph.
//!
//! A lightweight stand-in for KGEval's Probabilistic Soft Logic engine:
//! each triple carries a belief `b ∈ [0, 1]` of being correct. Annotated
//! triples are clamped to their labels; unannotated beliefs relax to a
//! damped weighted average of their neighbors:
//!
//! ```text
//! b_i ← (1 − λ)·prior + λ·(Σ_j w_ij b_j / Σ_j w_ij)
//! ```
//!
//! iterated to a fixed point. A triple whose belief strays at least θ from
//! 0.5 counts as *inferred*; inference replaces human annotation for such
//! triples — the source of both KGEval's savings and its bias.

use crate::kgeval::coupling::CouplingGraph;

/// Fixed-point label propagation state.
#[derive(Debug)]
pub struct Propagation {
    beliefs: Vec<f64>,
    clamped: Vec<Option<bool>>,
    prior: f64,
    damping: f64,
    confidence: f64,
}

impl Propagation {
    /// New propagation over `n` nodes with an uninformative prior of 0.5.
    ///
    /// `damping` is λ (neighbor influence; 0.9 works well); `confidence` is
    /// θ, the belief margin at which a triple counts as inferred.
    pub fn new(n: usize, damping: f64, confidence: f64) -> Self {
        assert!((0.0..=1.0).contains(&damping), "damping in [0,1]");
        assert!(
            confidence > 0.0 && confidence < 0.5,
            "confidence margin in (0, 0.5)"
        );
        Propagation {
            beliefs: vec![0.5; n],
            clamped: vec![None; n],
            prior: 0.5,
            damping,
            confidence,
        }
    }

    /// Clamp a node to an annotated label.
    pub fn clamp(&mut self, node: usize, label: bool) {
        self.clamped[node] = Some(label);
        self.beliefs[node] = if label { 1.0 } else { 0.0 };
    }

    /// Whether a node has been human-annotated.
    pub fn is_clamped(&self, node: usize) -> bool {
        self.clamped[node].is_some()
    }

    /// Run damped iterations until the max belief change is below `tol`
    /// or `max_iters` is exhausted. Returns the number of sweeps run.
    pub fn converge(&mut self, graph: &CouplingGraph, tol: f64, max_iters: usize) -> usize {
        for iter in 0..max_iters {
            let mut max_delta = 0.0f64;
            for i in 0..self.beliefs.len() {
                if self.clamped[i].is_some() {
                    continue;
                }
                let nbrs = &graph.adjacency[i];
                if nbrs.is_empty() {
                    continue;
                }
                let (mut wsum, mut bsum) = (0.0f64, 0.0f64);
                for &(j, w) in nbrs {
                    wsum += w as f64;
                    bsum += w as f64 * self.beliefs[j as usize];
                }
                let new = (1.0 - self.damping) * self.prior + self.damping * bsum / wsum;
                max_delta = max_delta.max((new - self.beliefs[i]).abs());
                self.beliefs[i] = new;
            }
            if max_delta < tol {
                return iter + 1;
            }
        }
        max_iters
    }

    /// Whether a node is *resolved*: annotated, or inferred with margin θ.
    pub fn is_resolved(&self, node: usize) -> bool {
        self.clamped[node].is_some() || (self.beliefs[node] - 0.5).abs() >= self.confidence
    }

    /// Current belief of a node.
    pub fn belief(&self, node: usize) -> f64 {
        self.beliefs[node]
    }

    /// Number of resolved nodes.
    pub fn resolved_count(&self) -> usize {
        (0..self.beliefs.len())
            .filter(|&i| self.is_resolved(i))
            .count()
    }

    /// KGEval's accuracy estimate: the mean of hard-thresholded beliefs
    /// over *all* triples (annotated labels where available, inferred
    /// labels elsewhere). No confidence interval exists for this quantity.
    pub fn accuracy_estimate(&self) -> f64 {
        if self.beliefs.is_empty() {
            return 0.0;
        }
        let correct: f64 = self
            .beliefs
            .iter()
            .map(|&b| if b >= 0.5 { 1.0 } else { 0.0 })
            .sum();
        correct / self.beliefs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kgeval::coupling::CouplingGraph;
    use kg_model::builder::KgBuilder;

    fn chain_graph() -> CouplingGraph {
        // Three triples about one subject: a coupling clique.
        let mut b = KgBuilder::new();
        b.add_literal_triple("s", "p1", "x");
        b.add_literal_triple("s", "p2", "y");
        b.add_literal_triple("s", "p3", "z");
        CouplingGraph::build(&b.build())
    }

    #[test]
    fn propagation_spreads_positive_labels() {
        let g = chain_graph();
        let mut p = Propagation::new(g.num_nodes(), 0.9, 0.2);
        p.clamp(0, true);
        let iters = p.converge(&g, 1e-6, 200);
        assert!(iters < 200, "did not converge");
        assert!(p.belief(1) > 0.6, "belief {}", p.belief(1));
        assert!(p.is_resolved(1));
        assert!(p.accuracy_estimate() > 0.99);
    }

    #[test]
    fn propagation_spreads_negative_labels() {
        let g = chain_graph();
        let mut p = Propagation::new(g.num_nodes(), 0.9, 0.2);
        p.clamp(0, false);
        p.converge(&g, 1e-6, 200);
        assert!(p.belief(2) < 0.4, "belief {}", p.belief(2));
        assert!((p.accuracy_estimate() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn isolated_nodes_stay_at_prior() {
        let mut b = KgBuilder::new();
        b.add_entity_triple("a", "p1", "x");
        b.add_entity_triple("b", "p2", "y");
        let g = CouplingGraph::build(&b.build());
        let mut p = Propagation::new(g.num_nodes(), 0.9, 0.2);
        p.clamp(0, true);
        p.converge(&g, 1e-6, 100);
        assert!((p.belief(1) - 0.5).abs() < 1e-9);
        assert!(!p.is_resolved(1));
        assert_eq!(p.resolved_count(), 1);
    }

    #[test]
    fn conflicting_labels_balance() {
        let g = chain_graph();
        let mut p = Propagation::new(g.num_nodes(), 0.9, 0.3);
        p.clamp(0, true);
        p.clamp(1, false);
        p.converge(&g, 1e-6, 200);
        // Node 2 hears one positive and one negative neighbor (weights
        // equal within the clique): belief stays near the middle.
        assert!((p.belief(2) - 0.5).abs() < 0.15, "belief {}", p.belief(2));
    }

    #[test]
    fn clamped_nodes_never_move() {
        let g = chain_graph();
        let mut p = Propagation::new(g.num_nodes(), 0.9, 0.2);
        p.clamp(0, false);
        p.clamp(1, true);
        p.converge(&g, 1e-6, 200);
        assert_eq!(p.belief(0), 0.0);
        assert_eq!(p.belief(1), 1.0);
        assert!(p.is_clamped(0) && p.is_clamped(1) && !p.is_clamped(2));
    }
}

//! The KGEval evaluation loop: select → annotate → propagate, until every
//! triple is resolved.
//!
//! The *selection* step is KGEval's bottleneck: it scores every unresolved
//! triple by how much of the graph its annotation is expected to resolve
//! (here: the count of unresolved neighbors, weighted by coupling strength,
//! plus a tie-break on degree), which costs a full scan of nodes and edges
//! per human annotation. The paper measured >5 minutes per selection on
//! 2k-triple KGs (their PSL grounding is heavier than our propagation);
//! what the comparison needs is the *asymmetry* — machine time that grows
//! with KG size and dwarfs sampling-based selection — which this
//! implementation preserves and [`KgEvalReport::machine_seconds`] reports.

use crate::kgeval::coupling::CouplingGraph;
use crate::kgeval::inference::Propagation;
use kg_annotate::annotator::Annotator;
use kg_eval::executor::TrialExecutor;
use kg_model::graph::KnowledgeGraph;
use kg_stats::RunningMoments;
use std::time::Instant;

/// Configuration of the KGEval loop.
#[derive(Debug, Clone, Copy)]
pub struct KgEvalConfig {
    /// Neighbor influence λ of the propagation.
    pub damping: f64,
    /// Belief margin θ at which a triple counts as inferred.
    pub confidence: f64,
    /// Convergence tolerance of each propagation pass.
    pub tol: f64,
    /// Max sweeps per propagation pass.
    pub max_iters: usize,
    /// Stop after this many human annotations even if unresolved triples
    /// remain (safety valve; the estimate then uses current beliefs).
    pub annotation_budget: usize,
}

impl Default for KgEvalConfig {
    fn default() -> Self {
        KgEvalConfig {
            damping: 0.9,
            confidence: 0.2,
            tol: 1e-4,
            max_iters: 100,
            annotation_budget: 10_000,
        }
    }
}

/// Outcome of a KGEval run.
#[derive(Debug, Clone)]
pub struct KgEvalReport {
    /// The accuracy estimate (no CI is available — Table 8).
    pub estimate: f64,
    /// Number of triples human-annotated.
    pub annotated: usize,
    /// Number of triples resolved by inference alone.
    pub inferred: usize,
    /// Wall-clock machine time spent in selection + propagation.
    pub machine_seconds: f64,
    /// Simulated human annotation time (Eq. 4).
    pub human_seconds: f64,
}

impl KgEvalReport {
    /// Human time in hours.
    pub fn human_hours(&self) -> f64 {
        self.human_seconds / 3600.0
    }
}

/// KGEval-style evaluator over a materialized KG.
pub struct KgEvalBaseline {
    config: KgEvalConfig,
}

impl KgEvalBaseline {
    /// With default configuration.
    pub fn new() -> Self {
        KgEvalBaseline {
            config: KgEvalConfig::default(),
        }
    }

    /// With explicit configuration.
    pub fn with_config(config: KgEvalConfig) -> Self {
        KgEvalBaseline { config }
    }

    /// Run the full select–annotate–propagate loop.
    pub fn run(&self, graph: &KnowledgeGraph, annotator: &mut dyn Annotator) -> KgEvalReport {
        let human_base = annotator.seconds();
        let machine_start = Instant::now();
        let coupling = CouplingGraph::build(graph);
        let n = coupling.num_nodes();
        let mut prop = Propagation::new(n, self.config.damping, self.config.confidence);
        let mut annotated = 0usize;

        while prop.resolved_count() < n && annotated < self.config.annotation_budget {
            // Selection: unresolved triple with the largest expected
            // resolution footprint.
            let mut best: Option<(usize, f64)> = None;
            for i in 0..n {
                if prop.is_resolved(i) {
                    continue;
                }
                let mut score = 0.0f64;
                for &(j, w) in &coupling.adjacency[i] {
                    if !prop.is_resolved(j as usize) {
                        score += w as f64;
                    }
                }
                // Degree tie-break keeps isolated nodes for last.
                score += 1e-3 * coupling.weighted_degree(i) as f64;
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((i, score));
                }
            }
            let Some((pick, _)) = best else { break };

            // Annotate (human) — triple-level task, entity identification
            // charged per distinct subject by the annotator.
            let machine_elapsed = machine_start.elapsed();
            let label = annotator.annotate_one(coupling.nodes[pick]);
            let _ = machine_elapsed;
            prop.clamp(pick, label);
            annotated += 1;

            // Propagate (machine).
            prop.converge(&coupling, self.config.tol, self.config.max_iters);
        }

        let machine_seconds = machine_start.elapsed().as_secs_f64();
        KgEvalReport {
            estimate: prop.accuracy_estimate(),
            annotated,
            inferred: prop.resolved_count().saturating_sub(annotated),
            machine_seconds,
            human_seconds: annotator.seconds() - human_base,
        }
    }
}

impl Default for KgEvalBaseline {
    fn default() -> Self {
        Self::new()
    }
}

/// Trial aggregates of repeated KGEval runs, from
/// [`KgEvalBaseline::run_trials`].
#[derive(Debug, Clone)]
pub struct KgEvalTrialStats {
    /// Trials executed.
    pub trials: u64,
    /// Accuracy estimates.
    pub estimate: RunningMoments,
    /// Triples human-annotated.
    pub annotated: RunningMoments,
    /// Triples resolved by inference alone.
    pub inferred: RunningMoments,
    /// Machine seconds (selection + propagation) — wall-clock, so only the
    /// relative magnitude against sampling-based selection is meaningful.
    pub machine_seconds: RunningMoments,
    /// Simulated human seconds (Eq. 4).
    pub human_seconds: RunningMoments,
}

impl KgEvalBaseline {
    /// Repeated seeded KGEval runs on the shared [`TrialExecutor`] — the
    /// same counter-seeded, worker-count-invariant fan-out every other
    /// evaluator uses. `trial` receives the baseline and the trial seed
    /// and runs one full select–annotate–propagate loop (typically:
    /// build or reuse a graph + annotator for that seed, then call
    /// [`KgEvalBaseline::run`]).
    ///
    /// Note the loop itself is deterministic given its graph and
    /// annotator; seeds matter only where the closure derives its inputs
    /// from them. `machine_seconds` is wall-clock and is aggregated as
    /// reported.
    pub fn run_trials<F>(
        &self,
        exec: &TrialExecutor,
        trials: u64,
        base_seed: u64,
        trial: F,
    ) -> KgEvalTrialStats
    where
        F: Fn(&KgEvalBaseline, u64) -> KgEvalReport + Sync,
    {
        let stats = exec.run(trials, base_seed, 5, |seed| {
            let r = trial(self, seed);
            vec![
                r.estimate,
                r.annotated as f64,
                r.inferred as f64,
                r.machine_seconds,
                r.human_seconds,
            ]
        });
        KgEvalTrialStats {
            trials,
            estimate: stats[0],
            annotated: stats[1],
            inferred: stats[2],
            machine_seconds: stats[3],
            human_seconds: stats[4],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_annotate::annotator::SimulatedAnnotator;
    use kg_annotate::cost::CostModel;
    use kg_annotate::oracle::{true_accuracy, GoldLabels};
    use kg_datagen::profile::DatasetProfile;

    fn small_nell() -> (KnowledgeGraph, GoldLabels) {
        // A downscaled NELL keeps the test fast.
        let mut p = DatasetProfile::nell();
        p.entities = 120;
        p.triples = 280;
        p.generate_materialized(3)
    }

    #[test]
    fn resolves_whole_kg_with_fewer_annotations_than_census() {
        let (graph, gold) = small_nell();
        let mut annotator = SimulatedAnnotator::new(&gold, CostModel::default());
        let report = KgEvalBaseline::new().run(&graph, &mut annotator);
        assert!(
            report.annotated < 280,
            "annotated {} should beat a census",
            report.annotated
        );
        assert!(report.inferred > 0, "no inference happened");
        assert!(report.machine_seconds > 0.0);
        assert!(report.human_seconds > 0.0);
        assert!((report.human_hours() * 3600.0 - report.human_seconds).abs() < 1e-9);
    }

    #[test]
    fn estimate_lands_near_truth_without_guarantees() {
        let (graph, gold) = small_nell();
        let truth = true_accuracy(&graph, &gold);
        let mut annotator = SimulatedAnnotator::new(&gold, CostModel::default());
        let report = KgEvalBaseline::new().run(&graph, &mut annotator);
        // Propagation bias allows a wide tolerance — the point is that the
        // error is *uncontrolled*, unlike the sampling estimators.
        assert!(
            (report.estimate - truth).abs() < 0.15,
            "estimate {} vs truth {truth}",
            report.estimate
        );
    }

    #[test]
    fn budget_caps_annotations() {
        let (graph, gold) = small_nell();
        let mut annotator = SimulatedAnnotator::new(&gold, CostModel::default());
        let config = KgEvalConfig {
            annotation_budget: 10,
            ..KgEvalConfig::default()
        };
        let report = KgEvalBaseline::with_config(config).run(&graph, &mut annotator);
        assert_eq!(report.annotated, 10);
    }

    #[test]
    fn trial_fanout_aggregates_and_is_worker_invariant() {
        let run = |workers| {
            KgEvalBaseline::new().run_trials(
                &TrialExecutor::new().with_workers(workers),
                4,
                11,
                |baseline, seed| {
                    // Fresh small graph per seed: the loop is deterministic
                    // given its inputs, so seeds enter via generation.
                    let mut p = DatasetProfile::nell();
                    p.entities = 40;
                    p.triples = 90;
                    let (graph, gold) = p.generate_materialized(seed);
                    let mut annotator = SimulatedAnnotator::new(&gold, CostModel::default());
                    baseline.run(&graph, &mut annotator)
                },
            )
        };
        let a = run(1);
        let b = run(3);
        assert_eq!(a.trials, 4);
        assert_eq!(a.estimate.count(), 4);
        // Estimates and human cost are deterministic → bitwise invariant;
        // machine_seconds is wall-clock and only sanity-checked.
        assert_eq!(a.estimate.mean().to_bits(), b.estimate.mean().to_bits());
        assert_eq!(
            a.estimate.sample_std().to_bits(),
            b.estimate.sample_std().to_bits()
        );
        assert_eq!(a.annotated.mean().to_bits(), b.annotated.mean().to_bits());
        assert_eq!(
            a.human_seconds.mean().to_bits(),
            b.human_seconds.mean().to_bits()
        );
        assert!(a.machine_seconds.mean() > 0.0);
        assert!(a.inferred.mean() >= 0.0);
        assert!((0.0..=1.0).contains(&a.estimate.mean()));
    }

    #[test]
    fn machine_time_grows_with_kg_size() {
        let run_time = |entities: usize, triples: u64| {
            let mut p = DatasetProfile::nell();
            p.entities = entities;
            p.triples = triples;
            let (graph, gold) = p.generate_materialized(7);
            let mut annotator = SimulatedAnnotator::new(&gold, CostModel::default());
            let config = KgEvalConfig {
                annotation_budget: 25,
                ..KgEvalConfig::default()
            };
            let r = KgEvalBaseline::with_config(config).run(&graph, &mut annotator);
            r.machine_seconds
        };
        let small = run_time(60, 140);
        let large = run_time(600, 1400);
        assert!(
            large > small,
            "machine time should grow with size: {small} vs {large}"
        );
    }
}

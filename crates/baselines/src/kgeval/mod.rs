//! KGEval-style inference-based accuracy estimation.

pub mod coupling;
pub mod eval;
pub mod inference;

//! String interning: map entity/predicate/literal strings to dense `u32`
//! symbols so triples are 12 bytes and cluster grouping is hash-free.

use std::collections::HashMap;

/// A dense string interner. Symbols are handed out sequentially from 0.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: HashMap<Box<str>, u32>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// Empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a string, returning its symbol (existing or fresh).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = u32::try_from(self.strings.len()).expect("more than u32::MAX interned strings");
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, id);
        id
    }

    /// Look up a symbol without interning.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.map.get(s).copied()
    }

    /// Resolve a symbol back to its string.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.strings.get(id as usize).map(|s| s.as_ref())
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no strings are interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let id = i.intern("movie/Space_Jam");
        assert_eq!(i.resolve(id), Some("movie/Space_Jam"));
        assert_eq!(i.resolve(999), None);
        assert_eq!(i.get("movie/Space_Jam"), Some(id));
        assert_eq!(i.get("missing"), None);
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}

//! Materialized knowledge graph: interned triples grouped into entity
//! clusters with a subject index.

use crate::implicit::ClusterPopulation;
use crate::interner::Interner;
use crate::triple::{EntityId, Triple, TripleRef};
use std::collections::HashMap;

/// All triples sharing one subject: `G[e] = { t : t.subject = e }`.
#[derive(Debug, Clone)]
pub struct EntityCluster {
    /// The shared subject entity.
    pub subject: EntityId,
    /// The triples, in insertion order (offsets are stable).
    pub triples: Vec<Triple>,
}

impl EntityCluster {
    /// Cluster size `M_i`.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether the cluster holds no triples (never true inside a graph).
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }
}

/// A materialized, immutable KG: entity clusters plus interners for
/// entities, predicates, and literals.
#[derive(Debug, Clone)]
pub struct KnowledgeGraph {
    clusters: Vec<EntityCluster>,
    subject_index: HashMap<EntityId, usize>,
    total_triples: u64,
    entities: Interner,
    predicates: Interner,
    literals: Interner,
}

impl KnowledgeGraph {
    pub(crate) fn from_parts(
        clusters: Vec<EntityCluster>,
        entities: Interner,
        predicates: Interner,
        literals: Interner,
    ) -> Self {
        // One fused pass: the subject index and the triple total both walk
        // every cluster, so build them together.
        let mut subject_index = HashMap::with_capacity(clusters.len());
        let mut total_triples = 0u64;
        for (i, c) in clusters.iter().enumerate() {
            subject_index.insert(c.subject, i);
            total_triples += c.triples.len() as u64;
        }
        KnowledgeGraph {
            clusters,
            subject_index,
            total_triples,
            entities,
            predicates,
            literals,
        }
    }

    /// The entity clusters in index order.
    pub fn clusters(&self) -> &[EntityCluster] {
        &self.clusters
    }

    /// Cluster by index.
    pub fn cluster(&self, index: usize) -> Option<&EntityCluster> {
        self.clusters.get(index)
    }

    /// Cluster index of a subject entity, if present.
    pub fn cluster_of(&self, subject: EntityId) -> Option<usize> {
        self.subject_index.get(&subject).copied()
    }

    /// Resolve a [`TripleRef`] to the actual triple.
    pub fn triple(&self, r: TripleRef) -> Option<&Triple> {
        self.clusters
            .get(r.cluster as usize)
            .and_then(|c| c.triples.get(r.offset as usize))
    }

    /// Iterate all triples with their references.
    pub fn iter_refs(&self) -> impl Iterator<Item = (TripleRef, &Triple)> {
        self.clusters.iter().enumerate().flat_map(|(ci, c)| {
            c.triples
                .iter()
                .enumerate()
                .map(move |(oi, t)| (TripleRef::new(ci as u32, oi as u32), t))
        })
    }

    /// Entity interner (subjects and entity objects).
    pub fn entities(&self) -> &Interner {
        &self.entities
    }

    /// Predicate interner.
    pub fn predicates(&self) -> &Interner {
        &self.predicates
    }

    /// Literal interner.
    pub fn literals(&self) -> &Interner {
        &self.literals
    }

    /// Render a triple for display/debugging.
    pub fn display_triple(&self, t: &Triple) -> String {
        let s = self.entities.resolve(t.subject.0).unwrap_or("?");
        let p = self.predicates.resolve(t.predicate.0).unwrap_or("?");
        let o = match t.object {
            crate::triple::Object::Entity(e) => {
                self.entities.resolve(e.0).unwrap_or("?").to_string()
            }
            crate::triple::Object::Literal(l) => {
                format!("\"{}\"", self.literals.resolve(l.0).unwrap_or("?"))
            }
        };
        format!("({s}, {p}, {o})")
    }

    /// Cluster-size vector (for building samplers / implicit views).
    pub fn cluster_sizes(&self) -> Vec<u32> {
        self.clusters
            .iter()
            .map(|c| c.triples.len() as u32)
            .collect()
    }
}

impl ClusterPopulation for KnowledgeGraph {
    fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    fn cluster_size(&self, cluster: usize) -> usize {
        self.clusters[cluster].triples.len()
    }

    fn total_triples(&self) -> u64 {
        self.total_triples
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::KgBuilder;
    use crate::implicit::ClusterPopulation;
    use crate::triple::TripleRef;

    fn sample_graph() -> crate::graph::KnowledgeGraph {
        let mut b = KgBuilder::new();
        b.add_entity_triple("MichaelJordan", "wasBornIn", "LA");
        b.add_literal_triple("MichaelJordan", "birthDate", "1963-02-17");
        b.add_entity_triple("MichaelJordan", "performedIn", "SpaceJam");
        b.add_entity_triple("Twilight", "releaseYear", "2008");
        b.build()
    }

    #[test]
    fn clusters_group_by_subject() {
        let g = sample_graph();
        assert_eq!(g.num_clusters(), 2);
        assert_eq!(g.total_triples(), 4);
        let mj = g.cluster(0).unwrap();
        assert_eq!(mj.len(), 3);
        assert!(!mj.is_empty());
        assert_eq!(g.cluster(1).unwrap().len(), 1);
    }

    #[test]
    fn subject_index_resolves() {
        let g = sample_graph();
        let mj = g.entities().get("MichaelJordan").unwrap();
        assert_eq!(g.cluster_of(crate::triple::EntityId(mj)), Some(0));
        assert_eq!(g.cluster_of(crate::triple::EntityId(9999)), None);
    }

    #[test]
    fn triple_ref_resolution() {
        let g = sample_graph();
        let t = g.triple(TripleRef::new(0, 1)).unwrap();
        let shown = g.display_triple(t);
        assert!(shown.contains("birthDate"), "{shown}");
        assert!(shown.contains("1963"), "{shown}");
        assert!(g.triple(TripleRef::new(0, 3)).is_none());
        assert!(g.triple(TripleRef::new(5, 0)).is_none());
    }

    #[test]
    fn iter_refs_visits_every_triple_once() {
        let g = sample_graph();
        let refs: Vec<_> = g.iter_refs().map(|(r, _)| r).collect();
        assert_eq!(refs.len(), 4);
        let set: std::collections::HashSet<_> = refs.iter().collect();
        assert_eq!(set.len(), 4);
        for (r, _) in g.iter_refs() {
            assert!(g.validate_ref(r).is_ok());
        }
    }

    #[test]
    fn cluster_sizes_match_population_view() {
        let g = sample_graph();
        assert_eq!(g.cluster_sizes(), vec![3, 1]);
        assert!((g.avg_cluster_size() - 2.0).abs() < 1e-12);
    }
}

//! Triple and identifier types.
//!
//! Subjects are always entities (referred to by unique ids, §2.1); objects
//! are either entities ("entity property" triples) or atomic literals
//! ("data property" triples).

/// Interned id of an entity (subject or entity-valued object).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u32);

/// Interned id of a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredicateId(pub u32);

/// Interned id of a literal value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LiteralId(pub u32);

/// The object of a triple: an entity (entity property) or a literal (data
/// property).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Object {
    /// Object is another entity in the KG.
    Entity(EntityId),
    /// Object is an atomic value (date, number, string literal, …).
    Literal(LiteralId),
}

impl Object {
    /// Whether this is an entity-property object.
    pub fn is_entity(&self) -> bool {
        matches!(self, Object::Entity(_))
    }
}

/// One `(subject, predicate, object)` fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Triple {
    /// Subject entity.
    pub subject: EntityId,
    /// Predicate.
    pub predicate: PredicateId,
    /// Object (entity or literal).
    pub object: Object,
}

/// A reference to one triple in a clustered population: cluster index plus
/// offset within the cluster.
///
/// This is the universal sampling unit handle shared by materialized and
/// implicit KGs; annotators, oracles, and estimators all speak `TripleRef`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TripleRef {
    /// Index of the entity cluster in its population.
    pub cluster: u32,
    /// Offset of the triple within the cluster (0-based, `< cluster size`).
    pub offset: u32,
}

impl TripleRef {
    /// Construct a reference.
    pub fn new(cluster: u32, offset: u32) -> Self {
        TripleRef { cluster, offset }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn object_kind_predicates() {
        assert!(Object::Entity(EntityId(1)).is_entity());
        assert!(!Object::Literal(LiteralId(1)).is_entity());
    }

    #[test]
    fn triple_ref_is_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(TripleRef::new(0, 0));
        set.insert(TripleRef::new(0, 0));
        set.insert(TripleRef::new(0, 1));
        assert_eq!(set.len(), 2);
        assert!(TripleRef::new(0, 5) < TripleRef::new(1, 0));
    }

    #[test]
    fn triple_equality_is_structural() {
        let t1 = Triple {
            subject: EntityId(3),
            predicate: PredicateId(1),
            object: Object::Literal(LiteralId(9)),
        };
        let t2 = t1;
        assert_eq!(t1, t2);
    }
}

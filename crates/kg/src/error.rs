//! Error type for the KG substrate.

use std::fmt;

/// Errors raised by KG construction, indexing, and I/O.
#[derive(Debug)]
pub enum KgError {
    /// A cluster index was out of range.
    ClusterOutOfRange {
        /// The requested cluster index.
        index: usize,
        /// Number of clusters in the graph.
        len: usize,
    },
    /// A triple offset was out of range within its cluster.
    OffsetOutOfRange {
        /// Cluster index.
        cluster: usize,
        /// Requested offset.
        offset: usize,
        /// Cluster size.
        size: usize,
    },
    /// A retraction batch (or one of its per-cluster entries) was empty.
    EmptyRetraction,
    /// A retraction named the same cluster twice, or the same offset twice
    /// within a cluster.
    DuplicateRetraction {
        /// Cluster index containing the duplicate.
        cluster: usize,
    },
    /// A malformed line was encountered while parsing a triple file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for KgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KgError::ClusterOutOfRange { index, len } => {
                write!(
                    f,
                    "cluster index {index} out of range (graph has {len} clusters)"
                )
            }
            KgError::OffsetOutOfRange {
                cluster,
                offset,
                size,
            } => write!(
                f,
                "offset {offset} out of range in cluster {cluster} of size {size}"
            ),
            KgError::EmptyRetraction => {
                write!(f, "retraction batches and their entries must be non-empty")
            }
            KgError::DuplicateRetraction { cluster } => {
                write!(f, "duplicate retraction target in cluster {cluster}")
            }
            KgError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            KgError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for KgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KgError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for KgError {
    fn from(e: std::io::Error) -> Self {
        KgError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let e = KgError::ClusterOutOfRange { index: 5, len: 3 };
        assert!(e.to_string().contains('5'));
        let e = KgError::OffsetOutOfRange {
            cluster: 1,
            offset: 9,
            size: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(KgError::EmptyRetraction.to_string().contains("non-empty"));
        let e = KgError::DuplicateRetraction { cluster: 3 };
        assert!(e.to_string().contains('3'));
        let e = KgError::Parse {
            line: 12,
            message: "expected 3 fields".into(),
        };
        assert!(e.to_string().contains("12"));
        let io = KgError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "nope"));
        assert!(io.to_string().contains("nope"));
        use std::error::Error;
        assert!(io.source().is_some());
    }
}

//! # kg-model — knowledge-graph substrate
//!
//! The population model for KG accuracy evaluation (§2.1 of the paper): a
//! knowledge graph `G` is a set of `(subject, predicate, object)` triples,
//! partitioned into *entity clusters* `G[e]` — the triples sharing subject
//! `e`. All sampling designs in `kg-sampling` operate over this cluster
//! structure.
//!
//! Two representations are provided:
//!
//! * [`graph::KnowledgeGraph`] — a *materialized* KG with interned strings,
//!   a subject index, and full triple storage. Used by the small gold-label
//!   datasets (NELL, YAGO) and by the KGEval baseline which needs to inspect
//!   predicates/objects to build coupling constraints.
//! * [`implicit::ImplicitKg`] — a *cluster-size skeleton*: just the vector of
//!   cluster sizes. Estimation of accuracy only requires the cluster
//!   structure plus a label oracle, so the 130-million-triple MOVIE-FULL
//!   scalability experiment (Fig. 7) runs without materializing a single
//!   triple. Both types implement [`implicit::ClusterPopulation`].
//!
//! Evolving KGs (§2.1, §6) are modeled as a base graph plus a sequence of
//! [`update::UpdateBatch`]es of triple insertions, clustered by subject
//! (`Δe`). Deletions and revisions ride alongside as [`retract::Retraction`]
//! tombstones — raw `(cluster, offset)` coordinates never change, and live
//! sampling coordinates are translated via [`retract::map_live_offset`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod error;
pub mod graph;
pub mod implicit;
pub mod interner;
pub mod io;
pub mod retract;
pub mod stats;
pub mod triple;
pub mod update;

pub use builder::KgBuilder;
pub use error::KgError;
pub use graph::{EntityCluster, KnowledgeGraph};
pub use implicit::{ClusterPopulation, ImplicitKg};
pub use interner::Interner;
pub use retract::{map_live_offset, KgEvent, Retraction, TombstoneMap};
pub use triple::{EntityId, Object, PredicateId, Triple, TripleRef};
pub use update::UpdateBatch;

//! Incremental construction of a materialized [`KnowledgeGraph`].

use crate::graph::{EntityCluster, KnowledgeGraph};
use crate::interner::Interner;
use crate::triple::{EntityId, LiteralId, Object, PredicateId, Triple};
use std::collections::HashMap;

/// Builder that ingests string triples, interns them, and groups them into
/// entity clusters in first-seen-subject order (so cluster indices are
/// deterministic for a given insertion sequence).
#[derive(Debug, Default)]
pub struct KgBuilder {
    entities: Interner,
    predicates: Interner,
    literals: Interner,
    clusters: Vec<EntityCluster>,
    subject_to_cluster: HashMap<EntityId, usize>,
}

impl KgBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, subject: EntityId, triple: Triple) {
        match self.subject_to_cluster.get(&subject) {
            Some(&i) => self.clusters[i].triples.push(triple),
            None => {
                let i = self.clusters.len();
                self.subject_to_cluster.insert(subject, i);
                self.clusters.push(EntityCluster {
                    subject,
                    triples: vec![triple],
                });
            }
        }
    }

    /// Add a triple whose object is an entity.
    pub fn add_entity_triple(&mut self, subject: &str, predicate: &str, object: &str) {
        let s = EntityId(self.entities.intern(subject));
        let p = PredicateId(self.predicates.intern(predicate));
        let o = EntityId(self.entities.intern(object));
        self.push(
            s,
            Triple {
                subject: s,
                predicate: p,
                object: Object::Entity(o),
            },
        );
    }

    /// Add a triple whose object is an atomic literal.
    pub fn add_literal_triple(&mut self, subject: &str, predicate: &str, literal: &str) {
        let s = EntityId(self.entities.intern(subject));
        let p = PredicateId(self.predicates.intern(predicate));
        let o = LiteralId(self.literals.intern(literal));
        self.push(
            s,
            Triple {
                subject: s,
                predicate: p,
                object: Object::Literal(o),
            },
        );
    }

    /// Number of triples added so far.
    pub fn num_triples(&self) -> u64 {
        self.clusters.iter().map(|c| c.triples.len() as u64).sum()
    }

    /// Number of distinct subjects so far.
    pub fn num_subjects(&self) -> usize {
        self.clusters.len()
    }

    /// Finish and produce the immutable graph.
    pub fn build(self) -> KnowledgeGraph {
        KnowledgeGraph::from_parts(self.clusters, self.entities, self.predicates, self.literals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implicit::ClusterPopulation;

    #[test]
    fn builder_counts_and_grouping() {
        let mut b = KgBuilder::new();
        b.add_entity_triple("a", "p", "x");
        b.add_entity_triple("b", "p", "x");
        b.add_literal_triple("a", "q", "1990");
        assert_eq!(b.num_triples(), 3);
        assert_eq!(b.num_subjects(), 2);
        let g = b.build();
        assert_eq!(g.num_clusters(), 2);
        assert_eq!(g.cluster_size(0), 2); // "a" seen first
        assert_eq!(g.cluster_size(1), 1);
    }

    #[test]
    fn entity_objects_share_the_entity_interner() {
        let mut b = KgBuilder::new();
        b.add_entity_triple("a", "knows", "b");
        b.add_entity_triple("b", "knows", "a");
        let g = b.build();
        // "a" and "b" are both subjects and objects: 2 entities total.
        assert_eq!(g.entities().len(), 2);
        assert_eq!(g.predicates().len(), 1);
        assert_eq!(g.literals().len(), 0);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = KgBuilder::new().build();
        assert_eq!(g.num_clusters(), 0);
        assert_eq!(g.total_triples(), 0);
    }
}

//! Cluster populations: the abstraction every sampling design runs on.
//!
//! Accuracy estimation never needs triple *content* — only the cluster
//! structure (how many clusters, how big each is) plus a label oracle. The
//! [`ClusterPopulation`] trait captures exactly that, and [`ImplicitKg`] is
//! its minimal implementation: a vector of cluster sizes. This is what makes
//! the Fig. 7 scalability experiment (130M triples, 14.5M clusters) run in
//! tens of megabytes.

use crate::error::KgError;
use crate::triple::TripleRef;

/// A population of entity clusters, as seen by the sampling designs.
///
/// Notation of the paper's Table 2: `N` clusters, cluster `i` of size `M_i`,
/// `M = Σ M_i` triples.
pub trait ClusterPopulation {
    /// Number of entity clusters `N`.
    fn num_clusters(&self) -> usize;

    /// Size `M_i` of cluster `i`. Panics or returns 0 out of range; use
    /// [`ClusterPopulation::try_cluster_size`] for checked access.
    fn cluster_size(&self, cluster: usize) -> usize;

    /// Total number of triples `M`.
    fn total_triples(&self) -> u64;

    /// Checked cluster size.
    fn try_cluster_size(&self, cluster: usize) -> Result<usize, KgError> {
        if cluster < self.num_clusters() {
            Ok(self.cluster_size(cluster))
        } else {
            Err(KgError::ClusterOutOfRange {
                index: cluster,
                len: self.num_clusters(),
            })
        }
    }

    /// Average cluster size `M / N` (Table 3's "average cluster size").
    fn avg_cluster_size(&self) -> f64 {
        if self.num_clusters() == 0 {
            0.0
        } else {
            self.total_triples() as f64 / self.num_clusters() as f64
        }
    }

    /// Validate a triple reference against the population shape.
    fn validate_ref(&self, t: TripleRef) -> Result<(), KgError> {
        let size = self.try_cluster_size(t.cluster as usize)?;
        if (t.offset as usize) < size {
            Ok(())
        } else {
            Err(KgError::OffsetOutOfRange {
                cluster: t.cluster as usize,
                offset: t.offset as usize,
                size,
            })
        }
    }
}

/// A knowledge graph reduced to its cluster-size skeleton.
#[derive(Debug, Clone)]
pub struct ImplicitKg {
    sizes: Vec<u32>,
    total: u64,
}

impl ImplicitKg {
    /// Build from per-cluster sizes. Zero-size clusters are disallowed (an
    /// entity exists in the KG only via its triples, §2.1). Validation and
    /// the triple total come from one fused pass over the sizes — at the
    /// 10^7-cluster scales this constructor is hit by every generated KG,
    /// and a second scan is pure memory traffic.
    pub fn new(sizes: Vec<u32>) -> Result<Self, KgError> {
        let mut total = 0u64;
        for (i, &s) in sizes.iter().enumerate() {
            if s == 0 {
                return Err(KgError::OffsetOutOfRange {
                    cluster: i,
                    offset: 0,
                    size: 0,
                });
            }
            total += s as u64;
        }
        Ok(ImplicitKg { sizes, total })
    }

    /// The size vector.
    pub fn sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// A uniform population: `n` clusters all of size `size`.
    pub fn uniform(n: usize, size: u32) -> Result<Self, KgError> {
        Self::new(vec![size; n])
    }
}

impl ClusterPopulation for ImplicitKg {
    fn num_clusters(&self) -> usize {
        self.sizes.len()
    }

    fn cluster_size(&self, cluster: usize) -> usize {
        self.sizes[cluster] as usize
    }

    fn total_triples(&self) -> u64 {
        self.total
    }
}

impl<P: ClusterPopulation + ?Sized> ClusterPopulation for &P {
    fn num_clusters(&self) -> usize {
        (**self).num_clusters()
    }
    fn cluster_size(&self, cluster: usize) -> usize {
        (**self).cluster_size(cluster)
    }
    fn total_triples(&self) -> u64 {
        (**self).total_triples()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_kg_totals() {
        let kg = ImplicitKg::new(vec![3, 1, 5]).unwrap();
        assert_eq!(kg.num_clusters(), 3);
        assert_eq!(kg.total_triples(), 9);
        assert_eq!(kg.cluster_size(2), 5);
        assert!((kg.avg_cluster_size() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_size_cluster_rejected() {
        assert!(ImplicitKg::new(vec![2, 0, 1]).is_err());
    }

    #[test]
    fn uniform_constructor() {
        let kg = ImplicitKg::uniform(4, 7).unwrap();
        assert_eq!(kg.total_triples(), 28);
        assert_eq!(kg.sizes(), &[7, 7, 7, 7]);
    }

    #[test]
    fn checked_access_errors() {
        let kg = ImplicitKg::new(vec![2]).unwrap();
        assert!(kg.try_cluster_size(0).is_ok());
        assert!(kg.try_cluster_size(1).is_err());
        assert!(kg.validate_ref(TripleRef::new(0, 1)).is_ok());
        assert!(kg.validate_ref(TripleRef::new(0, 2)).is_err());
        assert!(kg.validate_ref(TripleRef::new(1, 0)).is_err());
    }

    #[test]
    fn reference_impl_delegates() {
        let kg = ImplicitKg::new(vec![2, 2]).unwrap();
        let r: &ImplicitKg = &kg;
        assert_eq!(ClusterPopulation::num_clusters(&r), 2);
        assert_eq!(ClusterPopulation::total_triples(&r), 4);
        assert_eq!(ClusterPopulation::cluster_size(&r, 1), 2);
    }

    #[test]
    fn empty_population_avg_is_zero() {
        let kg = ImplicitKg::new(vec![]).unwrap();
        assert_eq!(kg.avg_cluster_size(), 0.0);
        assert_eq!(kg.num_clusters(), 0);
    }
}

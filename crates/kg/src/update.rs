//! Evolving-KG updates (§2.1, §6 of the paper).
//!
//! Changes arrive as batches `Δ` of triple insertions. Insertions are
//! clustered by subject id into `Δe` groups; following the paper's
//! Algorithm 1, every `Δe` is treated as a **new, independent cluster**,
//! even when the subject already exists in `G` — this keeps previously
//! assigned cluster weights constant, which is what makes the weighted
//! reservoir update correct ("though we may break an entity cluster into
//! several disjoint sub-clusters over time, it does not change the
//! properties of weighted reservoir sampling or TWCS").

use crate::error::KgError;
use crate::implicit::ImplicitKg;
use std::collections::HashMap;

/// A batch of triple insertions, already clustered by subject: element `j`
/// is `|Δe_j|`, the number of inserted triples about subject `e_j`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateBatch {
    delta_sizes: Vec<u32>,
    total: u64,
}

impl UpdateBatch {
    /// Build from per-`Δe` sizes. Empty groups are rejected.
    pub fn from_sizes(delta_sizes: Vec<u32>) -> Result<Self, KgError> {
        for (i, &s) in delta_sizes.iter().enumerate() {
            if s == 0 {
                return Err(KgError::OffsetOutOfRange {
                    cluster: i,
                    offset: 0,
                    size: 0,
                });
            }
        }
        let total = delta_sizes.iter().map(|&s| s as u64).sum();
        Ok(UpdateBatch { delta_sizes, total })
    }

    /// Cluster raw insertions by subject id (the `Δe` grouping of §2.1).
    /// `subjects[k]` is the subject id of the `k`-th inserted triple.
    pub fn group_by_subject(subjects: &[u32]) -> Self {
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for &s in subjects {
            *counts.entry(s).or_insert(0) += 1;
        }
        // Deterministic order: by subject id.
        let mut pairs: Vec<(u32, u32)> = counts.into_iter().collect();
        pairs.sort_unstable();
        let delta_sizes: Vec<u32> = pairs.into_iter().map(|(_, c)| c).collect();
        let total = delta_sizes.iter().map(|&s| s as u64).sum();
        UpdateBatch { delta_sizes, total }
    }

    /// Per-`Δe` sizes.
    pub fn delta_sizes(&self) -> &[u32] {
        &self.delta_sizes
    }

    /// Number of `Δe` groups (new clusters).
    pub fn num_delta_clusters(&self) -> usize {
        self.delta_sizes.len()
    }

    /// Total inserted triples `|Δ|`.
    pub fn total_triples(&self) -> u64 {
        self.total
    }

    /// Apply to an implicit KG, producing `G + Δ` with the `Δe` groups
    /// appended as fresh clusters. Returns the evolved KG and the index of
    /// the first appended cluster.
    pub fn apply_to(&self, base: &ImplicitKg) -> (ImplicitKg, usize) {
        let first_new = base.num_clusters_raw();
        let mut sizes = base.sizes().to_vec();
        sizes.extend_from_slice(&self.delta_sizes);
        let evolved = ImplicitKg::new(sizes).expect("both inputs validated non-zero sizes");
        (evolved, first_new)
    }
}

impl ImplicitKg {
    fn num_clusters_raw(&self) -> usize {
        self.sizes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implicit::ClusterPopulation;

    #[test]
    fn grouping_counts_per_subject() {
        let batch = UpdateBatch::group_by_subject(&[7, 3, 7, 7, 3, 9]);
        assert_eq!(batch.delta_sizes(), &[2, 3, 1]); // subjects 3, 7, 9
        assert_eq!(batch.num_delta_clusters(), 3);
        assert_eq!(batch.total_triples(), 6);
    }

    #[test]
    fn from_sizes_validates() {
        assert!(UpdateBatch::from_sizes(vec![1, 2]).is_ok());
        assert!(UpdateBatch::from_sizes(vec![1, 0]).is_err());
        let empty = UpdateBatch::from_sizes(vec![]).unwrap();
        assert_eq!(empty.total_triples(), 0);
    }

    #[test]
    fn apply_appends_new_clusters() {
        let base = ImplicitKg::new(vec![4, 4]).unwrap();
        let batch = UpdateBatch::from_sizes(vec![2, 6]).unwrap();
        let (evolved, first_new) = batch.apply_to(&base);
        assert_eq!(first_new, 2);
        assert_eq!(evolved.num_clusters(), 4);
        assert_eq!(evolved.total_triples(), 16);
        assert_eq!(evolved.cluster_size(3), 6);
        // Base clusters untouched.
        assert_eq!(evolved.cluster_size(0), 4);
    }

    #[test]
    fn repeated_subject_insertions_form_one_delta_cluster_per_batch() {
        // Enriching an existing entity: within one batch it is one Δe …
        let b1 = UpdateBatch::group_by_subject(&[5, 5, 5]);
        assert_eq!(b1.num_delta_clusters(), 1);
        // … and a later batch for the same entity forms a *separate* new
        // cluster (paper: sub-clusters over time are fine).
        let b2 = UpdateBatch::group_by_subject(&[5]);
        let base = ImplicitKg::new(vec![10]).unwrap();
        let (g1, _) = b1.apply_to(&base);
        let (g2, _) = b2.apply_to(&g1);
        assert_eq!(g2.num_clusters(), 3);
    }
}

//! Evolving-KG updates (§2.1, §6 of the paper).
//!
//! Changes arrive as batches `Δ` of triple insertions. Insertions are
//! clustered by subject id into `Δe` groups; following the paper's
//! Algorithm 1, every `Δe` is treated as a **new, independent cluster**,
//! even when the subject already exists in `G` — this keeps previously
//! assigned cluster weights constant, which is what makes the weighted
//! reservoir update correct ("though we may break an entity cluster into
//! several disjoint sub-clusters over time, it does not change the
//! properties of weighted reservoir sampling or TWCS").

use crate::error::KgError;
use crate::implicit::ImplicitKg;
use std::collections::HashMap;
use std::sync::Arc;

/// A batch of triple insertions, already clustered by subject: element `j`
/// is `|Δe_j|`, the number of inserted triples about subject `e_j`.
///
/// Alongside the sizes, the batch materializes its **cumulative weight
/// prefix** once at construction (`weight_prefix()[j]` = triples in groups
/// `0..j`): the batched reservoir offers and bulk PPS appends of the §6
/// evaluators consume that slice directly, so replaying the same batch
/// across trials and engines never recomputes per-item running sums. Both
/// arrays are `Arc`-shared — cloning a batch (or handing its sizes to a
/// stratum) is a refcount bump, not an O(|Δ|) copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateBatch {
    delta_sizes: Arc<[u32]>,
    prefix: Arc<[u64]>,
    total: u64,
}

impl UpdateBatch {
    /// Build from per-`Δe` sizes. Empty groups are rejected. One fused
    /// pass validates, totals, and materializes the weight prefix.
    pub fn from_sizes(delta_sizes: Vec<u32>) -> Result<Self, KgError> {
        let mut prefix = Vec::with_capacity(delta_sizes.len() + 1);
        prefix.push(0u64);
        let mut total = 0u64;
        for (i, &s) in delta_sizes.iter().enumerate() {
            if s == 0 {
                return Err(KgError::OffsetOutOfRange {
                    cluster: i,
                    offset: 0,
                    size: 0,
                });
            }
            total += s as u64;
            prefix.push(total);
        }
        Ok(UpdateBatch {
            delta_sizes: delta_sizes.into(),
            prefix: prefix.into(),
            total,
        })
    }

    /// Build from per-`Δe` sizes, silently dropping zero-size groups
    /// instead of rejecting them.
    ///
    /// This is the normalization applied to *derived* size vectors —
    /// grouping pipelines, churn generators, or profile samplers whose
    /// arithmetic can legitimately produce empty groups. A zero-size `Δe`
    /// carries no triples, no weight, and no sampling mass, so the only
    /// consistent treatment is for it to never become a cluster at all:
    /// cluster ids stay dense and `apply_to` accounting is unaffected.
    /// Hand-authored size vectors should use [`UpdateBatch::from_sizes`],
    /// where a zero is a bug worth surfacing.
    pub fn from_sizes_pruned(delta_sizes: Vec<u32>) -> Self {
        let pruned: Vec<u32> = delta_sizes.into_iter().filter(|&s| s > 0).collect();
        Self::from_sizes(pruned).expect("zero-size groups were pruned")
    }

    /// Cluster raw insertions by subject id (the `Δe` grouping of §2.1).
    /// `subjects[k]` is the subject id of the `k`-th inserted triple.
    ///
    /// Grouping counts occurrences, so every group it produces has size
    /// ≥ 1; it is nevertheless routed through the same zero-pruning
    /// normalization as [`UpdateBatch::from_sizes_pruned`] so that both
    /// derived-batch paths share one construction invariant.
    pub fn group_by_subject(subjects: &[u32]) -> Self {
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for &s in subjects {
            *counts.entry(s).or_insert(0) += 1;
        }
        // Deterministic order: by subject id.
        let mut pairs: Vec<(u32, u32)> = counts.into_iter().collect();
        pairs.sort_unstable();
        let delta_sizes: Vec<u32> = pairs.into_iter().map(|(_, c)| c).collect();
        Self::from_sizes_pruned(delta_sizes)
    }

    /// Per-`Δe` sizes.
    pub fn delta_sizes(&self) -> &[u32] {
        &self.delta_sizes
    }

    /// Per-`Δe` sizes as a shared handle — O(1) to hold onto (the §6
    /// stratified evaluator keeps one per stratum).
    pub fn delta_sizes_shared(&self) -> Arc<[u32]> {
        Arc::clone(&self.delta_sizes)
    }

    /// The batch's cumulative weight prefix, materialized once at
    /// construction: `weight_prefix()[j]` is the number of inserted
    /// triples in groups `0..j` (length `num_delta_clusters() + 1`,
    /// starting at 0, strictly increasing). This is the exact shape
    /// consumed by `WeightedReservoirExpJ::offer_batch` and
    /// `GrowablePps::extend_from_prefix` in kg-stats.
    pub fn weight_prefix(&self) -> &[u64] {
        &self.prefix
    }

    /// The cumulative weight prefix as a shared handle — O(1). This is
    /// what lets `GrowablePps::extend_shared` adopt a whole batch into a
    /// sampling frame without copying a single weight, and what the
    /// stratified evaluator builds each stratum's frame from.
    pub fn weight_prefix_shared(&self) -> Arc<[u64]> {
        Arc::clone(&self.prefix)
    }

    /// Number of `Δe` groups (new clusters).
    pub fn num_delta_clusters(&self) -> usize {
        self.delta_sizes.len()
    }

    /// Total inserted triples `|Δ|`.
    pub fn total_triples(&self) -> u64 {
        self.total
    }

    /// Apply to an implicit KG, producing `G + Δ` with the `Δe` groups
    /// appended as fresh clusters. Returns the evolved KG and the index of
    /// the first appended cluster.
    pub fn apply_to(&self, base: &ImplicitKg) -> (ImplicitKg, usize) {
        let first_new = base.num_clusters_raw();
        let mut sizes = base.sizes().to_vec();
        sizes.extend_from_slice(&self.delta_sizes);
        let evolved = ImplicitKg::new(sizes).expect("both inputs validated non-zero sizes");
        (evolved, first_new)
    }

    /// Append this batch's `Δe` clusters to a shared prefix-sum snapshot
    /// (`prefix[c]` = global index of cluster `c`'s first triple,
    /// `prefix[N]` = total triples `M`), in place.
    ///
    /// When the caller holds the only strong reference the existing
    /// allocation is extended — amortized O(|Δ|) per batch, nothing
    /// rebuilt. A prefix still shared with other holders (say, a sampling
    /// index over the base snapshot) is copied once on first growth
    /// (`Arc::make_mut` copy-on-write); the other holders keep addressing
    /// the base snapshot, which is exactly the §6 contract — previously
    /// assigned cluster ids and weights never change.
    pub fn extend_prefix(&self, prefix: &mut Arc<Vec<u64>>) {
        assert!(
            !prefix.is_empty() && prefix[0] == 0,
            "prefix sums must start at 0"
        );
        if self.delta_sizes.is_empty() {
            return;
        }
        let out = Arc::make_mut(prefix);
        out.reserve(self.delta_sizes.len());
        let base = *out.last().expect("checked non-empty");
        // Bulk offset-add from the batch's cached prefix — no per-item
        // running sum.
        out.extend(self.prefix[1..].iter().map(|&p| base + p));
    }
}

impl ImplicitKg {
    fn num_clusters_raw(&self) -> usize {
        self.sizes().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implicit::ClusterPopulation;

    #[test]
    fn grouping_counts_per_subject() {
        let batch = UpdateBatch::group_by_subject(&[7, 3, 7, 7, 3, 9]);
        assert_eq!(batch.delta_sizes(), &[2, 3, 1]); // subjects 3, 7, 9
        assert_eq!(batch.num_delta_clusters(), 3);
        assert_eq!(batch.total_triples(), 6);
    }

    #[test]
    fn from_sizes_validates() {
        assert!(UpdateBatch::from_sizes(vec![1, 2]).is_ok());
        assert!(UpdateBatch::from_sizes(vec![1, 0]).is_err());
        let empty = UpdateBatch::from_sizes(vec![]).unwrap();
        assert_eq!(empty.total_triples(), 0);
        assert_eq!(empty.weight_prefix(), &[0]);
    }

    #[test]
    fn weight_prefix_is_the_cumulative_sizes() {
        let batch = UpdateBatch::from_sizes(vec![3, 1, 4, 1, 5]).unwrap();
        assert_eq!(batch.weight_prefix(), &[0, 3, 4, 8, 9, 14]);
        assert_eq!(
            *batch.weight_prefix().last().unwrap(),
            batch.total_triples()
        );
        assert_eq!(batch.weight_prefix().len(), batch.num_delta_clusters() + 1);
        // Grouping materializes the same prefix as from_sizes.
        let grouped = UpdateBatch::group_by_subject(&[7, 3, 7, 7, 3, 9]);
        assert_eq!(grouped.weight_prefix(), &[0, 2, 5, 6]);
        // Shared handles alias the batch's own storage.
        let sizes = batch.delta_sizes_shared();
        assert_eq!(&*sizes, batch.delta_sizes());
        assert_eq!(Arc::strong_count(&sizes), 2);
    }

    #[test]
    fn apply_appends_new_clusters() {
        let base = ImplicitKg::new(vec![4, 4]).unwrap();
        let batch = UpdateBatch::from_sizes(vec![2, 6]).unwrap();
        let (evolved, first_new) = batch.apply_to(&base);
        assert_eq!(first_new, 2);
        assert_eq!(evolved.num_clusters(), 4);
        assert_eq!(evolved.total_triples(), 16);
        assert_eq!(evolved.cluster_size(3), 6);
        // Base clusters untouched.
        assert_eq!(evolved.cluster_size(0), 4);
    }

    #[test]
    fn empty_batch_is_a_no_op_everywhere() {
        let empty = UpdateBatch::from_sizes(vec![]).unwrap();
        assert_eq!(empty.num_delta_clusters(), 0);
        assert_eq!(empty.total_triples(), 0);
        assert_eq!(empty.delta_sizes(), &[] as &[u32]);
        // Applying an empty batch evolves nothing.
        let base = ImplicitKg::new(vec![3, 2]).unwrap();
        let (evolved, first_new) = empty.apply_to(&base);
        assert_eq!(first_new, 2);
        assert_eq!(evolved.num_clusters(), 2);
        assert_eq!(evolved.total_triples(), base.total_triples());
        // Extending a prefix snapshot leaves it untouched (no CoW either).
        let prefix = Arc::new(vec![0u64, 3, 5]);
        let mut shared = prefix.clone();
        empty.extend_prefix(&mut shared);
        assert!(Arc::ptr_eq(&shared, &prefix));
        // Grouping an empty insertion stream yields the empty batch.
        assert_eq!(UpdateBatch::group_by_subject(&[]), empty);
    }

    #[test]
    fn pruned_construction_drops_zero_size_groups() {
        // Zero-size Δe groups vanish instead of erroring: the pruned batch
        // is indistinguishable from one built without the zeros.
        let pruned = UpdateBatch::from_sizes_pruned(vec![2, 0, 3, 0]);
        assert_eq!(pruned, UpdateBatch::from_sizes(vec![2, 3]).unwrap());
        assert_eq!(pruned.num_delta_clusters(), 2);
        assert_eq!(pruned.total_triples(), 5);
        assert_eq!(pruned.weight_prefix(), &[0, 2, 5]);
        // All-zero input collapses to the empty batch …
        let all_dead = UpdateBatch::from_sizes_pruned(vec![0, 0]);
        assert_eq!(all_dead, UpdateBatch::from_sizes(vec![]).unwrap());
        // … and apply_to accounting treats it as a pure no-op: no clusters
        // minted, no triples added, first_new still past the base.
        let base = ImplicitKg::new(vec![4, 1]).unwrap();
        let (evolved, first_new) = all_dead.apply_to(&base);
        assert_eq!(first_new, 2);
        assert_eq!(evolved.num_clusters(), 2);
        assert_eq!(evolved.total_triples(), base.total_triples());
        // The strict constructor still rejects what pruning would hide.
        assert!(UpdateBatch::from_sizes(vec![2, 0, 3]).is_err());
    }

    #[test]
    fn group_by_subject_never_mints_empty_clusters() {
        // Counting guarantees positivity, and the shared pruned path keeps
        // it that way even for degenerate inputs.
        for subjects in [vec![], vec![0u32], vec![3, 3, 3], vec![1, 2, 1, 2]] {
            let batch = UpdateBatch::group_by_subject(&subjects);
            assert!(batch.delta_sizes().iter().all(|&s| s > 0));
            assert_eq!(batch.total_triples(), subjects.len() as u64);
        }
    }

    #[test]
    fn group_by_subject_with_duplicates_is_order_insensitive() {
        // Duplicate subjects, arbitrary interleaving: the Δe grouping only
        // depends on the multiset of subject ids.
        let a = UpdateBatch::group_by_subject(&[9, 1, 9, 9, 1, 4, 9]);
        let b = UpdateBatch::group_by_subject(&[1, 1, 4, 9, 9, 9, 9]);
        assert_eq!(a, b);
        assert_eq!(a.delta_sizes(), &[2, 1, 4]); // subjects 1, 4, 9
        assert_eq!(a.total_triples(), 7);
        // All-duplicate stream collapses into a single Δe cluster.
        let one = UpdateBatch::group_by_subject(&[5; 6]);
        assert_eq!(one.delta_sizes(), &[6]);
        assert_eq!(one.num_delta_clusters(), 1);
    }

    #[test]
    fn merging_into_existing_subjects_still_mints_new_clusters() {
        // A batch whose subjects all already exist in G: under Algorithm 1
        // every Δe is still a fresh cluster (sub-clusters over time), so
        // the evolved KG grows by the batch's cluster count, and the base
        // cluster sizes are never edited in place.
        let base = ImplicitKg::new(vec![10, 20]).unwrap();
        let merge = UpdateBatch::group_by_subject(&[0, 0, 1]); // both exist
        let (evolved, first_new) = merge.apply_to(&base);
        assert_eq!(first_new, 2);
        assert_eq!(evolved.num_clusters(), 4);
        assert_eq!(evolved.cluster_size(0), 10);
        assert_eq!(evolved.cluster_size(1), 20);
        assert_eq!(evolved.cluster_size(2), 2); // Δe of subject 0
        assert_eq!(evolved.cluster_size(3), 1); // Δe of subject 1
                                                // Brand-new subjects behave identically: id assignment is by
                                                // position, not subject identity.
        let mint = UpdateBatch::group_by_subject(&[99, 98]);
        let (evolved2, first2) = mint.apply_to(&evolved);
        assert_eq!(first2, 4);
        assert_eq!(evolved2.num_clusters(), 6);
    }

    #[test]
    fn apply_to_accounts_every_inserted_triple() {
        let base = ImplicitKg::new(vec![7, 1, 2]).unwrap();
        let batch = UpdateBatch::from_sizes(vec![4, 4, 1]).unwrap();
        let (evolved, _) = batch.apply_to(&base);
        assert_eq!(
            evolved.total_triples(),
            base.total_triples() + batch.total_triples()
        );
        // Chaining batches keeps the running total exact.
        let mut kg = evolved;
        let mut expect = kg.total_triples();
        for seed in 0..4u32 {
            let b = UpdateBatch::from_sizes(vec![1 + seed, 2]).unwrap();
            expect += b.total_triples();
            kg = b.apply_to(&kg).0;
            assert_eq!(kg.total_triples(), expect);
        }
    }

    #[test]
    fn extend_prefix_matches_apply_to_layout() {
        let base = ImplicitKg::new(vec![4, 4]).unwrap();
        let batch = UpdateBatch::from_sizes(vec![2, 6]).unwrap();
        let mut prefix = Arc::new(vec![0u64, 4, 8]);
        batch.extend_prefix(&mut prefix);
        assert_eq!(&**prefix, &[0, 4, 8, 10, 16]);
        // A uniquely held Arc is extended in place (no reallocation of the
        // Arc itself), a shared one is copied once and the sharer keeps the
        // base snapshot.
        let shared = prefix.clone();
        let batch2 = UpdateBatch::from_sizes(vec![5]).unwrap();
        let mut grown = prefix;
        batch2.extend_prefix(&mut grown);
        assert_eq!(&**grown, &[0, 4, 8, 10, 16, 21]);
        assert_eq!(&**shared, &[0, 4, 8, 10, 16]);
        assert!(!Arc::ptr_eq(&grown, &shared));
        // Totals agree with apply_to.
        let (evolved, _) = batch2.apply_to(&batch.apply_to(&base).0);
        assert_eq!(*grown.last().unwrap(), evolved.total_triples());
    }

    #[test]
    fn repeated_subject_insertions_form_one_delta_cluster_per_batch() {
        // Enriching an existing entity: within one batch it is one Δe …
        let b1 = UpdateBatch::group_by_subject(&[5, 5, 5]);
        assert_eq!(b1.num_delta_clusters(), 1);
        // … and a later batch for the same entity forms a *separate* new
        // cluster (paper: sub-clusters over time are fine).
        let b2 = UpdateBatch::group_by_subject(&[5]);
        let base = ImplicitKg::new(vec![10]).unwrap();
        let (g1, _) = b1.apply_to(&base);
        let (g2, _) = b2.apply_to(&g1);
        assert_eq!(g2.num_clusters(), 3);
    }
}

//! Plain-text triple I/O.
//!
//! Format: one triple per line, tab-separated —
//! `subject<TAB>predicate<TAB>object<TAB>kind` where `kind` is `E` (object
//! is an entity) or `L` (object is a literal). Lines starting with `#` and
//! blank lines are skipped.

use crate::builder::KgBuilder;
use crate::error::KgError;
use crate::graph::KnowledgeGraph;
use crate::triple::Object;
use std::io::{BufRead, BufWriter, Write};

/// Parse a KG from a tab-separated reader.
pub fn read_tsv<R: BufRead>(reader: R) -> Result<KnowledgeGraph, KgError> {
    let mut builder = KgBuilder::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split('\t');
        let (s, p, o, kind) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(s), Some(p), Some(o), Some(k)) => (s, p, o, k),
            _ => {
                return Err(KgError::Parse {
                    line: lineno + 1,
                    message: "expected 4 tab-separated fields: s, p, o, kind".into(),
                })
            }
        };
        match kind {
            "E" => builder.add_entity_triple(s, p, o),
            "L" => builder.add_literal_triple(s, p, o),
            other => {
                return Err(KgError::Parse {
                    line: lineno + 1,
                    message: format!("unknown object kind `{other}` (expected E or L)"),
                })
            }
        }
    }
    Ok(builder.build())
}

/// Serialize a KG to the tab-separated format accepted by [`read_tsv`].
pub fn write_tsv<W: Write>(graph: &KnowledgeGraph, writer: W) -> Result<(), KgError> {
    let mut out = BufWriter::new(writer);
    for cluster in graph.clusters() {
        for t in &cluster.triples {
            let s = graph.entities().resolve(t.subject.0).unwrap_or("?");
            let p = graph.predicates().resolve(t.predicate.0).unwrap_or("?");
            match t.object {
                Object::Entity(e) => {
                    let o = graph.entities().resolve(e.0).unwrap_or("?");
                    writeln!(out, "{s}\t{p}\t{o}\tE")?;
                }
                Object::Literal(l) => {
                    let o = graph.literals().resolve(l.0).unwrap_or("?");
                    writeln!(out, "{s}\t{p}\t{o}\tL")?;
                }
            }
        }
    }
    out.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implicit::ClusterPopulation;

    const SAMPLE: &str = "\
# a comment
MichaelJordan\twasBornIn\tLA\tE
MichaelJordan\tbirthDate\t1963-02-17\tL

Twilight\treleaseYear\t2008\tL
";

    #[test]
    fn round_trip_preserves_structure() {
        let g = read_tsv(SAMPLE.as_bytes()).unwrap();
        assert_eq!(g.num_clusters(), 2);
        assert_eq!(g.total_triples(), 3);

        let mut buf = Vec::new();
        write_tsv(&g, &mut buf).unwrap();
        let g2 = read_tsv(buf.as_slice()).unwrap();
        assert_eq!(g2.num_clusters(), 2);
        assert_eq!(g2.total_triples(), 3);
        assert_eq!(g2.cluster_sizes(), g.cluster_sizes());
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = read_tsv("only\ttwo\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
        let err = read_tsv("s\tp\to\tX\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains('X'), "{err}");
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let g = read_tsv("# nothing\n\n\n".as_bytes()).unwrap();
        assert_eq!(g.total_triples(), 0);
    }
}

//! Deletions and revisions for evolving KGs: [`Retraction`], [`KgEvent`],
//! and the tombstone bookkeeping shared by every annotation engine.
//!
//! The insert-only evolving model ([`crate::update::UpdateBatch`]) can only
//! mint clusters; real evolving graphs also *retract* facts (entity merges,
//! spam removal, fact revision). A [`Retraction`] names dead triples by
//! their **raw** position — `(cluster, offset-at-insertion-time)` — which
//! never changes once assigned, exactly like cluster ids. Engines keep the
//! raw population immutable (memo tables, label stores, packed bitmaps all
//! stay append-only) and overlay a [`TombstoneMap`] of dead offsets on top.
//!
//! The one subtlety is addressing: samplers see the *live* cluster — a
//! cluster of raw size 5 with offsets {1, 3} dead has live size 3, and a
//! second-stage draw of live offset 2 must reach raw offset 4. The mapping
//! is [`map_live_offset`], and both the hash and dense engines call this
//! exact function so that their byte-identity is preserved by construction.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::KgError;
use crate::update::UpdateBatch;

/// A batch of triple deletions, addressed by raw `(cluster, offset)`.
///
/// Offsets are positions within the cluster *as inserted* (0-based, dense),
/// i.e. the same coordinates used by [`crate::triple::TripleRef`]. A
/// retraction never renumbers survivors: engines overlay tombstones and
/// translate live offsets on demand via [`map_live_offset`].
///
/// Invariants (enforced by [`Retraction::new`]):
/// * entries are sorted by strictly ascending cluster id;
/// * each entry's offsets are sorted, unique, and non-empty;
/// * the batch as a whole is non-empty.
#[derive(Debug, Clone)]
pub struct Retraction {
    entries: Vec<(u32, Arc<[u32]>)>,
    total: u64,
}

impl Retraction {
    /// Builds a retraction from per-cluster raw offsets.
    ///
    /// Input entries may be in any order and offsets unsorted; they are
    /// sorted here. Returns an error if the batch is empty, a cluster
    /// appears twice, or a cluster's offset list is empty or contains a
    /// duplicate.
    pub fn new(mut entries: Vec<(u32, Vec<u32>)>) -> Result<Self, KgError> {
        if entries.is_empty() {
            return Err(KgError::EmptyRetraction);
        }
        entries.sort_by_key(|(c, _)| *c);
        let mut out: Vec<(u32, Arc<[u32]>)> = Vec::with_capacity(entries.len());
        let mut total = 0u64;
        for (i, (cluster, mut offsets)) in entries.into_iter().enumerate() {
            if i > 0 && out[i - 1].0 == cluster {
                return Err(KgError::DuplicateRetraction {
                    cluster: cluster as usize,
                });
            }
            if offsets.is_empty() {
                return Err(KgError::EmptyRetraction);
            }
            offsets.sort_unstable();
            if offsets.windows(2).any(|w| w[0] == w[1]) {
                return Err(KgError::DuplicateRetraction {
                    cluster: cluster as usize,
                });
            }
            total += offsets.len() as u64;
            out.push((cluster, offsets.into()));
        }
        Ok(Retraction {
            entries: out,
            total,
        })
    }

    /// Per-cluster entries, sorted by ascending cluster id; each offset
    /// slice is sorted, unique, and non-empty.
    pub fn entries(&self) -> &[(u32, Arc<[u32]>)] {
        &self.entries
    }

    /// Total number of retracted triples across all clusters.
    pub fn total_retracted(&self) -> u64 {
        self.total
    }

    /// Number of clusters touched by this retraction.
    pub fn num_clusters(&self) -> usize {
        self.entries.len()
    }
}

/// One step of an evolving-KG stream: an insertion batch, a retraction, or
/// a revision (retraction followed by insertion, evaluated as one event).
#[derive(Debug, Clone)]
pub enum KgEvent {
    /// Pure insertion — the classic [`UpdateBatch`] path.
    Insert(UpdateBatch),
    /// Pure deletion of existing triples.
    Retract(Retraction),
    /// A revision: the retraction is applied first, then the insertion.
    /// Only one estimate is produced, after both halves.
    Revise(Retraction, UpdateBatch),
}

impl KgEvent {
    /// Net change in live triple count produced by this event.
    pub fn net_triples(&self) -> i64 {
        match self {
            KgEvent::Insert(b) => b.total_triples() as i64,
            KgEvent::Retract(r) => -(r.total_retracted() as i64),
            KgEvent::Revise(r, b) => b.total_triples() as i64 - r.total_retracted() as i64,
        }
    }

    /// Number of triples *inserted* by this event (0 for pure retractions).
    pub fn inserted_triples(&self) -> u64 {
        match self {
            KgEvent::Insert(b) => b.total_triples(),
            KgEvent::Retract(_) => 0,
            KgEvent::Revise(_, b) => b.total_triples(),
        }
    }

    /// The event's insertion batch, if any.
    pub fn inserted(&self) -> Option<&UpdateBatch> {
        match self {
            KgEvent::Insert(b) | KgEvent::Revise(_, b) => Some(b),
            KgEvent::Retract(_) => None,
        }
    }

    /// The event's retraction, if any.
    pub fn retracted(&self) -> Option<&Retraction> {
        match self {
            KgEvent::Retract(r) | KgEvent::Revise(r, _) => Some(r),
            KgEvent::Insert(_) => None,
        }
    }
}

/// Accumulated tombstones: for each touched cluster, the sorted raw offsets
/// of its dead triples.
///
/// Both annotation engines hold one of these as **trial** state (cleared on
/// replay reset) and consult it when translating live sampling coordinates
/// to raw storage coordinates — see [`map_live_offset`].
#[derive(Debug, Clone, Default)]
pub struct TombstoneMap {
    per_cluster: HashMap<u32, Vec<u32>>,
    dead_total: u64,
}

impl TombstoneMap {
    /// An empty map (no tombstones).
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges a retraction into the map, keeping each cluster's dead-offset
    /// list sorted. Offsets already present are a caller bug (a triple
    /// cannot die twice); debug builds assert this.
    pub fn apply(&mut self, retraction: &Retraction) {
        for (cluster, offsets) in retraction.entries() {
            let dead = self.per_cluster.entry(*cluster).or_default();
            debug_assert!(
                offsets.iter().all(|o| dead.binary_search(o).is_err()),
                "offset retracted twice in cluster {cluster}"
            );
            dead.extend_from_slice(offsets);
            dead.sort_unstable();
        }
        self.dead_total += retraction.total_retracted();
    }

    /// The sorted dead offsets of `cluster`, or `None` if it has no
    /// tombstones.
    pub fn cluster(&self, cluster: u32) -> Option<&[u32]> {
        self.per_cluster.get(&cluster).map(|v| v.as_slice())
    }

    /// Number of dead triples in `cluster`.
    pub fn dead_in(&self, cluster: u32) -> u64 {
        self.per_cluster.get(&cluster).map_or(0, |v| v.len() as u64)
    }

    /// Total dead triples across all clusters.
    pub fn dead_total(&self) -> u64 {
        self.dead_total
    }

    /// True when no triple has been retracted.
    pub fn is_empty(&self) -> bool {
        self.dead_total == 0
    }

    /// Drops every tombstone (used by trial `reset()`); capacity is kept.
    pub fn clear(&mut self) {
        self.per_cluster.clear();
        self.dead_total = 0;
    }
}

/// Translates a **live** offset (position among surviving triples) to the
/// **raw** offset (position at insertion time) given the cluster's sorted
/// dead-offset list.
///
/// Walking the dead list in order, every tombstone at or below the current
/// candidate shifts it up by one; the first tombstone strictly above it
/// cannot affect it (nor can any later one, since the list is sorted).
///
/// ```
/// use kg_model::retract::map_live_offset;
/// // raw cluster [0,1,2,3,4] with 1 and 3 dead → live view [0,2,4]
/// assert_eq!(map_live_offset(&[1, 3], 0), 0);
/// assert_eq!(map_live_offset(&[1, 3], 1), 2);
/// assert_eq!(map_live_offset(&[1, 3], 2), 4);
/// ```
pub fn map_live_offset(dead_sorted: &[u32], live: u32) -> u32 {
    let mut raw = live;
    for &d in dead_sorted {
        if d <= raw {
            raw += 1;
        } else {
            break;
        }
    }
    raw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::UpdateBatch;

    #[test]
    fn new_sorts_clusters_and_offsets() {
        let r = Retraction::new(vec![(7, vec![3, 1]), (2, vec![0])]).unwrap();
        assert_eq!(r.num_clusters(), 2);
        assert_eq!(r.entries()[0].0, 2);
        assert_eq!(&*r.entries()[1].1, &[1, 3]);
        assert_eq!(r.total_retracted(), 3);
    }

    #[test]
    fn new_rejects_empty_and_duplicates() {
        assert!(Retraction::new(vec![]).is_err());
        assert!(Retraction::new(vec![(0, vec![])]).is_err());
        assert!(Retraction::new(vec![(0, vec![1, 1])]).is_err());
        assert!(Retraction::new(vec![(0, vec![1]), (0, vec![2])]).is_err());
    }

    #[test]
    fn tombstone_map_merges_sorted() {
        let mut t = TombstoneMap::new();
        assert!(t.is_empty());
        t.apply(&Retraction::new(vec![(4, vec![5])]).unwrap());
        t.apply(&Retraction::new(vec![(4, vec![1, 9]), (8, vec![0])]).unwrap());
        assert_eq!(t.cluster(4).unwrap(), &[1, 5, 9]);
        assert_eq!(t.dead_in(4), 3);
        assert_eq!(t.dead_in(8), 1);
        assert_eq!(t.dead_in(99), 0);
        assert_eq!(t.dead_total(), 4);
        t.clear();
        assert!(t.is_empty());
        assert!(t.cluster(4).is_none());
    }

    #[test]
    fn live_to_raw_mapping_skips_tombstones() {
        // No tombstones → identity.
        for live in 0..10 {
            assert_eq!(map_live_offset(&[], live), live);
        }
        // Raw size 6, dead {0, 2, 3}: live view is raws [1, 4, 5].
        let dead = [0, 2, 3];
        assert_eq!(map_live_offset(&dead, 0), 1);
        assert_eq!(map_live_offset(&dead, 1), 4);
        assert_eq!(map_live_offset(&dead, 2), 5);
        // The map over all live offsets is a bijection onto raw survivors.
        let dead = [1, 3, 6, 7];
        let raws: Vec<u32> = (0..6).map(|l| map_live_offset(&dead, l)).collect();
        assert_eq!(raws, vec![0, 2, 4, 5, 8, 9]);
    }

    #[test]
    fn event_accounting() {
        let batch = UpdateBatch::from_sizes(vec![2, 3]).unwrap();
        let r = Retraction::new(vec![(0, vec![0, 1])]).unwrap();
        assert_eq!(KgEvent::Insert(batch.clone()).net_triples(), 5);
        assert_eq!(KgEvent::Retract(r.clone()).net_triples(), -2);
        let rev = KgEvent::Revise(r, batch);
        assert_eq!(rev.net_triples(), 3);
        assert_eq!(rev.inserted_triples(), 5);
    }
}

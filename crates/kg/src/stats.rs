//! Dataset characterization (the numbers behind the paper's Table 3).

use crate::implicit::ClusterPopulation;
use kg_stats::Histogram;

/// Summary statistics of a cluster population.
#[derive(Debug, Clone)]
pub struct KgStatistics {
    /// Number of entity clusters `N`.
    pub num_entities: usize,
    /// Number of triples `M`.
    pub num_triples: u64,
    /// Average cluster size `M/N`.
    pub avg_cluster_size: f64,
    /// Largest cluster size.
    pub max_cluster_size: u64,
    /// Cluster-size histogram (unit bins up to 1024, then overflow).
    pub size_histogram: Histogram,
}

impl KgStatistics {
    /// Characterize any cluster population.
    pub fn of<P: ClusterPopulation + ?Sized>(pop: &P) -> Self {
        let n = pop.num_clusters();
        let mut hist = Histogram::new(1024);
        for i in 0..n {
            hist.record(pop.cluster_size(i) as u64);
        }
        KgStatistics {
            num_entities: n,
            num_triples: pop.total_triples(),
            avg_cluster_size: pop.avg_cluster_size(),
            max_cluster_size: hist.max().unwrap_or(0),
            size_histogram: hist,
        }
    }

    /// Fraction of clusters with size strictly below `s` (the paper notes
    /// >98% of NELL clusters are below size 5, §7.2.2).
    pub fn fraction_smaller_than(&self, s: u64) -> f64 {
        self.size_histogram.fraction_below(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implicit::ImplicitKg;

    #[test]
    fn characterizes_small_population() {
        let kg = ImplicitKg::new(vec![1, 1, 1, 1, 10]).unwrap();
        let st = KgStatistics::of(&kg);
        assert_eq!(st.num_entities, 5);
        assert_eq!(st.num_triples, 14);
        assert!((st.avg_cluster_size - 2.8).abs() < 1e-12);
        assert_eq!(st.max_cluster_size, 10);
        assert!((st.fraction_smaller_than(5) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_population() {
        let kg = ImplicitKg::new(vec![]).unwrap();
        let st = KgStatistics::of(&kg);
        assert_eq!(st.num_entities, 0);
        assert_eq!(st.max_cluster_size, 0);
    }
}

//! A minimal open-addressed set of `u64` indices, hashed with SplitMix64.
//!
//! `std`'s `HashSet` pays SipHash (a keyed, DoS-resistant hash) on every
//! probe — measurable when a sampler inserts one index per drawn triple,
//! millions of times per experiment. Sampling indices are not
//! attacker-controlled, so [`IndexSet`] trades that robustness for a
//! two-multiply avalanche hash and linear probing over a power-of-two
//! table at ≤ 7/8 load.
//!
//! Supports exactly what the incremental samplers need: `insert`,
//! `contains`, `len` — no deletion, no iteration order guarantees.

/// Open-addressed, insert-only set of `u64` values below `u64::MAX`
/// (`u64::MAX` is reserved as the empty-slot sentinel).
#[derive(Debug, Clone, Default)]
pub struct IndexSet {
    /// Power-of-two slot array; `EMPTY` marks free slots.
    slots: Vec<u64>,
    len: usize,
}

const EMPTY: u64 = u64::MAX;

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl IndexSet {
    /// New empty set (no allocation until the first insert).
    pub fn new() -> Self {
        IndexSet::default()
    }

    /// Grow the table (if needed) so `additional` more inserts proceed
    /// without rehashing.
    pub fn reserve(&mut self, additional: usize) {
        let needed = self.len + additional;
        // Stay under 7/8 load after `additional` inserts.
        let mut cap = self.slots.len().max(64);
        while needed * 8 >= cap * 7 {
            cap *= 2;
        }
        if cap > self.slots.len() {
            self.grow_to(cap);
        }
    }

    /// Number of values stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `v` is present.
    #[inline]
    pub fn contains(&self, v: u64) -> bool {
        if self.slots.is_empty() {
            return false;
        }
        debug_assert!(v != EMPTY);
        let mask = self.slots.len() - 1;
        let mut i = splitmix64(v) as usize & mask;
        loop {
            let s = self.slots[i];
            if s == v {
                return true;
            }
            if s == EMPTY {
                return false;
            }
            i = (i + 1) & mask;
        }
    }

    /// Insert `v`; returns `true` if it was not present before.
    #[inline]
    pub fn insert(&mut self, v: u64) -> bool {
        debug_assert!(v != EMPTY, "u64::MAX is the empty sentinel");
        if self.len * 8 >= self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut i = splitmix64(v) as usize & mask;
        loop {
            let s = self.slots[i];
            if s == v {
                return false;
            }
            if s == EMPTY {
                self.slots[i] = v;
                self.len += 1;
                return true;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        self.grow_to((self.slots.len() * 2).max(64));
    }

    fn grow_to(&mut self, new_cap: usize) {
        debug_assert!(new_cap.is_power_of_two());
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; new_cap]);
        let mask = new_cap - 1;
        for v in old {
            if v == EMPTY {
                continue;
            }
            let mut i = splitmix64(v) as usize & mask;
            while self.slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn insert_contains_len() {
        let mut s = IndexSet::new();
        assert!(s.is_empty());
        assert!(!s.contains(3));
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn agrees_with_std_hashset_under_growth() {
        let mut fast = IndexSet::new();
        let mut std_set = HashSet::new();
        // Deterministic pseudo-random stream with repeats.
        let mut x = 12345u64;
        for _ in 0..10_000 {
            x = splitmix64(x);
            let v = x % 4096;
            assert_eq!(fast.insert(v), std_set.insert(v), "value {v}");
        }
        assert_eq!(fast.len(), std_set.len());
        for v in 0..4096 {
            assert_eq!(fast.contains(v), std_set.contains(&v), "value {v}");
        }
    }

    #[test]
    fn dense_fill_stays_correct() {
        let mut s = IndexSet::new();
        for v in 0..1000u64 {
            assert!(s.insert(v));
        }
        assert_eq!(s.len(), 1000);
        for v in 0..1000u64 {
            assert!(s.contains(v));
        }
        assert!(!s.contains(1000));
    }
}

//! Hand-rolled versioned binary codec for monitor-state checkpoints.
//!
//! The serving layer (`kg-serve`) needs evaluator state to survive process
//! restarts **bitwise**: a monitor checkpointed mid-stream and restored in a
//! fresh process must produce byte-identical estimates to the uninterrupted
//! run. No external crates are available (no serde), so this module is a
//! minimal, explicit wire format:
//!
//! * **Record header** — 4-byte ASCII magic + little-endian `u16` version.
//!   Each snapshottable type owns its magic (`KGRM` moments, `KGRV`
//!   reservoir, `KGPP` PPS, `KGMS` monitor state, `KGSN` session) and bumps
//!   its version independently. Decoders accept exactly the versions they
//!   know; anything else is [`CodecError::UnsupportedVersion`], never a
//!   guess.
//! * **Scalars** — fixed-width little-endian. Floats travel as their exact
//!   IEEE-754 `u64` bit patterns ([`f64::to_bits`]), so restore is bitwise
//!   even for values like `-0.0` or the `f64::INFINITY` skip sentinel that a
//!   round-trip through decimal text would disturb.
//! * **Sequences** — `u64` length prefix followed by the elements. Decoders
//!   bound every claimed length by the bytes actually remaining before
//!   allocating, so truncated or hostile payloads fail with a typed error
//!   instead of aborting on an absurd `Vec::with_capacity`.
//!
//! Corrupt input must **never panic**: every decode path returns
//! [`CodecError`]. The snapshot side is infallible (state in memory is
//! always encodable).

use std::fmt;

/// Typed decode failure. Snapshot never fails; restore fails only with one
/// of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the decoder read what the format requires.
    UnexpectedEof {
        /// What the decoder was trying to read.
        what: &'static str,
    },
    /// The 4-byte magic did not match the expected record type.
    BadMagic {
        /// Magic the decoder expected.
        expected: [u8; 4],
        /// Magic actually present.
        found: [u8; 4],
    },
    /// The record's version is not one this build knows how to decode.
    UnsupportedVersion {
        /// Record magic (identifies the type).
        magic: [u8; 4],
        /// Version found in the header.
        found: u16,
        /// Newest version this build supports.
        supported: u16,
    },
    /// Bytes remained after the decoder consumed a complete record.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// A length prefix claims more elements than the remaining bytes could
    /// possibly hold.
    LengthOverflow {
        /// What sequence carried the bad length.
        what: &'static str,
        /// Claimed element count.
        claimed: u64,
    },
    /// The payload decoded structurally but violates a semantic invariant
    /// of the target type (e.g. a NaN reservoir key, a decreasing prefix).
    Invalid {
        /// Which invariant failed.
        what: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { what } => {
                write!(f, "unexpected end of input while reading {what}")
            }
            CodecError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            CodecError::UnsupportedVersion {
                magic,
                found,
                supported,
            } => write!(
                f,
                "unsupported {} version {found} (this build supports <= {supported})",
                String::from_utf8_lossy(magic)
            ),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after complete record")
            }
            CodecError::LengthOverflow { what, claimed } => {
                write!(f, "length prefix for {what} claims {claimed} elements, more than the payload holds")
            }
            CodecError::Invalid { what } => write!(f, "invalid payload: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only byte sink with the primitive writers of the wire format.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encoder that starts with a `magic` + `version` record header.
    pub fn with_header(magic: [u8; 4], version: u16) -> Self {
        let mut e = Self::new();
        e.put_header(magic, version);
        e
    }

    /// Write a record header (4-byte magic + LE u16 version).
    pub fn put_header(&mut self, magic: [u8; 4], version: u16) {
        self.buf.extend_from_slice(&magic);
        self.put_u16(version);
    }

    /// Write one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a usize as a u64 (the format is 64-bit regardless of host).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Write an f64 as its exact IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Write a length-prefixed u64 slice.
    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_u64(v);
        }
    }

    /// Write a length-prefixed u32 slice.
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_u32(v);
        }
    }

    /// Write a length-prefixed usize slice (as u64s).
    pub fn put_usize_slice(&mut self, vs: &[usize]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_usize(v);
        }
    }

    /// Write length-prefixed raw bytes.
    pub fn put_bytes(&mut self, bs: &[u8]) {
        self.put_usize(bs.len());
        self.buf.extend_from_slice(bs);
    }

    /// Consume the encoder, returning the snapshot bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Cursor over snapshot bytes with the primitive readers of the wire
/// format. Every reader returns `Result`; nothing panics on bad input.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read and check a record header; returns the version for the caller
    /// to dispatch on.
    pub fn expect_header(&mut self, magic: [u8; 4]) -> Result<u16, CodecError> {
        let found = self.take(4, "record magic")?;
        let found: [u8; 4] = found.try_into().expect("take(4) returned 4 bytes");
        if found != magic {
            return Err(CodecError::BadMagic {
                expected: magic,
                found,
            });
        }
        self.get_u16("record version")
    }

    /// Read one byte.
    pub fn get_u8(&mut self, what: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian u16.
    pub fn get_u16(&mut self, what: &'static str) -> Result<u16, CodecError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes(b.try_into().expect("2 bytes")))
    }

    /// Read a little-endian u32.
    pub fn get_u32(&mut self, what: &'static str) -> Result<u32, CodecError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Read a little-endian u64.
    pub fn get_u64(&mut self, what: &'static str) -> Result<u64, CodecError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read a u64 and narrow it to the host usize.
    pub fn get_usize(&mut self, what: &'static str) -> Result<usize, CodecError> {
        let v = self.get_u64(what)?;
        usize::try_from(v).map_err(|_| CodecError::LengthOverflow { what, claimed: v })
    }

    /// Read an f64 from its exact bit pattern.
    pub fn get_f64(&mut self, what: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64(what)?))
    }

    /// Read a sequence length prefix, bounding it by the bytes remaining
    /// (`elem_bytes` per element) so hostile lengths cannot drive a huge
    /// allocation.
    pub fn get_len(&mut self, elem_bytes: usize, what: &'static str) -> Result<usize, CodecError> {
        let claimed = self.get_u64(what)?;
        let max = match self.remaining().checked_div(elem_bytes) {
            Some(n) => n as u64,
            None => u64::MAX,
        };
        if claimed > max {
            return Err(CodecError::LengthOverflow { what, claimed });
        }
        Ok(claimed as usize)
    }

    /// Read a length-prefixed u64 vector.
    pub fn get_u64_vec(&mut self, what: &'static str) -> Result<Vec<u64>, CodecError> {
        let n = self.get_len(8, what)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.get_u64(what)?);
        }
        Ok(v)
    }

    /// Read a length-prefixed u32 vector.
    pub fn get_u32_vec(&mut self, what: &'static str) -> Result<Vec<u32>, CodecError> {
        let n = self.get_len(4, what)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.get_u32(what)?);
        }
        Ok(v)
    }

    /// Read a length-prefixed usize vector.
    pub fn get_usize_vec(&mut self, what: &'static str) -> Result<Vec<usize>, CodecError> {
        let n = self.get_len(8, what)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.get_usize(what)?);
        }
        Ok(v)
    }

    /// Read length-prefixed raw bytes.
    pub fn get_bytes(&mut self, what: &'static str) -> Result<&'a [u8], CodecError> {
        let n = self.get_len(1, what)?;
        self.take(n, what)
    }

    /// Assert the record consumed every byte; trailing garbage is an error
    /// so concatenation bugs surface immediately.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::TrailingBytes {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip_is_exact() {
        let mut e = Encoder::with_header(*b"KGTT", 3);
        e.put_u8(0xAB);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX);
        e.put_f64(-0.0);
        e.put_f64(f64::INFINITY);
        e.put_f64(0.1 + 0.2); // not representable exactly in decimal
        let bytes = e.finish();

        let mut d = Decoder::new(&bytes);
        assert_eq!(d.expect_header(*b"KGTT").unwrap(), 3);
        assert_eq!(d.get_u8("a").unwrap(), 0xAB);
        assert_eq!(d.get_u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.get_u64("c").unwrap(), u64::MAX);
        assert_eq!(d.get_f64("d").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.get_f64("e").unwrap(), f64::INFINITY);
        assert_eq!(d.get_f64("f").unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        d.finish().unwrap();
    }

    #[test]
    fn slice_round_trip() {
        let mut e = Encoder::new();
        e.put_u64_slice(&[0, 1, u64::MAX]);
        e.put_u32_slice(&[7; 4]);
        e.put_bytes(b"payload");
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_u64_vec("xs").unwrap(), vec![0, 1, u64::MAX]);
        assert_eq!(d.get_u32_vec("ys").unwrap(), vec![7; 4]);
        assert_eq!(d.get_bytes("zs").unwrap(), b"payload");
        d.finish().unwrap();
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let bytes = Encoder::with_header(*b"KGAA", 1).finish();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(
            d.expect_header(*b"KGBB"),
            Err(CodecError::BadMagic { .. })
        ));
    }

    #[test]
    fn truncation_is_eof_not_panic() {
        let mut e = Encoder::new();
        e.put_u64(42);
        let bytes = e.finish();
        for cut in 0..bytes.len() {
            let mut d = Decoder::new(&bytes[..cut]);
            assert!(matches!(
                d.get_u64("x"),
                Err(CodecError::UnexpectedEof { .. })
            ));
        }
    }

    #[test]
    fn hostile_length_prefix_is_bounded() {
        // Claims u64::MAX elements with 0 bytes of payload behind it.
        let mut e = Encoder::new();
        e.put_u64(u64::MAX);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(
            d.get_u64_vec("xs"),
            Err(CodecError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = Encoder::new();
        e.put_u8(1);
        e.put_u8(2);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        d.get_u8("x").unwrap();
        assert_eq!(d.finish(), Err(CodecError::TrailingBytes { remaining: 1 }));
    }

    #[test]
    fn errors_display_without_panicking() {
        let errors: Vec<CodecError> = vec![
            CodecError::UnexpectedEof { what: "x" },
            CodecError::BadMagic {
                expected: *b"KGRM",
                found: [0xFF, 0x00, 0x41, 0x42],
            },
            CodecError::UnsupportedVersion {
                magic: *b"KGRV",
                found: 9,
                supported: 1,
            },
            CodecError::TrailingBytes { remaining: 3 },
            CodecError::LengthOverflow {
                what: "xs",
                claimed: u64::MAX,
            },
            CodecError::Invalid { what: "nan key" },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}

//! Point estimates, standard errors, margins of error, and confidence
//! intervals.
//!
//! The paper's quality-control loop (Fig. 2, step 4) stops as soon as the
//! margin of error — the half-width of the `1−α` Normal-approximation CI
//! (Eq. 1) — drops below the user threshold ε. [`PointEstimate`] is the value
//! every estimator in `kg-sampling` produces, carrying its own estimated
//! variance so MoE/CI can be derived uniformly.

use crate::error::StatsError;
use crate::normal::z_critical;

/// A two-sided confidence interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level `1 − α` (e.g. 0.95).
    pub level: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval (the margin of error).
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// Whether `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo && value <= self.hi
    }

    /// Intersect the interval with `[0, 1]`, the valid range for an accuracy.
    ///
    /// The paper reports *empirical* intervals capped at 100% for the highly
    /// accurate YAGO (Table 6 footnote); this is the analytic analogue.
    pub fn clamped_to_unit(&self) -> ConfidenceInterval {
        ConfidenceInterval {
            lo: self.lo.max(0.0),
            hi: self.hi.min(1.0),
            level: self.level,
        }
    }
}

/// A point estimate `μ̂` together with the estimated variance of the
/// estimator, `Var(μ̂)` (i.e. squared standard error), and the number of
/// independent sampling units it was computed from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointEstimate {
    /// The estimate `μ̂`.
    pub mean: f64,
    /// Estimated variance of the estimator (squared standard error).
    pub var_of_mean: f64,
    /// Number of independent sampling units (triples for SRS, clusters for
    /// cluster sampling) behind the estimate.
    pub units: usize,
}

impl PointEstimate {
    /// Create a new estimate. `var_of_mean` must be finite and non-negative.
    pub fn new(mean: f64, var_of_mean: f64, units: usize) -> Result<Self, StatsError> {
        if !var_of_mean.is_finite() || var_of_mean < 0.0 {
            return Err(StatsError::invalid(
                "var_of_mean",
                ">= 0 and finite",
                var_of_mean,
            ));
        }
        Ok(PointEstimate {
            mean,
            var_of_mean,
            units,
        })
    }

    /// An estimate carrying no information: mean 0, infinite-width interval
    /// semantics are emulated by `MoE = 1` (the maximum meaningful MoE for an
    /// accuracy in `[0, 1]`), matching Algorithm 2's `MoE ← 1` initialization.
    pub fn uninformative() -> Self {
        PointEstimate {
            mean: 0.0,
            // MoE = z * sqrt(v) == 1 for alpha=0.05 requires v = (1/z)^2;
            // using v = 1.0 makes MoE > 1 for every common alpha, which is
            // what "no information yet" should mean.
            var_of_mean: 1.0,
            units: 0,
        }
    }

    /// Standard error `sqrt(Var(μ̂))`.
    pub fn std_error(&self) -> f64 {
        self.var_of_mean.sqrt()
    }

    /// Margin of error at significance level `alpha`: `z_{α/2} · SE`.
    pub fn moe(&self, alpha: f64) -> Result<f64, StatsError> {
        Ok(z_critical(alpha)? * self.std_error())
    }

    /// Two-sided `1−α` confidence interval (Normal approximation, Eq. 1).
    pub fn ci(&self, alpha: f64) -> Result<ConfidenceInterval, StatsError> {
        let moe = self.moe(alpha)?;
        Ok(ConfidenceInterval {
            lo: self.mean - moe,
            hi: self.mean + moe,
            level: 1.0 - alpha,
        })
    }

    /// Combine stratum estimates into a stratified estimate (paper Eq. 13):
    /// `μ̂ = Σ_h W_h μ̂_h`, `Var = Σ_h W_h² Var(μ̂_h)`.
    ///
    /// `parts` yields `(weight, estimate)` pairs; weights must be
    /// non-negative and sum to ~1.
    pub fn stratified<I>(parts: I) -> Result<Self, StatsError>
    where
        I: IntoIterator<Item = (f64, PointEstimate)>,
    {
        let mut mean = 0.0;
        let mut var = 0.0;
        let mut units = 0usize;
        let mut wsum = 0.0;
        let mut any = false;
        for (w, est) in parts {
            if w < 0.0 || !w.is_finite() {
                return Err(StatsError::invalid("weight", ">= 0 and finite", w));
            }
            mean += w * est.mean;
            var += w * w * est.var_of_mean;
            units += est.units;
            wsum += w;
            any = true;
        }
        if !any {
            return Err(StatsError::EmptyInput("stratified estimate parts"));
        }
        if (wsum - 1.0).abs() > 1e-6 {
            return Err(StatsError::invalid("sum of weights", "== 1", wsum));
        }
        PointEstimate::new(mean, var, units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moe_matches_hand_computation() {
        // SRS with p̂=0.9, n=400: SE = sqrt(0.9*0.1/400) = 0.015.
        let est = PointEstimate::new(0.9, 0.09 / 400.0, 400).unwrap();
        let moe = est.moe(0.05).unwrap();
        assert!((moe - 1.959964 * 0.015).abs() < 1e-6);
    }

    #[test]
    fn ci_is_symmetric_and_contains_mean() {
        let est = PointEstimate::new(0.5, 0.001, 100).unwrap();
        let ci = est.ci(0.05).unwrap();
        assert!(ci.contains(0.5));
        assert!((ci.hi - 0.5 - (0.5 - ci.lo)).abs() < 1e-12);
        assert!((ci.level - 0.95).abs() < 1e-12);
        assert!((ci.half_width() - est.moe(0.05).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn clamped_interval_respects_unit_range() {
        let est = PointEstimate::new(0.99, 0.01, 10).unwrap();
        let ci = est.ci(0.05).unwrap().clamped_to_unit();
        assert!(ci.hi <= 1.0);
        assert!(ci.lo >= 0.0);
    }

    #[test]
    fn uninformative_estimate_has_huge_moe() {
        let est = PointEstimate::uninformative();
        assert!(est.moe(0.05).unwrap() > 1.0);
        assert_eq!(est.units, 0);
    }

    #[test]
    fn stratified_combination_matches_eq13() {
        let a = PointEstimate::new(0.9, 0.0004, 50).unwrap();
        let b = PointEstimate::new(0.6, 0.0025, 30).unwrap();
        let s = PointEstimate::stratified([(0.75, a), (0.25, b)]).unwrap();
        assert!((s.mean - (0.75 * 0.9 + 0.25 * 0.6)).abs() < 1e-12);
        assert!((s.var_of_mean - (0.5625 * 0.0004 + 0.0625 * 0.0025)).abs() < 1e-12);
        assert_eq!(s.units, 80);
    }

    #[test]
    fn stratified_rejects_bad_weights() {
        let a = PointEstimate::new(0.9, 0.0004, 50).unwrap();
        assert!(PointEstimate::stratified([(0.5, a)]).is_err());
        assert!(PointEstimate::stratified([(-0.1, a), (1.1, a)]).is_err());
        assert!(PointEstimate::stratified(std::iter::empty()).is_err());
    }

    #[test]
    fn new_rejects_negative_variance() {
        assert!(PointEstimate::new(0.5, -1e-9, 10).is_err());
        assert!(PointEstimate::new(0.5, f64::NAN, 10).is_err());
    }
}

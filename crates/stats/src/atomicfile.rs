//! Atomic file writes (temp + rename).
//!
//! Two layers depend on never observing a torn file: benchmark artifacts
//! (`BENCH_*.json`, read by CI diffs) and session spill files
//! (`kg_eval`'s `CheckpointStore`, read by crash recovery). Both route
//! through [`write_atomic`]: the payload goes to a process-unique temp
//! file in the target's directory and is renamed over the destination —
//! on every platform we run, `rename` within one filesystem replaces the
//! target atomically, so readers observe either the old file or the
//! complete new one, never a prefix.

use std::io;
use std::path::{Path, PathBuf};

/// Write `contents` to `path` atomically (temp file + rename). The temp
/// file lives next to the target (same filesystem, `.<pid>.tmp` suffix)
/// and is cleaned up if the rename fails.
pub fn write_atomic(path: impl AsRef<Path>, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let path = path.as_ref();
    let mut tmp_name = path.as_os_str().to_os_string();
    tmp_name.push(format!(".{}.tmp", std::process::id()));
    let tmp = PathBuf::from(tmp_name);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kg-stats-atomic-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces_without_leaving_temp_files() {
        let dir = scratch_dir("replace");
        let target = dir.join("BENCH_test.json");
        write_atomic(&target, "{\"v\": 1}\n").unwrap();
        assert_eq!(std::fs::read_to_string(&target).unwrap(), "{\"v\": 1}\n");
        // Overwrite an existing file, including binary payloads.
        write_atomic(&target, [0u8, 159, 146, 150]).unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), vec![0u8, 159, 146, 150]);
        // No stray temp files remain.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n != "BENCH_test.json")
            .collect();
        assert!(leftovers.is_empty(), "leftovers: {leftovers:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_rename_cleans_up_and_preserves_the_old_file() {
        let dir = scratch_dir("fail");
        let target = dir.join("BENCH_old.json");
        write_atomic(&target, "old\n").unwrap();
        // A temp file that cannot be created: the parent is a file.
        let bad = target.join("nested.json");
        assert!(write_atomic(&bad, "new\n").is_err());
        assert_eq!(std::fs::read_to_string(&target).unwrap(), "old\n");
        // A rename that fails after the temp write: the target is a
        // directory. The temp file must be cleaned up.
        let blocked = dir.join("occupied");
        std::fs::create_dir(&blocked).unwrap();
        assert!(write_atomic(&blocked, "new\n").is_err());
        let mut entries: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        entries.sort();
        assert_eq!(
            entries,
            vec!["BENCH_old.json".to_string(), "occupied".to_string()]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

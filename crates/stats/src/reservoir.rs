//! Reservoir sampling over (possibly unbounded) streams.
//!
//! * [`Reservoir`] — Vitter's Algorithm R: a uniform fixed-size sample of a
//!   stream.
//! * [`WeightedReservoir`] — Efraimidis & Spirakis' Algorithm A-Res
//!   (*Weighted random sampling with a reservoir*, IPL 2006, the paper's
//!   reference [14]): each item receives the key `k = u^{1/w}` with
//!   `u ~ U(0,1)`; the reservoir keeps the `n` largest keys. This is exactly
//!   the primitive used by the paper's Algorithm 1 (Reservoir-based
//!   Incremental Sample Update on Evolving KG), where an insertion batch
//!   `Δe` gets key `rand(0,1)^{1/|Δe|}` and replaces the reservoir's minimum
//!   key if larger.
//!
//! The expected number of reservoir replacements over a stream growing from
//! `N_i` to `N_j` items is `O(|R| · log(N_j/N_i))` (paper Proposition 3);
//! [`WeightedReservoir::replacements`] lets callers verify and bound the
//! incremental re-annotation cost.

use crate::codec::{CodecError, Decoder, Encoder};
use rand::Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Uniform fixed-size reservoir (Vitter's Algorithm R).
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
}

impl<T> Reservoir<T> {
    /// New reservoir holding at most `capacity` items. Panics on zero
    /// capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Reservoir {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity),
        }
    }

    /// Offer one stream item.
    pub fn offer<R: Rng + ?Sized>(&mut self, rng: &mut R, item: T) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Items currently in the reservoir.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Total items offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Reservoir capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A reservoir slot: an item plus its A-Res key.
#[derive(Debug, Clone)]
pub struct Keyed<T> {
    /// The sampled item.
    pub item: T,
    /// Its A-Res key `u^{1/w}` in `(0, 1)`.
    pub key: f64,
}

/// Min-heap wrapper: order by key ascending so the heap root is the smallest
/// key (the replacement candidate).
#[derive(Debug, Clone)]
struct MinKey<T>(Keyed<T>);

impl<T> PartialEq for MinKey<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key == other.0.key
    }
}
impl<T> Eq for MinKey<T> {}
impl<T> PartialOrd for MinKey<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for MinKey<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap; we want the min key on top.
        // Keys are finite floats in (0,1]; total order via partial_cmp is
        // safe because we never store NaN.
        other
            .0
            .key
            .partial_cmp(&self.0.key)
            .expect("reservoir keys are never NaN")
    }
}

/// Weighted reservoir (Efraimidis–Spirakis A-Res) of fixed capacity `n`.
///
/// Holding clusters with weight = cluster size, the reservoir is a weighted
/// random sample usable as the first stage of TWCS on an evolving KG.
#[derive(Debug, Clone)]
pub struct WeightedReservoir<T> {
    capacity: usize,
    heap: BinaryHeap<MinKey<T>>,
    replacements: u64,
    offered: u64,
}

impl<T> WeightedReservoir<T> {
    /// New weighted reservoir with the given capacity. Panics on zero
    /// capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        WeightedReservoir {
            capacity,
            heap: BinaryHeap::with_capacity(capacity + 1),
            replacements: 0,
            offered: 0,
        }
    }

    /// Offer an item with positive weight. Returns the evicted item if the
    /// offer displaced an existing reservoir member, `Some(_)` also meaning
    /// "the new item was accepted by replacement"; `None` means either the
    /// reservoir still had room (item accepted) or the item was rejected.
    ///
    /// Use [`WeightedReservoir::contains_check`]-style logic via the return
    /// of [`Self::last_accepted`] when callers need accept/reject detail;
    /// most callers only need the eviction to retire its annotations.
    pub fn offer<R: Rng + ?Sized>(&mut self, rng: &mut R, item: T, weight: f64) -> OfferOutcome<T> {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "reservoir weights must be positive and finite (got {weight})"
        );
        self.offered += 1;
        // u ∈ (0,1): rand's gen::<f64>() yields [0,1); clamp zero away so
        // key is never exactly 0 (which would always lose) nor NaN. A
        // clamp, not a redraw loop: a degenerate RngCore returning zero
        // forever would hang a loop, while the clamp yields the smallest
        // positive key — the correct limit for a zero draw.
        let u = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let key = u.powf(1.0 / weight);
        if self.heap.len() < self.capacity {
            self.heap.push(MinKey(Keyed { item, key }));
            return OfferOutcome::Inserted;
        }
        let min = self
            .heap
            .peek()
            .expect("non-empty reservoir at capacity")
            .0
            .key;
        if key > min {
            let evicted = self.heap.pop().expect("peeked above").0;
            self.heap.push(MinKey(Keyed { item, key }));
            self.replacements += 1;
            OfferOutcome::Replaced(evicted)
        } else {
            OfferOutcome::Rejected
        }
    }

    /// Current smallest key (the next replacement threshold), if full.
    pub fn min_key(&self) -> Option<f64> {
        self.heap.peek().map(|m| m.0.key)
    }

    /// Number of items currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the reservoir holds no items.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether the reservoir reached capacity.
    pub fn is_full(&self) -> bool {
        self.heap.len() == self.capacity
    }

    /// Reservoir capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of replacement events since creation (Proposition 3 bound).
    pub fn replacements(&self) -> u64 {
        self.replacements
    }

    /// Total items offered.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Iterate over current members (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Keyed<T>> {
        self.heap.iter().map(|m| &m.0)
    }

    /// Drain the reservoir into a vector of keyed items (arbitrary order).
    pub fn into_items(self) -> Vec<Keyed<T>> {
        self.heap.into_iter().map(|m| m.0).collect()
    }

    /// Remove every member failing `keep`, returning the removed keyed
    /// items (arbitrary order). Used when stream items are *retracted*:
    /// a deleted cluster can no longer represent the population.
    ///
    /// Survivors keep their A-Res keys — conditional on surviving, each
    /// key is still a valid `u^(1/w)` variate, so the reservoir remains a
    /// weighted sample of the retained stream and future replacement
    /// behavior is untouched. The freed slots refill from subsequent
    /// offers exactly like the initial fill phase.
    pub fn retain(&mut self, mut keep: impl FnMut(&T) -> bool) -> Vec<Keyed<T>> {
        let members = std::mem::take(&mut self.heap).into_vec();
        let mut removed = Vec::new();
        let mut kept = Vec::with_capacity(members.len());
        for m in members {
            if keep(&m.0.item) {
                kept.push(m);
            } else {
                removed.push(m.0);
            }
        }
        self.heap = BinaryHeap::from(kept);
        removed
    }

    /// Replace the minimum-key member with `(item, key)` unconditionally
    /// (A-ExpJ already conditioned the key to beat the threshold),
    /// returning the evicted member. Panics if the reservoir is not full.
    fn replace_min(&mut self, item: T, key: f64) -> Keyed<T> {
        assert!(self.is_full(), "replace_min requires a full reservoir");
        let evicted = self.heap.pop().expect("full reservoir").0;
        self.heap.push(MinKey(Keyed { item, key }));
        self.replacements += 1;
        self.offered += 1;
        evicted
    }
}

/// Weighted reservoir with **exponential jumps** (Efraimidis–Spirakis
/// Algorithm A-ExpJ): distributionally identical to [`WeightedReservoir`]
/// (A-Res) but skips over stream items without drawing a random number for
/// each — O(k·log(n/k)) RNG calls instead of O(n). For the 14.5M-cluster
/// MOVIE-FULL stream with a 60-slot reservoir that is ~900 variates
/// instead of 14.5M.
///
/// Skipped items never materialize (that is the whole point), but items
/// *evicted* from the reservoir do — [`WeightedReservoirExpJ::offer`]
/// reports the same [`OfferOutcome`] as A-Res, so the §6 incremental
/// evaluator can retire evicted annotations while paying O(1) per skipped
/// stream item instead of a `powf` + RNG draw for each.
///
/// [`WeightedReservoirExpJ::offer_batch`] goes one step further for
/// integer-weight streams: it binary-searches each jump's landing index
/// over a cumulative-weight slice, erasing even the O(1)-per-item
/// subtract-and-compare while staying bitwise stream-identical to the
/// per-item loop.
#[derive(Debug, Clone)]
pub struct WeightedReservoirExpJ<T> {
    inner: WeightedReservoir<T>,
    /// Remaining weight to skip before the next insertion; `None` until the
    /// reservoir fills.
    skip: Option<f64>,
}

/// Below 2^53, subtracting an integer weight from an f64 skip is exact
/// (the result is an integer multiple of the minuend's ulp ≤ 1), so the
/// batched binary search over integer prefix sums reproduces the per-item
/// subtraction chain bit-for-bit. At or above it, fall back per-item.
const EXACT_SKIP_LIMIT: f64 = (1u64 << 53) as f64;

/// Batch prefix spans must also stay exactly representable.
const EXACT_WEIGHT_LIMIT: u64 = 1 << 53;

impl<T> WeightedReservoirExpJ<T> {
    /// New A-ExpJ reservoir of the given capacity.
    pub fn new(capacity: usize) -> Self {
        WeightedReservoirExpJ {
            inner: WeightedReservoir::new(capacity),
            skip: None,
        }
    }

    fn draw_skip<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let t_w = self.inner.min_key().expect("full reservoir");
        let r = rng.gen::<f64>();
        // X_w = ln(r) / ln(T_w): total incoming weight to skip. The ln(0)
        // edges are guarded instead of redrawn: `gen::<f64>()` covers
        // [0, 1), so `r == 0.0` is one draw in 2^53 — the old redraw loop
        // would hang forever on a degenerate RngCore that keeps returning
        // zero — and it is exactly the "skip the rest of the stream"
        // limit. `T_w == 1.0` (a conditioned key that rounded up to 1.0)
        // means no key in (0, 1] can ever beat the threshold, where
        // `ln(r)/ln(1.0)` would produce a wrong-signed infinity that
        // *accepts* every item. Both edges map to an infinite skip.
        self.skip = Some(if r > 0.0 && t_w < 1.0 {
            r.ln() / t_w.ln()
        } else {
            f64::INFINITY
        });
    }

    /// Offer one item with positive weight. The outcome mirrors A-Res:
    /// skipped items report [`OfferOutcome::Rejected`], jump-crossing items
    /// report the member they displaced.
    pub fn offer<R: Rng + ?Sized>(&mut self, rng: &mut R, item: T, weight: f64) -> OfferOutcome<T> {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "reservoir weights must be positive and finite (got {weight})"
        );
        if !self.inner.is_full() {
            // Fill phase behaves exactly like A-Res.
            let outcome = self.inner.offer(rng, item, weight);
            if self.inner.is_full() {
                self.draw_skip(rng);
            }
            return outcome;
        }
        let skip = self.skip.as_mut().expect("set when reservoir filled");
        if *skip > weight {
            *skip -= weight;
            return OfferOutcome::Rejected;
        }
        let evicted = self.accept_jump(rng, item, weight);
        OfferOutcome::Replaced(evicted)
    }

    /// The jump-crossing insertion shared by [`Self::offer`] and
    /// [`Self::offer_batch`]: insert `item` with a key conditioned to beat
    /// the current threshold, `k ~ U(T_w^w, 1)^(1/w)`, then draw the next
    /// skip. Keeping this in one place is what makes the two offer paths
    /// bitwise identical by construction rather than by parallel
    /// maintenance.
    fn accept_jump<R: Rng + ?Sized>(&mut self, rng: &mut R, item: T, weight: f64) -> Keyed<T> {
        let t_w = self.inner.min_key().expect("full reservoir");
        let lo = t_w.powf(weight);
        let u = lo + rng.gen::<f64>() * (1.0 - lo);
        let key = u.powf(1.0 / weight);
        let evicted = self.inner.replace_min(item, key);
        self.draw_skip(rng);
        evicted
    }

    /// Offer a whole batch of integer-weight items, **bitwise
    /// stream-identical** to calling [`Self::offer`] once per item.
    ///
    /// `prefix` is the batch's cumulative-weight slice: item `i` has weight
    /// `prefix[i + 1] - prefix[i]` (so `prefix.len()` is the batch size
    /// plus one, and `prefix[0]` is an arbitrary base — batch prefixes
    /// start at 0, shared population prefixes at any offset). The weights
    /// must be positive, i.e. `prefix` strictly increasing, exactly as the
    /// per-item path asserts.
    ///
    /// Instead of one call per stream item, the skip phase binary-searches
    /// each exponential jump's landing index over `prefix` — O(a·log n)
    /// for `a` acceptances over `n` items, rather than O(n) subtract-and-
    /// compare iterations. Because the weights are integers and the prefix
    /// sums stay below 2^53, the per-item loop's sequential `skip -= w`
    /// subtractions are all exact, so the landing comparison
    /// `skip <= prefix[j+1] - prefix[i]` reproduces them bit-for-bit —
    /// same RNG draws, same insertions, same eviction order, same residual
    /// skip. The rare exactness gaps — a skip ≥ 2^53, or a batch whose
    /// total weight reaches 2^53 — automatically fall back to the per-item
    /// loop, keeping the identity unconditional.
    ///
    /// `item(i)` materializes the item at batch index `i` (only called for
    /// accepted items); `on_accept(rng, i, outcome)` fires for each
    /// accepted item in stream order, with the RNG handed back so callers
    /// can interleave their own draws exactly where the per-item loop
    /// would (annotating a freshly inserted cluster, say). Skipped items
    /// report nothing, just as they consume nothing.
    pub fn offer_batch<R, G, F>(
        &mut self,
        rng: &mut R,
        prefix: &[u64],
        mut item: G,
        mut on_accept: F,
    ) where
        R: Rng + ?Sized,
        G: FnMut(usize) -> T,
        F: FnMut(&mut R, usize, OfferOutcome<T>),
    {
        assert!(!prefix.is_empty(), "prefix must hold at least a base entry");
        let n = prefix.len() - 1;
        debug_assert!(
            prefix.windows(2).all(|w| w[0] < w[1]),
            "reservoir weights must be positive and finite (prefix strictly increasing)"
        );
        if prefix[n] - prefix[0] >= EXACT_WEIGHT_LIMIT {
            // A batch this heavy (≥ 2^53 total weight) can make the
            // integer-exactness argument fail for `(p - base) as f64`
            // itself, so the binary-search shortcut is off the table:
            // degrade to the per-item loop for the whole batch — the
            // identity's definition, just without the speedup.
            for i in 0..n {
                let w = (prefix[i + 1] - prefix[i]) as f64;
                match self.offer(rng, item(i), w) {
                    OfferOutcome::Rejected => {}
                    outcome => on_accept(rng, i, outcome),
                }
            }
            return;
        }
        let mut i = 0;
        // Fill phase: each insertion draws a key, so per-item is already
        // optimal (and is what keeps the RNG stream aligned).
        while i < n && !self.inner.is_full() {
            let w = (prefix[i + 1] - prefix[i]) as f64;
            let outcome = self.offer(rng, item(i), w);
            on_accept(rng, i, outcome);
            i += 1;
        }
        while i < n {
            let skip = *self.skip.as_ref().expect("full reservoir has a skip");
            if skip.is_infinite() {
                // ln(0)-edge skip: the per-item loop would subtract every
                // weight from ∞ and reject everything; ∞ - x == ∞, so the
                // residual is already correct.
                return;
            }
            if skip < EXACT_SKIP_LIMIT {
                let base = prefix[i];
                // Landing index: first j with skip <= prefix[j+1] - base,
                // the exact negation of the per-item skip test
                // `skip - (prefix[j] - base) > w_j`.
                let j = i + prefix[i + 1..].partition_point(|&p| ((p - base) as f64) < skip);
                if j == n {
                    // Whole remainder skipped: one exact subtraction equals
                    // the per-item subtraction chain.
                    *self.skip.as_mut().expect("checked above") = skip - (prefix[n] - base) as f64;
                    return;
                }
                let w = (prefix[j + 1] - prefix[j]) as f64;
                // Jump-crossing insertion — the same shared accept path
                // the per-item loop takes.
                let evicted = self.accept_jump(rng, item(j), w);
                on_accept(rng, j, OfferOutcome::Replaced(evicted));
                i = j + 1;
            } else {
                // Pathological finite skip (≥ 2^53): sequential f64
                // subtraction may round, so exactness of the binary-search
                // shortcut is no longer guaranteed — take the per-item
                // step, which is the identity's definition.
                let w = (prefix[i + 1] - prefix[i]) as f64;
                match self.offer(rng, item(i), w) {
                    OfferOutcome::Rejected => {}
                    outcome => on_accept(rng, i, outcome),
                }
                i += 1;
            }
        }
    }

    /// Items currently held, with their keys.
    pub fn iter(&self) -> impl Iterator<Item = &Keyed<T>> {
        self.inner.iter()
    }

    /// Number of items held.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the reservoir holds no items.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Replacement events since creation.
    pub fn replacements(&self) -> u64 {
        self.inner.replacements()
    }

    /// Items that entered the reservoir (fill-phase insertions plus
    /// replacements). Skipped items are *not* counted — they never
    /// materialize, which is the algorithm's whole point — so this equals
    /// the inner A-Res reservoir's accounting, not the stream length.
    pub fn offered(&self) -> u64 {
        self.inner.offered()
    }

    /// Reservoir capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Remove every member failing `keep` (a retraction of stream items),
    /// returning the removed keyed items. See
    /// [`WeightedReservoir::retain`] for why survivors keep their keys.
    ///
    /// Any pending exponential jump is discarded when members are actually
    /// removed: the jump was drawn against a threshold `T_w` that may just
    /// have left the reservoir. With the reservoir below capacity the
    /// offer path re-enters the fill phase, and a fresh jump is drawn from
    /// the new threshold the moment it refills — the same deterministic
    /// sequence a reservoir that had never reached capacity would produce.
    pub fn retain(&mut self, keep: impl FnMut(&T) -> bool) -> Vec<Keyed<T>> {
        let removed = self.inner.retain(keep);
        if !removed.is_empty() {
            self.skip = None;
        }
        removed
    }
}

impl WeightedReservoirExpJ<u32> {
    /// Record magic for standalone snapshots.
    pub const MAGIC: [u8; 4] = *b"KGRV";
    /// Current snapshot format version.
    pub const VERSION: u16 = 1;

    /// Serialize into a standalone `KGRV` v1 record (see [`crate::codec`]).
    ///
    /// Members are written in the heap's internal vec order. Restoring
    /// re-heapifies that vec, and heapify (`sift_down` over an
    /// already-valid heap layout) performs zero swaps — so
    /// snapshot→restore→snapshot is byte-stable and the restored reservoir
    /// replays the exact pop/push order of the original.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::with_header(Self::MAGIC, Self::VERSION);
        self.snapshot_into(&mut e);
        e.finish()
    }

    /// Restore from a standalone `KGRV` record. Typed error on corrupt,
    /// truncated, or unknown-version input — never a panic, even for
    /// hostile payloads (NaN keys would poison the heap's total order and
    /// are rejected up front).
    pub fn restore(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::new(bytes);
        let version = d.expect_header(Self::MAGIC)?;
        if version != Self::VERSION {
            return Err(CodecError::UnsupportedVersion {
                magic: Self::MAGIC,
                found: version,
                supported: Self::VERSION,
            });
        }
        let r = Self::restore_from(&mut d)?;
        d.finish()?;
        Ok(r)
    }

    /// Append the headerless field payload (for embedding in composite
    /// records like `MonitorState`).
    pub fn snapshot_into(&self, e: &mut Encoder) {
        e.put_usize(self.inner.capacity);
        e.put_u64(self.inner.replacements);
        e.put_u64(self.inner.offered);
        e.put_usize(self.inner.heap.len());
        for m in self.inner.heap.iter() {
            e.put_u32(m.0.item);
            e.put_f64(m.0.key);
        }
        match self.skip {
            Some(s) => {
                e.put_u8(1);
                e.put_f64(s);
            }
            None => e.put_u8(0),
        }
    }

    /// Decode the headerless field payload written by
    /// [`Self::snapshot_into`].
    pub fn restore_from(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let capacity = d.get_usize("reservoir capacity")?;
        if capacity == 0 {
            return Err(CodecError::Invalid {
                what: "reservoir capacity must be positive",
            });
        }
        let replacements = d.get_u64("reservoir replacements")?;
        let offered = d.get_u64("reservoir offered")?;
        let len = d.get_len(12, "reservoir members")?;
        if len > capacity {
            return Err(CodecError::Invalid {
                what: "reservoir holds more members than its capacity",
            });
        }
        let mut members = Vec::with_capacity(len);
        for _ in 0..len {
            let item = d.get_u32("reservoir member item")?;
            let key = d.get_f64("reservoir member key")?;
            if !(key > 0.0 && key <= 1.0) {
                return Err(CodecError::Invalid {
                    what: "reservoir key must lie in (0, 1]",
                });
            }
            members.push(MinKey(Keyed { item, key }));
        }
        let skip = match d.get_u8("reservoir skip flag")? {
            0 => None,
            1 => {
                let s = d.get_f64("reservoir skip")?;
                if s.is_nan() || s <= 0.0 {
                    return Err(CodecError::Invalid {
                        what: "reservoir skip must be positive (or +inf)",
                    });
                }
                Some(s)
            }
            _ => {
                return Err(CodecError::Invalid {
                    what: "reservoir skip flag must be 0 or 1",
                })
            }
        };
        if skip.is_some() && len < capacity {
            return Err(CodecError::Invalid {
                what: "pending skip requires a full reservoir",
            });
        }
        // Heapify of an already-valid heap layout performs zero swaps, so
        // a faithful snapshot restores to the identical internal order; a
        // corrupted-but-decodable member list still heapifies into *some*
        // valid heap rather than panicking.
        let heap = BinaryHeap::from(members);
        Ok(WeightedReservoirExpJ {
            inner: WeightedReservoir {
                capacity,
                heap,
                replacements,
                offered,
            },
            skip,
        })
    }
}

/// Result of offering an item to a [`WeightedReservoir`].
#[derive(Debug, Clone)]
pub enum OfferOutcome<T> {
    /// Reservoir had spare capacity; item inserted.
    Inserted,
    /// Item displaced the previous minimum-key member (returned).
    Replaced(Keyed<T>),
    /// Item's key did not beat the minimum; reservoir unchanged.
    Rejected,
}

impl<T> OfferOutcome<T> {
    /// Whether the offered item ended up in the reservoir.
    pub fn accepted(&self) -> bool {
        !matches!(self, OfferOutcome::Rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    #[test]
    fn uniform_reservoir_is_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 20_000;
        let mut counts = [0u32; 10];
        for _ in 0..trials {
            let mut r = Reservoir::new(3);
            for i in 0..10 {
                r.offer(&mut rng, i);
            }
            for &i in r.items() {
                counts[i as usize] += 1;
            }
        }
        for &c in &counts {
            let freq = c as f64 / trials as f64;
            assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
        }
    }

    #[test]
    fn uniform_reservoir_smaller_stream_keeps_all() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut r = Reservoir::new(10);
        for i in 0..4 {
            r.offer(&mut rng, i);
        }
        assert_eq!(r.items().len(), 4);
        assert_eq!(r.seen(), 4);
        assert_eq!(r.capacity(), 10);
    }

    #[test]
    fn weighted_single_slot_inclusion_proportional_to_weight() {
        // With capacity 1 and weights {1, 3}, item 1 should win with
        // probability 3/4 = P(u2^(1/3) > u1).
        let mut rng = StdRng::seed_from_u64(13);
        let trials = 40_000;
        let mut wins = 0u32;
        for _ in 0..trials {
            let mut r = WeightedReservoir::new(1);
            r.offer(&mut rng, 0usize, 1.0);
            r.offer(&mut rng, 1usize, 3.0);
            if r.iter().next().unwrap().item == 1 {
                wins += 1;
            }
        }
        let freq = wins as f64 / trials as f64;
        assert!((freq - 0.75).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn weighted_fills_then_replaces() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut r = WeightedReservoir::new(2);
        assert!(matches!(
            r.offer(&mut rng, 'a', 1.0),
            OfferOutcome::Inserted
        ));
        assert!(matches!(
            r.offer(&mut rng, 'b', 1.0),
            OfferOutcome::Inserted
        ));
        assert!(r.is_full());
        // A huge weight forces a key ~1, nearly always replacing.
        let mut replaced = false;
        for _ in 0..20 {
            if let OfferOutcome::Replaced(_) = r.offer(&mut rng, 'c', 1e12) {
                replaced = true;
                break;
            }
        }
        assert!(replaced);
        assert_eq!(r.len(), 2);
        assert!(r.replacements() >= 1);
    }

    #[test]
    fn min_key_is_really_the_minimum() {
        let mut rng = StdRng::seed_from_u64(15);
        let mut r = WeightedReservoir::new(5);
        for i in 0..50 {
            r.offer(&mut rng, i, 1.0 + (i % 7) as f64);
        }
        let min = r.min_key().unwrap();
        for k in r.iter() {
            assert!(k.key >= min);
        }
    }

    #[test]
    fn replacement_count_grows_logarithmically() {
        // Proposition 3: replacements ≈ |R| * ln(Nj/Ni) after the reservoir
        // is full. Stream 100k equal-weight items into capacity 50:
        // expected replacements ≈ 50 * ln(100000/50) ≈ 380.
        let mut rng = StdRng::seed_from_u64(16);
        let mut r = WeightedReservoir::new(50);
        for i in 0..100_000 {
            r.offer(&mut rng, i, 1.0);
        }
        let expect = 50.0 * (100_000.0_f64 / 50.0).ln();
        let got = r.replacements() as f64;
        assert!(
            (got - expect).abs() < expect * 0.25,
            "replacements {got} vs expected {expect}"
        );
    }

    #[test]
    fn weighted_inclusion_monotone_in_weight() {
        // Items with weight 5 should be included more often than weight 1.
        let mut rng = StdRng::seed_from_u64(17);
        let trials = 5_000;
        let mut heavy = 0u32;
        let mut light = 0u32;
        for _ in 0..trials {
            let mut r = WeightedReservoir::new(10);
            for i in 0..100usize {
                let w = if i < 50 { 5.0 } else { 1.0 };
                r.offer(&mut rng, i, w);
            }
            for k in r.iter() {
                if k.item < 50 {
                    heavy += 1;
                } else {
                    light += 1;
                }
            }
        }
        assert!(
            heavy as f64 > 2.5 * light as f64,
            "heavy {heavy} vs light {light}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_is_rejected() {
        let mut rng = StdRng::seed_from_u64(18);
        let mut r = WeightedReservoir::new(1);
        r.offer(&mut rng, 0, 0.0);
    }

    #[test]
    fn expj_matches_ares_inclusion_probabilities() {
        // Heavy items (weight 5) vs light (weight 1): both algorithms must
        // include heavies at the same rate.
        let inclusion = |expj: bool, trials: u64| -> f64 {
            let mut rng = StdRng::seed_from_u64(31);
            let mut heavy_hits = 0u64;
            for _ in 0..trials {
                let heavies: Vec<usize> = if expj {
                    let mut r = WeightedReservoirExpJ::new(10);
                    for i in 0..200usize {
                        r.offer(&mut rng, i, if i % 4 == 0 { 5.0 } else { 1.0 });
                    }
                    r.iter().map(|k| k.item).filter(|&i| i % 4 == 0).collect()
                } else {
                    let mut r = WeightedReservoir::new(10);
                    for i in 0..200usize {
                        r.offer(&mut rng, i, if i % 4 == 0 { 5.0 } else { 1.0 });
                    }
                    r.iter().map(|k| k.item).filter(|&i| i % 4 == 0).collect()
                };
                heavy_hits += heavies.len() as u64;
            }
            heavy_hits as f64 / trials as f64
        };
        let trials = 3000;
        let a_res = inclusion(false, trials);
        let a_expj = inclusion(true, trials);
        assert!(
            (a_res - a_expj).abs() < 0.25,
            "A-Res {a_res} vs A-ExpJ {a_expj} heavy items per reservoir"
        );
    }

    #[test]
    fn expj_reports_evictions_like_ares() {
        let mut rng = StdRng::seed_from_u64(33);
        let mut r = WeightedReservoirExpJ::new(5);
        let mut members: std::collections::BTreeSet<u32> = (0..5).collect();
        for i in 0..5u32 {
            assert!(matches!(
                r.offer(&mut rng, i, 1.0 + i as f64),
                OfferOutcome::Inserted
            ));
        }
        let mut replaced = 0u64;
        for i in 5..5_000u32 {
            match r.offer(&mut rng, i, 1.0 + (i % 7) as f64) {
                OfferOutcome::Inserted => panic!("reservoir already full"),
                OfferOutcome::Replaced(evicted) => {
                    assert!(members.remove(&evicted.item), "evicted non-member");
                    members.insert(i);
                    replaced += 1;
                }
                OfferOutcome::Rejected => {}
            }
        }
        assert_eq!(replaced, r.replacements());
        assert_eq!(r.capacity(), 5);
        let held: std::collections::BTreeSet<u32> = r.iter().map(|k| k.item).collect();
        assert_eq!(held, members, "outcome bookkeeping tracks membership");
    }

    #[test]
    fn expj_uses_far_fewer_rng_draws_conceptually() {
        // Structural check: after a long equal-weight stream the skip value
        // is positive and the reservoir is full with valid keys.
        let mut rng = StdRng::seed_from_u64(32);
        let mut r = WeightedReservoirExpJ::new(20);
        for i in 0..50_000 {
            r.offer(&mut rng, i, 1.0);
        }
        assert_eq!(r.len(), 20);
        assert!(!r.is_empty());
        assert!(r.replacements() > 0);
        for k in r.iter() {
            assert!(k.key > 0.0 && k.key <= 1.0, "key {}", k.key);
        }
        // Replacement count should match A-Res's O(k·ln(n/k)) expectation.
        let expect = 20.0 * (50_000.0_f64 / 20.0).ln();
        let got = r.replacements() as f64;
        assert!(
            (got - expect).abs() < expect * 0.35,
            "replacements {got} vs expected {expect}"
        );
    }

    use crate::testrng::{word_for, ScriptedRng};

    #[test]
    fn forced_zero_rng_draw_skip_is_guarded_not_hung() {
        // Fill draws get real entropy; the post-fill skip draw gets a hard
        // zero. The old redraw loop would spin forever here; the guard maps
        // it to an infinite skip that rejects the rest of the stream.
        let mut rng = ScriptedRng::new(vec![word_for(0.5), word_for(0.25)]);
        let mut r = WeightedReservoirExpJ::new(2);
        assert!(matches!(
            r.offer(&mut rng, 'a', 3.0),
            OfferOutcome::Inserted
        ));
        assert!(matches!(
            r.offer(&mut rng, 'b', 5.0),
            OfferOutcome::Inserted
        ));
        // Reservoir filled → draw_skip consumed the zero word.
        for i in 0..10_000u32 {
            assert!(matches!(
                r.offer(&mut rng, 'c', 1.0 + (i % 9) as f64),
                OfferOutcome::Rejected
            ));
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.replacements(), 0);
        // The batched path short-circuits the same infinite skip.
        let prefix: Vec<u64> = (0..=100u64).map(|i| i * 3).collect();
        r.offer_batch(&mut rng, &prefix, |_| 'd', |_, _, _| panic!("must reject"));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn offer_batch_matches_per_item_stream() {
        // Long mixed-weight stream split into irregular batches: members,
        // keys, eviction order, counters, and RNG position must all match
        // the per-item loop bit-for-bit.
        let weights: Vec<u32> = (0..5_000u32).map(|i| 1 + (i * 7919) % 97).collect();
        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = StdRng::seed_from_u64(77);
        let mut per_item = WeightedReservoirExpJ::new(25);
        let mut batched = WeightedReservoirExpJ::new(25);
        let mut evictions_a: Vec<(u32, u64)> = Vec::new();
        let mut evictions_b: Vec<(u32, u64)> = Vec::new();
        let mut start = 0usize;
        for batch_len in [1usize, 3, 250, 4, 1200, 100, 3442] {
            let end = (start + batch_len).min(weights.len());
            for (i, &w) in weights[start..end].iter().enumerate() {
                if let OfferOutcome::Replaced(e) =
                    per_item.offer(&mut rng_a, (start + i) as u32, w as f64)
                {
                    evictions_a.push((e.item, e.key.to_bits()));
                }
            }
            let mut prefix = Vec::with_capacity(end - start + 1);
            prefix.push(0u64);
            let mut acc = 0u64;
            for &w in &weights[start..end] {
                acc += w as u64;
                prefix.push(acc);
            }
            batched.offer_batch(
                &mut rng_b,
                &prefix,
                |i| (start + i) as u32,
                |_, _, outcome| {
                    if let OfferOutcome::Replaced(e) = outcome {
                        evictions_b.push((e.item, e.key.to_bits()));
                    }
                },
            );
            start = end;
        }
        assert_eq!(evictions_a, evictions_b, "eviction sequences diverged");
        assert_eq!(per_item.replacements(), batched.replacements());
        assert_eq!(per_item.offered(), batched.offered());
        let members = |r: &WeightedReservoirExpJ<u32>| {
            let mut v: Vec<(u32, u64)> = r.iter().map(|k| (k.item, k.key.to_bits())).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(members(&per_item), members(&batched));
        assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "RNG streams diverged");
    }

    #[test]
    fn offer_batch_heavy_batch_falls_back_to_per_item() {
        // Total batch weight ≥ 2^53: the integer-exactness argument no
        // longer covers the prefix casts, so the whole batch must degrade
        // to the per-item loop — still byte-identical to calling offer
        // once per item, just without the shortcut.
        let weights: [u64; 4] = [1 << 52, 1 << 52, 7, 1 << 40];
        let mut prefix = vec![0u64];
        for &w in &weights {
            prefix.push(prefix.last().unwrap() + w);
        }
        assert!(prefix[4] >= (1 << 53));
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        let mut a = WeightedReservoirExpJ::new(2);
        let mut b = WeightedReservoirExpJ::new(2);
        for (i, &w) in weights.iter().enumerate() {
            a.offer(&mut rng_a, i as u32, w as f64);
        }
        let mut accepted = Vec::new();
        b.offer_batch(
            &mut rng_b,
            &prefix,
            |i| i as u32,
            |_, i, _| accepted.push(i),
        );
        let members = |r: &WeightedReservoirExpJ<u32>| {
            let mut v: Vec<(u32, u64)> = r.iter().map(|k| (k.item, k.key.to_bits())).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(members(&a), members(&b));
        assert_eq!(a.replacements(), b.replacements());
        assert_eq!(a.offered(), b.offered());
        assert!(accepted.len() >= 2, "fill inserts always reported");
        assert_eq!(rng_a.next_u64(), rng_b.next_u64(), "RNG streams diverged");
    }

    #[test]
    fn offer_batch_with_capacity_exceeding_stream_inserts_all() {
        let mut rng = StdRng::seed_from_u64(41);
        let mut r = WeightedReservoirExpJ::new(64);
        let prefix: Vec<u64> = (0..=10u64).map(|i| i * 5).collect();
        let mut accepted = Vec::new();
        r.offer_batch(&mut rng, &prefix, |i| i, |_, i, _| accepted.push(i));
        assert_eq!(accepted, (0..10).collect::<Vec<_>>());
        assert_eq!(r.len(), 10);
        assert_eq!(r.offered(), 10);
    }

    #[test]
    fn retain_removes_members_and_keeps_survivor_keys() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut r = WeightedReservoir::new(6);
        for i in 0..6u32 {
            r.offer(&mut rng, i, 1.0 + i as f64);
        }
        let before: Vec<(u32, u64)> = {
            let mut v: Vec<_> = r.iter().map(|k| (k.item, k.key.to_bits())).collect();
            v.sort_unstable();
            v
        };
        let removed = r.retain(|&i| i % 2 == 0);
        let mut gone: Vec<u32> = removed.iter().map(|k| k.item).collect();
        gone.sort_unstable();
        assert_eq!(gone, vec![1, 3, 5]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_full());
        // Survivors keep their exact keys.
        for k in r.iter() {
            assert!(before.contains(&(k.item, k.key.to_bits())));
        }
        // Freed slots refill like the initial fill phase.
        r.offer(&mut rng, 100, 2.0);
        assert_eq!(r.len(), 4);
        // Retaining everything removes nothing.
        assert!(r.retain(|_| true).is_empty());
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn expj_retain_resets_pending_jump_and_refills() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut r = WeightedReservoirExpJ::new(4);
        for i in 0..50u32 {
            r.offer(&mut rng, i, 1.0 + (i % 7) as f64);
        }
        assert_eq!(r.len(), 4);
        let survivors: Vec<u32> = r.iter().map(|k| k.item).collect();
        let victim = survivors[0];
        let removed = r.retain(|&i| i != victim);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].item, victim);
        assert_eq!(r.len(), 3);
        // Below capacity again: the next offer is a fill-phase insert.
        let outcome = r.offer(&mut rng, 999, 3.0);
        assert!(outcome.accepted());
        assert_eq!(r.len(), 4);
        // Back at capacity the stream keeps flowing (jump re-armed).
        let mut accepted_any = false;
        for i in 1000..4000u32 {
            if r.offer(&mut rng, i, 1.0 + (i % 5) as f64).accepted() {
                accepted_any = true;
            }
        }
        assert!(accepted_any, "re-armed reservoir never accepted again");
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn snapshot_restore_replays_identically() {
        // Checkpoint a reservoir mid-stream; the restored copy must replay
        // the rest of the stream bit-for-bit (members, keys, eviction
        // order, counters) — the serving layer's core invariant.
        let mut rng = StdRng::seed_from_u64(91);
        let mut r = WeightedReservoirExpJ::new(8);
        for i in 0..500u32 {
            r.offer(&mut rng, i, 1.0 + (i % 13) as f64);
        }
        let bytes = r.snapshot();
        let mut restored = WeightedReservoirExpJ::<u32>::restore(&bytes).unwrap();
        assert_eq!(restored.snapshot(), bytes, "round-trip not byte-stable");

        let mut rng_a = StdRng::seed_from_u64(17);
        let mut rng_b = StdRng::seed_from_u64(17);
        let mut ev_a = Vec::new();
        let mut ev_b = Vec::new();
        for i in 500..3000u32 {
            let w = 1.0 + (i % 11) as f64;
            if let OfferOutcome::Replaced(e) = r.offer(&mut rng_a, i, w) {
                ev_a.push((e.item, e.key.to_bits()));
            }
            if let OfferOutcome::Replaced(e) = restored.offer(&mut rng_b, i, w) {
                ev_b.push((e.item, e.key.to_bits()));
            }
        }
        assert_eq!(ev_a, ev_b, "post-restore eviction streams diverged");
        assert_eq!(r.replacements(), restored.replacements());
        let members = |r: &WeightedReservoirExpJ<u32>| {
            r.iter()
                .map(|k| (k.item, k.key.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(members(&r), members(&restored));
    }

    #[test]
    fn snapshot_restore_mid_fill_reservoir() {
        // Below capacity: no skip yet, fill phase must resume.
        let mut rng = StdRng::seed_from_u64(93);
        let mut r = WeightedReservoirExpJ::new(16);
        for i in 0..5u32 {
            r.offer(&mut rng, i, 2.0);
        }
        let bytes = r.snapshot();
        let mut restored = WeightedReservoirExpJ::<u32>::restore(&bytes).unwrap();
        assert_eq!(restored.snapshot(), bytes);
        assert_eq!(restored.len(), 5);
        assert!(restored.offer(&mut rng, 99, 1.0).accepted());
    }

    #[test]
    fn restore_rejects_corrupt_payloads_with_typed_errors() {
        let mut rng = StdRng::seed_from_u64(95);
        let mut r = WeightedReservoirExpJ::new(4);
        for i in 0..40u32 {
            r.offer(&mut rng, i, 1.0 + (i % 3) as f64);
        }
        let bytes = r.snapshot();
        // Every truncation errors, never panics.
        for cut in 0..bytes.len() {
            assert!(WeightedReservoirExpJ::<u32>::restore(&bytes[..cut]).is_err());
        }
        // Wrong version.
        let mut wrong = bytes.clone();
        wrong[4] = 0xFF;
        assert!(matches!(
            WeightedReservoirExpJ::<u32>::restore(&wrong),
            Err(CodecError::UnsupportedVersion { .. })
        ));
        // NaN key would poison the heap order: must be rejected up front.
        // Member records start after capacity+replacements+offered+len
        // (6-byte header + 4×8 bytes); the key is 4 bytes into a record.
        let key_off = 6 + 32 + 4;
        let mut nan = bytes.clone();
        nan[key_off..key_off + 8].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(matches!(
            WeightedReservoirExpJ::<u32>::restore(&nan),
            Err(CodecError::Invalid { .. })
        ));
    }

    #[test]
    fn into_items_returns_all_members() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut r = WeightedReservoir::new(4);
        for i in 0..4 {
            r.offer(&mut rng, i, 2.0);
        }
        let items = r.into_items();
        assert_eq!(items.len(), 4);
        let mut ids: Vec<_> = items.iter().map(|k| k.item).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}

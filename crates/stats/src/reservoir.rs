//! Reservoir sampling over (possibly unbounded) streams.
//!
//! * [`Reservoir`] — Vitter's Algorithm R: a uniform fixed-size sample of a
//!   stream.
//! * [`WeightedReservoir`] — Efraimidis & Spirakis' Algorithm A-Res
//!   (*Weighted random sampling with a reservoir*, IPL 2006, the paper's
//!   reference [14]): each item receives the key `k = u^{1/w}` with
//!   `u ~ U(0,1)`; the reservoir keeps the `n` largest keys. This is exactly
//!   the primitive used by the paper's Algorithm 1 (Reservoir-based
//!   Incremental Sample Update on Evolving KG), where an insertion batch
//!   `Δe` gets key `rand(0,1)^{1/|Δe|}` and replaces the reservoir's minimum
//!   key if larger.
//!
//! The expected number of reservoir replacements over a stream growing from
//! `N_i` to `N_j` items is `O(|R| · log(N_j/N_i))` (paper Proposition 3);
//! [`WeightedReservoir::replacements`] lets callers verify and bound the
//! incremental re-annotation cost.

use rand::Rng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Uniform fixed-size reservoir (Vitter's Algorithm R).
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    capacity: usize,
    seen: u64,
    items: Vec<T>,
}

impl<T> Reservoir<T> {
    /// New reservoir holding at most `capacity` items. Panics on zero
    /// capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        Reservoir {
            capacity,
            seen: 0,
            items: Vec::with_capacity(capacity),
        }
    }

    /// Offer one stream item.
    pub fn offer<R: Rng + ?Sized>(&mut self, rng: &mut R, item: T) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// Items currently in the reservoir.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Total items offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Reservoir capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// A reservoir slot: an item plus its A-Res key.
#[derive(Debug, Clone)]
pub struct Keyed<T> {
    /// The sampled item.
    pub item: T,
    /// Its A-Res key `u^{1/w}` in `(0, 1)`.
    pub key: f64,
}

/// Min-heap wrapper: order by key ascending so the heap root is the smallest
/// key (the replacement candidate).
#[derive(Debug, Clone)]
struct MinKey<T>(Keyed<T>);

impl<T> PartialEq for MinKey<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key == other.0.key
    }
}
impl<T> Eq for MinKey<T> {}
impl<T> PartialOrd for MinKey<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for MinKey<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap; we want the min key on top.
        // Keys are finite floats in (0,1]; total order via partial_cmp is
        // safe because we never store NaN.
        other
            .0
            .key
            .partial_cmp(&self.0.key)
            .expect("reservoir keys are never NaN")
    }
}

/// Weighted reservoir (Efraimidis–Spirakis A-Res) of fixed capacity `n`.
///
/// Holding clusters with weight = cluster size, the reservoir is a weighted
/// random sample usable as the first stage of TWCS on an evolving KG.
#[derive(Debug, Clone)]
pub struct WeightedReservoir<T> {
    capacity: usize,
    heap: BinaryHeap<MinKey<T>>,
    replacements: u64,
    offered: u64,
}

impl<T> WeightedReservoir<T> {
    /// New weighted reservoir with the given capacity. Panics on zero
    /// capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        WeightedReservoir {
            capacity,
            heap: BinaryHeap::with_capacity(capacity + 1),
            replacements: 0,
            offered: 0,
        }
    }

    /// Offer an item with positive weight. Returns the evicted item if the
    /// offer displaced an existing reservoir member, `Some(_)` also meaning
    /// "the new item was accepted by replacement"; `None` means either the
    /// reservoir still had room (item accepted) or the item was rejected.
    ///
    /// Use [`WeightedReservoir::contains_check`]-style logic via the return
    /// of [`Self::last_accepted`] when callers need accept/reject detail;
    /// most callers only need the eviction to retire its annotations.
    pub fn offer<R: Rng + ?Sized>(&mut self, rng: &mut R, item: T, weight: f64) -> OfferOutcome<T> {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "reservoir weights must be positive and finite (got {weight})"
        );
        self.offered += 1;
        // u ∈ (0,1): rand's gen::<f64>() yields [0,1); nudge zero away so
        // key is never exactly 0 (which would always lose) nor NaN.
        let u = loop {
            let u = rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        let key = u.powf(1.0 / weight);
        if self.heap.len() < self.capacity {
            self.heap.push(MinKey(Keyed { item, key }));
            return OfferOutcome::Inserted;
        }
        let min = self
            .heap
            .peek()
            .expect("non-empty reservoir at capacity")
            .0
            .key;
        if key > min {
            let evicted = self.heap.pop().expect("peeked above").0;
            self.heap.push(MinKey(Keyed { item, key }));
            self.replacements += 1;
            OfferOutcome::Replaced(evicted)
        } else {
            OfferOutcome::Rejected
        }
    }

    /// Current smallest key (the next replacement threshold), if full.
    pub fn min_key(&self) -> Option<f64> {
        self.heap.peek().map(|m| m.0.key)
    }

    /// Number of items currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the reservoir holds no items.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether the reservoir reached capacity.
    pub fn is_full(&self) -> bool {
        self.heap.len() == self.capacity
    }

    /// Reservoir capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of replacement events since creation (Proposition 3 bound).
    pub fn replacements(&self) -> u64 {
        self.replacements
    }

    /// Total items offered.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Iterate over current members (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = &Keyed<T>> {
        self.heap.iter().map(|m| &m.0)
    }

    /// Drain the reservoir into a vector of keyed items (arbitrary order).
    pub fn into_items(self) -> Vec<Keyed<T>> {
        self.heap.into_iter().map(|m| m.0).collect()
    }

    /// Replace the minimum-key member with `(item, key)` unconditionally
    /// (A-ExpJ already conditioned the key to beat the threshold),
    /// returning the evicted member. Panics if the reservoir is not full.
    fn replace_min(&mut self, item: T, key: f64) -> Keyed<T> {
        assert!(self.is_full(), "replace_min requires a full reservoir");
        let evicted = self.heap.pop().expect("full reservoir").0;
        self.heap.push(MinKey(Keyed { item, key }));
        self.replacements += 1;
        self.offered += 1;
        evicted
    }
}

/// Weighted reservoir with **exponential jumps** (Efraimidis–Spirakis
/// Algorithm A-ExpJ): distributionally identical to [`WeightedReservoir`]
/// (A-Res) but skips over stream items without drawing a random number for
/// each — O(k·log(n/k)) RNG calls instead of O(n). For the 14.5M-cluster
/// MOVIE-FULL stream with a 60-slot reservoir that is ~900 variates
/// instead of 14.5M.
///
/// Skipped items never materialize (that is the whole point), but items
/// *evicted* from the reservoir do — [`WeightedReservoirExpJ::offer`]
/// reports the same [`OfferOutcome`] as A-Res, so the §6 incremental
/// evaluator can retire evicted annotations while paying O(1) per skipped
/// stream item instead of a `powf` + RNG draw for each.
#[derive(Debug, Clone)]
pub struct WeightedReservoirExpJ<T> {
    inner: WeightedReservoir<T>,
    /// Remaining weight to skip before the next insertion; `None` until the
    /// reservoir fills.
    skip: Option<f64>,
}

impl<T> WeightedReservoirExpJ<T> {
    /// New A-ExpJ reservoir of the given capacity.
    pub fn new(capacity: usize) -> Self {
        WeightedReservoirExpJ {
            inner: WeightedReservoir::new(capacity),
            skip: None,
        }
    }

    fn draw_skip<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let t_w = self.inner.min_key().expect("full reservoir");
        let r = loop {
            let r = rng.gen::<f64>();
            if r > 0.0 {
                break r;
            }
        };
        // X_w = ln(r) / ln(T_w): total incoming weight to skip.
        self.skip = Some(r.ln() / t_w.ln());
    }

    /// Offer one item with positive weight. The outcome mirrors A-Res:
    /// skipped items report [`OfferOutcome::Rejected`], jump-crossing items
    /// report the member they displaced.
    pub fn offer<R: Rng + ?Sized>(&mut self, rng: &mut R, item: T, weight: f64) -> OfferOutcome<T> {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "reservoir weights must be positive and finite (got {weight})"
        );
        if !self.inner.is_full() {
            // Fill phase behaves exactly like A-Res.
            let outcome = self.inner.offer(rng, item, weight);
            if self.inner.is_full() {
                self.draw_skip(rng);
            }
            return outcome;
        }
        let skip = self.skip.as_mut().expect("set when reservoir filled");
        if *skip > weight {
            *skip -= weight;
            return OfferOutcome::Rejected;
        }
        // This item crosses the jump: insert it with a key conditioned to
        // beat the current threshold, k ~ U(T_w^w, 1)^(1/w).
        let t_w = self.inner.min_key().expect("full reservoir");
        let lo = t_w.powf(weight);
        let u = lo + rng.gen::<f64>() * (1.0 - lo);
        let key = u.powf(1.0 / weight);
        let evicted = self.inner.replace_min(item, key);
        self.draw_skip(rng);
        OfferOutcome::Replaced(evicted)
    }

    /// Items currently held, with their keys.
    pub fn iter(&self) -> impl Iterator<Item = &Keyed<T>> {
        self.inner.iter()
    }

    /// Number of items held.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the reservoir holds no items.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Replacement events since creation.
    pub fn replacements(&self) -> u64 {
        self.inner.replacements()
    }

    /// Reservoir capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }
}

/// Result of offering an item to a [`WeightedReservoir`].
#[derive(Debug, Clone)]
pub enum OfferOutcome<T> {
    /// Reservoir had spare capacity; item inserted.
    Inserted,
    /// Item displaced the previous minimum-key member (returned).
    Replaced(Keyed<T>),
    /// Item's key did not beat the minimum; reservoir unchanged.
    Rejected,
}

impl<T> OfferOutcome<T> {
    /// Whether the offered item ended up in the reservoir.
    pub fn accepted(&self) -> bool {
        !matches!(self, OfferOutcome::Rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_reservoir_is_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 20_000;
        let mut counts = [0u32; 10];
        for _ in 0..trials {
            let mut r = Reservoir::new(3);
            for i in 0..10 {
                r.offer(&mut rng, i);
            }
            for &i in r.items() {
                counts[i as usize] += 1;
            }
        }
        for &c in &counts {
            let freq = c as f64 / trials as f64;
            assert!((freq - 0.3).abs() < 0.02, "freq {freq}");
        }
    }

    #[test]
    fn uniform_reservoir_smaller_stream_keeps_all() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut r = Reservoir::new(10);
        for i in 0..4 {
            r.offer(&mut rng, i);
        }
        assert_eq!(r.items().len(), 4);
        assert_eq!(r.seen(), 4);
        assert_eq!(r.capacity(), 10);
    }

    #[test]
    fn weighted_single_slot_inclusion_proportional_to_weight() {
        // With capacity 1 and weights {1, 3}, item 1 should win with
        // probability 3/4 = P(u2^(1/3) > u1).
        let mut rng = StdRng::seed_from_u64(13);
        let trials = 40_000;
        let mut wins = 0u32;
        for _ in 0..trials {
            let mut r = WeightedReservoir::new(1);
            r.offer(&mut rng, 0usize, 1.0);
            r.offer(&mut rng, 1usize, 3.0);
            if r.iter().next().unwrap().item == 1 {
                wins += 1;
            }
        }
        let freq = wins as f64 / trials as f64;
        assert!((freq - 0.75).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn weighted_fills_then_replaces() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut r = WeightedReservoir::new(2);
        assert!(matches!(
            r.offer(&mut rng, 'a', 1.0),
            OfferOutcome::Inserted
        ));
        assert!(matches!(
            r.offer(&mut rng, 'b', 1.0),
            OfferOutcome::Inserted
        ));
        assert!(r.is_full());
        // A huge weight forces a key ~1, nearly always replacing.
        let mut replaced = false;
        for _ in 0..20 {
            if let OfferOutcome::Replaced(_) = r.offer(&mut rng, 'c', 1e12) {
                replaced = true;
                break;
            }
        }
        assert!(replaced);
        assert_eq!(r.len(), 2);
        assert!(r.replacements() >= 1);
    }

    #[test]
    fn min_key_is_really_the_minimum() {
        let mut rng = StdRng::seed_from_u64(15);
        let mut r = WeightedReservoir::new(5);
        for i in 0..50 {
            r.offer(&mut rng, i, 1.0 + (i % 7) as f64);
        }
        let min = r.min_key().unwrap();
        for k in r.iter() {
            assert!(k.key >= min);
        }
    }

    #[test]
    fn replacement_count_grows_logarithmically() {
        // Proposition 3: replacements ≈ |R| * ln(Nj/Ni) after the reservoir
        // is full. Stream 100k equal-weight items into capacity 50:
        // expected replacements ≈ 50 * ln(100000/50) ≈ 380.
        let mut rng = StdRng::seed_from_u64(16);
        let mut r = WeightedReservoir::new(50);
        for i in 0..100_000 {
            r.offer(&mut rng, i, 1.0);
        }
        let expect = 50.0 * (100_000.0_f64 / 50.0).ln();
        let got = r.replacements() as f64;
        assert!(
            (got - expect).abs() < expect * 0.25,
            "replacements {got} vs expected {expect}"
        );
    }

    #[test]
    fn weighted_inclusion_monotone_in_weight() {
        // Items with weight 5 should be included more often than weight 1.
        let mut rng = StdRng::seed_from_u64(17);
        let trials = 5_000;
        let mut heavy = 0u32;
        let mut light = 0u32;
        for _ in 0..trials {
            let mut r = WeightedReservoir::new(10);
            for i in 0..100usize {
                let w = if i < 50 { 5.0 } else { 1.0 };
                r.offer(&mut rng, i, w);
            }
            for k in r.iter() {
                if k.item < 50 {
                    heavy += 1;
                } else {
                    light += 1;
                }
            }
        }
        assert!(
            heavy as f64 > 2.5 * light as f64,
            "heavy {heavy} vs light {light}"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_is_rejected() {
        let mut rng = StdRng::seed_from_u64(18);
        let mut r = WeightedReservoir::new(1);
        r.offer(&mut rng, 0, 0.0);
    }

    #[test]
    fn expj_matches_ares_inclusion_probabilities() {
        // Heavy items (weight 5) vs light (weight 1): both algorithms must
        // include heavies at the same rate.
        let inclusion = |expj: bool, trials: u64| -> f64 {
            let mut rng = StdRng::seed_from_u64(31);
            let mut heavy_hits = 0u64;
            for _ in 0..trials {
                let heavies: Vec<usize> = if expj {
                    let mut r = WeightedReservoirExpJ::new(10);
                    for i in 0..200usize {
                        r.offer(&mut rng, i, if i % 4 == 0 { 5.0 } else { 1.0 });
                    }
                    r.iter().map(|k| k.item).filter(|&i| i % 4 == 0).collect()
                } else {
                    let mut r = WeightedReservoir::new(10);
                    for i in 0..200usize {
                        r.offer(&mut rng, i, if i % 4 == 0 { 5.0 } else { 1.0 });
                    }
                    r.iter().map(|k| k.item).filter(|&i| i % 4 == 0).collect()
                };
                heavy_hits += heavies.len() as u64;
            }
            heavy_hits as f64 / trials as f64
        };
        let trials = 3000;
        let a_res = inclusion(false, trials);
        let a_expj = inclusion(true, trials);
        assert!(
            (a_res - a_expj).abs() < 0.25,
            "A-Res {a_res} vs A-ExpJ {a_expj} heavy items per reservoir"
        );
    }

    #[test]
    fn expj_reports_evictions_like_ares() {
        let mut rng = StdRng::seed_from_u64(33);
        let mut r = WeightedReservoirExpJ::new(5);
        let mut members: std::collections::BTreeSet<u32> = (0..5).collect();
        for i in 0..5u32 {
            assert!(matches!(
                r.offer(&mut rng, i, 1.0 + i as f64),
                OfferOutcome::Inserted
            ));
        }
        let mut replaced = 0u64;
        for i in 5..5_000u32 {
            match r.offer(&mut rng, i, 1.0 + (i % 7) as f64) {
                OfferOutcome::Inserted => panic!("reservoir already full"),
                OfferOutcome::Replaced(evicted) => {
                    assert!(members.remove(&evicted.item), "evicted non-member");
                    members.insert(i);
                    replaced += 1;
                }
                OfferOutcome::Rejected => {}
            }
        }
        assert_eq!(replaced, r.replacements());
        assert_eq!(r.capacity(), 5);
        let held: std::collections::BTreeSet<u32> = r.iter().map(|k| k.item).collect();
        assert_eq!(held, members, "outcome bookkeeping tracks membership");
    }

    #[test]
    fn expj_uses_far_fewer_rng_draws_conceptually() {
        // Structural check: after a long equal-weight stream the skip value
        // is positive and the reservoir is full with valid keys.
        let mut rng = StdRng::seed_from_u64(32);
        let mut r = WeightedReservoirExpJ::new(20);
        for i in 0..50_000 {
            r.offer(&mut rng, i, 1.0);
        }
        assert_eq!(r.len(), 20);
        assert!(!r.is_empty());
        assert!(r.replacements() > 0);
        for k in r.iter() {
            assert!(k.key > 0.0 && k.key <= 1.0, "key {}", k.key);
        }
        // Replacement count should match A-Res's O(k·ln(n/k)) expectation.
        let expect = 20.0 * (50_000.0_f64 / 20.0).ln();
        let got = r.replacements() as f64;
        assert!(
            (got - expect).abs() < expect * 0.35,
            "replacements {got} vs expected {expect}"
        );
    }

    #[test]
    fn into_items_returns_all_members() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut r = WeightedReservoir::new(4);
        for i in 0..4 {
            r.offer(&mut rng, i, 2.0);
        }
        let items = r.into_items();
        assert_eq!(items.len(), 4);
        let mut ids: Vec<_> = items.iter().map(|k| k.item).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }
}

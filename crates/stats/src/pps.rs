//! Growable probability-proportional-to-size sampling over prefix sums.
//!
//! [`AliasTable`](crate::alias::AliasTable) gives O(1) PPS draws but must be
//! rebuilt from scratch — O(N) — whenever a weight is appended, which is
//! exactly what an evolving KG does on every update batch. [`GrowablePps`]
//! trades the O(1) draw for an O(log N) binary search over prefix sums and
//! in exchange supports **amortized O(1) appends**: the incremental
//! evaluators (§6) extend it with each batch's `Δe` cluster sizes instead of
//! rebuilding a table over the whole evolved KG.
//!
//! A draw picks a uniform triple index in `[0, M)` and maps it to its
//! cluster, so cluster `i` is selected with probability `M_i / M` — the same
//! first-stage distribution as the alias table (the realized draw *streams*
//! differ; both are exact PPS).

use crate::error::StatsError;
use rand::Rng;

/// Sampled stride of the coarse level: one coarse entry per `STRIDE` items.
/// 64 keeps the fine window at one-to-few cache lines while the coarse
/// level for a million-cluster KG is ~125 KB — hot across a draw loop,
/// where the full prefix array (8 MB) is not.
const STRIDE: usize = 64;

/// Prefix-sum PPS sampler over a growing list of integer weights.
///
/// Two-level layout: draws binary-search a coarse array holding every
/// `STRIDE`-th prefix (cache-resident across a draw loop), then finish
/// inside one `STRIDE`-item window of the full array — a handful of hot
/// probes instead of `log N` cold misses over megabytes of prefix sums.
#[derive(Debug, Clone)]
pub struct GrowablePps {
    /// `prefix[i]` = total weight of items `0..i`; `prefix.len() == n + 1`.
    prefix: Vec<u64>,
    /// `coarse[j] = prefix[j * STRIDE]`, maintained on push.
    coarse: Vec<u64>,
}

impl Default for GrowablePps {
    fn default() -> Self {
        Self::new()
    }
}

impl GrowablePps {
    /// Empty sampler (draws return an error until an item is pushed).
    pub fn new() -> Self {
        GrowablePps {
            prefix: vec![0],
            coarse: vec![0],
        }
    }

    /// Sampler over initial weights. Zero weights are rejected — a
    /// zero-size cluster cannot be drawn and would silently skew offsets.
    pub fn from_sizes(sizes: &[u32]) -> Result<Self, StatsError> {
        let mut this = Self::new();
        this.extend_from_sizes(sizes)?;
        Ok(this)
    }

    /// Append one item with positive weight — amortized O(1).
    pub fn push(&mut self, size: u32) -> Result<(), StatsError> {
        if size == 0 {
            return Err(StatsError::invalid("size", "> 0", 0.0));
        }
        let total = *self.prefix.last().expect("prefix non-empty");
        self.prefix.push(total + size as u64);
        if (self.prefix.len() - 1).is_multiple_of(STRIDE) {
            self.coarse.push(total + size as u64);
        }
        Ok(())
    }

    /// Append a batch of items — amortized O(batch), no rebuild.
    pub fn extend_from_sizes(&mut self, sizes: &[u32]) -> Result<(), StatsError> {
        self.prefix.reserve(sizes.len());
        for &s in sizes {
            self.push(s)?;
        }
        Ok(())
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.prefix.len() - 1
    }

    /// Whether no items have been appended.
    pub fn is_empty(&self) -> bool {
        self.prefix.len() == 1
    }

    /// Total weight `M`.
    pub fn total(&self) -> u64 {
        *self.prefix.last().expect("prefix non-empty")
    }

    /// Draw an item index with probability proportional to its weight.
    /// Panics if empty (use [`GrowablePps::is_empty`] to guard).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        assert!(!self.is_empty(), "cannot sample from an empty PPS sampler");
        let t = rng.gen_range(0..self.total());
        self.locate(t)
    }

    /// Index of the item whose weight span contains cumulative position
    /// `t` (`prefix[i] <= t < prefix[i+1]`).
    fn locate(&self, t: u64) -> usize {
        // Coarse level: the window holding t (hot memory).
        let j = self.coarse.partition_point(|&p| p <= t) - 1;
        // Fine level: at most STRIDE entries of the full prefix array.
        let lo = j * STRIDE;
        let hi = ((j + 1) * STRIDE + 1).min(self.prefix.len());
        let window = &self.prefix[lo..hi];
        let i = lo + window.partition_point(|&p| p <= t) - 1;
        debug_assert!(self.prefix[i] <= t && t < self.prefix[i + 1]);
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn frequencies_proportional_to_weights() {
        let pps = GrowablePps::from_sizes(&[1, 3, 6]).unwrap();
        assert_eq!(pps.len(), 3);
        assert_eq!(pps.total(), 10);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 3];
        let trials = 100_000;
        for _ in 0..trials {
            counts[pps.sample(&mut rng)] += 1;
        }
        for (i, &w) in [1u32, 3, 6].iter().enumerate() {
            let freq = counts[i] as f64 / trials as f64;
            let expect = w as f64 / 10.0;
            assert!((freq - expect).abs() < 0.01, "item {i}: {freq} vs {expect}");
        }
    }

    #[test]
    fn growth_preserves_earlier_items_and_reweights() {
        let mut pps = GrowablePps::from_sizes(&[5, 5]).unwrap();
        pps.extend_from_sizes(&[10]).unwrap();
        assert_eq!(pps.len(), 3);
        assert_eq!(pps.total(), 20);
        let mut rng = StdRng::seed_from_u64(9);
        let mut last = 0u32;
        for _ in 0..40_000 {
            if pps.sample(&mut rng) == 2 {
                last += 1;
            }
        }
        let freq = last as f64 / 40_000.0;
        assert!((freq - 0.5).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn zero_weights_rejected_and_empty_guarded() {
        assert!(GrowablePps::from_sizes(&[1, 0]).is_err());
        let mut pps = GrowablePps::new();
        assert!(pps.is_empty());
        assert_eq!(pps.total(), 0);
        assert!(pps.push(0).is_err());
        pps.push(4).unwrap();
        assert!(!pps.is_empty());
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(pps.sample(&mut rng), 0);
    }

    #[test]
    fn two_level_locate_agrees_with_flat_search_across_strides() {
        // Enough items to span several coarse blocks, with growth crossing
        // block boundaries; every cumulative position must resolve to the
        // same item a flat partition_point would give.
        let mut pps = GrowablePps::new();
        let check = |pps: &GrowablePps| {
            for t in 0..pps.total() {
                let flat = pps.prefix.partition_point(|&p| p <= t) - 1;
                assert_eq!(pps.locate(t), flat, "t {t}");
            }
        };
        for i in 0..300u32 {
            pps.push(1 + i % 7).unwrap();
        }
        check(&pps);
        // Irregular growth: single pushes and a large batch.
        pps.push(1000).unwrap();
        pps.extend_from_sizes(&[2; 150]).unwrap();
        check(&pps);
        assert_eq!(pps.len(), 451);
    }

    #[test]
    #[should_panic(expected = "empty PPS sampler")]
    fn sampling_empty_panics() {
        let pps = GrowablePps::new();
        let mut rng = StdRng::seed_from_u64(2);
        pps.sample(&mut rng);
    }
}

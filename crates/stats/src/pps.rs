//! Growable probability-proportional-to-size sampling over prefix sums.
//!
//! [`AliasTable`](crate::alias::AliasTable) gives O(1) PPS draws but must be
//! rebuilt from scratch — O(N) — whenever a weight is appended, which is
//! exactly what an evolving KG does on every update batch. [`GrowablePps`]
//! trades the O(1) draw for an O(log N) binary search over prefix sums and
//! in exchange supports cheap growth, two ways:
//!
//! * **item-wise** — [`GrowablePps::push`] / bulk
//!   [`GrowablePps::extend_from_sizes`] /
//!   [`GrowablePps::extend_from_prefix`] append to a flat *head* array,
//!   amortized O(1) per item;
//! * **shared segments** — [`GrowablePps::extend_shared`] adopts an already
//!   materialized cumulative-weight slice (an evolving-KG `UpdateBatch`
//!   caches its Δ prefix once at construction) as an `Arc`'d tail segment:
//!   **O(1) per batch**, no copy at all. This is what makes the §6
//!   evaluators' per-batch stream bookkeeping sublinear in |Δ| — the only
//!   per-batch PPS cost is pushing one segment descriptor.
//!
//! A draw picks a uniform triple index in `[0, M)` and maps it to its
//! cluster, so cluster `i` is selected with probability `M_i / M` — the same
//! first-stage distribution as the alias table (the realized draw *streams*
//! differ; both are exact PPS). The flat and segmented layouts locate the
//! same item for every cumulative position, so the two growth styles are
//! interchangeable without disturbing a single draw.
//!
//! **Deletions** ride on top as a pending-decrement overlay
//! ([`GrowablePps::decrement`]): the head prefix and the `Arc`-shared
//! segments stay append-only (other holders of a segment are unaffected),
//! while a small sorted side table records how much weight each touched
//! item has lost. Draws then address the **live** cumulative space — item
//! `i` is selected with probability `live_i / live_total`, fully-dead items
//! are never selected — at the cost of one extra binary search per draw
//! while the overlay is non-empty. When dead weight crosses a quarter of
//! the gross total, the sampler **compacts**: the live weights are rebuilt
//! into a fresh flat head (fully-dead items become zero-width plateau
//! entries so item indices never shift), the overlay empties, and draws
//! return to the overlay-free fast path. Locating over the compacted
//! plateau prefix is exact: `partition_point(p <= t)` lands past every
//! zero-width entry, so a dead item's empty span can never be selected.

use crate::codec::{CodecError, Decoder, Encoder};
use crate::error::StatsError;
use rand::Rng;
use std::sync::Arc;

/// Sampled stride of the coarse level: one coarse entry per `STRIDE` items.
/// 64 keeps the fine window at one-to-few cache lines while the coarse
/// level for a million-cluster KG is ~125 KB — hot across a draw loop,
/// where the full prefix array (8 MB) is not.
const STRIDE: usize = 64;

/// An `Arc`-shared tail segment: one adopted batch of cumulative weights.
#[derive(Debug, Clone)]
struct Segment {
    /// Total weight of every item before this segment.
    abs_start: u64,
    /// Global index of the segment's first item.
    first_item: usize,
    /// The adopted cumulative-weight slice (`local[0]` is an arbitrary
    /// base; item `j` of the segment weighs `local[j+1] - local[j]`).
    local: Arc<[u64]>,
}

/// Prefix-sum PPS sampler over a growing list of integer weights.
///
/// Layout: a flat **head** (coarse + fine two-level search: draws
/// binary-search a coarse array holding every `STRIDE`-th prefix, then
/// finish inside one `STRIDE`-item window) plus zero or more `Arc`-shared
/// **tail segments** adopted whole in O(1). Item-wise growth is only
/// supported while no shared segment has been adopted — the §6 evaluators
/// never mix the two styles on one sampler.
#[derive(Debug, Clone)]
pub struct GrowablePps {
    /// `prefix[i]` = total weight of head items `0..i`;
    /// `prefix.len() == head_items + 1`.
    prefix: Vec<u64>,
    /// `coarse[j] = prefix[j * STRIDE]`, maintained on growth.
    coarse: Vec<u64>,
    /// Shared tail segments, ascending.
    segments: Vec<Segment>,
    /// Cached **gross** total weight (head + all segments, before any
    /// decrements). The live total is `total - dead_weight()`.
    total: u64,
    /// Cached item count (head + all segments).
    items: usize,
    /// Pending-decrement overlay: item indices with dead weight, sorted.
    dead_items: Vec<usize>,
    /// `dead_cum[k]` = total dead weight of `dead_items[0..k]`
    /// (`dead_cum.len() == dead_items.len() + 1`, starting at 0).
    dead_cum: Vec<u64>,
}

impl Default for GrowablePps {
    fn default() -> Self {
        Self::new()
    }
}

impl GrowablePps {
    /// Empty sampler (draws return an error until an item is pushed).
    pub fn new() -> Self {
        GrowablePps {
            prefix: vec![0],
            coarse: vec![0],
            segments: Vec::new(),
            total: 0,
            items: 0,
            dead_items: Vec::new(),
            dead_cum: vec![0],
        }
    }

    /// Sampler over initial weights. Zero weights are rejected — a
    /// zero-size cluster cannot be drawn and would silently skew offsets.
    pub fn from_sizes(sizes: &[u32]) -> Result<Self, StatsError> {
        let mut this = Self::new();
        this.extend_from_sizes(sizes)?;
        Ok(this)
    }

    /// Sampler over a copied cumulative-weight slice (item `i` weighs
    /// `prefix[i+1] - prefix[i]`; `prefix[0]` is an arbitrary base).
    /// Equivalent to [`GrowablePps::from_sizes`] on the per-item diffs,
    /// via the bulk head append.
    pub fn from_prefix(prefix: &[u64]) -> Result<Self, StatsError> {
        let mut this = Self::new();
        this.extend_from_prefix(prefix)?;
        Ok(this)
    }

    /// Sampler that **adopts** a shared cumulative-weight slice as its
    /// single segment — O(1), no copy. The §6 stratified evaluator builds
    /// each stratum's frame this way straight from the update batch's
    /// cached prefix.
    pub fn shared(prefix: Arc<[u64]>) -> Result<Self, StatsError> {
        let mut this = Self::new();
        this.extend_shared(prefix)?;
        Ok(this)
    }

    /// Whether item-wise growth is still allowed (no shared segment yet).
    fn head_only(&self) -> bool {
        self.segments.is_empty()
    }

    /// Append one item with positive weight — amortized O(1). Errors after
    /// a shared segment has been adopted (item-wise and segment growth
    /// don't mix).
    pub fn push(&mut self, size: u32) -> Result<(), StatsError> {
        if size == 0 {
            return Err(StatsError::invalid("size", "> 0", 0.0));
        }
        if !self.head_only() {
            return Err(StatsError::invalid(
                "push",
                "item-wise growth before shared segments",
                self.segments.len() as f64,
            ));
        }
        let new_total = self.total + size as u64;
        self.prefix.push(new_total);
        if (self.prefix.len() - 1).is_multiple_of(STRIDE) {
            self.coarse.push(new_total);
        }
        self.total = new_total;
        self.items += 1;
        Ok(())
    }

    /// Append a batch of items — one bulk pass, no rebuild, identical end
    /// state to pushing each size. On a zero weight the sampler is left
    /// unchanged (the partial append is rolled back before returning).
    pub fn extend_from_sizes(&mut self, sizes: &[u32]) -> Result<(), StatsError> {
        if !self.head_only() {
            return Err(StatsError::invalid(
                "extend_from_sizes",
                "item-wise growth before shared segments",
                self.segments.len() as f64,
            ));
        }
        let rollback = self.prefix.len();
        self.prefix.reserve(sizes.len());
        let mut acc = self.total;
        for &s in sizes {
            if s == 0 {
                self.prefix.truncate(rollback);
                return Err(StatsError::invalid("size", "> 0", 0.0));
            }
            acc += s as u64;
            self.prefix.push(acc);
        }
        self.total = acc;
        self.items = self.prefix.len() - 1;
        self.sync_coarse();
        Ok(())
    }

    /// Append a batch of items by *copying* their cumulative-weight slice
    /// into the head — the bulk counterpart of a `push` loop over the
    /// diffs `prefix[i+1] - prefix[i]`, one offset-add pass plus a
    /// coarse-frame top-up per batch. `prefix[0]` is an arbitrary base.
    /// Zero weights (a non-increasing step) are rejected with the sampler
    /// left unchanged. See [`GrowablePps::extend_shared`] for the O(1)
    /// no-copy alternative.
    pub fn extend_from_prefix(&mut self, prefix: &[u64]) -> Result<(), StatsError> {
        if !self.head_only() {
            return Err(StatsError::invalid(
                "extend_from_prefix",
                "item-wise growth before shared segments",
                self.segments.len() as f64,
            ));
        }
        let Some((&base_in, rest)) = prefix.split_first() else {
            return Err(StatsError::invalid("prefix", "non-empty", 0.0));
        };
        let rollback = self.prefix.len();
        let base = self.total;
        self.prefix.reserve(rest.len());
        // Fused validate-and-append: one read of the source, one write.
        let mut prev = base_in;
        let mut increasing = true;
        // Wrapping arithmetic: a decreasing source step wraps the diff,
        // but `increasing` flips false and the garbage rows are truncated
        // away below, so only validated values ever survive.
        self.prefix.extend(rest.iter().map(|&p| {
            increasing &= p > prev;
            prev = p;
            base.wrapping_add(p.wrapping_sub(base_in))
        }));
        if !increasing {
            self.prefix.truncate(rollback);
            return Err(StatsError::invalid("size", "> 0", 0.0));
        }
        self.total = base + (prev - base_in);
        self.items = self.prefix.len() - 1;
        self.sync_coarse();
        Ok(())
    }

    /// Adopt a shared cumulative-weight slice as a tail segment — **O(1)
    /// per batch**, no copy: the evolving-KG skeleton cost of growing the
    /// sampling frame by an update batch is one descriptor push. The slice
    /// must be strictly increasing (positive integer weights; an
    /// `UpdateBatch` guarantees this at construction — debug builds
    /// verify). A slice of length ≤ 1 (an empty batch) is a no-op.
    pub fn extend_shared(&mut self, prefix: Arc<[u64]>) -> Result<(), StatsError> {
        if prefix.is_empty() {
            return Err(StatsError::invalid("prefix", "non-empty", 0.0));
        }
        let added = prefix.len() - 1;
        if added == 0 {
            return Ok(());
        }
        // All validation happens before the first mutation, so a rejected
        // adoption leaves totals, item counts, and the segment list exactly
        // as they were — the same all-or-nothing contract as the rollback
        // in `extend_from_prefix`. The O(1) endpoint check catches a batch
        // with non-positive net weight even in release builds; the O(n)
        // per-step strictness scan stays a debug assertion because every
        // `UpdateBatch` guarantees it at construction.
        if prefix[added] <= prefix[0] {
            return Err(StatsError::invalid(
                "prefix",
                "strictly increasing (positive total weight)",
                (prefix[added] as i128 - prefix[0] as i128) as f64,
            ));
        }
        debug_assert!(
            prefix.windows(2).all(|w| w[0] < w[1]),
            "shared segment weights must be positive (prefix strictly increasing)"
        );
        let weight = prefix[added] - prefix[0];
        self.segments.push(Segment {
            abs_start: self.total,
            first_item: self.items,
            local: prefix,
        });
        self.total += weight;
        self.items += added;
        Ok(())
    }

    /// Top up the coarse level after bulk head growth, restoring the
    /// push-path invariant `coarse[j] == prefix[j * STRIDE]`.
    fn sync_coarse(&mut self) {
        let mut j = self.coarse.len();
        while j * STRIDE < self.prefix.len() {
            self.coarse.push(self.prefix[j * STRIDE]);
            j += 1;
        }
    }

    /// The head's cumulative-weight slice: `prefix()[i]` is the total
    /// weight of items `0..i` (length `len() + 1` while no shared segment
    /// has been adopted, starting at 0). This is exactly the shape
    /// [`WeightedReservoirExpJ::offer_batch`] consumes, so a population
    /// indexed for PPS draws can drive batched reservoir offers with no
    /// extra materialization.
    ///
    /// [`WeightedReservoirExpJ::offer_batch`]:
    /// crate::reservoir::WeightedReservoirExpJ::offer_batch
    pub fn prefix(&self) -> &[u64] {
        &self.prefix
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items
    }

    /// Whether no items have been appended.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Total **live** weight `M` — gross appended weight minus every
    /// pending decrement. Equal to the gross total while nothing has been
    /// retracted.
    pub fn total(&self) -> u64 {
        self.total - self.dead_weight()
    }

    /// Total weight removed by [`GrowablePps::decrement`] since the last
    /// compaction (the pending overlay mass).
    pub fn dead_weight(&self) -> u64 {
        *self.dead_cum.last().expect("dead_cum non-empty")
    }

    /// **Live** weight of item `i` (head or segment, minus its pending
    /// decrements). O(log) at worst; fully-dead items report 0. Panics out
    /// of range.
    pub fn weight(&self, i: usize) -> u64 {
        self.gross_weight(i) - self.dead_of(i)
    }

    /// Weight of item `i` as appended, before any decrements.
    fn gross_weight(&self, i: usize) -> u64 {
        let head_items = self.prefix.len() - 1;
        if i < head_items {
            return self.prefix[i + 1] - self.prefix[i];
        }
        assert!(i < self.items, "item {i} out of range ({})", self.items);
        let si = self.segments.partition_point(|s| s.first_item <= i) - 1;
        let s = &self.segments[si];
        let j = i - s.first_item;
        s.local[j + 1] - s.local[j]
    }

    /// Pending dead weight of item `i`.
    fn dead_of(&self, i: usize) -> u64 {
        match self.dead_items.binary_search(&i) {
            Ok(k) => self.dead_cum[k + 1] - self.dead_cum[k],
            Err(_) => 0,
        }
    }

    /// Remove `w` units of weight from item `i` — a retraction of `w`
    /// triples from cluster `i`. The stored prefix arrays (including
    /// `Arc`-shared segments, whose other holders are unaffected) are not
    /// touched; the loss is recorded in the pending-decrement overlay and
    /// every subsequent draw addresses the live weights. Errors (leaving
    /// the sampler unchanged) if `i` is out of range, `w` is zero, or `w`
    /// exceeds item `i`'s current live weight.
    ///
    /// When accumulated dead weight crosses a quarter of the gross total,
    /// the sampler compacts into a fresh flat head and the overlay
    /// empties; see the module docs.
    pub fn decrement(&mut self, i: usize, w: u64) -> Result<(), StatsError> {
        if i >= self.items {
            return Err(StatsError::invalid("item", "< len()", i as f64));
        }
        if w == 0 {
            return Err(StatsError::invalid("w", "> 0", 0.0));
        }
        let live = self.weight(i);
        if w > live {
            return Err(StatsError::invalid("w", "<= live weight of item", w as f64));
        }
        let k = self.dead_items.partition_point(|&d| d < i);
        if self.dead_items.get(k) != Some(&i) {
            self.dead_items.insert(k, i);
            let run = self.dead_cum[k];
            self.dead_cum.insert(k + 1, run);
        }
        for c in &mut self.dead_cum[k + 1..] {
            *c += w;
        }
        if self.dead_weight() * 4 > self.total {
            self.compact();
        }
        Ok(())
    }

    /// Cumulative **gross** weight of items `0..j` (`0 <= j <= items`),
    /// whichever mix of head and segments holds them.
    fn gross_prefix(&self, j: usize) -> u64 {
        let head_items = self.prefix.len() - 1;
        if j <= head_items {
            return self.prefix[j];
        }
        let si = self.segments.partition_point(|s| s.first_item < j) - 1;
        let s = &self.segments[si];
        s.abs_start + (s.local[j - s.first_item] - s.local[0])
    }

    /// Total pending dead weight of items `0..j`.
    fn dead_before(&self, j: usize) -> u64 {
        let k = self.dead_items.partition_point(|&d| d < j);
        self.dead_cum[k]
    }

    /// Cumulative **live** weight of items `0..=j` — the exclusive end of
    /// item `j`'s span in live cumulative space.
    fn live_end(&self, j: usize) -> u64 {
        self.gross_prefix(j + 1) - self.dead_before(j + 1)
    }

    /// Fold the pending overlay into a fresh flat head: item `j`'s stored
    /// weight becomes its live weight, with fully-dead items kept as
    /// zero-width plateau entries so item indices (cluster ids) never
    /// shift. Segments are released and item-wise growth is re-enabled.
    fn compact(&mut self) {
        let mut prefix = Vec::with_capacity(self.items + 1);
        prefix.push(0u64);
        let mut acc = 0u64;
        for j in 0..self.items {
            acc += self.weight(j);
            prefix.push(acc);
        }
        self.prefix = prefix;
        self.coarse.clear();
        self.coarse.push(0);
        self.sync_coarse();
        self.segments.clear();
        self.dead_items.clear();
        self.dead_cum.clear();
        self.dead_cum.push(0);
        self.total = acc;
    }

    /// Draw an item index with probability proportional to its **live**
    /// weight. Panics if empty or if every unit of weight has been
    /// decremented away (guard with [`GrowablePps::is_empty`] /
    /// [`GrowablePps::total`]).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        assert!(!self.is_empty(), "cannot sample from an empty PPS sampler");
        assert!(
            self.total() > 0,
            "cannot sample from a PPS sampler with no live weight"
        );
        let t = rng.gen_range(0..self.total());
        self.locate(t)
    }

    /// Index of the item whose **live** weight span contains live
    /// cumulative position `t` — identical to a flat `partition_point`
    /// over the logical live prefix sums, whichever mix of head, segments,
    /// and pending decrements holds the items.
    fn locate(&self, t: u64) -> usize {
        if !self.dead_items.is_empty() {
            // Overlay path: binary-search live item ends. `live_end` is
            // non-decreasing, and the first item whose end exceeds `t` has
            // positive live width (a fully-dead item shares its end with
            // its predecessor, so it can never be the first to exceed).
            let mut lo = 0usize;
            let mut hi = self.items;
            while lo < hi {
                let mid = lo + (hi - lo) / 2;
                if self.live_end(mid) <= t {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            debug_assert!(lo < self.items);
            return lo;
        }
        let head_total = *self.prefix.last().expect("prefix non-empty");
        if t < head_total {
            // Coarse level: the window holding t (hot memory).
            let j = self.coarse.partition_point(|&p| p <= t) - 1;
            // Fine level: at most STRIDE entries of the full prefix array.
            let lo = j * STRIDE;
            let hi = ((j + 1) * STRIDE + 1).min(self.prefix.len());
            let window = &self.prefix[lo..hi];
            let i = lo + window.partition_point(|&p| p <= t) - 1;
            debug_assert!(self.prefix[i] <= t && t < self.prefix[i + 1]);
            return i;
        }
        // Segment level: the (few, hot) descriptors, then one local search.
        let si = self.segments.partition_point(|s| s.abs_start <= t) - 1;
        let s = &self.segments[si];
        let local_t = t - s.abs_start;
        let base = s.local[0];
        s.first_item + s.local.partition_point(|&p| p - base <= local_t) - 1
    }

    /// Record magic for standalone snapshots.
    pub const MAGIC: [u8; 4] = *b"KGPP";
    /// Current snapshot format version.
    pub const VERSION: u16 = 1;

    /// Serialize into a standalone `KGPP` v1 record (see [`crate::codec`]):
    /// the head prefix, every `Arc`-shared segment's contents, and the full
    /// pending-decrement overlay. Restoring materializes fresh `Arc`s over
    /// the same integers — [`Self::locate`] depends only on contents, so
    /// the restored sampler is draw-for-draw identical.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::with_header(Self::MAGIC, Self::VERSION);
        self.snapshot_into(&mut e);
        e.finish()
    }

    /// Restore from a standalone `KGPP` record, re-deriving the coarse
    /// level and validating every structural invariant (monotone prefixes,
    /// segment chaining, overlay bounds) so a corrupted payload yields a
    /// typed error rather than a sampler that panics later.
    pub fn restore(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::new(bytes);
        let version = d.expect_header(Self::MAGIC)?;
        if version != Self::VERSION {
            return Err(CodecError::UnsupportedVersion {
                magic: Self::MAGIC,
                found: version,
                supported: Self::VERSION,
            });
        }
        let pps = Self::restore_from(&mut d)?;
        d.finish()?;
        Ok(pps)
    }

    /// Append the headerless field payload (for embedding in composite
    /// records like `MonitorState`).
    pub fn snapshot_into(&self, e: &mut Encoder) {
        e.put_u64_slice(&self.prefix);
        e.put_usize(self.segments.len());
        for s in &self.segments {
            e.put_u64(s.abs_start);
            e.put_usize(s.first_item);
            e.put_u64_slice(&s.local);
        }
        e.put_usize_slice(&self.dead_items);
        e.put_u64_slice(&self.dead_cum);
        e.put_u64(self.total);
        e.put_usize(self.items);
    }

    /// Decode the headerless field payload written by
    /// [`Self::snapshot_into`].
    pub fn restore_from(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let prefix = d.get_u64_vec("pps head prefix")?;
        if prefix.first() != Some(&0) {
            return Err(CodecError::Invalid {
                what: "pps head prefix must start at 0",
            });
        }
        // Non-decreasing, not strictly increasing: compaction leaves
        // zero-width plateau entries for fully-dead items.
        if prefix.windows(2).any(|w| w[0] > w[1]) {
            return Err(CodecError::Invalid {
                what: "pps head prefix must be non-decreasing",
            });
        }
        let head_items = prefix.len() - 1;
        let head_total = *prefix.last().expect("checked non-empty");

        let num_segments = d.get_len(24, "pps segments")?;
        let mut segments = Vec::with_capacity(num_segments);
        let mut next_item = head_items;
        let mut next_start = head_total;
        for _ in 0..num_segments {
            let abs_start = d.get_u64("pps segment abs_start")?;
            let first_item = d.get_usize("pps segment first_item")?;
            let local = d.get_u64_vec("pps segment local prefix")?;
            if local.len() < 2 {
                return Err(CodecError::Invalid {
                    what: "pps segment must hold at least one item",
                });
            }
            if local.windows(2).any(|w| w[0] >= w[1]) {
                return Err(CodecError::Invalid {
                    what: "pps segment prefix must be strictly increasing",
                });
            }
            if abs_start != next_start || first_item != next_item {
                return Err(CodecError::Invalid {
                    what: "pps segment chain is inconsistent",
                });
            }
            next_item += local.len() - 1;
            next_start += local[local.len() - 1] - local[0];
            segments.push(Segment {
                abs_start,
                first_item,
                local: local.into(),
            });
        }
        let dead_items = d.get_usize_vec("pps dead items")?;
        let dead_cum = d.get_u64_vec("pps dead cum")?;
        let total = d.get_u64("pps total")?;
        let items = d.get_usize("pps items")?;
        if items != next_item || total != next_start {
            return Err(CodecError::Invalid {
                what: "pps totals disagree with prefix contents",
            });
        }
        if dead_cum.len() != dead_items.len() + 1 || dead_cum.first() != Some(&0) {
            return Err(CodecError::Invalid {
                what: "pps dead overlay must carry one cumulative entry per item plus base 0",
            });
        }
        if dead_items.windows(2).any(|w| w[0] >= w[1])
            || dead_items.last().is_some_and(|&i| i >= items)
        {
            return Err(CodecError::Invalid {
                what: "pps dead items must be strictly increasing and in range",
            });
        }
        if dead_cum.windows(2).any(|w| w[0] >= w[1]) {
            return Err(CodecError::Invalid {
                what: "pps dead cum must be strictly increasing (positive decrements)",
            });
        }
        let mut pps = GrowablePps {
            prefix,
            coarse: Vec::new(),
            segments,
            total,
            items,
            dead_items,
            dead_cum,
        };
        // Every dead span must fit inside its item's gross weight, or
        // `weight()` would underflow.
        for k in 0..pps.dead_items.len() {
            let dead = pps.dead_cum[k + 1] - pps.dead_cum[k];
            if dead > pps.gross_weight(pps.dead_items[k]) {
                return Err(CodecError::Invalid {
                    what: "pps dead weight exceeds item's gross weight",
                });
            }
        }
        // The coarse level is derived state: rebuild it instead of trusting
        // (or shipping) it.
        pps.coarse.push(0);
        pps.sync_coarse();
        Ok(pps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn frequencies_proportional_to_weights() {
        let pps = GrowablePps::from_sizes(&[1, 3, 6]).unwrap();
        assert_eq!(pps.len(), 3);
        assert_eq!(pps.total(), 10);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u32; 3];
        let trials = 100_000;
        for _ in 0..trials {
            counts[pps.sample(&mut rng)] += 1;
        }
        for (i, &w) in [1u32, 3, 6].iter().enumerate() {
            let freq = counts[i] as f64 / trials as f64;
            let expect = w as f64 / 10.0;
            assert!((freq - expect).abs() < 0.01, "item {i}: {freq} vs {expect}");
        }
    }

    #[test]
    fn growth_preserves_earlier_items_and_reweights() {
        let mut pps = GrowablePps::from_sizes(&[5, 5]).unwrap();
        pps.extend_from_sizes(&[10]).unwrap();
        assert_eq!(pps.len(), 3);
        assert_eq!(pps.total(), 20);
        let mut rng = StdRng::seed_from_u64(9);
        let mut last = 0u32;
        for _ in 0..40_000 {
            if pps.sample(&mut rng) == 2 {
                last += 1;
            }
        }
        let freq = last as f64 / 40_000.0;
        assert!((freq - 0.5).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn zero_weights_rejected_and_empty_guarded() {
        assert!(GrowablePps::from_sizes(&[1, 0]).is_err());
        let mut pps = GrowablePps::new();
        assert!(pps.is_empty());
        assert_eq!(pps.total(), 0);
        assert!(pps.push(0).is_err());
        pps.push(4).unwrap();
        assert!(!pps.is_empty());
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(pps.sample(&mut rng), 0);
    }

    #[test]
    fn two_level_locate_agrees_with_flat_search_across_strides() {
        // Enough items to span several coarse blocks, with growth crossing
        // block boundaries; every cumulative position must resolve to the
        // same item a flat partition_point would give.
        let mut pps = GrowablePps::new();
        let check = |pps: &GrowablePps| {
            for t in 0..pps.total() {
                let flat = pps.prefix.partition_point(|&p| p <= t) - 1;
                assert_eq!(pps.locate(t), flat, "t {t}");
            }
        };
        for i in 0..300u32 {
            pps.push(1 + i % 7).unwrap();
        }
        check(&pps);
        // Irregular growth: single pushes and a large batch.
        pps.push(1000).unwrap();
        pps.extend_from_sizes(&[2; 150]).unwrap();
        check(&pps);
        assert_eq!(pps.len(), 451);
    }

    #[test]
    fn bulk_appends_match_push_loop_exactly() {
        // Same sizes through push, extend_from_sizes, and
        // extend_from_prefix must yield identical prefix AND coarse
        // arrays, across stride boundaries and interleaved growth.
        let sizes: Vec<u32> = (0..777u32).map(|i| 1 + (i * 31) % 11).collect();
        let mut pushed = GrowablePps::new();
        for &s in &sizes {
            pushed.push(s).unwrap();
        }
        let bulk = GrowablePps::from_sizes(&sizes).unwrap();
        assert_eq!(pushed.prefix, bulk.prefix);
        assert_eq!(pushed.coarse, bulk.coarse);
        let mut delta_prefix = vec![0u64];
        let mut acc = 0u64;
        for &s in &sizes {
            acc += s as u64;
            delta_prefix.push(acc);
        }
        let from_prefix = GrowablePps::from_prefix(&delta_prefix).unwrap();
        assert_eq!(pushed.prefix, from_prefix.prefix);
        assert_eq!(pushed.coarse, from_prefix.coarse);
        assert_eq!(from_prefix.prefix(), &*pushed.prefix);
        assert_eq!(pushed.total(), from_prefix.total());
        assert_eq!(pushed.len(), from_prefix.len());
        // Interleaved growth: push a few, bulk-extend, push again.
        let mut a = GrowablePps::from_sizes(&sizes[..100]).unwrap();
        a.extend_from_prefix(&delta_prefix[100..=500]).unwrap();
        for &s in &sizes[500..] {
            a.push(s).unwrap();
        }
        assert_eq!(a.prefix, pushed.prefix);
        assert_eq!(a.coarse, pushed.coarse);
    }

    #[test]
    fn shared_segments_locate_identically_to_flat_growth() {
        // The same logical weights through (a) item-wise pushes and
        // (b) head + adopted Arc segments must agree on every cumulative
        // position, every item weight, and the totals — this is what makes
        // O(1) batch adoption invisible to the draw stream.
        let head_sizes: Vec<u32> = (0..150u32).map(|i| 1 + (i * 13) % 17).collect();
        let batch_a: Vec<u32> = (0..70u32).map(|i| 1 + (i * 7) % 23).collect();
        let batch_b: Vec<u32> = vec![3; 90];

        let mut flat = GrowablePps::new();
        for &s in head_sizes.iter().chain(&batch_a).chain(&batch_b) {
            flat.push(s).unwrap();
        }

        let to_prefix = |sizes: &[u32]| -> Arc<[u64]> {
            let mut p = vec![0u64];
            let mut acc = 0u64;
            for &s in sizes {
                acc += s as u64;
                p.push(acc);
            }
            p.into()
        };
        let mut seg = GrowablePps::from_sizes(&head_sizes).unwrap();
        seg.extend_shared(to_prefix(&batch_a)).unwrap();
        seg.extend_shared(to_prefix(&batch_b)).unwrap();

        assert_eq!(flat.total(), seg.total());
        assert_eq!(flat.len(), seg.len());
        for t in 0..flat.total() {
            assert_eq!(flat.locate(t), seg.locate(t), "t {t}");
        }
        for i in 0..flat.len() {
            assert_eq!(flat.weight(i), seg.weight(i), "item {i}");
        }
        // Item-wise growth is sealed once a segment is adopted.
        assert!(seg.push(1).is_err());
        assert!(seg.extend_from_sizes(&[1]).is_err());
        assert!(seg.extend_from_prefix(&[0, 1]).is_err());
        // A purely shared sampler (empty head) also locates correctly.
        let only = GrowablePps::shared(to_prefix(&batch_a)).unwrap();
        assert_eq!(only.len(), batch_a.len());
        let flat_a = GrowablePps::from_sizes(&batch_a).unwrap();
        for t in 0..only.total() {
            assert_eq!(only.locate(t), flat_a.locate(t), "t {t}");
        }
        // Empty shared batches are no-ops.
        let before = seg.len();
        seg.extend_shared(vec![0u64].into()).unwrap();
        assert_eq!(seg.len(), before);
        assert!(GrowablePps::shared(Vec::new().into()).is_err());
    }

    #[test]
    fn shared_sampler_draw_stream_matches_flat() {
        // Same seed, same draws: adopting segments must not disturb the
        // realized sample stream at all.
        let sizes: Vec<u32> = (0..200u32).map(|i| 1 + (i * 11) % 31).collect();
        let mut flat = GrowablePps::from_sizes(&sizes).unwrap();
        flat.extend_from_sizes(&[9; 40]).unwrap();
        let mut p = vec![0u64];
        let mut acc = 0u64;
        for _ in 0..40 {
            acc += 9;
            p.push(acc);
        }
        let mut seg = GrowablePps::from_sizes(&sizes).unwrap();
        seg.extend_shared(p.into()).unwrap();
        let mut rng_a = StdRng::seed_from_u64(33);
        let mut rng_b = StdRng::seed_from_u64(33);
        for _ in 0..10_000 {
            assert_eq!(flat.sample(&mut rng_a), seg.sample(&mut rng_b));
        }
    }

    #[test]
    fn bulk_append_errors_leave_sampler_unchanged() {
        let mut pps = GrowablePps::from_sizes(&[3, 4]).unwrap();
        let before_prefix = pps.prefix.clone();
        let before_coarse = pps.coarse.clone();
        assert!(pps.extend_from_sizes(&[2, 0, 9]).is_err());
        assert_eq!(pps.prefix, before_prefix);
        assert_eq!(pps.coarse, before_coarse);
        // Non-increasing (zero-weight) step in a prefix slice.
        assert!(pps.extend_from_prefix(&[0, 5, 5]).is_err());
        assert!(pps.extend_from_prefix(&[]).is_err());
        assert_eq!(pps.prefix, before_prefix);
        assert_eq!(pps.coarse, before_coarse);
        assert_eq!(pps.len(), 2);
        assert_eq!(pps.total(), 7);
    }

    #[test]
    fn prefix_base_offset_is_respected() {
        // A delta prefix starting at a non-zero base appends the same
        // diffs as one starting at zero.
        let mut a = GrowablePps::from_sizes(&[10]).unwrap();
        let mut b = a.clone();
        a.extend_from_prefix(&[0, 2, 7]).unwrap();
        b.extend_from_prefix(&[100, 102, 107]).unwrap();
        assert_eq!(a.prefix, b.prefix);
        assert_eq!(a.total(), 17);
        assert_eq!(a.len(), 3);
        assert_eq!(a.weight(0), 10);
        assert_eq!(a.weight(1), 2);
        assert_eq!(a.weight(2), 5);
    }

    #[test]
    #[should_panic(expected = "empty PPS sampler")]
    fn sampling_empty_panics() {
        let pps = GrowablePps::new();
        let mut rng = StdRng::seed_from_u64(2);
        pps.sample(&mut rng);
    }

    /// Reference live prefix: cumulative live weights with zero-width
    /// plateaus for fully-dead items — the flat rebuild the overlay must
    /// be draw-identical to.
    fn live_prefix(pps: &GrowablePps) -> Vec<u64> {
        let mut p = vec![0u64];
        let mut acc = 0u64;
        for i in 0..pps.len() {
            acc += pps.weight(i);
            p.push(acc);
        }
        p
    }

    fn assert_locates_like_flat(pps: &GrowablePps) {
        let live = live_prefix(pps);
        assert_eq!(*live.last().unwrap(), pps.total());
        for t in 0..pps.total() {
            let flat = live.partition_point(|&p| p <= t) - 1;
            assert_eq!(pps.locate(t), flat, "t {t}");
        }
    }

    #[test]
    fn decrement_reduces_live_weight_and_total() {
        let mut pps = GrowablePps::from_sizes(&[4, 6, 2]).unwrap();
        pps.decrement(1, 2).unwrap();
        assert_eq!(pps.weight(1), 4);
        assert_eq!(pps.total(), 10);
        assert_eq!(pps.dead_weight(), 2);
        // A second decrement on the same item accumulates.
        pps.decrement(1, 1).unwrap();
        assert_eq!(pps.weight(1), 3);
        assert_eq!(pps.total(), 9);
        // Untouched items keep their gross weight.
        assert_eq!(pps.weight(0), 4);
        assert_eq!(pps.weight(2), 2);
    }

    #[test]
    fn decrement_validates_and_leaves_sampler_unchanged_on_error() {
        let mut pps = GrowablePps::from_sizes(&[4, 6]).unwrap();
        pps.decrement(0, 1).unwrap();
        let before_total = pps.total();
        assert!(pps.decrement(2, 1).is_err()); // out of range
        assert!(pps.decrement(0, 0).is_err()); // zero
        assert!(pps.decrement(0, 4).is_err()); // exceeds live weight (3)
        assert_eq!(pps.total(), before_total);
        assert_eq!(pps.weight(0), 3);
        // Decrementing down to exactly zero is allowed; the item just can
        // never be drawn again.
        pps.decrement(0, 3).unwrap();
        assert_eq!(pps.weight(0), 0);
        assert!(pps.decrement(0, 1).is_err());
    }

    #[test]
    fn overlay_locate_matches_flat_live_reference() {
        // Head + two adopted segments, then decrements spread across all
        // three regions, including full kills: every live cumulative
        // position must resolve exactly as a flat rebuild would.
        let to_prefix = |sizes: &[u32]| -> Arc<[u64]> {
            let mut p = vec![0u64];
            let mut acc = 0u64;
            for &s in sizes {
                acc += s as u64;
                p.push(acc);
            }
            p.into()
        };
        let head: Vec<u32> = (0..130u32).map(|i| 1 + (i * 13) % 9).collect();
        let seg_a: Vec<u32> = (0..40u32).map(|i| 1 + (i * 5) % 7).collect();
        let seg_b: Vec<u32> = vec![2; 50];
        let mut pps = GrowablePps::from_sizes(&head).unwrap();
        pps.extend_shared(to_prefix(&seg_a)).unwrap();
        pps.extend_shared(to_prefix(&seg_b)).unwrap();
        assert_locates_like_flat(&pps);
        // Partial decrements in head and both segments.
        pps.decrement(0, 1).unwrap();
        pps.decrement(65, 1).unwrap();
        pps.decrement(135, 2).unwrap();
        pps.decrement(200, 1).unwrap();
        assert_locates_like_flat(&pps);
        // Full kills, including adjacent runs and the last item.
        let n = pps.len();
        for i in [3usize, 4, 5, 140, n - 1] {
            let w = pps.weight(i);
            pps.decrement(i, w).unwrap();
        }
        assert_locates_like_flat(&pps);
        // Draw stream is identical to sampling the flat live reference.
        let live = live_prefix(&pps);
        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = StdRng::seed_from_u64(77);
        for _ in 0..5_000 {
            let t = rng_b.gen_range(0..*live.last().unwrap());
            let expect = live.partition_point(|&p| p <= t) - 1;
            assert_eq!(pps.sample(&mut rng_a), expect);
        }
    }

    #[test]
    fn compaction_folds_overlay_and_reopens_item_growth() {
        let to_prefix = |sizes: &[u32]| -> Arc<[u64]> {
            let mut p = vec![0u64];
            let mut acc = 0u64;
            for &s in sizes {
                acc += s as u64;
                p.push(acc);
            }
            p.into()
        };
        let mut pps = GrowablePps::from_sizes(&[10; 20]).unwrap();
        pps.extend_shared(to_prefix(&[10; 20])).unwrap();
        // Segments seal item-wise growth.
        assert!(pps.push(1).is_err());
        let live_before: Vec<u64> = (0..pps.len()).map(|i| pps.weight(i)).collect();
        // Kill whole items until dead weight crosses a quarter of gross
        // (400): the 11th full kill (110 > 100) triggers compaction.
        for i in 0..11 {
            pps.decrement(2 * i, 10).unwrap();
        }
        assert_eq!(pps.dead_weight(), 0, "overlay folded away");
        assert_eq!(pps.total(), 290);
        assert_eq!(pps.len(), 40, "item indices survive compaction");
        for (i, &w) in live_before.iter().enumerate() {
            let expect = if i < 22 && i % 2 == 0 { 0 } else { w };
            assert_eq!(pps.weight(i), expect, "item {i}");
        }
        assert_locates_like_flat(&pps);
        // Compaction released the segments: item-wise growth works again,
        // and new items land at fresh indices past the plateau prefix.
        pps.push(7).unwrap();
        assert_eq!(pps.len(), 41);
        assert_eq!(pps.weight(40), 7);
        assert_eq!(pps.total(), 297);
        assert_locates_like_flat(&pps);
        // And further decrements start a fresh overlay.
        pps.decrement(40, 3).unwrap();
        assert_eq!(pps.weight(40), 4);
        assert_locates_like_flat(&pps);
    }

    #[test]
    fn decremented_sampler_never_draws_dead_items() {
        let mut pps = GrowablePps::from_sizes(&[5, 1, 5, 1, 5]).unwrap();
        pps.decrement(1, 1).unwrap();
        pps.decrement(3, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..2_000 {
            let i = pps.sample(&mut rng);
            assert!(i.is_multiple_of(2), "drew dead item {i}");
        }
        // Frequencies follow the live weights (uniform thirds here).
        let mut counts = [0u32; 5];
        for _ in 0..30_000 {
            counts[pps.sample(&mut rng)] += 1;
        }
        for i in [0, 2, 4] {
            let freq = counts[i] as f64 / 30_000.0;
            assert!((freq - 1.0 / 3.0).abs() < 0.02, "item {i}: {freq}");
        }
    }

    #[test]
    fn shared_adoption_failures_leave_sampler_unchanged() {
        // Forced mid-validation failures for extend_shared: the endpoint
        // check fires before any state is touched, so totals, item count,
        // and the draw stream are exactly those of a never-failed sampler.
        let mut pps = GrowablePps::from_sizes(&[3, 4]).unwrap();
        pps.extend_shared(vec![0u64, 2, 5].into()).unwrap();
        let before_prefix = pps.prefix.clone();
        let before_segments = pps.segments.len();
        assert!(pps.extend_shared(vec![9u64, 4].into()).is_err()); // decreasing
        assert!(pps.extend_shared(vec![7u64, 7].into()).is_err()); // zero net
        assert!(pps.extend_shared(Vec::new().into()).is_err()); // empty
        assert_eq!(pps.prefix, before_prefix);
        assert_eq!(pps.segments.len(), before_segments);
        assert_eq!(pps.total(), 12);
        assert_eq!(pps.len(), 4);
        // Growth after the failures matches a sampler that never failed.
        pps.extend_shared(vec![0u64, 6].into()).unwrap();
        let mut clean = GrowablePps::from_sizes(&[3, 4]).unwrap();
        clean.extend_shared(vec![0u64, 2, 5].into()).unwrap();
        clean.extend_shared(vec![0u64, 6].into()).unwrap();
        assert_eq!(pps.total(), clean.total());
        assert_eq!(pps.len(), clean.len());
        for t in 0..pps.total() {
            assert_eq!(pps.locate(t), clean.locate(t), "t {t}");
        }
    }

    #[test]
    fn snapshot_restore_is_draw_identical_across_layouts() {
        // Head + shared segments + dead overlay (partial and full kills):
        // the restored sampler must be byte-stable under re-snapshot and
        // draw-for-draw identical to the original.
        let to_prefix = |sizes: &[u32]| -> Arc<[u64]> {
            let mut p = vec![0u64];
            let mut acc = 0u64;
            for &s in sizes {
                acc += s as u64;
                p.push(acc);
            }
            p.into()
        };
        let head: Vec<u32> = (0..130u32).map(|i| 1 + (i * 13) % 9).collect();
        let mut pps = GrowablePps::from_sizes(&head).unwrap();
        pps.extend_shared(to_prefix(&[3; 40])).unwrap();
        pps.extend_shared(to_prefix(
            &(0..25u32).map(|i| 1 + i % 5).collect::<Vec<_>>(),
        ))
        .unwrap();
        pps.decrement(7, 2).unwrap();
        pps.decrement(140, 3).unwrap(); // full kill inside segment A
        pps.decrement(180, 1).unwrap();
        let bytes = pps.snapshot();
        let restored = GrowablePps::restore(&bytes).unwrap();
        assert_eq!(restored.snapshot(), bytes, "round-trip not byte-stable");
        assert_eq!(restored.total(), pps.total());
        assert_eq!(restored.len(), pps.len());
        assert_eq!(restored.coarse, pps.coarse, "coarse level re-derived");
        for t in 0..pps.total() {
            assert_eq!(restored.locate(t), pps.locate(t), "t {t}");
        }
        let mut rng_a = StdRng::seed_from_u64(55);
        let mut rng_b = StdRng::seed_from_u64(55);
        for _ in 0..3_000 {
            assert_eq!(pps.sample(&mut rng_a), restored.sample(&mut rng_b));
        }
        // A compacted sampler (plateau head entries) round-trips too.
        let mut compacted = GrowablePps::from_sizes(&[10; 40]).unwrap();
        for i in 0..11 {
            compacted.decrement(2 * i, 10).unwrap();
        }
        assert_eq!(compacted.dead_weight(), 0, "compaction fired");
        let bytes = compacted.snapshot();
        let restored = GrowablePps::restore(&bytes).unwrap();
        assert_eq!(restored.snapshot(), bytes);
        for t in 0..compacted.total() {
            assert_eq!(restored.locate(t), compacted.locate(t), "t {t}");
        }
    }

    #[test]
    fn restore_rejects_structural_corruption() {
        let mut pps = GrowablePps::from_sizes(&[4, 6, 2]).unwrap();
        pps.extend_shared(vec![0u64, 5, 9].into()).unwrap();
        pps.decrement(1, 2).unwrap();
        let bytes = pps.snapshot();
        // Every truncation is a typed error, never a panic.
        for cut in 0..bytes.len() {
            assert!(GrowablePps::restore(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Wrong magic and wrong version.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            GrowablePps::restore(&bad),
            Err(CodecError::BadMagic { .. })
        ));
        let mut bad = bytes.clone();
        bad[4] = 9;
        assert!(matches!(
            GrowablePps::restore(&bad),
            Err(CodecError::UnsupportedVersion { .. })
        ));
        // A decreasing head prefix (first entries after the 8-byte length
        // at offset 6) violates monotonicity.
        let mut bad = bytes.clone();
        bad[14..22].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            GrowablePps::restore(&bad),
            Err(CodecError::Invalid { .. })
        ));
        // Trailing garbage is rejected.
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(matches!(
            GrowablePps::restore(&bad),
            Err(CodecError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn prefix_copy_failures_leave_sampler_unchanged_then_growth_matches() {
        // The extend_from_prefix rollback counterpart: after a rejected
        // batch, continuing growth yields a sampler indistinguishable from
        // one that never saw the bad batch.
        let mut pps = GrowablePps::from_sizes(&[2, 2, 2]).unwrap();
        assert!(pps.extend_from_prefix(&[0, 3, 3, 8]).is_err());
        assert!(pps.extend_from_prefix(&[5, 4]).is_err());
        pps.extend_from_prefix(&[0, 1, 4]).unwrap();
        pps.push(6).unwrap();
        let mut clean = GrowablePps::from_sizes(&[2, 2, 2]).unwrap();
        clean.extend_from_prefix(&[0, 1, 4]).unwrap();
        clean.push(6).unwrap();
        assert_eq!(pps.prefix, clean.prefix);
        assert_eq!(pps.coarse, clean.coarse);
        assert_eq!(pps.total(), clean.total());
    }
}

//! Walker/Vose alias method: O(1) weighted sampling **with replacement**.
//!
//! Weighted cluster sampling (§5.2.2) draws entity clusters with probability
//! proportional to their size, `π_i = M_i / M`, independently per draw — the
//! Hansen–Hurwitz design. On MOVIE-FULL that is 14.5M weights; the alias
//! table is built once in O(N) and then each draw costs one uniform variate
//! and one table probe, which is what makes the 130M-triple scalability
//! experiment (Fig. 7) feasible.

use crate::error::StatsError;
use rand::Rng;

/// One alias slot: acceptance threshold, alias category, and — when the
/// table was built from integer sizes — the weights and cumulative base
/// offsets of both candidate categories. Padded to 32 bytes so a slot
/// never straddles a cache line: a random draw touches exactly one line
/// where split `prob[]`/`alias[]` arrays cost two misses (and size/base
/// lookups at the call site more still). Carrying the base matters for
/// latency, not just miss count: a consumer that needs the drawn
/// category's range (`[base, base + size)`) would otherwise chain a
/// second dependent random load (slot → prefix array) before it can
/// touch the range, and that serial depth is what bounds a
/// memory-latency-bound draw loop. Bases are stored narrow (`u32`) to
/// keep the slot at 32 bytes — tables whose total weight needs more than
/// 32 bits (beyond 4.3G triples; far past every population in this
/// repository, including the paper's 130M-triple scalability run) simply
/// report no bases and consumers fall back to their own prefix lookup.
#[derive(Debug, Clone, Copy)]
#[repr(align(32))]
struct Slot {
    /// Acceptance threshold for this slot's own category.
    prob: f64,
    /// Redirect category when the acceptance draw fails.
    alias: u32,
    /// Integer weight of this slot's own category (0 unless built via
    /// [`AliasTable::from_sizes`]).
    size_self: u32,
    /// Integer weight of the alias category (0 unless built via
    /// [`AliasTable::from_sizes`]).
    size_alias: u32,
    /// Cumulative weight before this slot's own category (0 unless the
    /// table [`AliasTable::has_bases`]).
    base_self: u32,
    /// Cumulative weight before the alias category (0 unless the table
    /// [`AliasTable::has_bases`]).
    base_alias: u32,
}

/// Pre-processed alias table over `n` weights.
#[derive(Debug, Clone)]
pub struct AliasTable {
    slots: Vec<Slot>,
    /// Whether the slots carry valid cumulative base offsets (built via
    /// [`AliasTable::from_sizes`] with a total weight below `2^32`).
    has_bases: bool,
}

impl AliasTable {
    /// Build an alias table from non-negative weights (not necessarily
    /// normalized). Errors if the weights are empty, contain a negative or
    /// non-finite value, or sum to zero.
    pub fn new(weights: &[f64]) -> Result<Self, StatsError> {
        let n = weights.len();
        if n == 0 {
            return Err(StatsError::EmptyInput("alias table weights"));
        }
        if n > u32::MAX as usize {
            return Err(StatsError::InvalidWeights("more than u32::MAX weights"));
        }
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(StatsError::InvalidWeights("negative or non-finite weight"));
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(StatsError::InvalidWeights("weights sum to zero"));
        }

        // Vose's stable construction with two worklists.
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            // Move the excess of `l` onto `s`'s empty space.
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers are all ~1.0.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        let slots = prob
            .iter()
            .zip(&alias)
            .map(|(&p, &a)| Slot {
                prob: p,
                alias: a,
                size_self: 0,
                size_alias: 0,
                base_self: 0,
                base_alias: 0,
            })
            .collect();
        Ok(AliasTable {
            slots,
            has_bases: false,
        })
    }

    /// Build from integer weights (e.g. cluster sizes). Tables built this
    /// way additionally support [`AliasTable::sample_sized`], which
    /// returns the drawn category's weight from the same cache line as
    /// the draw itself.
    pub fn from_sizes(sizes: &[u32]) -> Result<Self, StatsError> {
        // Avoid an intermediate Vec<f64> allocation being optimized badly:
        // the conversion is exact for u32.
        let weights: Vec<f64> = sizes.iter().map(|&s| s as f64).collect();
        let mut t = Self::new(&weights)?;
        let mut bases = Vec::with_capacity(sizes.len());
        let mut acc = 0u64;
        for &s in sizes {
            bases.push(acc);
            acc += u64::from(s);
        }
        t.has_bases = acc <= u64::from(u32::MAX);
        for (i, slot) in t.slots.iter_mut().enumerate() {
            slot.size_self = sizes[i];
            slot.size_alias = sizes[slot.alias as usize];
            if t.has_bases {
                slot.base_self = bases[i] as u32;
                slot.base_alias = bases[slot.alias as usize] as u32;
            }
        }
        Ok(t)
    }

    /// Whether [`AliasTable::sample_sited`] returns genuine cumulative base
    /// offsets (see the slot layout note: totals at or beyond `2^32` do not
    /// fit the narrow base fields).
    #[inline]
    pub fn has_bases(&self) -> bool {
        self.has_bases
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Draw one index with probability proportional to its weight.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let n = self.slots.len();
        let i = rng.gen_range(0..n);
        let s = &self.slots[i];
        if rng.gen::<f64>() < s.prob {
            i
        } else {
            s.alias as usize
        }
    }

    /// Draw one index plus its integer weight — stream-identical to
    /// [`AliasTable::sample`] (same RNG consumption, same category), but
    /// the weight comes from the already-loaded slot instead of a second
    /// random array access at the call site. Only meaningful for tables
    /// built with [`AliasTable::from_sizes`] (others report weight 0).
    #[inline]
    pub fn sample_sized<R: Rng + ?Sized>(&self, rng: &mut R) -> (usize, u32) {
        let n = self.slots.len();
        let i = rng.gen_range(0..n);
        let s = &self.slots[i];
        if rng.gen::<f64>() < s.prob {
            (i, s.size_self)
        } else {
            (s.alias as usize, s.size_alias)
        }
    }

    /// Draw one index plus its integer weight and cumulative base offset —
    /// stream-identical to [`AliasTable::sample`] (same RNG consumption,
    /// same category), with both companions served from the already-loaded
    /// slot. A consumer that walks the drawn category's cumulative range
    /// `[base, base + size)` can start immediately after the slot arrives
    /// instead of waiting on a second dependent prefix-array load. Only
    /// meaningful for tables built with [`AliasTable::from_sizes`] whose
    /// total weight fits 32 bits ([`AliasTable::has_bases`]); others report
    /// weight and base 0.
    #[inline]
    pub fn sample_sited<R: Rng + ?Sized>(&self, rng: &mut R) -> (usize, u32, u64) {
        let n = self.slots.len();
        let i = rng.gen_range(0..n);
        let s = &self.slots[i];
        if rng.gen::<f64>() < s.prob {
            (i, s.size_self, u64::from(s.base_self))
        } else {
            (s.alias as usize, s.size_alias, u64::from(s.base_alias))
        }
    }

    /// Draw `k` indices i.i.d. (with replacement).
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<usize> {
        (0..k).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
        assert!(AliasTable::new(&[1.0, -0.5]).is_err());
        assert!(AliasTable::new(&[f64::NAN]).is_err());
        assert!(AliasTable::new(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn single_category_always_sampled() {
        let t = AliasTable::new(&[3.7]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_categories_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 2.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = t.sample(&mut rng);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn empirical_frequencies_match_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 200_000;
        let mut counts = [0u32; 4];
        for _ in 0..trials {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = weights[i] / 10.0;
            let freq = c as f64 / trials as f64;
            assert!(
                (freq - expect).abs() < 0.01,
                "category {i}: freq {freq} vs expect {expect}"
            );
        }
    }

    #[test]
    fn from_sizes_matches_float_weights() {
        let sizes = [5u32, 1, 1, 1];
        let t = AliasTable::from_sizes(&sizes).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 100_000;
        let mut big = 0u32;
        for _ in 0..trials {
            if t.sample(&mut rng) == 0 {
                big += 1;
            }
        }
        let freq = big as f64 / trials as f64;
        assert!((freq - 0.625).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn sample_many_length() {
        let t = AliasTable::new(&[1.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(t.sample_many(&mut rng, 17).len(), 17);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn handles_extreme_weight_ratios() {
        // One giant cluster among many tiny ones (long-tail KG shape).
        let mut weights = vec![1.0; 1000];
        weights[0] = 1e9;
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut hits = 0;
        for _ in 0..1000 {
            if t.sample(&mut rng) == 0 {
                hits += 1;
            }
        }
        // P(category 0) ≈ 1 − 1e-6; all 1000 draws should essentially hit it.
        assert!(hits >= 995, "hits {hits}");
    }
}

//! Walker/Vose alias method: O(1) weighted sampling **with replacement**.
//!
//! Weighted cluster sampling (§5.2.2) draws entity clusters with probability
//! proportional to their size, `π_i = M_i / M`, independently per draw — the
//! Hansen–Hurwitz design. On MOVIE-FULL that is 14.5M weights; the alias
//! table is built once in O(N) and then each draw costs one uniform variate
//! and one table probe, which is what makes the 130M-triple scalability
//! experiment (Fig. 7) feasible.

use crate::error::StatsError;
use rand::Rng;

/// Pre-processed alias table over `n` weights.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build an alias table from non-negative weights (not necessarily
    /// normalized). Errors if the weights are empty, contain a negative or
    /// non-finite value, or sum to zero.
    pub fn new(weights: &[f64]) -> Result<Self, StatsError> {
        let n = weights.len();
        if n == 0 {
            return Err(StatsError::EmptyInput("alias table weights"));
        }
        if n > u32::MAX as usize {
            return Err(StatsError::InvalidWeights("more than u32::MAX weights"));
        }
        let mut total = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(StatsError::InvalidWeights("negative or non-finite weight"));
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(StatsError::InvalidWeights("weights sum to zero"));
        }

        // Vose's stable construction with two worklists.
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            // Move the excess of `l` onto `s`'s empty space.
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers are all ~1.0.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        Ok(AliasTable { prob, alias })
    }

    /// Build from integer weights (e.g. cluster sizes).
    pub fn from_sizes(sizes: &[u32]) -> Result<Self, StatsError> {
        // Avoid an intermediate Vec<f64> allocation being optimized badly:
        // the conversion is exact for u32.
        let weights: Vec<f64> = sizes.iter().map(|&s| s as f64).collect();
        Self::new(&weights)
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw one index with probability proportional to its weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let n = self.prob.len();
        let i = rng.gen_range(0..n);
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Draw `k` indices i.i.d. (with replacement).
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<usize> {
        (0..k).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(AliasTable::new(&[]).is_err());
        assert!(AliasTable::new(&[0.0, 0.0]).is_err());
        assert!(AliasTable::new(&[1.0, -0.5]).is_err());
        assert!(AliasTable::new(&[f64::NAN]).is_err());
        assert!(AliasTable::new(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn single_category_always_sampled() {
        let t = AliasTable::new(&[3.7]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_categories_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 2.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = t.sample(&mut rng);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn empirical_frequencies_match_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let trials = 200_000;
        let mut counts = [0u32; 4];
        for _ in 0..trials {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = weights[i] / 10.0;
            let freq = c as f64 / trials as f64;
            assert!(
                (freq - expect).abs() < 0.01,
                "category {i}: freq {freq} vs expect {expect}"
            );
        }
    }

    #[test]
    fn from_sizes_matches_float_weights() {
        let sizes = [5u32, 1, 1, 1];
        let t = AliasTable::from_sizes(&sizes).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 100_000;
        let mut big = 0u32;
        for _ in 0..trials {
            if t.sample(&mut rng) == 0 {
                big += 1;
            }
        }
        let freq = big as f64 / trials as f64;
        assert!((freq - 0.625).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn sample_many_length() {
        let t = AliasTable::new(&[1.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(t.sample_many(&mut rng, 17).len(), 17);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn handles_extreme_weight_ratios() {
        // One giant cluster among many tiny ones (long-tail KG shape).
        let mut weights = vec![1.0; 1000];
        weights[0] = 1e9;
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut hits = 0;
        for _ in 0..1000 {
            if t.sample(&mut rng) == 0 {
                hits += 1;
            }
        }
        // P(category 0) ≈ 1 − 1e-6; all 1000 draws should essentially hit it.
        assert!(hits >= 995, "hits {hits}");
    }
}

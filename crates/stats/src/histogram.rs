//! Fixed-width histograms and empirical quantiles for dataset
//! characterization (cluster-size distributions, Table 3) and experiment
//! report tables.

/// A histogram over `u64` observations with unit-width integer bins up to a
/// cap, plus an overflow bin. Tracks exact count/sum/min/max.
#[derive(Debug, Clone)]
pub struct Histogram {
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Create a histogram with unit bins `0..cap` and one overflow bin.
    pub fn new(cap: usize) -> Self {
        Histogram {
            bins: vec![0; cap],
            overflow: 0,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if (value as usize) < self.bins.len() {
            self.bins[value as usize] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Build from an iterator of observations.
    pub fn from_iter<I: IntoIterator<Item = u64>>(cap: usize, values: I) -> Self {
        let mut h = Histogram::new(cap);
        for v in values {
            h.record(v);
        }
        h
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Count of observations equal to `value` (values ≥ cap return 0; use
    /// [`Histogram::overflow_count`] for the tail mass).
    pub fn bin(&self, value: u64) -> u64 {
        self.bins.get(value as usize).copied().unwrap_or(0)
    }

    /// Observations at or above the cap.
    pub fn overflow_count(&self) -> u64 {
        self.overflow
    }

    /// Fraction of observations strictly below `value` (values ≥ cap count
    /// into the overflow, so `value` must be ≤ cap for an exact answer).
    pub fn fraction_below(&self, value: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let below: u64 = self
            .bins
            .iter()
            .take((value as usize).min(self.bins.len()))
            .sum();
        below as f64 / self.count as f64
    }

    /// Empirical quantile `q ∈ [0, 1]` (nearest-rank over binned values;
    /// returns the cap value if the quantile falls in the overflow bin).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut acc = 0u64;
        for (v, &c) in self.bins.iter().enumerate() {
            acc += c;
            if acc >= rank {
                return Some(v as u64);
            }
        }
        Some(self.bins.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_basic_statistics() {
        let h = Histogram::from_iter(10, [1u64, 2, 2, 3, 9]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(9));
        assert!((h.mean() - 3.4).abs() < 1e-12);
        assert_eq!(h.bin(2), 2);
        assert_eq!(h.bin(4), 0);
    }

    #[test]
    fn overflow_handling() {
        let h = Histogram::from_iter(5, [1u64, 100, 7]);
        assert_eq!(h.overflow_count(), 2);
        assert_eq!(h.bin(100), 0);
        assert_eq!(h.max(), Some(100));
    }

    #[test]
    fn fraction_below_matches_manual_count() {
        let h = Histogram::from_iter(20, 1u64..=10);
        assert!((h.fraction_below(5) - 0.4).abs() < 1e-12);
        assert!((h.fraction_below(11) - 1.0).abs() < 1e-12);
        assert_eq!(Histogram::new(5).fraction_below(3), 0.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let h = Histogram::from_iter(20, (1u64..=100).map(|i| i % 10));
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(9));
        let med = h.quantile(0.5).unwrap();
        assert!((4..=5).contains(&med), "median {med}");
        assert_eq!(Histogram::new(5).quantile(0.5), None);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new(4);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }
}

//! Non-uniform random variate generation.
//!
//! The approved dependency set excludes `rand_distr`, so the handful of
//! distributions the experiments need are implemented here:
//!
//! * [`Normal`] — Marsaglia's polar method.
//! * [`LogNormal`] — exponentiated Normal; one of the two cluster-size
//!   generators for synthetic KG profiles.
//! * [`Zipf`] — bounded Zipf via an inverted CDF table; models the long-tail
//!   cluster-size distributions of real KGs (NELL: >98% of clusters below
//!   size 5, §7.2.2).
//! * [`BoundedPareto`] — truncated Pareto via inverse CDF; the adversarial
//!   heavy-tail generator for hostile scenario profiles (tail indices near
//!   1 put most of the mass in a few giant clusters).
//! * [`Binomial`] — exact inversion for small `n`, Normal approximation with
//!   continuity correction for large `n`; used by the Binomial Mixture Model
//!   label generator (§7.1.2) and by test harnesses.
//! * [`Exponential`] — inverse-CDF; used for inter-arrival jitter in the
//!   evolving-KG update generator.

use crate::error::StatsError;
use rand::Rng;

/// Normal distribution `N(mean, std²)` sampled with Marsaglia's polar method.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Create a Normal distribution; `std` must be finite and non-negative.
    pub fn new(mean: f64, std: f64) -> Result<Self, StatsError> {
        if !std.is_finite() || std < 0.0 {
            return Err(StatsError::invalid("std", ">= 0 and finite", std));
        }
        Ok(Normal { mean, std })
    }

    /// Draw one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.std == 0.0 {
            return self.mean;
        }
        // Marsaglia polar: draw (u,v) in the unit disc, transform.
        loop {
            let u = rng.gen::<f64>() * 2.0 - 1.0;
            let v = rng.gen::<f64>() * 2.0 - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mean + self.std * u * factor;
            }
        }
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    inner: Normal,
}

impl LogNormal {
    /// Create from the underlying Normal's parameters.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, StatsError> {
        Ok(LogNormal {
            inner: Normal::new(mu, sigma)?,
        })
    }

    /// Draw one variate (always positive).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.inner.sample(rng).exp()
    }

    /// Theoretical mean `exp(mu + sigma²/2)`.
    pub fn mean(&self) -> f64 {
        (self.inner.mean + self.inner.std * self.inner.std / 2.0).exp()
    }
}

/// Bounded Zipf distribution over `{1, …, n}` with exponent `s`:
/// `P(k) ∝ k^{-s}`. Sampling is by binary search on a precomputed CDF —
/// exact, O(log n) per draw, and cheap to build for the bounded supports
/// used by cluster-size generators (n ≤ ~100k).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a bounded Zipf over `1..=n` with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Result<Self, StatsError> {
        if n == 0 {
            return Err(StatsError::invalid("n", ">= 1", 0.0));
        }
        if s <= 0.0 || !s.is_finite() {
            return Err(StatsError::invalid("s", "> 0 and finite", s));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating point: last entry must be exactly 1.
        *cdf.last_mut().expect("n >= 1") = 1.0;
        Ok(Zipf { cdf })
    }

    /// Draw one variate in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u = rng.gen::<f64>();
        // partition_point: first index with cdf[i] >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) + 1
    }

    /// Exact pmf `P(k) = k^{-s} / H_{n,s}` of the bounded support — the
    /// analytic reference the sampler's empirical frequencies are tested
    /// against (chi-square exactness suite).
    pub fn pmf(&self, k: usize) -> f64 {
        assert!(
            (1..=self.cdf.len()).contains(&k),
            "k = {k} outside support 1..={}",
            self.cdf.len()
        );
        if k == 1 {
            self.cdf[0]
        } else {
            self.cdf[k - 1] - self.cdf[k - 2]
        }
    }

    /// Upper bound `n` of the support `1..=n`.
    pub fn support(&self) -> usize {
        self.cdf.len()
    }

    /// Theoretical mean of the bounded distribution.
    pub fn mean(&self) -> f64 {
        let n = self.cdf.len();
        let mut prev = 0.0;
        let mut mean = 0.0;
        for (i, &c) in self.cdf.iter().enumerate() {
            mean += (i + 1) as f64 * (c - prev);
            prev = c;
        }
        let _ = n;
        mean
    }
}

/// Bounded (truncated) Pareto distribution on `[scale, bound]` with tail
/// index `shape`: the classic Pareto `P(X > x) ∝ x^{-shape}` renormalized
/// to a finite support, sampled exactly by inverse CDF in O(1) per draw.
///
/// This is the adversarial counterpart of [`Zipf`]: tail indices near 1
/// concentrate most of the triple mass in a handful of giant clusters —
/// the hostile skew regime the scenario matrix stresses cluster-sampling
/// designs with. [`BoundedPareto::sample_size`] floors draws into integer
/// cluster sizes.
#[derive(Debug, Clone, Copy)]
pub struct BoundedPareto {
    scale: f64,
    shape: f64,
    bound: f64,
    /// `1 − (L/H)^α` — the truncated tail mass, precomputed.
    tail: f64,
}

impl BoundedPareto {
    /// Create a truncated Pareto on `[scale, bound]` with tail index
    /// `shape`; requires `0 < scale < bound` and `shape > 0`, all finite.
    pub fn new(scale: f64, shape: f64, bound: f64) -> Result<Self, StatsError> {
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(StatsError::invalid("scale", "> 0 and finite", scale));
        }
        if !(bound > scale && bound.is_finite()) {
            return Err(StatsError::invalid("bound", "> scale and finite", bound));
        }
        if !(shape > 0.0 && shape.is_finite()) {
            return Err(StatsError::invalid("shape", "> 0 and finite", shape));
        }
        Ok(BoundedPareto {
            scale,
            shape,
            bound,
            tail: 1.0 - (scale / bound).powf(shape),
        })
    }

    /// Exact CDF `F(x)` on the truncated support (0 below, 1 above).
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= self.scale {
            return 0.0;
        }
        if x >= self.bound {
            return 1.0;
        }
        (1.0 - (self.scale / x).powf(self.shape)) / self.tail
    }

    /// Inverse CDF: the `u`-quantile of the truncated support, `u ∈ [0, 1]`.
    pub fn quantile(&self, u: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&u),
            "quantile needs u in [0,1], got {u}"
        );
        let x = self.scale / (1.0 - u * self.tail).powf(1.0 / self.shape);
        // Floating-point guard: u → 1 may overshoot the bound by an ulp.
        x.clamp(self.scale, self.bound)
    }

    /// Draw one variate in `[scale, bound]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantile(rng.gen::<f64>())
    }

    /// Draw one integer cluster size: the variate floored, clamped into
    /// `[max(1, ⌈scale⌉), ⌊bound⌋]`.
    pub fn sample_size<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let lo = self.scale.ceil().max(1.0);
        let hi = self.bound.floor().max(lo);
        (self.sample(rng).floor().clamp(lo, hi)) as usize
    }

    /// Theoretical mean of the truncated distribution.
    pub fn mean(&self) -> f64 {
        let (l, h, a) = (self.scale, self.bound, self.shape);
        if (a - 1.0).abs() < 1e-12 {
            // α = 1: E = (L·H / (H − L)) · ln(H/L) after truncation.
            l * h / (h - l) * (h / l).ln()
        } else {
            l.powf(a) / self.tail * a / (a - 1.0) * (l.powf(1.0 - a) - h.powf(1.0 - a))
        }
    }
}

/// Binomial distribution `B(n, p)`.
///
/// Exact sequential inversion is used for `n ≤ 64` or when `n·min(p,1−p)` is
/// tiny; otherwise the Normal approximation with continuity correction is
/// used (error negligible at the scales involved and the output is clamped
/// to `[0, n]`).
#[derive(Debug, Clone, Copy)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Create `B(n, p)`; requires `0 ≤ p ≤ 1`.
    pub fn new(n: u64, p: f64) -> Result<Self, StatsError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::invalid("p", "0 <= p <= 1", p));
        }
        Ok(Binomial { n, p })
    }

    /// Draw one variate in `0..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let (n, p) = (self.n, self.p);
        if p == 0.0 || n == 0 {
            return 0;
        }
        if p == 1.0 {
            return n;
        }
        let np = n as f64 * p.min(1.0 - p);
        if n <= 64 {
            // Direct Bernoulli summation.
            let mut k = 0;
            for _ in 0..n {
                if rng.gen::<f64>() < p {
                    k += 1;
                }
            }
            return k;
        }
        if np < 10.0 {
            // Geometric skipping over the rarer outcome.
            let q = p.min(1.0 - p);
            let lq = (1.0 - q).ln();
            if lq == 0.0 {
                // q below ~5.6e-17 underflows `1 - q` to 1.0: the skip
                // `ln(u)/ln(1-q)` would be -∞, which the `as u64` cast
                // saturates to a ZERO-length jump — an O(n) crawl that
                // eventually returns the absurd count n (decades of
                // spinning first when n ~ 10^18). The true per-position
                // hit probability is under 5.6e-17, so with n·q < 10 the
                // draw is 0 hits to within ~6e-16.
                return if p <= 0.5 { 0 } else { n };
            }
            let mut count = 0u64;
            let mut pos = 0u64;
            loop {
                // A forced-zero/denormal draw is clamped so `u.ln()` stays
                // finite (≈ -708); with the lq guard above the skip then
                // fits u64, and the saturating add below keeps `pos + skip`
                // from overflowing for n near u64::MAX.
                let u = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let skip = (u.ln() / lq).floor() as u64;
                if pos.saturating_add(skip) >= n {
                    break;
                }
                pos += skip + 1;
                count += 1;
            }
            return if p <= 0.5 { count } else { n - count };
        }
        // Normal approximation with continuity correction.
        let mean = n as f64 * p;
        let std = (n as f64 * p * (1.0 - p)).sqrt();
        let g = Normal::new(mean, std).expect("valid std");
        let x = (g.sample(rng) + 0.5).floor();
        x.clamp(0.0, n as f64) as u64
    }

    /// Theoretical mean `n·p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }
}

/// Exponential distribution with rate `lambda`, sampled by inverse CDF.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Create with rate `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Self, StatsError> {
        if lambda <= 0.0 || !lambda.is_finite() {
            return Err(StatsError::invalid("lambda", "> 0 and finite", lambda));
        }
        Ok(Exponential { lambda })
    }

    /// Draw one variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = loop {
            let u = rng.gen::<f64>();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::RunningMoments;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_converge() {
        let mut rng = StdRng::seed_from_u64(21);
        let d = Normal::new(3.0, 2.0).unwrap();
        let m: RunningMoments = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        assert!((m.mean() - 3.0).abs() < 0.05, "mean {}", m.mean());
        assert!(
            (m.sample_std() - 2.0).abs() < 0.05,
            "std {}",
            m.sample_std()
        );
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let mut rng = StdRng::seed_from_u64(22);
        let d = Normal::new(1.5, 0.0).unwrap();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 1.5);
        }
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
    }

    #[test]
    fn lognormal_is_positive_with_matching_mean() {
        let mut rng = StdRng::seed_from_u64(23);
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let m: RunningMoments = (0..100_000)
            .map(|_| {
                let x = d.sample(&mut rng);
                assert!(x > 0.0);
                x
            })
            .collect();
        assert!(
            (m.mean() - d.mean()).abs() / d.mean() < 0.03,
            "mean {} vs {}",
            m.mean(),
            d.mean()
        );
    }

    #[test]
    fn zipf_frequencies_follow_power_law() {
        let mut rng = StdRng::seed_from_u64(24);
        let d = Zipf::new(100, 1.5).unwrap();
        let trials = 200_000;
        let mut counts = vec![0u32; 101];
        for _ in 0..trials {
            let k = d.sample(&mut rng);
            assert!((1..=100).contains(&k));
            counts[k] += 1;
        }
        // P(1)/P(2) should be 2^1.5 ≈ 2.83.
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 2.83).abs() < 0.2, "ratio {ratio}");
        // Empirical mean near theoretical mean.
        let emp_mean: f64 =
            (1..=100).map(|k| k as f64 * counts[k] as f64).sum::<f64>() / trials as f64;
        assert!(
            (emp_mean - d.mean()).abs() < 0.1,
            "{emp_mean} vs {}",
            d.mean()
        );
    }

    #[test]
    fn zipf_rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, 0.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_matches_ratios() {
        let d = Zipf::new(200, 1.3).unwrap();
        assert_eq!(d.support(), 200);
        let total: f64 = (1..=200).map(|k| d.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9, "pmf total {total}");
        // P(1)/P(2) = 2^1.3.
        let ratio = d.pmf(1) / d.pmf(2);
        assert!((ratio - 2f64.powf(1.3)).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "outside support")]
    fn zipf_pmf_rejects_zero() {
        Zipf::new(10, 1.0).unwrap().pmf(0);
    }

    #[test]
    fn pareto_samples_stay_in_bounds_with_matching_mean() {
        let mut rng = StdRng::seed_from_u64(31);
        let d = BoundedPareto::new(1.0, 1.3, 500.0).unwrap();
        let m: RunningMoments = (0..200_000)
            .map(|_| {
                let x = d.sample(&mut rng);
                assert!((1.0..=500.0).contains(&x));
                x
            })
            .collect();
        assert!(
            (m.mean() - d.mean()).abs() / d.mean() < 0.03,
            "mean {} vs {}",
            m.mean(),
            d.mean()
        );
    }

    #[test]
    fn pareto_cdf_quantile_round_trip() {
        let d = BoundedPareto::new(2.0, 1.0, 100.0).unwrap();
        for u in [0.0, 0.1, 0.5, 0.9, 0.999, 1.0] {
            let x = d.quantile(u);
            assert!((d.cdf(x) - u).abs() < 1e-12, "u {u} → x {x} → {}", d.cdf(x));
        }
        assert_eq!(d.cdf(0.5), 0.0);
        assert_eq!(d.cdf(1e9), 1.0);
        // α = 1 mean branch: L·H/(H−L)·ln(H/L).
        let want = 2.0 * 100.0 / 98.0 * 50f64.ln();
        assert!((d.mean() - want).abs() < 1e-9, "mean {}", d.mean());
    }

    #[test]
    fn pareto_integer_sizes_and_determinism() {
        let d = BoundedPareto::new(1.0, 1.1, 4000.0).unwrap();
        let draw = |seed: u64| -> Vec<usize> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..500).map(|_| d.sample_size(&mut rng)).collect()
        };
        let a = draw(5);
        assert_eq!(a, draw(5), "same seed must replay identically");
        assert_ne!(a, draw(6));
        assert!(a.iter().all(|&s| (1..=4000).contains(&s)));
        // Heavy tail: some draw far above the mean.
        assert!(*a.iter().max().unwrap() > 50);
    }

    #[test]
    fn pareto_rejects_bad_parameters() {
        assert!(BoundedPareto::new(0.0, 1.0, 10.0).is_err());
        assert!(BoundedPareto::new(5.0, 1.0, 5.0).is_err());
        assert!(BoundedPareto::new(1.0, 0.0, 10.0).is_err());
        assert!(BoundedPareto::new(1.0, f64::NAN, 10.0).is_err());
        assert!(BoundedPareto::new(1.0, 1.0, f64::INFINITY).is_err());
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = StdRng::seed_from_u64(25);
        assert_eq!(Binomial::new(10, 0.0).unwrap().sample(&mut rng), 0);
        assert_eq!(Binomial::new(10, 1.0).unwrap().sample(&mut rng), 10);
        assert_eq!(Binomial::new(0, 0.5).unwrap().sample(&mut rng), 0);
        assert!(Binomial::new(10, 1.5).is_err());
    }

    #[test]
    fn binomial_small_n_moments() {
        let mut rng = StdRng::seed_from_u64(26);
        let d = Binomial::new(20, 0.3).unwrap();
        let m: RunningMoments = (0..50_000).map(|_| d.sample(&mut rng) as f64).collect();
        assert!((m.mean() - 6.0).abs() < 0.1, "mean {}", m.mean());
        assert!(
            (m.sample_variance() - 4.2).abs() < 0.2,
            "var {}",
            m.sample_variance()
        );
    }

    #[test]
    fn binomial_large_n_moments() {
        let mut rng = StdRng::seed_from_u64(27);
        let d = Binomial::new(10_000, 0.85).unwrap();
        let m: RunningMoments = (0..20_000).map(|_| d.sample(&mut rng) as f64).collect();
        assert!((m.mean() - 8_500.0).abs() < 10.0, "mean {}", m.mean());
        let expect_var = 10_000.0 * 0.85 * 0.15;
        assert!(
            (m.sample_variance() - expect_var).abs() / expect_var < 0.1,
            "var {}",
            m.sample_variance()
        );
        // Always within bounds.
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) <= 10_000);
        }
    }

    #[test]
    fn binomial_rare_event_path() {
        let mut rng = StdRng::seed_from_u64(28);
        let d = Binomial::new(1_000_000, 1e-6).unwrap();
        let m: RunningMoments = (0..20_000).map(|_| d.sample(&mut rng) as f64).collect();
        // Mean ≈ 1.
        assert!((m.mean() - 1.0).abs() < 0.1, "mean {}", m.mean());
    }

    use crate::testrng::ScriptedRng;

    #[test]
    fn binomial_geometric_skip_survives_vanishing_q() {
        // p = 1e-18 underflows 1 - q to 1.0 (lq == 0): the pre-guard skip
        // was ln(u)/0 = -∞, saturating on the u64 cast to a zero-length
        // jump — an O(n) crawl returning the absurd count n after ~10^18
        // iterations. The guard answers the correct 0 immediately, RNG
        // untouched.
        let mut zeros = ScriptedRng::new(vec![]);
        let d = Binomial::new(1_000_000_000_000_000_000, 1e-18).unwrap();
        assert_eq!(d.sample(&mut zeros), 0);
        assert_eq!(zeros.consumed(), 0, "guard must not consume the RNG");
        let tiny = Binomial::new(1_000_000_000_000_000_000, 1e-300).unwrap();
        assert_eq!(tiny.sample(&mut zeros), 0);
    }

    #[test]
    fn binomial_geometric_skip_survives_forced_zero_draws() {
        // Forced-zero uniforms exercise the ln(0) clamp on the skip draw:
        // ln(MIN_POSITIVE) ≈ -708 keeps the skip finite, the saturating
        // compare breaks on the first jump past n, and the sample
        // terminates with 0 rare-outcome hits.
        let mut zeros = ScriptedRng::new(vec![]);
        let low = Binomial::new(5_000, 1e-3).unwrap();
        assert_eq!(low.sample(&mut zeros), 0);
        // Mirrored high-p branch: q = 2^-53 (the smallest non-underflowing
        // q) gives skips ~6.4e18 that must not overflow `pos + skip`; the
        // count of misses is 0, so the draw is exactly n.
        let n = 10_000_000u64;
        let high = Binomial::new(n, 1.0 - f64::EPSILON / 2.0).unwrap();
        assert_eq!(high.sample(&mut zeros), n);
    }

    #[test]
    fn exponential_mean_is_inverse_rate() {
        let mut rng = StdRng::seed_from_u64(29);
        let d = Exponential::new(4.0).unwrap();
        let m: RunningMoments = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        assert!((m.mean() - 0.25).abs() < 0.01, "mean {}", m.mean());
        assert!(Exponential::new(0.0).is_err());
    }
}

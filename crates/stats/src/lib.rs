//! # kg-stats — statistics substrate for KG accuracy evaluation
//!
//! This crate implements, from scratch, every piece of statistical machinery
//! needed by the sampling-and-estimation framework of *Efficient Knowledge
//! Graph Accuracy Evaluation* (Gao et al., VLDB 2019):
//!
//! * [`normal`] — the standard Normal distribution: `erf`/`erfc`, CDF,
//!   inverse CDF (probit), and the critical values `z_{α/2}` used by every
//!   confidence interval in the paper (Eq. 1).
//! * [`ci`] — point estimates with standard errors, margins of error, and
//!   two-sided confidence intervals.
//! * [`moments`] — numerically stable streaming mean/variance (Welford), with
//!   parallel merge, used to aggregate per-cluster accuracies and repeated
//!   experiment trials.
//! * [`srswor`] — simple random sampling *without* replacement (Floyd's
//!   algorithm and partial Fisher–Yates), the second-stage sampler of TWCS.
//! * [`alias`] — Walker/Vose alias tables for O(1) weighted sampling *with*
//!   replacement, the first-stage sampler of WCS/TWCS (clusters drawn with
//!   probability proportional to size, §5.2.2).
//! * [`pps`] — growable prefix-sum PPS sampling: O(log N) draws with
//!   amortized O(1) appends, so evolving-KG evaluators absorb update batches
//!   without rebuilding an alias table over the whole grown population.
//! * [`reservoir`] — unweighted reservoir sampling (Vitter's Algorithm R) and
//!   the weighted reservoir of Efraimidis–Spirakis (Algorithm A-Res with
//!   exponential-jump skipping), the engine of the paper's Algorithm 1.
//! * [`stratify`] — the Dalenius–Hodges cumulative-√F stratification rule and
//!   proportional/Neyman sample allocation (§5.3).
//! * [`distr`] — non-uniform variate generation (Normal, LogNormal, Binomial,
//!   bounded Zipf, Exponential). These normally live in `rand_distr`; they are
//!   re-implemented here because the reproduction restricts external crates
//!   and because the experiment generators need deterministic, documented
//!   samplers.
//! * [`histogram`] — fixed-width histograms and empirical quantiles for
//!   dataset characterization and report tables.
//! * [`codec`] — hand-rolled versioned binary codec (magic + version header,
//!   length-prefixed sequences, exact u64 float bit patterns) backing the
//!   `snapshot()/restore()` pairs on [`WeightedReservoirExpJ`],
//!   [`GrowablePps`], and [`RunningMoments`], so monitor state survives
//!   process restarts bitwise.
//! * [`atomicfile`] — temp-file + rename writes, shared by benchmark
//!   artifacts and the session spill store so neither ever exposes a
//!   torn file to a reader.
//!
//! Everything is deterministic given a seeded RNG and has no global state.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alias;
pub mod atomicfile;
pub mod ci;
pub mod codec;
pub mod distr;
pub mod error;
pub mod fastset;
pub mod histogram;
pub mod moments;
pub mod normal;
pub mod pps;
pub mod reservoir;
pub mod srswor;
pub mod stratify;

pub use alias::AliasTable;
pub use atomicfile::write_atomic;
pub use ci::{ConfidenceInterval, PointEstimate};
pub use codec::{CodecError, Decoder, Encoder};
pub use error::StatsError;
pub use histogram::Histogram;
pub use moments::RunningMoments;
pub use normal::{erf, erfc, normal_cdf, normal_quantile, z_critical};
pub use pps::GrowablePps;
pub use reservoir::{Reservoir, WeightedReservoir, WeightedReservoirExpJ};
pub use stratify::{cum_sqrt_f_boundaries, Allocation, StratumBounds};

/// Shared test-only RNG shims for the `ln(0)` edge regressions.
#[cfg(test)]
pub(crate) mod testrng {
    /// Plays a fixed script of raw RNG words, then returns zero forever —
    /// the forced-zero shim used to pin down every `ln(0)` guard
    /// (reservoir skip draws, geometric skipping) without hanging on a
    /// redraw loop.
    pub struct ScriptedRng {
        script: Vec<u64>,
        pos: usize,
    }

    impl ScriptedRng {
        /// Shim that plays `script` and then zeros.
        pub fn new(script: Vec<u64>) -> Self {
            ScriptedRng { script, pos: 0 }
        }

        /// Raw words consumed so far.
        pub fn consumed(&self) -> usize {
            self.pos
        }
    }

    impl rand::RngCore for ScriptedRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let v = self.script.get(self.pos).copied().unwrap_or(0);
            self.pos += 1;
            v
        }
    }

    /// Raw word whose `gen::<f64>()` image is `u` (53-bit grid).
    pub fn word_for(u: f64) -> u64 {
        ((u * (1u64 << 53) as f64) as u64) << 11
    }
}

//! Numerically stable streaming moments (Welford's online algorithm) with
//! parallel merge (Chan et al.), used to aggregate per-cluster accuracies
//! inside estimators and to summarize repeated experiment trials
//! (mean ± std over 1000 runs, §7.1.5).

use crate::codec::{CodecError, Decoder, Encoder};

/// Streaming count / mean / variance accumulator.
///
/// `push` is O(1) and stable; `merge` combines two accumulators as if their
/// streams had been concatenated, enabling parallel trial aggregation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMoments {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningMoments {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulator pre-filled from a slice.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut m = Self::new();
        for &v in values {
            m.push(v);
        }
        m
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Merge another accumulator into this one (parallel combine).
    pub fn merge(&mut self, other: &RunningMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance `s² = m2/(n−1)`; 0.0 when `n < 2`.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance `m2/n`; 0.0 when empty.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Estimated variance of the sample mean, `s²/n` — the plug-in used by
    /// Hansen–Hurwitz CIs in the paper (e.g. below Eq. 8/9).
    pub fn variance_of_mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sample_variance() / self.count as f64
        }
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        self.variance_of_mean().sqrt()
    }

    /// Serialize into a standalone `KGRM` v1 record (see [`crate::codec`]).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::with_header(Self::MAGIC, Self::VERSION);
        self.snapshot_into(&mut e);
        e.finish()
    }

    /// Restore from a standalone `KGRM` record. Bitwise inverse of
    /// [`Self::snapshot`]; typed error on corrupt/truncated/unknown-version
    /// input.
    pub fn restore(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::new(bytes);
        let version = d.expect_header(Self::MAGIC)?;
        if version != Self::VERSION {
            return Err(CodecError::UnsupportedVersion {
                magic: Self::MAGIC,
                found: version,
                supported: Self::VERSION,
            });
        }
        let m = Self::restore_from(&mut d)?;
        d.finish()?;
        Ok(m)
    }

    /// Record magic for standalone snapshots.
    pub const MAGIC: [u8; 4] = *b"KGRM";
    /// Current snapshot format version.
    pub const VERSION: u16 = 1;

    /// Append the headerless field payload (for embedding in composite
    /// records like `MonitorState`).
    pub fn snapshot_into(&self, e: &mut Encoder) {
        e.put_u64(self.count);
        e.put_f64(self.mean);
        e.put_f64(self.m2);
    }

    /// Decode the headerless field payload written by
    /// [`Self::snapshot_into`].
    pub fn restore_from(d: &mut Decoder<'_>) -> Result<Self, CodecError> {
        let count = d.get_u64("moments count")?;
        let mean = d.get_f64("moments mean")?;
        let m2 = d.get_f64("moments m2")?;
        if mean.is_nan() || m2.is_nan() {
            return Err(CodecError::Invalid {
                what: "moments mean/m2 must not be NaN",
            });
        }
        Ok(Self { count, mean, m2 })
    }
}

impl Extend<f64> for RunningMoments {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for RunningMoments {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut m = Self::new();
        m.extend(iter);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b}");
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let m = RunningMoments::from_slice(&xs);
        assert_close(m.mean(), 5.0, 1e-12);
        assert_close(m.population_variance(), 4.0, 1e-12);
        assert_close(m.sample_variance(), 32.0 / 7.0, 1e-12);
        assert_eq!(m.count(), 8);
    }

    #[test]
    fn empty_and_singleton_are_defined() {
        let empty = RunningMoments::new();
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.sample_variance(), 0.0);
        assert_eq!(empty.std_error(), 0.0);
        let mut one = RunningMoments::new();
        one.push(42.0);
        assert_close(one.mean(), 42.0, 1e-12);
        assert_eq!(one.sample_variance(), 0.0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs: Vec<f64> = (0..57).map(|i| (i as f64).sin() * 10.0).collect();
        let (a, b) = xs.split_at(23);
        let mut ma = RunningMoments::from_slice(a);
        let mb = RunningMoments::from_slice(b);
        ma.merge(&mb);
        let full = RunningMoments::from_slice(&xs);
        assert_eq!(ma.count(), full.count());
        assert_close(ma.mean(), full.mean(), 1e-10);
        assert_close(ma.sample_variance(), full.sample_variance(), 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let xs = [1.0, 2.0, 3.0];
        let mut m = RunningMoments::from_slice(&xs);
        m.merge(&RunningMoments::new());
        assert_close(m.mean(), 2.0, 1e-12);
        let mut e = RunningMoments::new();
        e.merge(&m);
        assert_close(e.mean(), 2.0, 1e-12);
        assert_eq!(e.count(), 3);
    }

    #[test]
    fn variance_of_mean_is_s2_over_n() {
        let xs = [1.0, 3.0, 5.0, 7.0];
        let m = RunningMoments::from_slice(&xs);
        assert_close(m.variance_of_mean(), m.sample_variance() / 4.0, 1e-12);
        assert_close(m.std_error(), m.variance_of_mean().sqrt(), 1e-15);
    }

    #[test]
    fn from_iterator_collects() {
        let m: RunningMoments = (1..=100).map(|i| i as f64).collect();
        assert_close(m.mean(), 50.5, 1e-12);
        assert_eq!(m.count(), 100);
    }

    #[test]
    fn snapshot_restore_is_bitwise() {
        let mut m = RunningMoments::new();
        for i in 0..37 {
            m.push((i as f64).sin() * 3.0 + 0.1);
        }
        let bytes = m.snapshot();
        let r = RunningMoments::restore(&bytes).unwrap();
        assert_eq!(r.count, m.count);
        assert_eq!(r.mean.to_bits(), m.mean.to_bits());
        assert_eq!(r.m2.to_bits(), m.m2.to_bits());
        assert_eq!(r.snapshot(), bytes);
        // Truncations are typed errors, never panics.
        for cut in 0..bytes.len() {
            assert!(RunningMoments::restore(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn stable_for_large_offsets() {
        // Classic catastrophic-cancellation case for naive sum-of-squares.
        let base = 1e9;
        let m = RunningMoments::from_slice(&[base + 1.0, base + 2.0, base + 3.0]);
        assert_close(m.sample_variance(), 1.0, 1e-6);
    }
}

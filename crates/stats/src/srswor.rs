//! Simple random sampling **without replacement** from `0..n`.
//!
//! This is the second-stage sampler of TWCS (§5.2.3): `min{M_i, m}` triples
//! are drawn without replacement from each sampled cluster, and the whole of
//! SRS (§5.1) when applied over the global triple index space.
//!
//! Two algorithms are provided and an adaptive front-end picks between them:
//!
//! * **Floyd's algorithm** — O(k) expected time and O(k) memory, ideal when
//!   `k ≪ n` (sampling 174 triples out of 130M).
//! * **Partial Fisher–Yates** — O(n) memory but exactly k swaps, better when
//!   `k` is a sizable fraction of `n` (second-stage draws from small
//!   clusters).

use crate::fastset::IndexSet;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use std::collections::HashSet;

/// Draw `k` distinct indices uniformly at random from `0..n`, without
/// replacement, using Robert Floyd's algorithm. Returns indices in
/// unspecified order. Panics if `k > n`.
pub fn sample_floyd<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot draw {k} distinct items from {n}");
    let mut chosen: HashSet<usize> = HashSet::with_capacity(k * 2);
    let mut out = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        if chosen.insert(t) {
            out.push(t);
        } else {
            chosen.insert(j);
            out.push(j);
        }
    }
    out
}

/// Draw `k` distinct indices from `0..n` via a partial Fisher–Yates shuffle.
/// O(n) memory. Returns indices in the (random) order drawn. Panics if
/// `k > n`.
pub fn sample_fisher_yates<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot draw {k} distinct items from {n}");
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

/// Adaptive SRS-without-replacement over `0..n`: uses Floyd when `k` is a
/// small fraction of `n`, partial Fisher–Yates otherwise.
pub fn sample_without_replacement<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(k);
    sample_without_replacement_into(rng, n, k, &mut out);
    out
}

/// Allocation-free [`sample_without_replacement`]: fills a caller-owned
/// scratch buffer (cleared first) instead of returning a fresh `Vec`, so a
/// hot loop reuses one buffer across millions of second-stage draws.
///
/// Consumes the RNG identically to the allocating front-end and produces
/// the same sample in the same order, so the two are interchangeable
/// mid-stream. The Floyd branch deduplicates by linear scan over the
/// output — for the second-stage draw sizes this backs (`m` in 3–20) that
/// is faster than hashing, and it allocates nothing.
pub fn sample_without_replacement_into<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    k: usize,
    out: &mut Vec<usize>,
) {
    assert!(k <= n, "cannot draw {k} distinct items from {n}");
    out.clear();
    if k == n {
        // Degenerate "sample": the whole population (order irrelevant for
        // estimation; keep it cheap and deterministic).
        out.extend(0..n);
        return;
    }
    if n > 64 && k * 8 < n {
        // Floyd, with the chosen-set replaced by a scan of what's already
        // in `out` (identical membership, identical RNG stream).
        for j in (n - k)..n {
            let t = rng.gen_range(0..=j);
            if out.contains(&t) {
                out.push(j);
            } else {
                out.push(t);
            }
        }
    } else {
        // Partial Fisher–Yates using `out` itself as the shuffle pool.
        out.extend(0..n);
        for i in 0..k {
            let j = rng.gen_range(i..n);
            out.swap(i, j);
        }
        out.truncate(k);
    }
}

/// Incremental without-replacement sampler over a fixed population `0..n`
/// that supports drawing additional batches later, never repeating an index.
///
/// This backs the *iterative* SRS design: the framework draws a batch, checks
/// the MoE, and draws more (Fig. 2) — all batches must stay mutually
/// disjoint for the without-replacement estimator to be valid. The drawn
/// set is a SplitMix64-hashed [`IndexSet`] rather than a SipHash
/// `HashSet`: one insert per drawn triple is SRS's hottest non-annotation
/// cost at the 10^6+ scale.
#[derive(Debug, Clone)]
pub struct IncrementalSrswor {
    n: usize,
    drawn: IndexSet,
}

impl IncrementalSrswor {
    /// New sampler over population `0..n`.
    pub fn new(n: usize) -> Self {
        IncrementalSrswor {
            n,
            drawn: IndexSet::new(),
        }
    }

    /// Population size.
    pub fn population(&self) -> usize {
        self.n
    }

    /// Number of indices drawn so far.
    pub fn drawn(&self) -> usize {
        self.drawn.len()
    }

    /// How many indices remain undrawn.
    pub fn remaining(&self) -> usize {
        self.n - self.drawn.len()
    }

    /// Draw up to `k` new distinct indices (fewer if the population is nearly
    /// exhausted). Each returned index has never been returned before.
    pub fn draw_batch<R: Rng + ?Sized>(&mut self, rng: &mut R, k: usize) -> Vec<usize> {
        let k = k.min(self.remaining());
        let mut out = Vec::with_capacity(k);
        if k == 0 {
            return out;
        }
        // Rejection sampling is fine while the drawn set is sparse; fall back
        // to enumerating the complement when it is not.
        let dense = (self.drawn.len() + k) * 2 > self.n;
        if dense {
            let mut pool: Vec<usize> = (0..self.n)
                .filter(|&i| !self.drawn.contains(i as u64))
                .collect();
            for i in 0..k {
                let j = rng.gen_range(i..pool.len());
                pool.swap(i, j);
            }
            pool.truncate(k);
            for &i in &pool {
                self.drawn.insert(i as u64);
            }
            out = pool;
        } else {
            // Rejection loop: precompute the range's rejection zone once
            // and pre-size the drawn set, so the loop body is a sample, a
            // probe, and a push — no rehash-and-reinsert cycles mid-batch.
            self.drawn.reserve(k);
            let dist = Uniform::new(0usize, self.n);
            while out.len() < k {
                let i = dist.sample(rng);
                if self.drawn.insert(i as u64) {
                    out.push(i);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_valid_sample(sample: &[usize], n: usize, k: usize) {
        assert_eq!(sample.len(), k);
        let set: HashSet<_> = sample.iter().collect();
        assert_eq!(set.len(), k, "duplicates in sample");
        assert!(sample.iter().all(|&i| i < n));
    }

    #[test]
    fn floyd_produces_distinct_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(n, k) in &[(10, 3), (100, 100), (1000, 1), (50, 0), (7, 7)] {
            check_valid_sample(&sample_floyd(&mut rng, n, k), n, k);
        }
    }

    #[test]
    fn fisher_yates_produces_distinct_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(n, k) in &[(10, 3), (100, 100), (1000, 1), (50, 0)] {
            check_valid_sample(&sample_fisher_yates(&mut rng, n, k), n, k);
        }
    }

    #[test]
    fn adaptive_produces_distinct_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(n, k) in &[(10, 3), (100_000, 5), (64, 64), (65, 64), (1, 1)] {
            check_valid_sample(&sample_without_replacement(&mut rng, n, k), n, k);
        }
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn panics_when_k_exceeds_n() {
        let mut rng = StdRng::seed_from_u64(4);
        sample_without_replacement(&mut rng, 3, 4);
    }

    #[test]
    fn into_variant_matches_original_algorithms() {
        // The `_into` front-end must reproduce the *original* Floyd /
        // Fisher–Yates implementations (still exported above) exactly —
        // same sample, same order, same RNG consumption — since every
        // seeded experiment's stream is calibrated against them.
        let mut scratch = Vec::new();
        for &(n, k) in &[(10, 3), (100_000, 5), (64, 64), (65, 64), (1, 1), (9, 0)] {
            let mut rng_a = StdRng::seed_from_u64(41);
            let mut rng_b = StdRng::seed_from_u64(41);
            let reference = if k == n {
                (0..n).collect::<Vec<usize>>()
            } else if n > 64 && k * 8 < n {
                sample_floyd(&mut rng_a, n, k)
            } else {
                sample_fisher_yates(&mut rng_a, n, k)
            };
            sample_without_replacement_into(&mut rng_b, n, k, &mut scratch);
            assert_eq!(reference, scratch, "n={n} k={k}");
            check_valid_sample(&scratch, n, k);
            // Streams stay aligned after the draw.
            assert_eq!(
                rng_a.gen_range(0..u64::MAX),
                rng_b.gen_range(0..u64::MAX),
                "stream diverged at n={n} k={k}"
            );
            // And the allocating front-end is the same function.
            let mut rng_c = StdRng::seed_from_u64(41);
            assert_eq!(
                sample_without_replacement(&mut rng_c, n, k),
                scratch,
                "n={n} k={k}"
            );
        }
    }

    #[test]
    fn floyd_is_approximately_uniform() {
        // Each of 10 items should appear in ~3/10 of draws of size 3.
        let mut rng = StdRng::seed_from_u64(5);
        let trials = 30_000;
        let mut counts = [0u32; 10];
        for _ in 0..trials {
            for i in sample_floyd(&mut rng, 10, 3) {
                counts[i] += 1;
            }
        }
        for &c in &counts {
            let freq = c as f64 / trials as f64;
            assert!((freq - 0.3).abs() < 0.02, "freq {freq} far from 0.3");
        }
    }

    #[test]
    fn incremental_batches_are_disjoint_and_exhaustive() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut s = IncrementalSrswor::new(100);
        let mut seen = HashSet::new();
        let mut total = 0;
        while s.remaining() > 0 {
            let batch = s.draw_batch(&mut rng, 17);
            for i in &batch {
                assert!(seen.insert(*i), "index {i} repeated across batches");
            }
            total += batch.len();
        }
        assert_eq!(total, 100);
        assert_eq!(s.drawn(), 100);
        // Further draws yield nothing.
        assert!(s.draw_batch(&mut rng, 5).is_empty());
    }

    #[test]
    fn incremental_uniformity_of_first_batch() {
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 20_000;
        let mut counts = [0u32; 20];
        for _ in 0..trials {
            let mut s = IncrementalSrswor::new(20);
            for i in s.draw_batch(&mut rng, 5) {
                counts[i] += 1;
            }
        }
        for &c in &counts {
            let freq = c as f64 / trials as f64;
            assert!((freq - 0.25).abs() < 0.02, "freq {freq} far from 0.25");
        }
    }
}

//! The standard Normal distribution: error function, CDF, inverse CDF, and
//! the critical values `z_{α/2}` used to build every confidence interval in
//! the paper (Eq. 1: `μ̂ ± z_{α/2} · sqrt(σ²/n)`).
//!
//! Implemented from scratch (no external stats crate):
//!
//! * [`erfc`] uses the Chebyshev-fitted rational approximation from
//!   *Numerical Recipes* (§6.2), accurate to ~1.2e-7 relative error, which is
//!   far below sampling noise in any experiment here.
//! * [`normal_quantile`] uses Acklam's rational approximation followed by one
//!   Halley refinement step against the high-precision CDF, giving ~1e-13
//!   absolute error over (0, 1).

use crate::error::StatsError;

/// Complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Valid for all finite `x`; relative error ≲ 1.2e-7.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;
    // Chebyshev coefficients from Numerical Recipes (3rd ed., §6.2.2).
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.419697923564902e-1,
        1.9476473204185836e-2,
        -9.56151478680863e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];
    let mut d = 0.0;
    let mut dd = 0.0;
    for &c in COF.iter().rev().take(COF.len() - 1) {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    let ans = t * (-z * z + 0.5 * (COF[0] + ty * d) - dd).exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function `erf(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Standard Normal cumulative distribution function `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard Normal probability density function `φ(x)`.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverse of the standard Normal CDF (the probit function).
///
/// Returns `x` such that `Φ(x) = p`. Errors unless `0 < p < 1`.
pub fn normal_quantile(p: f64) -> Result<f64, StatsError> {
    if !(0.0 < p && p < 1.0) {
        return Err(StatsError::invalid("p", "0 < p < 1", p));
    }
    // Acklam's rational approximation.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the accurate CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    Ok(x - u / (1.0 + x * u / 2.0))
}

/// Two-sided Normal critical value `z_{α/2}` with right-tail probability α/2.
///
/// This is the multiplier of the standard error in a `1−α` confidence
/// interval (paper Eq. 1). `z_critical(0.05) ≈ 1.959964`.
pub fn z_critical(alpha: f64) -> Result<f64, StatsError> {
    if !(0.0 < alpha && alpha < 1.0) {
        return Err(StatsError::invalid("alpha", "0 < alpha < 1", alpha));
    }
    normal_quantile(1.0 - alpha / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn erf_matches_reference_values() {
        // Reference values from Abramowitz & Stegun tables.
        assert_close(erf(0.0), 0.0, 1e-12);
        assert_close(erf(0.5), 0.5204998778, 1e-7);
        assert_close(erf(1.0), 0.8427007929, 1e-7);
        assert_close(erf(2.0), 0.9953222650, 1e-7);
        assert_close(erf(-1.0), -0.8427007929, 1e-7);
        assert_close(erf(3.5), 0.999999257, 1e-7);
    }

    #[test]
    fn erfc_is_complement_of_erf() {
        for &x in &[-2.5, -1.0, -0.1, 0.0, 0.3, 1.7, 4.0] {
            assert_close(erf(x) + erfc(x), 1.0, 1e-12);
        }
    }

    #[test]
    fn cdf_reference_values() {
        assert_close(normal_cdf(0.0), 0.5, 1e-12);
        assert_close(normal_cdf(1.0), 0.8413447461, 1e-7);
        assert_close(normal_cdf(-1.96), 0.0249978951, 1e-7);
        assert_close(normal_cdf(2.575829), 0.995, 1e-6);
    }

    #[test]
    fn quantile_is_inverse_of_cdf() {
        for &p in &[0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999] {
            let x = normal_quantile(p).unwrap();
            assert_close(normal_cdf(x), p, 1e-9);
        }
    }

    #[test]
    fn standard_critical_values() {
        assert_close(z_critical(0.10).unwrap(), 1.6448536, 1e-5);
        assert_close(z_critical(0.05).unwrap(), 1.9599640, 1e-5);
        assert_close(z_critical(0.01).unwrap(), 2.5758293, 1e-5);
    }

    #[test]
    fn quantile_rejects_out_of_range() {
        assert!(normal_quantile(0.0).is_err());
        assert!(normal_quantile(1.0).is_err());
        assert!(normal_quantile(-0.5).is_err());
        assert!(z_critical(0.0).is_err());
        assert!(z_critical(1.5).is_err());
    }

    #[test]
    fn pdf_integrates_to_cdf_numerically() {
        // Crude trapezoid check: ∫_{-4}^{1} φ ≈ Φ(1) − Φ(−4).
        let (a, b, n) = (-4.0_f64, 1.0_f64, 20_000);
        let h = (b - a) / n as f64;
        let mut sum = 0.5 * (normal_pdf(a) + normal_pdf(b));
        for i in 1..n {
            sum += normal_pdf(a + h * i as f64);
        }
        assert_close(sum * h, normal_cdf(b) - normal_cdf(a), 1e-8);
    }

    #[test]
    fn quantile_symmetry() {
        for &p in &[0.01, 0.2, 0.35] {
            let lo = normal_quantile(p).unwrap();
            let hi = normal_quantile(1.0 - p).unwrap();
            assert_close(lo, -hi, 1e-10);
        }
    }
}

//! Stratification machinery (§5.3 of the paper).
//!
//! * [`cum_sqrt_f_boundaries`] — the Dalenius–Hodges *cumulative square root
//!   of frequency* rule (paper reference [12]) used by the "Size
//!   Stratification" strategy: build a histogram of the stratification
//!   signal (cluster size), accumulate `√f` over bins, and cut the
//!   cumulative curve into `H` equal spans.
//! * [`Allocation`] — how to split a sample budget across strata:
//!   proportional to stratum population, Neyman-optimal (∝ `W_h·S_h`), or
//!   equal.

use crate::error::StatsError;

/// A half-open stratum range `[lo, hi)` over the stratification signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StratumBounds {
    /// Inclusive lower bound of the signal value.
    pub lo: u64,
    /// Exclusive upper bound (`u64::MAX` for the last stratum).
    pub hi: u64,
}

impl StratumBounds {
    /// Whether the signal value falls in this stratum.
    pub fn contains(&self, value: u64) -> bool {
        value >= self.lo && value < self.hi
    }
}

/// Dalenius–Hodges cumulative-√F stratum boundaries.
///
/// `values` are the stratification signal (e.g. cluster sizes); `strata` is
/// the desired number of strata `H ≥ 1`. Returns `H` contiguous
/// [`StratumBounds`] covering `[min(values), u64::MAX)`.
///
/// When the signal has fewer than `H` distinct values the result may contain
/// fewer strata (degenerate bins are merged), which callers must accept —
/// e.g. NELL's cluster sizes have ~98% of mass below 5 and the paper uses
/// only two strata there (Table 7 caption).
pub fn cum_sqrt_f_boundaries(
    values: &[u64],
    strata: usize,
) -> Result<Vec<StratumBounds>, StatsError> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput("stratification signal"));
    }
    if strata == 0 {
        return Err(StatsError::invalid("strata", ">= 1", 0.0));
    }
    let min = *values.iter().min().expect("non-empty");
    let max = *values.iter().max().expect("non-empty");
    if strata == 1 || min == max {
        return Ok(vec![StratumBounds {
            lo: min,
            hi: u64::MAX,
        }]);
    }

    // Frequency per distinct signal value (signal domains here — cluster
    // sizes — are small integers, so a dense table keyed by value is fine;
    // cap the table to avoid pathological memory use for huge outliers by
    // bucketing the tail logarithmically).
    let span = max - min;
    let dense_ok = span <= 1_048_576;
    type BinOf = Box<dyn Fn(u64) -> usize>;
    type ValueOf = Box<dyn Fn(usize) -> u64>;
    let (bin_of, value_of): (BinOf, ValueOf) = if dense_ok {
        (
            Box::new(move |v: u64| (v - min) as usize),
            Box::new(move |b: usize| min + b as u64),
        )
    } else {
        // Logarithmic bins above 2^20 distinct values.
        let lo_f = min as f64;
        let ratio = (max as f64 / lo_f.max(1.0)).ln() / 1_048_576.0;
        (
            Box::new(move |v: u64| {
                (((v as f64 / lo_f.max(1.0)).ln() / ratio) as usize).min(1_048_575)
            }),
            Box::new(move |b: usize| (lo_f.max(1.0) * (ratio * b as f64).exp()).round() as u64),
        )
    };
    let nbins = if dense_ok {
        span as usize + 1
    } else {
        1_048_576
    };
    let mut freq = vec![0u64; nbins];
    for &v in values {
        freq[bin_of(v)] += 1;
    }

    // Cumulative sqrt(f) and equal cuts.
    let total_sqrt: f64 = freq.iter().map(|&f| (f as f64).sqrt()).sum();
    let step = total_sqrt / strata as f64;
    let mut bounds = Vec::with_capacity(strata);
    let mut acc = 0.0;
    let mut next_cut = step;
    let mut lo = min;
    for (b, &f) in freq.iter().enumerate() {
        acc += (f as f64).sqrt();
        if acc >= next_cut && bounds.len() + 1 < strata {
            let hi = value_of(b) + 1;
            if hi > lo {
                bounds.push(StratumBounds { lo, hi });
                lo = hi;
            }
            next_cut += step;
        }
    }
    bounds.push(StratumBounds { lo, hi: u64::MAX });
    Ok(bounds)
}

/// Assign each value to its stratum index given sorted contiguous bounds.
pub fn assign_strata(values: &[u64], bounds: &[StratumBounds]) -> Vec<usize> {
    values
        .iter()
        .map(|&v| {
            bounds
                .iter()
                .position(|b| b.contains(v))
                .unwrap_or(bounds.len() - 1)
        })
        .collect()
}

/// Sample-allocation policies across `H` strata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Allocation {
    /// `n_h ∝ W_h` (stratum population weight).
    Proportional,
    /// Neyman-optimal: `n_h ∝ W_h · S_h` using per-stratum standard
    /// deviations; falls back to proportional when all `S_h` are zero.
    Neyman,
    /// Equal split.
    Equal,
}

impl Allocation {
    /// Split a batch of `total` draws across strata.
    ///
    /// `weights` are stratum population weights `W_h` (summing to ~1);
    /// `stds` are per-stratum standard deviation estimates (used only by
    /// Neyman; pass `&[]` otherwise). Every stratum with positive weight
    /// gets at least one draw when `total >= H⁺` (the number of positive-
    /// weight strata); remainders go to the largest fractional shares.
    pub fn allocate(&self, total: usize, weights: &[f64], stds: &[f64]) -> Vec<usize> {
        let h = weights.len();
        if h == 0 || total == 0 {
            return vec![0; h];
        }
        let scores: Vec<f64> = match self {
            Allocation::Proportional => weights.to_vec(),
            Allocation::Equal => vec![1.0; h],
            Allocation::Neyman => {
                let s: Vec<f64> = (0..h)
                    .map(|i| weights[i] * stds.get(i).copied().unwrap_or(0.0))
                    .collect();
                if s.iter().all(|&x| x <= 0.0) {
                    weights.to_vec()
                } else {
                    s
                }
            }
        };
        let mass: f64 = scores.iter().filter(|&&s| s > 0.0).sum();
        if mass <= 0.0 {
            let mut out = vec![0; h];
            out[0] = total;
            return out;
        }
        // Largest-remainder apportionment.
        let mut out = vec![0usize; h];
        let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(h);
        let mut assigned = 0usize;
        for i in 0..h {
            let share = scores[i].max(0.0) / mass * total as f64;
            out[i] = share.floor() as usize;
            assigned += out[i];
            fracs.push((i, share - share.floor()));
        }
        fracs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite fractions"));
        let mut left = total - assigned;
        for (i, _) in fracs {
            if left == 0 {
                break;
            }
            out[i] += 1;
            left -= 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_cover_and_partition() {
        let values: Vec<u64> = (0..1000).map(|i| 1 + (i % 40)).collect();
        let bounds = cum_sqrt_f_boundaries(&values, 4).unwrap();
        assert!(bounds.len() <= 4 && !bounds.is_empty());
        // Contiguity + coverage.
        assert_eq!(bounds[0].lo, 1);
        for w in bounds.windows(2) {
            assert_eq!(w[0].hi, w[1].lo);
        }
        assert_eq!(bounds.last().unwrap().hi, u64::MAX);
        // Every value maps to exactly one stratum.
        for &v in &values {
            let n = bounds.iter().filter(|b| b.contains(v)).count();
            assert_eq!(n, 1, "value {v} in {n} strata");
        }
    }

    #[test]
    fn single_stratum_when_requested_or_degenerate() {
        let values = vec![7u64; 100];
        assert_eq!(cum_sqrt_f_boundaries(&values, 5).unwrap().len(), 1);
        let mixed: Vec<u64> = (1..100).collect();
        assert_eq!(cum_sqrt_f_boundaries(&mixed, 1).unwrap().len(), 1);
    }

    #[test]
    fn rejects_empty_and_zero_strata() {
        assert!(cum_sqrt_f_boundaries(&[], 3).is_err());
        assert!(cum_sqrt_f_boundaries(&[1, 2, 3], 0).is_err());
    }

    #[test]
    fn long_tail_splits_low_sizes_finely() {
        // NELL-like: 98% of clusters of size 1..5, a few huge.
        let mut values: Vec<u64> = (0..980).map(|i| 1 + (i as u64 % 5)).collect();
        values.extend(std::iter::repeat_n(100, 20));
        let bounds = cum_sqrt_f_boundaries(&values, 2).unwrap();
        assert_eq!(bounds.len(), 2);
        // The first cut should land within the dense low range.
        assert!(bounds[0].hi <= 10, "cut at {}", bounds[0].hi);
    }

    #[test]
    fn assignment_matches_contains() {
        let values = vec![1u64, 5, 9, 100, 3];
        let bounds = vec![
            StratumBounds { lo: 1, hi: 4 },
            StratumBounds { lo: 4, hi: 10 },
            StratumBounds {
                lo: 10,
                hi: u64::MAX,
            },
        ];
        assert_eq!(assign_strata(&values, &bounds), vec![0, 1, 1, 2, 0]);
    }

    #[test]
    fn proportional_allocation_sums_and_tracks_weights() {
        let alloc = Allocation::Proportional.allocate(100, &[0.5, 0.3, 0.2], &[]);
        assert_eq!(alloc.iter().sum::<usize>(), 100);
        assert_eq!(alloc, vec![50, 30, 20]);
    }

    #[test]
    fn neyman_prefers_high_variance_strata() {
        let alloc = Allocation::Neyman.allocate(100, &[0.5, 0.5], &[0.0, 0.4]);
        assert_eq!(alloc.iter().sum::<usize>(), 100);
        assert!(alloc[1] > alloc[0]);
        // All-zero stds fall back to proportional.
        let fb = Allocation::Neyman.allocate(10, &[0.9, 0.1], &[0.0, 0.0]);
        assert!(fb[0] > fb[1]);
    }

    #[test]
    fn equal_allocation_balances() {
        let alloc = Allocation::Equal.allocate(10, &[0.9, 0.05, 0.05], &[]);
        assert_eq!(alloc.iter().sum::<usize>(), 10);
        assert!(alloc.iter().all(|&n| n >= 3));
    }

    #[test]
    fn allocation_handles_zero_total_and_empty() {
        assert_eq!(Allocation::Proportional.allocate(0, &[1.0], &[]), vec![0]);
        assert!(Allocation::Proportional.allocate(5, &[], &[]).is_empty());
    }
}

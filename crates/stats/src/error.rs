//! Error type shared by the statistics substrate.

use std::fmt;

/// Errors raised by statistical routines on invalid inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A parameter was outside its mathematical domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable constraint that was violated.
        constraint: &'static str,
        /// The value that was supplied.
        value: f64,
    },
    /// An operation required a non-empty input collection.
    EmptyInput(&'static str),
    /// A weight vector contained a negative, NaN, or all-zero mass.
    InvalidWeights(&'static str),
}

impl StatsError {
    /// Convenience constructor for [`StatsError::InvalidParameter`].
    pub fn invalid(name: &'static str, constraint: &'static str, value: f64) -> Self {
        StatsError::InvalidParameter {
            name,
            constraint,
            value,
        }
    }
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidParameter {
                name,
                constraint,
                value,
            } => write!(
                f,
                "invalid parameter `{name}`: must satisfy {constraint}, got {value}"
            ),
            StatsError::EmptyInput(what) => write!(f, "empty input: {what}"),
            StatsError::InvalidWeights(what) => write!(f, "invalid weights: {what}"),
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_all_variants() {
        let e = StatsError::invalid("alpha", "0 < alpha < 1", 2.0);
        assert!(e.to_string().contains("alpha"));
        assert!(e.to_string().contains("2"));
        assert!(StatsError::EmptyInput("weights")
            .to_string()
            .contains("weights"));
        assert!(StatsError::InvalidWeights("negative")
            .to_string()
            .contains("negative"));
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(StatsError::EmptyInput("x"));
        assert!(e.source().is_none());
    }
}

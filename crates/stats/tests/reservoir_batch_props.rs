//! Property suite: `WeightedReservoirExpJ::offer_batch` is **bitwise
//! stream-identical** to the per-item `offer` loop — same reservoir
//! members and keys, same eviction sequence, same `offered()` /
//! `replacements()` accounting, and the same RNG stream position — over
//! randomized integer weight streams, capacities (including capacity
//! exceeding the stream), and arbitrary batch partitions.

use kg_stats::reservoir::{OfferOutcome, WeightedReservoirExpJ};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Accept/evict event: `(stream_index, evicted_item_and_key_bits)`.
type Event = (u32, Option<(u32, u64)>);
/// A replay's observables: final reservoir, event log, next RNG word.
type Replay = (WeightedReservoirExpJ<u32>, Vec<Event>, u64);

/// Replay `weights` through a per-item loop, recording accept/evict
/// events as `(stream_index, evicted_item, evicted_key_bits)`.
fn replay_per_item(weights: &[u32], capacity: usize, seed: u64) -> Replay {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut r = WeightedReservoirExpJ::new(capacity);
    let mut events = Vec::new();
    for (i, &w) in weights.iter().enumerate() {
        match r.offer(&mut rng, i as u32, w as f64) {
            OfferOutcome::Inserted => events.push((i as u32, None)),
            OfferOutcome::Replaced(e) => events.push((i as u32, Some((e.item, e.key.to_bits())))),
            OfferOutcome::Rejected => {}
        }
    }
    (r, events, rng.next_u64())
}

/// Replay the same stream through `offer_batch`, split at `batch_lens`.
fn replay_batched(weights: &[u32], capacity: usize, seed: u64, batch_lens: &[usize]) -> Replay {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut r = WeightedReservoirExpJ::new(capacity);
    let mut events = Vec::new();
    let mut start = 0usize;
    let mut lens = batch_lens
        .iter()
        .copied()
        .chain(std::iter::repeat(weights.len()));
    while start < weights.len() {
        let end = (start + lens.next().expect("endless")).min(weights.len());
        if end == start {
            continue;
        }
        let mut prefix = Vec::with_capacity(end - start + 1);
        let mut acc = 0u64;
        prefix.push(0);
        for &w in &weights[start..end] {
            acc += w as u64;
            prefix.push(acc);
        }
        r.offer_batch(
            &mut rng,
            &prefix,
            |i| (start + i) as u32,
            |_, i, outcome| match outcome {
                OfferOutcome::Inserted => events.push(((start + i) as u32, None)),
                OfferOutcome::Replaced(e) => {
                    events.push(((start + i) as u32, Some((e.item, e.key.to_bits()))));
                }
                OfferOutcome::Rejected => unreachable!("skipped items are never reported"),
            },
        );
        start = end;
    }
    (r, events, rng.next_u64())
}

fn sorted_members(r: &WeightedReservoirExpJ<u32>) -> Vec<(u32, u64)> {
    let mut v: Vec<(u32, u64)> = r.iter().map(|k| (k.item, k.key.to_bits())).collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    /// The batched offer path must be indistinguishable from the per-item
    /// loop in every observable, for any partition of the stream into
    /// batches (zero-length batches allowed — they are no-ops).
    #[test]
    fn offer_batch_is_bitwise_identical_to_per_item(
        weights in prop::collection::vec(1u32..5_000, 0..400),
        capacity in 1usize..48,
        batch_lens in prop::collection::vec(0usize..90, 1..12),
        seed in any::<u64>(),
    ) {
        let (r_a, ev_a, rng_a) = replay_per_item(&weights, capacity, seed);
        let (r_b, ev_b, rng_b) = replay_batched(&weights, capacity, seed, &batch_lens);
        prop_assert_eq!(&ev_a, &ev_b, "accept/evict sequences diverged");
        prop_assert_eq!(sorted_members(&r_a), sorted_members(&r_b), "members diverged");
        prop_assert_eq!(r_a.offered(), r_b.offered(), "offered() diverged");
        prop_assert_eq!(r_a.replacements(), r_b.replacements());
        prop_assert_eq!(r_a.len(), r_b.len());
        prop_assert_eq!(rng_a, rng_b, "RNG stream positions diverged");
    }

    /// Capacity at or above the stream length: everything is inserted in
    /// order by both paths and the reservoir never evicts.
    #[test]
    fn capacity_exceeding_stream_inserts_everything(
        weights in prop::collection::vec(1u32..1_000, 1..60),
        extra in 0usize..20,
        seed in any::<u64>(),
    ) {
        let capacity = weights.len() + extra;
        let (r_a, ev_a, rng_a) = replay_per_item(&weights, capacity, seed);
        let (r_b, ev_b, rng_b) = replay_batched(&weights, capacity, seed, &[7, 1, 30]);
        prop_assert_eq!(r_a.len(), weights.len());
        prop_assert_eq!(r_b.len(), weights.len());
        prop_assert_eq!(r_a.replacements(), 0);
        prop_assert_eq!(ev_a.len(), weights.len(), "every item inserted, none evicted");
        prop_assert_eq!(&ev_a, &ev_b);
        prop_assert_eq!(sorted_members(&r_a), sorted_members(&r_b));
        prop_assert_eq!(r_a.offered(), weights.len() as u64);
        prop_assert_eq!(r_b.offered(), weights.len() as u64);
        prop_assert_eq!(rng_a, rng_b);
    }
}

/// Zero weights are rejected identically: the per-item path asserts on the
/// weight, the batched path asserts on the (therefore non-increasing)
/// prefix — both with the "positive" weight contract in the message.
#[test]
#[should_panic(expected = "positive")]
fn per_item_rejects_zero_weight() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut r = WeightedReservoirExpJ::new(2);
    r.offer(&mut rng, 0u32, 0.0);
}

#[test]
#[should_panic(expected = "positive")]
fn offer_batch_rejects_zero_weight() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut r = WeightedReservoirExpJ::new(2);
    // Item 1 has weight prefix[2] - prefix[1] == 0.
    r.offer_batch(&mut rng, &[0, 4, 4, 9], |i| i as u32, |_, _, _| {});
}

//! Property suite for the `kg_stats::codec` snapshot layer.
//!
//! Three properties, over randomized states of every snapshot-bearing
//! primitive (running moments, weighted reservoir, growable PPS index
//! with pending decrements):
//!
//! 1. **Byte stability** — snapshot → restore → snapshot reproduces the
//!    identical byte string (one canonical encoding per state).
//! 2. **Behavioral identity** — the restored value is observationally
//!    equal: same statistics, same sampling decisions under the same
//!    RNG stream.
//! 3. **Hostile bytes never panic** — every truncation of a valid
//!    snapshot, a flipped version, a flipped magic, trailing garbage,
//!    and arbitrary single-byte corruption all return a typed
//!    `CodecError` or a valid value; none abort.

use kg_stats::codec::CodecError;
use kg_stats::moments::RunningMoments;
use kg_stats::pps::GrowablePps;
use kg_stats::reservoir::WeightedReservoirExpJ;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Build a randomized reservoir by replaying a weight stream.
fn reservoir_from(weights: &[u32], capacity: usize, seed: u64) -> WeightedReservoirExpJ<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut r = WeightedReservoirExpJ::new(capacity);
    for (i, &w) in weights.iter().enumerate() {
        r.offer(&mut rng, i as u32, f64::from(w));
    }
    r
}

/// Build a randomized PPS index: sizes, then decrements bounded by each
/// item's weight (`decrements` carries (index_hint, amount_hint) pairs).
fn pps_from(sizes: &[u32], decrements: &[(u8, u8)]) -> GrowablePps {
    let mut pps = GrowablePps::from_sizes(sizes).expect("positive sizes");
    for &(i, amount) in decrements {
        let i = usize::from(i) % sizes.len();
        let live = pps.weight(i);
        if live > 0 {
            let w = 1 + u64::from(amount) % live;
            pps.decrement(i, w).expect("bounded decrement");
        }
    }
    pps
}

/// The three hostile-bytes sweeps shared by every snapshot format.
fn assert_hostile_bytes_are_typed<T>(
    snapshot: &[u8],
    restore: impl Fn(&[u8]) -> Result<T, CodecError>,
) {
    for cut in 0..snapshot.len() {
        prop_assert_is_err(restore(&snapshot[..cut]));
    }
    let mut trailing = snapshot.to_vec();
    trailing.push(0);
    prop_assert_is_err(restore(&trailing));
    // Single-byte corruption at every position: may round-trip (a bit
    // flip inside an f64 payload is still a valid f64) or error, but
    // must never panic.
    for i in 0..snapshot.len() {
        let mut bad = snapshot.to_vec();
        bad[i] ^= 0xA5;
        let _ = restore(&bad);
    }
}

/// `prop_assert!` only works inside `proptest!`; hostile sweeps run in
/// helpers, so use a plain panic-on-ok (caught by proptest as a failure).
fn prop_assert_is_err<T>(r: Result<T, CodecError>) {
    assert!(r.is_err(), "hostile bytes decoded successfully");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn moments_snapshot_round_trips(
        values in prop::collection::vec(0u32..2_000_000, 0..200),
    ) {
        let mut m = RunningMoments::new();
        for v in &values {
            m.push(f64::from(*v) / 1024.0);
        }
        let bytes = m.snapshot();
        let restored = RunningMoments::restore(&bytes).expect("round trip");
        prop_assert_eq!(restored.snapshot(), bytes.clone(), "byte stability");
        prop_assert_eq!(restored.count(), m.count());
        prop_assert_eq!(restored.mean().to_bits(), m.mean().to_bits());
        prop_assert_eq!(
            restored.variance_of_mean().to_bits(),
            m.variance_of_mean().to_bits()
        );
        // A restored accumulator continues identically.
        let mut a = m;
        let mut b = restored;
        a.push(0.25);
        b.push(0.25);
        prop_assert_eq!(a.snapshot(), b.snapshot());
        assert_hostile_bytes_are_typed(&bytes, RunningMoments::restore);
    }

    #[test]
    fn reservoir_snapshot_round_trips(
        weights in prop::collection::vec(1u32..5_000, 0..300),
        capacity in 1usize..48,
        seed in any::<u64>(),
    ) {
        let r = reservoir_from(&weights, capacity, seed);
        let bytes = r.snapshot();
        let restored = WeightedReservoirExpJ::<u32>::restore(&bytes).expect("round trip");
        prop_assert_eq!(restored.snapshot(), bytes.clone(), "byte stability");
        prop_assert_eq!(restored.len(), r.len());
        prop_assert_eq!(restored.offered(), r.offered());
        prop_assert_eq!(restored.replacements(), r.replacements());
        let keys = |res: &WeightedReservoirExpJ<u32>| {
            res.iter().map(|k| (k.item, k.key.to_bits())).collect::<Vec<_>>()
        };
        prop_assert_eq!(keys(&restored), keys(&r));
        // Identical sampling decisions after restore: offer the same
        // tail under the same RNG stream.
        let mut ra = r;
        let mut rb = restored;
        let mut rng_a = StdRng::seed_from_u64(seed ^ 0xD1CE);
        let mut rng_b = StdRng::seed_from_u64(seed ^ 0xD1CE);
        for i in 0..17u32 {
            ra.offer(&mut rng_a, 1_000_000 + i, f64::from(1 + i % 7));
            rb.offer(&mut rng_b, 1_000_000 + i, f64::from(1 + i % 7));
        }
        prop_assert_eq!(rng_a.next_u64(), rng_b.next_u64());
        prop_assert_eq!(keys(&ra), keys(&rb));
        assert_hostile_bytes_are_typed(&ra.snapshot(), WeightedReservoirExpJ::<u32>::restore);
    }

    #[test]
    fn pps_snapshot_round_trips(
        sizes in prop::collection::vec(1u32..3_000, 1..250),
        decrements in prop::collection::vec((any::<u8>(), any::<u8>()), 0..40),
        seed in any::<u64>(),
    ) {
        let pps = pps_from(&sizes, &decrements);
        let bytes = pps.snapshot();
        let restored = GrowablePps::restore(&bytes).expect("round trip");
        prop_assert_eq!(restored.snapshot(), bytes.clone(), "byte stability");
        prop_assert_eq!(restored.len(), pps.len());
        prop_assert_eq!(restored.total(), pps.total());
        prop_assert_eq!(restored.dead_weight(), pps.dead_weight());
        for i in 0..pps.len() {
            prop_assert_eq!(restored.weight(i), pps.weight(i));
        }
        // Identical sampling decisions after restore.
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        for _ in 0..32 {
            prop_assert_eq!(pps.sample(&mut rng_a), restored.sample(&mut rng_b));
        }
        assert_hostile_bytes_are_typed(&bytes, GrowablePps::restore);
    }

    #[test]
    fn wrong_version_and_magic_are_typed_errors(
        values in prop::collection::vec(1u32..1_000, 0..50),
    ) {
        let mut m = RunningMoments::new();
        for v in &values {
            m.push(f64::from(*v));
        }
        let bytes = m.snapshot();
        // Bytes 0..4 are the magic, 4..6 the LE u16 version.
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 0xEE;
        prop_assert!(matches!(
            RunningMoments::restore(&wrong_version),
            Err(CodecError::UnsupportedVersion { .. })
        ));
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        prop_assert!(matches!(
            RunningMoments::restore(&wrong_magic),
            Err(CodecError::BadMagic { .. })
        ));
        let mut trailing = bytes;
        trailing.extend_from_slice(&[1, 2, 3]);
        prop_assert!(matches!(
            RunningMoments::restore(&trailing),
            Err(CodecError::TrailingBytes { .. })
        ));
    }
}

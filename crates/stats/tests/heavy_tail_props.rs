//! Exactness suite for the heavy-tailed samplers the scenario matrix
//! builds hostile cluster-size profiles from.
//!
//! The inverted-CDF [`Zipf`] and inverse-CDF [`BoundedPareto`] samplers
//! are *exact* — their empirical frequencies must match the analytic
//! pmf / per-bin probabilities up to sampling noise. Each check computes
//! Pearson's chi-square statistic over the support (Zipf) or over
//! equal-probability quantile bins (Pareto) and bounds it by
//! `df + 5·√(2·df)` — five standard deviations above the χ²(df) mean,
//! far beyond its 99.9% quantile, so a correct sampler never trips it
//! while an off-by-one in the CDF search or a mis-normalized table fails
//! deterministically. All draws are seeded: the suite is bit-reproducible.

use kg_stats::distr::{BoundedPareto, Zipf};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Chi-square bound: mean + 5σ of χ²(df).
fn chi_square_bound(df: usize) -> f64 {
    df as f64 + 5.0 * (2.0 * df as f64).sqrt()
}

/// Pearson statistic of observed counts vs expected probabilities.
fn chi_square(observed: &[u64], expected_p: &[f64], draws: u64) -> f64 {
    assert_eq!(observed.len(), expected_p.len());
    observed
        .iter()
        .zip(expected_p)
        .map(|(&o, &p)| {
            let e = p * draws as f64;
            (o as f64 - e).powi(2) / e
        })
        .sum()
}

#[test]
fn zipf_empirical_frequencies_match_analytic_pmf() {
    // Full-support chi-square at three (n, s) corners, including the
    // near-critical s ≈ 1 regime. Supports are small enough that every
    // value has expected count ≫ 5 (the classic chi-square validity bar).
    for (n, s, seed) in [(50usize, 1.5f64, 101u64), (30, 1.01, 102), (80, 2.5, 103)] {
        let d = Zipf::new(n, s).unwrap();
        let draws = 400_000u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; n];
        for _ in 0..draws {
            counts[d.sample(&mut rng) - 1] += 1;
        }
        let pmf: Vec<f64> = (1..=n).map(|k| d.pmf(k)).collect();
        let stat = chi_square(&counts, &pmf, draws);
        let bound = chi_square_bound(n - 1);
        assert!(
            stat < bound,
            "Zipf({n}, {s}): chi-square {stat:.1} over bound {bound:.1}"
        );
    }
}

#[test]
fn pareto_empirical_frequencies_match_analytic_bins() {
    // Equal-probability quantile bins: each bin has probability 1/B by
    // construction, so mismatches localize CDF/inverse-CDF errors anywhere
    // on the support, tail included.
    for (shape, bound, seed) in [
        (1.1f64, 4000.0f64, 201u64),
        (0.7, 500.0, 202),
        (2.0, 50.0, 203),
    ] {
        let d = BoundedPareto::new(1.0, shape, bound).unwrap();
        let bins = 40usize;
        let edges: Vec<f64> = (1..bins)
            .map(|b| d.quantile(b as f64 / bins as f64))
            .collect();
        let draws = 300_000u64;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0u64; bins];
        for _ in 0..draws {
            let x = d.sample(&mut rng);
            let b = edges.partition_point(|&e| e < x);
            counts[b] += 1;
        }
        let uniform = vec![1.0 / bins as f64; bins];
        let stat = chi_square(&counts, &uniform, draws);
        let bound_stat = chi_square_bound(bins - 1);
        assert!(
            stat < bound_stat,
            "Pareto(α={shape}, H={bound}): chi-square {stat:.1} over bound {bound_stat:.1}"
        );
    }
}

#[test]
fn chi_square_detects_a_wrong_pmf() {
    // Negative control: scoring Zipf(1.5) draws against a Zipf(1.6) pmf
    // must blow through the same bound, proving the statistic has power.
    let d = Zipf::new(50, 1.5).unwrap();
    let wrong = Zipf::new(50, 1.6).unwrap();
    let draws = 400_000u64;
    let mut rng = StdRng::seed_from_u64(104);
    let mut counts = vec![0u64; 50];
    for _ in 0..draws {
        counts[d.sample(&mut rng) - 1] += 1;
    }
    let pmf: Vec<f64> = (1..=50).map(|k| wrong.pmf(k)).collect();
    let stat = chi_square(&counts, &pmf, draws);
    assert!(
        stat > chi_square_bound(49),
        "mis-specified pmf must be detected, stat {stat:.1}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every Zipf draw lands in the declared support, for arbitrary
    /// bounded parameters and seeds.
    #[test]
    fn zipf_draws_stay_in_support(n in 1usize..300, s in 0.2f64..4.0, seed in any::<u64>()) {
        let d = Zipf::new(n, s).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let k = d.sample(&mut rng);
            prop_assert!((1..=n).contains(&k));
        }
    }

    /// Every Pareto draw lands in `[scale, bound]`, the CDF round-trips
    /// the draw, and integer sizes stay in the integer support.
    #[test]
    fn pareto_draws_stay_in_support(
        shape in 0.2f64..4.0,
        span in 1.5f64..5000.0,
        seed in any::<u64>(),
    ) {
        let d = BoundedPareto::new(1.0, shape, span).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let x = d.sample(&mut rng);
            prop_assert!((1.0..=span).contains(&x));
            let u = d.cdf(x);
            prop_assert!((d.quantile(u) - x).abs() < 1e-6 * x.max(1.0));
            let k = d.sample_size(&mut rng);
            prop_assert!((1..=span.floor() as usize).contains(&k));
        }
    }

    /// The sampler is a pure function of the seed: identical streams on
    /// replay, for arbitrary parameters.
    #[test]
    fn heavy_tail_samplers_are_deterministic(seed in any::<u64>(), shape in 0.5f64..3.0) {
        let z = Zipf::new(120, shape.max(0.6)).unwrap();
        let p = BoundedPareto::new(1.0, shape, 900.0).unwrap();
        let run = || {
            let mut rng = StdRng::seed_from_u64(seed);
            let zs: Vec<usize> = (0..32).map(|_| z.sample(&mut rng)).collect();
            let ps: Vec<u64> = (0..32).map(|_| p.sample(&mut rng).to_bits()).collect();
            (zs, ps)
        };
        prop_assert_eq!(run(), run());
    }
}

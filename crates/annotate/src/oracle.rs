//! Label oracles: the ground truth `f : t → {0, 1}` (§2.2) that a simulated
//! annotator consults.
//!
//! Three oracles cover the paper's label sources:
//!
//! * [`GoldLabels`] — materialized per-triple labels (the MTurk annotations
//!   of NELL/YAGO, §7.1.1).
//! * [`RemOracle`] — the Random Error Model (§7.1.2): every triple is
//!   correct independently with fixed probability. Procedural and
//!   stateless: labels are a deterministic hash of `(seed, cluster,
//!   offset)`, so a 130M-triple KG needs no label storage (Fig. 7).
//! * [`BmmOracle`] — the Binomial Mixture Model (§7.1.2, Eq. 15): cluster
//!   `i` has accuracy `p̂_i = sigmoid-like(M_i)` + Normal noise, and triples
//!   within it are correct i.i.d. with probability `p̂_i`, reproducing the
//!   size–accuracy correlation of Fig. 3.

use kg_model::implicit::ClusterPopulation;
use kg_model::triple::TripleRef;
use std::sync::Arc;

/// Ground-truth correctness labels for a clustered population.
///
/// Implementations must be deterministic: the same `TripleRef` always gets
/// the same label (annotators may re-query).
pub trait LabelOracle: Sync {
    /// Correctness of one triple.
    fn label(&self, t: TripleRef) -> bool;

    /// Exact accuracy `μ_i = τ_i / M_i` of one cluster of known `size`.
    ///
    /// Default: iterate the cluster. Oracles with closed-form accuracies
    /// may override with their *expected* accuracy only if it is exact for
    /// their labeling (REM/BMM keep the default since their realized labels
    /// fluctuate around the parameter).
    fn cluster_accuracy(&self, cluster: u32, size: usize) -> f64 {
        if size == 0 {
            return 0.0;
        }
        let correct = (0..size)
            .filter(|&o| self.label(TripleRef::new(cluster, o as u32)))
            .count();
        correct as f64 / size as f64
    }

    /// The *expected* accuracy of a cluster under the oracle's generative
    /// model, used by oracle stratification (§7.2.3). Defaults to the exact
    /// realized accuracy.
    fn expected_cluster_accuracy(&self, cluster: u32, size: usize) -> f64 {
        self.cluster_accuracy(cluster, size)
    }
}

/// Exact population accuracy `μ(G)` by full enumeration — O(M), intended
/// for tests and ground-truth columns of experiment reports.
pub fn true_accuracy<P: ClusterPopulation + ?Sized, O: LabelOracle + ?Sized>(
    pop: &P,
    oracle: &O,
) -> f64 {
    let mut correct = 0u64;
    let mut total = 0u64;
    for c in 0..pop.num_clusters() {
        let size = pop.cluster_size(c);
        total += size as u64;
        for o in 0..size {
            if oracle.label(TripleRef::new(c as u32, o as u32)) {
                correct += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

/// Exact per-cluster accuracies `μ_i` (for theoretical V(m), Eq. 10).
pub fn cluster_accuracies<P: ClusterPopulation + ?Sized, O: LabelOracle + ?Sized>(
    pop: &P,
    oracle: &O,
) -> Vec<f64> {
    (0..pop.num_clusters())
        .map(|c| oracle.cluster_accuracy(c as u32, pop.cluster_size(c)))
        .collect()
}

// ---------------------------------------------------------------------------
// Deterministic hashing (SplitMix64) for procedural labels.
// ---------------------------------------------------------------------------

/// SplitMix64 finalizer: avalanche a 64-bit state.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic uniform in [0, 1) from a seed and two coordinates.
#[inline]
pub(crate) fn hash_uniform(seed: u64, a: u64, b: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(a ^ splitmix64(b)));
    // 53 high bits → [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

// ---------------------------------------------------------------------------
// Gold labels
// ---------------------------------------------------------------------------

/// Materialized per-triple labels, cluster by cluster.
#[derive(Debug, Clone)]
pub struct GoldLabels {
    labels: Vec<Box<[bool]>>,
}

impl GoldLabels {
    /// Build from per-cluster label vectors.
    pub fn new(labels: Vec<Vec<bool>>) -> Self {
        GoldLabels {
            labels: labels.into_iter().map(Vec::into_boxed_slice).collect(),
        }
    }

    /// Materialize any oracle over a population (useful to freeze a
    /// procedural labeling into explicit gold labels).
    pub fn materialize<P: ClusterPopulation + ?Sized, O: LabelOracle + ?Sized>(
        pop: &P,
        oracle: &O,
    ) -> Self {
        let labels = (0..pop.num_clusters())
            .map(|c| {
                (0..pop.cluster_size(c))
                    .map(|o| oracle.label(TripleRef::new(c as u32, o as u32)))
                    .collect::<Vec<bool>>()
                    .into_boxed_slice()
            })
            .collect();
        GoldLabels { labels }
    }

    /// Number of clusters covered.
    pub fn num_clusters(&self) -> usize {
        self.labels.len()
    }

    /// Number of correct triples `τ_i` in a cluster.
    pub fn tau(&self, cluster: usize) -> usize {
        self.labels[cluster].iter().filter(|&&b| b).count()
    }
}

impl LabelOracle for GoldLabels {
    fn label(&self, t: TripleRef) -> bool {
        self.labels[t.cluster as usize][t.offset as usize]
    }
}

// ---------------------------------------------------------------------------
// Random Error Model
// ---------------------------------------------------------------------------

/// Random Error Model: triple correct with fixed probability, i.i.d.
#[derive(Debug, Clone, Copy)]
pub struct RemOracle {
    accuracy: f64,
    seed: u64,
}

impl RemOracle {
    /// REM with overall accuracy `1 − r_ε`.
    pub fn new(accuracy: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&accuracy),
            "accuracy must be in [0,1], got {accuracy}"
        );
        RemOracle { accuracy, seed }
    }

    /// The model accuracy parameter.
    pub fn accuracy(&self) -> f64 {
        self.accuracy
    }
}

impl LabelOracle for RemOracle {
    fn label(&self, t: TripleRef) -> bool {
        hash_uniform(self.seed, t.cluster as u64, t.offset as u64) < self.accuracy
    }

    fn expected_cluster_accuracy(&self, _cluster: u32, _size: usize) -> f64 {
        self.accuracy
    }
}

// ---------------------------------------------------------------------------
// Binomial Mixture Model
// ---------------------------------------------------------------------------

/// Binomial Mixture Model (Eq. 15): per-cluster accuracy parameter
///
/// ```text
/// p̂_i = 0.5 + ε                 if M_i < k
/// p̂_i = 1/(1 + e^{−c(M_i−k)}) + ε   if M_i ≥ k
/// ```
///
/// with `ε ~ N(0, σ²)` drawn once per cluster (deterministically from the
/// seed) and the result clamped to `[0, 1]`. Labels within the cluster are
/// then i.i.d. Bernoulli(`p̂_i`).
#[derive(Debug, Clone)]
pub struct BmmOracle {
    sizes: Arc<Vec<u32>>,
    k: u32,
    c: f64,
    sigma: f64,
    seed: u64,
    /// Lazily computed exact (realized) per-cluster accuracies, shared
    /// across clones: oracle stratification and the V(m) ribbon enumerate
    /// every cluster, which would otherwise cost O(M) hashes per caller.
    realized: Arc<std::sync::OnceLock<Vec<f32>>>,
}

impl BmmOracle {
    /// Paper defaults: `k = 3`, `c = 0.01`, `σ = 0.1`.
    pub fn with_defaults(sizes: Arc<Vec<u32>>, seed: u64) -> Self {
        Self::new(sizes, 3, 0.01, 0.1, seed)
    }

    /// Fully parameterized BMM.
    pub fn new(sizes: Arc<Vec<u32>>, k: u32, c: f64, sigma: f64, seed: u64) -> Self {
        assert!(c >= 0.0, "c must be non-negative");
        assert!(sigma >= 0.0, "sigma must be non-negative");
        BmmOracle {
            sizes,
            k,
            c,
            sigma,
            seed,
            realized: Arc::new(std::sync::OnceLock::new()),
        }
    }

    /// The cluster accuracy parameter `p̂_i` (Eq. 15), before realization.
    pub fn p_hat(&self, cluster: u32) -> f64 {
        let m = self.sizes[cluster as usize];
        let base = if m < self.k {
            0.5
        } else {
            1.0 / (1.0 + (-self.c * (m as f64 - self.k as f64)).exp())
        };
        // ε from two hashed uniforms via Box–Muller (deterministic/cluster).
        let u1 = hash_uniform(self.seed ^ 0xB111, cluster as u64, 1).max(f64::MIN_POSITIVE);
        let u2 = hash_uniform(self.seed ^ 0xB222, cluster as u64, 2);
        let eps = self.sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (base + eps).clamp(0.0, 1.0)
    }
}

impl LabelOracle for BmmOracle {
    fn label(&self, t: TripleRef) -> bool {
        hash_uniform(self.seed, t.cluster as u64, t.offset as u64) < self.p_hat(t.cluster)
    }

    fn cluster_accuracy(&self, cluster: u32, _size: usize) -> f64 {
        let table = self.realized.get_or_init(|| {
            self.sizes
                .iter()
                .enumerate()
                .map(|(c, &size)| {
                    let p = self.p_hat(c as u32);
                    let correct = (0..size)
                        .filter(|&o| hash_uniform(self.seed, c as u64, o as u64) < p)
                        .count();
                    (correct as f64 / size as f64) as f32
                })
                .collect()
        });
        table[cluster as usize] as f64
    }

    fn expected_cluster_accuracy(&self, cluster: u32, _size: usize) -> f64 {
        self.p_hat(cluster)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kg_model::implicit::ImplicitKg;

    #[test]
    fn hash_uniform_is_deterministic_and_spread() {
        let a = hash_uniform(1, 2, 3);
        assert_eq!(a, hash_uniform(1, 2, 3));
        assert!((0.0..1.0).contains(&a));
        assert_ne!(hash_uniform(1, 2, 3), hash_uniform(1, 2, 4));
        assert_ne!(hash_uniform(1, 2, 3), hash_uniform(2, 2, 3));
        // Mean over a grid close to 0.5.
        let mut sum = 0.0;
        let n = 10_000;
        for i in 0..n {
            sum += hash_uniform(9, i, i * 31 + 7);
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gold_labels_resolve_and_count() {
        let g = GoldLabels::new(vec![vec![true, false, true], vec![false]]);
        assert!(g.label(TripleRef::new(0, 0)));
        assert!(!g.label(TripleRef::new(0, 1)));
        assert_eq!(g.tau(0), 2);
        assert_eq!(g.tau(1), 0);
        assert_eq!(g.num_clusters(), 2);
        assert!((g.cluster_accuracy(0, 3) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rem_realized_accuracy_matches_parameter() {
        let pop = ImplicitKg::uniform(1000, 10).unwrap();
        let oracle = RemOracle::new(0.9, 77);
        let acc = true_accuracy(&pop, &oracle);
        assert!((acc - 0.9).abs() < 0.01, "accuracy {acc}");
        assert_eq!(oracle.expected_cluster_accuracy(0, 10), 0.9);
        assert_eq!(oracle.accuracy(), 0.9);
    }

    #[test]
    fn rem_is_deterministic() {
        let o1 = RemOracle::new(0.5, 42);
        let o2 = RemOracle::new(0.5, 42);
        for c in 0..50 {
            for off in 0..5 {
                let t = TripleRef::new(c, off);
                assert_eq!(o1.label(t), o2.label(t));
            }
        }
    }

    #[test]
    fn rem_extremes() {
        let all = RemOracle::new(1.0, 1);
        let none = RemOracle::new(0.0, 1);
        for c in 0..20 {
            assert!(all.label(TripleRef::new(c, 0)));
            assert!(!none.label(TripleRef::new(c, 0)));
        }
    }

    #[test]
    fn bmm_small_clusters_near_half_large_near_one() {
        // sizes: 500 clusters of size 2 (< k=3 → 0.5) and 500 of size 1000
        // (sigmoid(0.01 * 997) ≈ 1.0).
        let mut sizes = vec![2u32; 500];
        sizes.extend(vec![1000u32; 500]);
        let sizes = Arc::new(sizes);
        let oracle = BmmOracle::new(sizes.clone(), 3, 0.01, 0.0, 5);
        let small_mean: f64 = (0..500).map(|c| oracle.p_hat(c)).sum::<f64>() / 500.0;
        let large_mean: f64 = (500..1000).map(|c| oracle.p_hat(c)).sum::<f64>() / 500.0;
        assert!((small_mean - 0.5).abs() < 1e-9, "small {small_mean}");
        assert!(large_mean > 0.99, "large {large_mean}");
    }

    #[test]
    fn bmm_noise_spreads_accuracies() {
        let sizes = Arc::new(vec![10u32; 2000]);
        let noisy = BmmOracle::new(sizes.clone(), 3, 0.01, 0.2, 5);
        let ps: Vec<f64> = (0..2000).map(|c| noisy.p_hat(c)).collect();
        let mean = ps.iter().sum::<f64>() / ps.len() as f64;
        let var = ps.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / ps.len() as f64;
        // σ=0.2 noise clamped to [0,1]: variance should be near 0.04.
        assert!(var > 0.02 && var < 0.06, "var {var}");
    }

    #[test]
    fn bmm_realized_labels_track_p_hat() {
        let sizes = Arc::new(vec![500u32; 20]);
        let oracle = BmmOracle::new(sizes.clone(), 3, 0.05, 0.0, 11);
        for c in 0..20u32 {
            let realized = oracle.cluster_accuracy(c, 500);
            let expect = oracle.p_hat(c);
            assert!(
                (realized - expect).abs() < 0.07,
                "cluster {c}: realized {realized} vs p̂ {expect}"
            );
        }
    }

    #[test]
    fn materialized_oracle_agrees_with_source() {
        let pop = ImplicitKg::new(vec![3, 5, 2]).unwrap();
        let rem = RemOracle::new(0.6, 3);
        let gold = GoldLabels::materialize(&pop, &rem);
        for c in 0..3u32 {
            for o in 0..pop.cluster_size(c as usize) as u32 {
                let t = TripleRef::new(c, o);
                assert_eq!(gold.label(t), rem.label(t));
            }
        }
        assert_eq!(gold.num_clusters(), 3);
        assert!((true_accuracy(&pop, &gold) - true_accuracy(&pop, &rem)).abs() < 1e-12);
    }

    #[test]
    fn cluster_accuracies_vector_matches_manual() {
        let pop = ImplicitKg::new(vec![2, 2]).unwrap();
        let gold = GoldLabels::new(vec![vec![true, true], vec![true, false]]);
        let accs = cluster_accuracies(&pop, &gold);
        assert_eq!(accs, vec![1.0, 0.5]);
    }

    #[test]
    fn true_accuracy_of_empty_population_is_zero() {
        let pop = ImplicitKg::new(vec![]).unwrap();
        let oracle = RemOracle::new(0.9, 0);
        assert_eq!(true_accuracy(&pop, &oracle), 0.0);
    }
}

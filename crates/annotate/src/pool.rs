//! Multi-annotator evaluation: "users can specify either single evaluation
//! or multiple evaluations (assigned to different annotators) per
//! Evaluation Task" (§4).
//!
//! An [`AnnotatorPool`] assigns each evaluation task to `k` simulated
//! annotators, each with its own speed multiplier and per-triple error
//! rate, and resolves labels by majority vote. The total human cost is the
//! *sum* of the annotators' costs (they all do the work); the benefit is
//! label quality: majority voting suppresses individual annotator error,
//! which otherwise biases the accuracy estimate directly (a worker who
//! mislabels 10% of triples shifts μ̂ by up to 10%).

use crate::cost::CostModel;
use crate::oracle::LabelOracle;
use crate::task::group_into_tasks;
use kg_model::triple::TripleRef;
use std::collections::{HashMap, HashSet};

/// One pool member: relative speed and label noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnotatorProfile {
    /// Cost multiplier (1.0 = the pool's base cost model; 0.5 = twice as
    /// fast).
    pub speed: f64,
    /// Probability of flipping any one label (independent per triple and
    /// per annotator, deterministic given the pool seed).
    pub error_rate: f64,
}

impl AnnotatorProfile {
    /// A careful, average-speed annotator.
    pub fn reliable() -> Self {
        AnnotatorProfile {
            speed: 1.0,
            error_rate: 0.0,
        }
    }

    /// A fast but sloppy annotator.
    pub fn hasty(error_rate: f64) -> Self {
        AnnotatorProfile {
            speed: 0.7,
            error_rate,
        }
    }
}

/// A pool of simulated annotators voting on every task.
pub struct AnnotatorPool<'a> {
    oracle: &'a dyn LabelOracle,
    cost: CostModel,
    profiles: Vec<AnnotatorProfile>,
    seed: u64,
    /// Entities identified per annotator (identification is per person —
    /// each must build their own mental model of the entity).
    identified: Vec<HashSet<u32>>,
    /// Majority-vote labels, memoized.
    labels: HashMap<TripleRef, bool>,
    seconds: f64,
}

impl<'a> AnnotatorPool<'a> {
    /// Pool with the given member profiles (at least one; odd counts avoid
    /// ties — even pools break ties toward "incorrect", the conservative
    /// call for an accuracy audit).
    pub fn new(
        oracle: &'a dyn LabelOracle,
        cost: CostModel,
        profiles: Vec<AnnotatorProfile>,
        seed: u64,
    ) -> Self {
        assert!(!profiles.is_empty(), "pool needs at least one annotator");
        for p in &profiles {
            assert!(
                (0.0..=1.0).contains(&p.error_rate) && p.speed > 0.0,
                "invalid annotator profile {p:?}"
            );
        }
        let identified = vec![HashSet::new(); profiles.len()];
        AnnotatorPool {
            oracle,
            cost,
            profiles,
            seed,
            identified,
            labels: HashMap::new(),
            seconds: 0.0,
        }
    }

    fn worker_label(&self, worker: usize, r: TripleRef) -> bool {
        let truth = self.oracle.label(r);
        let e = self.profiles[worker].error_rate;
        if e == 0.0 {
            return truth;
        }
        // Deterministic per-(worker, triple) flip.
        let u = crate::oracle::hash_uniform(
            self.seed ^ (worker as u64).wrapping_mul(0x9E37_79B9),
            r.cluster as u64,
            r.offset as u64,
        );
        if u < e {
            !truth
        } else {
            truth
        }
    }

    /// Annotate a batch: every task goes to every pool member; labels are
    /// resolved by majority vote (ties → incorrect). Returns labels in the
    /// order of `refs`.
    pub fn annotate(&mut self, refs: &[TripleRef]) -> Vec<bool> {
        for task in group_into_tasks(refs) {
            for (w, profile) in self.profiles.iter().enumerate() {
                if self.identified[w].insert(task.cluster) {
                    self.seconds += self.cost.c1 * profile.speed;
                }
            }
            for r in task.refs() {
                if self.labels.contains_key(&r) {
                    continue;
                }
                let mut yes = 0usize;
                for (w, profile) in self.profiles.iter().enumerate() {
                    if self.worker_label(w, r) {
                        yes += 1;
                    }
                    self.seconds += self.cost.c2 * profile.speed;
                }
                self.labels.insert(r, yes * 2 > self.profiles.len());
            }
        }
        refs.iter()
            .map(|r| *self.labels.get(r).expect("just annotated"))
            .collect()
    }

    /// Total pool seconds (sum over members).
    pub fn seconds(&self) -> f64 {
        self.seconds
    }

    /// Distinct triples labeled.
    pub fn triples_annotated(&self) -> usize {
        self.labels.len()
    }

    /// Number of pool members.
    pub fn size(&self) -> usize {
        self.profiles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::RemOracle;
    use kg_model::implicit::ImplicitKg;

    fn refs(n: u32) -> Vec<TripleRef> {
        (0..n).map(|c| TripleRef::new(c, 0)).collect()
    }

    #[test]
    fn single_reliable_annotator_matches_plain_annotator() {
        let oracle = RemOracle::new(0.8, 1);
        let mut pool = AnnotatorPool::new(
            &oracle,
            CostModel::default(),
            vec![AnnotatorProfile::reliable()],
            9,
        );
        let labels = pool.annotate(&refs(50));
        let truth: Vec<bool> = refs(50).iter().map(|&r| oracle.label(r)).collect();
        assert_eq!(labels, truth);
        assert!((pool.seconds() - 50.0 * (45.0 + 25.0)).abs() < 1e-9);
        assert_eq!(pool.size(), 1);
    }

    #[test]
    fn majority_vote_suppresses_noise() {
        let kg = ImplicitKg::uniform(2000, 1).unwrap();
        let oracle = RemOracle::new(1.0, 2); // all triples correct
        let noisy = vec![AnnotatorProfile::hasty(0.2); 3];
        let mut pool = AnnotatorPool::new(&oracle, CostModel::default(), noisy, 4);
        let all: Vec<TripleRef> = (0..kg.sizes().len() as u32)
            .map(|c| TripleRef::new(c, 0))
            .collect();
        let labels = pool.annotate(&all);
        let acc = labels.iter().filter(|&&b| b).count() as f64 / labels.len() as f64;
        // Individual error 20% → majority-of-3 error = 3e²(1−e)+e³ ≈ 10.4%.
        assert!(acc > 0.87, "majority accuracy {acc}");
        // And strictly better than a single hasty annotator would be.
        let mut single = AnnotatorPool::new(
            &oracle,
            CostModel::default(),
            vec![AnnotatorProfile::hasty(0.2)],
            4,
        );
        let single_labels = single.annotate(&all);
        let single_acc =
            single_labels.iter().filter(|&&b| b).count() as f64 / single_labels.len() as f64;
        assert!(acc > single_acc, "majority {acc} vs single {single_acc}");
    }

    #[test]
    fn cost_sums_over_members_with_speed() {
        let oracle = RemOracle::new(0.9, 3);
        let mut pool = AnnotatorPool::new(
            &oracle,
            CostModel::new(40.0, 20.0),
            vec![
                AnnotatorProfile {
                    speed: 1.0,
                    error_rate: 0.0,
                },
                AnnotatorProfile {
                    speed: 0.5,
                    error_rate: 0.0,
                },
            ],
            5,
        );
        pool.annotate(&[TripleRef::new(0, 0)]);
        // (40 + 20)·1.0 + (40 + 20)·0.5 = 90.
        assert!((pool.seconds() - 90.0).abs() < 1e-9);
        assert_eq!(pool.triples_annotated(), 1);
    }

    #[test]
    fn repeats_are_free_and_votes_deterministic() {
        let oracle = RemOracle::new(0.5, 7);
        let profiles = vec![AnnotatorProfile::hasty(0.3); 3];
        let mut pool = AnnotatorPool::new(&oracle, CostModel::default(), profiles.clone(), 6);
        let first = pool.annotate(&refs(20));
        let cost = pool.seconds();
        let again = pool.annotate(&refs(20));
        assert_eq!(first, again);
        assert_eq!(pool.seconds(), cost);
        // Same seed → same votes in a fresh pool.
        let mut pool2 = AnnotatorPool::new(&oracle, CostModel::default(), profiles, 6);
        assert_eq!(pool2.annotate(&refs(20)), first);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_pool_rejected() {
        let oracle = RemOracle::new(0.9, 1);
        AnnotatorPool::new(&oracle, CostModel::default(), vec![], 1);
    }
}

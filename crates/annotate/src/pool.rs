//! Multi-annotator evaluation: "users can specify either single evaluation
//! or multiple evaluations (assigned to different annotators) per
//! Evaluation Task" (§4).
//!
//! An [`AnnotatorPool`] assigns each evaluation task to `k` simulated
//! annotators, each with its own speed multiplier and per-triple error
//! rate, and resolves labels by majority vote. The total human cost is the
//! *sum* of the annotators' costs (they all do the work); the benefit is
//! label quality: majority voting suppresses individual annotator error,
//! which otherwise biases the accuracy estimate directly (a worker who
//! mislabels 10% of triples shifts μ̂ by up to 10%).
//!
//! Two adversarial extensions feed the scenario matrix:
//!
//! * **Correlated errors** ([`AnnotatorPool::with_shared_confusion`]): with
//!   probability `ρ` per triple, a *shared* confusion event flips every
//!   member's perception of the truth before their individual errors apply.
//!   Majority voting cannot suppress this component — all the votes move
//!   together — so pool accuracy degrades by ≈ `ρ` no matter how many
//!   annotators vote, modeling genuinely ambiguous triples (conflated
//!   entities, stale facts) that fool whole crowds.
//! * **Configurable tie-breaking** ([`AnnotatorPool::with_tie_break`]):
//!   even pools can split `k/2 : k/2`; [`TieBreak::Incorrect`] (the
//!   documented default) keeps the historical strict-majority behavior,
//!   [`TieBreak::CoinFlip`] resolves each tie on the pool's own hash
//!   substream — still deterministic per (seed, triple) and independent of
//!   batching.
//!
//! [`PoolOracle`] exposes the identical resolved labeling as a stateless
//! [`LabelOracle`], so both annotation engines (hash and dense) can audit a
//! KG *through* a noisy pool and agree byte-for-byte.

use crate::cost::CostModel;
use crate::oracle::{hash_uniform, LabelOracle};
use crate::task::group_into_tasks;
use kg_model::triple::TripleRef;
use std::collections::{HashMap, HashSet};

/// Substream salt for shared-confusion events (one draw per triple).
const SHARED_CONFUSION_SALT: u64 = 0xC04F_05ED;
/// Substream salt for coin-flip tie resolution (one draw per tied triple).
const TIE_COIN_SALT: u64 = 0x71EC_0114;

/// How an even pool resolves a `k/2 : k/2` vote split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// Ties resolve to **incorrect** — the conservative call for an
    /// accuracy audit (a triple the pool cannot agree on should not
    /// inflate the estimate). This is the documented default and the
    /// historical strict-majority behavior.
    #[default]
    Incorrect,
    /// Ties resolve by a fair coin on the pool's own hash substream:
    /// deterministic per (pool seed, triple), independent of annotator
    /// order and batching, and unbiased in expectation.
    CoinFlip,
}

/// The pool's pure vote-resolution model: everything that determines a
/// resolved label except cost accounting. Shared between
/// [`AnnotatorPool::annotate`] and [`PoolOracle::label`] so the two can
/// never drift apart.
fn resolve_vote(
    truth: bool,
    profiles: &[AnnotatorProfile],
    seed: u64,
    shared_confusion: f64,
    tie: TieBreak,
    r: TripleRef,
) -> bool {
    let perceived = if shared_confusion > 0.0
        && hash_uniform(
            seed ^ SHARED_CONFUSION_SALT,
            r.cluster as u64,
            r.offset as u64,
        ) < shared_confusion
    {
        !truth
    } else {
        truth
    };
    let mut yes = 0usize;
    for (w, profile) in profiles.iter().enumerate() {
        if worker_vote(perceived, profile.error_rate, seed, w, r) {
            yes += 1;
        }
    }
    if yes * 2 > profiles.len() {
        true
    } else if yes * 2 == profiles.len() {
        match tie {
            TieBreak::Incorrect => false,
            TieBreak::CoinFlip => {
                hash_uniform(seed ^ TIE_COIN_SALT, r.cluster as u64, r.offset as u64) < 0.5
            }
        }
    } else {
        false
    }
}

/// One member's vote given their (possibly shared-confused) perception.
fn worker_vote(perceived: bool, error_rate: f64, seed: u64, worker: usize, r: TripleRef) -> bool {
    if error_rate == 0.0 {
        return perceived;
    }
    // Deterministic per-(worker, triple) flip.
    let u = hash_uniform(
        seed ^ (worker as u64).wrapping_mul(0x9E37_79B9),
        r.cluster as u64,
        r.offset as u64,
    );
    if u < error_rate {
        !perceived
    } else {
        perceived
    }
}

/// One pool member: relative speed and label noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnotatorProfile {
    /// Cost multiplier (1.0 = the pool's base cost model; 0.5 = twice as
    /// fast).
    pub speed: f64,
    /// Probability of flipping any one label (independent per triple and
    /// per annotator, deterministic given the pool seed).
    pub error_rate: f64,
}

impl AnnotatorProfile {
    /// A careful, average-speed annotator.
    pub fn reliable() -> Self {
        AnnotatorProfile {
            speed: 1.0,
            error_rate: 0.0,
        }
    }

    /// A fast but sloppy annotator.
    pub fn hasty(error_rate: f64) -> Self {
        AnnotatorProfile {
            speed: 0.7,
            error_rate,
        }
    }
}

/// A pool of simulated annotators voting on every task.
///
/// # Tie-breaking with an even number of annotators
///
/// A label is resolved "correct" iff a **strict majority** of the pool
/// votes correct (`yes · 2 > k`). With an even pool a `k/2 : k/2` split is
/// possible; how it resolves is configurable via
/// [`AnnotatorPool::with_tie_break`]. The default, [`TieBreak::Incorrect`],
/// resolves every such tie to **incorrect** — the conservative call for an
/// accuracy audit (a triple the pool cannot agree on should not inflate
/// the accuracy estimate). [`TieBreak::CoinFlip`] instead flips a fair
/// coin on the pool's own hash substream. Either way ties are
/// deterministic: the same pool profiles, seed, and task stream always
/// produce the same labels, regardless of annotator order or how tasks
/// are batched (votes are memoized per triple on first resolution).
pub struct AnnotatorPool<'a> {
    oracle: &'a dyn LabelOracle,
    cost: CostModel,
    profiles: Vec<AnnotatorProfile>,
    seed: u64,
    shared_confusion: f64,
    tie: TieBreak,
    /// Entities identified per annotator (identification is per person —
    /// each must build their own mental model of the entity).
    identified: Vec<HashSet<u32>>,
    /// Majority-vote labels, memoized.
    labels: HashMap<TripleRef, bool>,
    seconds: f64,
}

impl<'a> AnnotatorPool<'a> {
    /// Pool with the given member profiles (at least one; odd counts avoid
    /// ties — even pools resolve them per the configured [`TieBreak`],
    /// defaulting to the conservative tie→incorrect rule).
    pub fn new(
        oracle: &'a dyn LabelOracle,
        cost: CostModel,
        profiles: Vec<AnnotatorProfile>,
        seed: u64,
    ) -> Self {
        assert!(!profiles.is_empty(), "pool needs at least one annotator");
        for p in &profiles {
            assert!(
                (0.0..=1.0).contains(&p.error_rate) && p.speed > 0.0,
                "invalid annotator profile {p:?}"
            );
        }
        let identified = vec![HashSet::new(); profiles.len()];
        AnnotatorPool {
            oracle,
            cost,
            profiles,
            seed,
            shared_confusion: 0.0,
            tie: TieBreak::default(),
            identified,
            labels: HashMap::new(),
            seconds: 0.0,
        }
    }

    /// Set the even-pool tie-breaking rule (default:
    /// [`TieBreak::Incorrect`]). Must be called before any annotation —
    /// memoized votes are not re-resolved.
    pub fn with_tie_break(mut self, tie: TieBreak) -> Self {
        assert!(
            self.labels.is_empty(),
            "tie rule must be fixed before annotation starts"
        );
        self.tie = tie;
        self
    }

    /// Set the shared-confusion rate `ρ ∈ [0, 1]`: per triple, with
    /// probability `ρ` (on the pool's own substream) every member
    /// perceives the *flipped* truth before individual errors apply.
    /// Majority voting cannot suppress this correlated component.
    pub fn with_shared_confusion(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "shared confusion rate must be in [0, 1], got {rate}"
        );
        assert!(
            self.labels.is_empty(),
            "confusion rate must be fixed before annotation starts"
        );
        self.shared_confusion = rate;
        self
    }

    /// Annotate a batch: every task goes to every pool member; labels are
    /// resolved by strict majority vote (even-pool ties per the configured
    /// [`TieBreak`]; see the
    /// [type docs](AnnotatorPool#tie-breaking-with-an-even-number-of-annotators)).
    /// Returns labels in the order of `refs`.
    pub fn annotate(&mut self, refs: &[TripleRef]) -> Vec<bool> {
        for task in group_into_tasks(refs) {
            for (w, profile) in self.profiles.iter().enumerate() {
                if self.identified[w].insert(task.cluster) {
                    self.seconds += self.cost.c1 * profile.speed;
                }
            }
            for r in task.refs() {
                if self.labels.contains_key(&r) {
                    continue;
                }
                for profile in &self.profiles {
                    self.seconds += self.cost.c2 * profile.speed;
                }
                let resolved = resolve_vote(
                    self.oracle.label(r),
                    &self.profiles,
                    self.seed,
                    self.shared_confusion,
                    self.tie,
                    r,
                );
                self.labels.insert(r, resolved);
            }
        }
        refs.iter()
            .map(|r| *self.labels.get(r).expect("just annotated"))
            .collect()
    }

    /// Total pool seconds (sum over members).
    pub fn seconds(&self) -> f64 {
        self.seconds
    }

    /// Distinct triples labeled.
    pub fn triples_annotated(&self) -> usize {
        self.labels.len()
    }

    /// Number of pool members.
    pub fn size(&self) -> usize {
        self.profiles.len()
    }
}

/// The pool's resolved labeling as a stateless [`LabelOracle`].
///
/// `PoolOracle` applies exactly the vote-resolution model of
/// [`AnnotatorPool::annotate`] — same substreams, same tie rule, same
/// shared-confusion layer — but carries no memoization or cost state, so
/// it can serve as the ground-truth oracle of *both* annotation engines
/// (the dense engine materializes it into a `LabelStore`). The estimand it
/// defines is the **pool-resolved accuracy**: what a real crowd audit
/// would converge to, biased away from the underlying gold accuracy by
/// whatever error the pool cannot suppress.
pub struct PoolOracle {
    oracle: Box<dyn LabelOracle + Send + Sync>,
    profiles: Vec<AnnotatorProfile>,
    seed: u64,
    shared_confusion: f64,
    tie: TieBreak,
}

impl PoolOracle {
    /// Wrap `oracle` behind a voting pool with the given profiles.
    pub fn new(
        oracle: Box<dyn LabelOracle + Send + Sync>,
        profiles: Vec<AnnotatorProfile>,
        seed: u64,
    ) -> Self {
        assert!(!profiles.is_empty(), "pool needs at least one annotator");
        for p in &profiles {
            assert!(
                (0.0..=1.0).contains(&p.error_rate) && p.speed > 0.0,
                "invalid annotator profile {p:?}"
            );
        }
        PoolOracle {
            oracle,
            profiles,
            seed,
            shared_confusion: 0.0,
            tie: TieBreak::default(),
        }
    }

    /// Set the even-pool tie-breaking rule (default:
    /// [`TieBreak::Incorrect`]).
    pub fn with_tie_break(mut self, tie: TieBreak) -> Self {
        self.tie = tie;
        self
    }

    /// Set the shared-confusion rate `ρ ∈ [0, 1]` (see
    /// [`AnnotatorPool::with_shared_confusion`]).
    pub fn with_shared_confusion(mut self, rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "shared confusion rate must be in [0, 1], got {rate}"
        );
        self.shared_confusion = rate;
        self
    }

    /// The underlying (gold) oracle, for bias comparisons.
    pub fn inner(&self) -> &dyn LabelOracle {
        self.oracle.as_ref()
    }
}

impl LabelOracle for PoolOracle {
    fn label(&self, t: TripleRef) -> bool {
        resolve_vote(
            self.oracle.label(t),
            &self.profiles,
            self.seed,
            self.shared_confusion,
            self.tie,
            t,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::RemOracle;
    use kg_model::implicit::ImplicitKg;

    fn refs(n: u32) -> Vec<TripleRef> {
        (0..n).map(|c| TripleRef::new(c, 0)).collect()
    }

    #[test]
    fn single_reliable_annotator_matches_plain_annotator() {
        let oracle = RemOracle::new(0.8, 1);
        let mut pool = AnnotatorPool::new(
            &oracle,
            CostModel::default(),
            vec![AnnotatorProfile::reliable()],
            9,
        );
        let labels = pool.annotate(&refs(50));
        let truth: Vec<bool> = refs(50).iter().map(|&r| oracle.label(r)).collect();
        assert_eq!(labels, truth);
        assert!((pool.seconds() - 50.0 * (45.0 + 25.0)).abs() < 1e-9);
        assert_eq!(pool.size(), 1);
    }

    #[test]
    fn majority_vote_suppresses_noise() {
        let kg = ImplicitKg::uniform(2000, 1).unwrap();
        let oracle = RemOracle::new(1.0, 2); // all triples correct
        let noisy = vec![AnnotatorProfile::hasty(0.2); 3];
        let mut pool = AnnotatorPool::new(&oracle, CostModel::default(), noisy, 4);
        let all: Vec<TripleRef> = (0..kg.sizes().len() as u32)
            .map(|c| TripleRef::new(c, 0))
            .collect();
        let labels = pool.annotate(&all);
        let acc = labels.iter().filter(|&&b| b).count() as f64 / labels.len() as f64;
        // Individual error 20% → majority-of-3 error = 3e²(1−e)+e³ ≈ 10.4%.
        assert!(acc > 0.87, "majority accuracy {acc}");
        // And strictly better than a single hasty annotator would be.
        let mut single = AnnotatorPool::new(
            &oracle,
            CostModel::default(),
            vec![AnnotatorProfile::hasty(0.2)],
            4,
        );
        let single_labels = single.annotate(&all);
        let single_acc =
            single_labels.iter().filter(|&&b| b).count() as f64 / single_labels.len() as f64;
        assert!(acc > single_acc, "majority {acc} vs single {single_acc}");
    }

    #[test]
    fn cost_sums_over_members_with_speed() {
        let oracle = RemOracle::new(0.9, 3);
        let mut pool = AnnotatorPool::new(
            &oracle,
            CostModel::new(40.0, 20.0),
            vec![
                AnnotatorProfile {
                    speed: 1.0,
                    error_rate: 0.0,
                },
                AnnotatorProfile {
                    speed: 0.5,
                    error_rate: 0.0,
                },
            ],
            5,
        );
        pool.annotate(&[TripleRef::new(0, 0)]);
        // (40 + 20)·1.0 + (40 + 20)·0.5 = 90.
        assert!((pool.seconds() - 90.0).abs() < 1e-9);
        assert_eq!(pool.triples_annotated(), 1);
    }

    #[test]
    fn repeats_are_free_and_votes_deterministic() {
        let oracle = RemOracle::new(0.5, 7);
        let profiles = vec![AnnotatorProfile::hasty(0.3); 3];
        let mut pool = AnnotatorPool::new(&oracle, CostModel::default(), profiles.clone(), 6);
        let first = pool.annotate(&refs(20));
        let cost = pool.seconds();
        let again = pool.annotate(&refs(20));
        assert_eq!(first, again);
        assert_eq!(pool.seconds(), cost);
        // Same seed → same votes in a fresh pool.
        let mut pool2 = AnnotatorPool::new(&oracle, CostModel::default(), profiles, 6);
        assert_eq!(pool2.annotate(&refs(20)), first);
    }

    #[test]
    fn even_pool_ties_break_toward_incorrect_deterministically() {
        // One perfectly reliable annotator and one that flips *every*
        // label splits a 2-member pool 1:1 on every triple; the strict
        // majority rule must resolve all ties to "incorrect".
        let always_wrong = AnnotatorProfile {
            speed: 1.0,
            error_rate: 1.0,
        };
        let profiles = vec![AnnotatorProfile::reliable(), always_wrong];
        // Both truth polarities: a correct KG and an all-wrong KG.
        for accuracy in [1.0, 0.0] {
            let oracle = RemOracle::new(accuracy, 13);
            let mut pool = AnnotatorPool::new(&oracle, CostModel::default(), profiles.clone(), 8);
            let labels = pool.annotate(&refs(40));
            assert!(
                labels.iter().all(|&l| !l),
                "ties must resolve to incorrect (truth accuracy {accuracy})"
            );
        }
    }

    #[test]
    fn even_pool_votes_are_deterministic_across_runs_and_batching() {
        // A 4-member pool with noisy members: genuine ties can occur, and
        // whatever the votes resolve to must be identical run-to-run and
        // independent of how the refs are batched.
        let profiles = vec![AnnotatorProfile::hasty(0.5); 4];
        let oracle = RemOracle::new(0.7, 21);
        let mut one_shot = AnnotatorPool::new(&oracle, CostModel::default(), profiles.clone(), 3);
        let all = one_shot.annotate(&refs(60));
        let mut rerun = AnnotatorPool::new(&oracle, CostModel::default(), profiles.clone(), 3);
        assert_eq!(rerun.annotate(&refs(60)), all);
        // Same triples split into two batches resolve identically.
        let mut split = AnnotatorPool::new(&oracle, CostModel::default(), profiles.clone(), 3);
        let refs_all = refs(60);
        let mut split_labels = split.annotate(&refs_all[..25]);
        split_labels.extend(split.annotate(&refs_all[25..]));
        assert_eq!(split_labels, all);
        // A strict majority of 4 needs 3 yes-votes: with 50% flippers on a
        // 70%-accurate KG some ties are statistically certain; the
        // conservative rule biases the pool estimate downward.
        let acc = all.iter().filter(|&&b| b).count() as f64 / all.len() as f64;
        assert!(acc < 0.7 + 1e-9, "tie-to-incorrect cannot inflate: {acc}");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_pool_rejected() {
        let oracle = RemOracle::new(0.9, 1);
        AnnotatorPool::new(&oracle, CostModel::default(), vec![], 1);
    }

    #[test]
    fn coin_flip_ties_are_deterministic_and_roughly_fair() {
        // reliable + always-wrong: every triple is a 1:1 tie, so the
        // coin-flip rule decides *every* label on the pool's substream.
        let always_wrong = AnnotatorProfile {
            speed: 1.0,
            error_rate: 1.0,
        };
        let profiles = vec![AnnotatorProfile::reliable(), always_wrong];
        let oracle = RemOracle::new(1.0, 13);
        let make = || {
            AnnotatorPool::new(&oracle, CostModel::default(), profiles.clone(), 8)
                .with_tie_break(TieBreak::CoinFlip)
        };
        let all = make().annotate(&refs(400));
        // Deterministic across runs and batching.
        assert_eq!(make().annotate(&refs(400)), all);
        let mut split = make();
        let refs_all = refs(400);
        let mut split_labels = split.annotate(&refs_all[..170]);
        split_labels.extend(split.annotate(&refs_all[170..]));
        assert_eq!(split_labels, all);
        // Fair coin: close to half resolve correct (binomial 5σ ≈ 0.125).
        let acc = all.iter().filter(|&&b| b).count() as f64 / all.len() as f64;
        assert!((acc - 0.5).abs() < 0.13, "coin-flip tie accuracy {acc}");
        // And distinct from the conservative default, which pins all to false.
        let strict = AnnotatorPool::new(&oracle, CostModel::default(), profiles.clone(), 8)
            .annotate(&refs(400));
        assert!(strict.iter().all(|&l| !l));
        assert_ne!(all, strict);
    }

    #[test]
    fn tie_rule_changes_nothing_for_odd_pools() {
        let profiles = vec![AnnotatorProfile::hasty(0.4); 3];
        let oracle = RemOracle::new(0.7, 17);
        let strict = AnnotatorPool::new(&oracle, CostModel::default(), profiles.clone(), 5)
            .annotate(&refs(80));
        let flip = AnnotatorPool::new(&oracle, CostModel::default(), profiles, 5)
            .with_tie_break(TieBreak::CoinFlip)
            .annotate(&refs(80));
        assert_eq!(strict, flip, "odd pools never tie");
    }

    #[test]
    fn shared_confusion_defeats_a_reliable_majority() {
        // Five perfectly reliable annotators, ρ = 0.3 shared confusion on
        // a perfect KG: every member perceives the same flipped truth on
        // confused triples, so majority voting cannot recover — pool
        // accuracy lands at 1 − ρ, not 1.
        let oracle = RemOracle::new(1.0, 23);
        let profiles = vec![AnnotatorProfile::reliable(); 5];
        let mut pool = AnnotatorPool::new(&oracle, CostModel::default(), profiles.clone(), 11)
            .with_shared_confusion(0.3);
        let labels = pool.annotate(&refs(2000));
        let acc = labels.iter().filter(|&&b| b).count() as f64 / labels.len() as f64;
        assert!(
            (acc - 0.7).abs() < 0.05,
            "correlated errors must survive voting: accuracy {acc}"
        );
        // Independent errors of the same magnitude *are* suppressed.
        let mut indep = AnnotatorPool::new(
            &oracle,
            CostModel::default(),
            vec![AnnotatorProfile::hasty(0.3); 5],
            11,
        );
        let indep_labels = indep.annotate(&refs(2000));
        let indep_acc =
            indep_labels.iter().filter(|&&b| b).count() as f64 / indep_labels.len() as f64;
        assert!(
            indep_acc > acc + 0.1,
            "independent {indep_acc} vs correlated {acc}"
        );
    }

    #[test]
    fn pool_oracle_matches_annotator_pool_labels() {
        // The stateless oracle view must reproduce AnnotatorPool::annotate
        // exactly, in both tie modes and with shared confusion active.
        let profiles = vec![AnnotatorProfile::hasty(0.35); 4];
        let all = refs(150);
        for tie in [TieBreak::Incorrect, TieBreak::CoinFlip] {
            let oracle = RemOracle::new(0.8, 29);
            let mut pool = AnnotatorPool::new(&oracle, CostModel::default(), profiles.clone(), 14)
                .with_tie_break(tie)
                .with_shared_confusion(0.15);
            let pooled = pool.annotate(&all);
            let po = PoolOracle::new(Box::new(RemOracle::new(0.8, 29)), profiles.clone(), 14)
                .with_tie_break(tie)
                .with_shared_confusion(0.15);
            let direct: Vec<bool> = all.iter().map(|&r| po.label(r)).collect();
            assert_eq!(pooled, direct, "tie mode {tie:?}");
        }
    }

    #[test]
    #[should_panic(expected = "before annotation")]
    fn tie_rule_locked_after_first_annotation() {
        let oracle = RemOracle::new(0.9, 1);
        let mut pool = AnnotatorPool::new(
            &oracle,
            CostModel::default(),
            vec![AnnotatorProfile::reliable()],
            1,
        );
        pool.annotate(&refs(1));
        let _ = pool.with_tie_break(TieBreak::CoinFlip);
    }
}

//! Multi-annotator evaluation: "users can specify either single evaluation
//! or multiple evaluations (assigned to different annotators) per
//! Evaluation Task" (§4).
//!
//! An [`AnnotatorPool`] assigns each evaluation task to `k` simulated
//! annotators, each with its own speed multiplier and per-triple error
//! rate, and resolves labels by majority vote. The total human cost is the
//! *sum* of the annotators' costs (they all do the work); the benefit is
//! label quality: majority voting suppresses individual annotator error,
//! which otherwise biases the accuracy estimate directly (a worker who
//! mislabels 10% of triples shifts μ̂ by up to 10%).

use crate::cost::CostModel;
use crate::oracle::LabelOracle;
use crate::task::group_into_tasks;
use kg_model::triple::TripleRef;
use std::collections::{HashMap, HashSet};

/// One pool member: relative speed and label noise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnotatorProfile {
    /// Cost multiplier (1.0 = the pool's base cost model; 0.5 = twice as
    /// fast).
    pub speed: f64,
    /// Probability of flipping any one label (independent per triple and
    /// per annotator, deterministic given the pool seed).
    pub error_rate: f64,
}

impl AnnotatorProfile {
    /// A careful, average-speed annotator.
    pub fn reliable() -> Self {
        AnnotatorProfile {
            speed: 1.0,
            error_rate: 0.0,
        }
    }

    /// A fast but sloppy annotator.
    pub fn hasty(error_rate: f64) -> Self {
        AnnotatorProfile {
            speed: 0.7,
            error_rate,
        }
    }
}

/// A pool of simulated annotators voting on every task.
///
/// # Tie-breaking with an even number of annotators
///
/// A label is resolved "correct" iff a **strict majority** of the pool
/// votes correct (`yes · 2 > k`). With an even pool a `k/2 : k/2` split is
/// possible; the strict inequality resolves every such tie to
/// **incorrect** — the conservative call for an accuracy audit (a triple
/// the pool cannot agree on should not inflate the accuracy estimate).
/// Ties are therefore deterministic: the same pool profiles, seed, and
/// task stream always produce the same labels, regardless of annotator
/// order or how tasks are batched (votes are memoized per triple on first
/// resolution).
pub struct AnnotatorPool<'a> {
    oracle: &'a dyn LabelOracle,
    cost: CostModel,
    profiles: Vec<AnnotatorProfile>,
    seed: u64,
    /// Entities identified per annotator (identification is per person —
    /// each must build their own mental model of the entity).
    identified: Vec<HashSet<u32>>,
    /// Majority-vote labels, memoized.
    labels: HashMap<TripleRef, bool>,
    seconds: f64,
}

impl<'a> AnnotatorPool<'a> {
    /// Pool with the given member profiles (at least one; odd counts avoid
    /// ties — even pools break ties toward "incorrect", the conservative
    /// call for an accuracy audit).
    pub fn new(
        oracle: &'a dyn LabelOracle,
        cost: CostModel,
        profiles: Vec<AnnotatorProfile>,
        seed: u64,
    ) -> Self {
        assert!(!profiles.is_empty(), "pool needs at least one annotator");
        for p in &profiles {
            assert!(
                (0.0..=1.0).contains(&p.error_rate) && p.speed > 0.0,
                "invalid annotator profile {p:?}"
            );
        }
        let identified = vec![HashSet::new(); profiles.len()];
        AnnotatorPool {
            oracle,
            cost,
            profiles,
            seed,
            identified,
            labels: HashMap::new(),
            seconds: 0.0,
        }
    }

    fn worker_label(&self, worker: usize, r: TripleRef) -> bool {
        let truth = self.oracle.label(r);
        let e = self.profiles[worker].error_rate;
        if e == 0.0 {
            return truth;
        }
        // Deterministic per-(worker, triple) flip.
        let u = crate::oracle::hash_uniform(
            self.seed ^ (worker as u64).wrapping_mul(0x9E37_79B9),
            r.cluster as u64,
            r.offset as u64,
        );
        if u < e {
            !truth
        } else {
            truth
        }
    }

    /// Annotate a batch: every task goes to every pool member; labels are
    /// resolved by strict majority vote (even-pool ties → incorrect; see
    /// the [type docs](AnnotatorPool#tie-breaking-with-an-even-number-of-annotators)).
    /// Returns labels in the order of `refs`.
    pub fn annotate(&mut self, refs: &[TripleRef]) -> Vec<bool> {
        for task in group_into_tasks(refs) {
            for (w, profile) in self.profiles.iter().enumerate() {
                if self.identified[w].insert(task.cluster) {
                    self.seconds += self.cost.c1 * profile.speed;
                }
            }
            for r in task.refs() {
                if self.labels.contains_key(&r) {
                    continue;
                }
                let mut yes = 0usize;
                for (w, profile) in self.profiles.iter().enumerate() {
                    if self.worker_label(w, r) {
                        yes += 1;
                    }
                    self.seconds += self.cost.c2 * profile.speed;
                }
                self.labels.insert(r, yes * 2 > self.profiles.len());
            }
        }
        refs.iter()
            .map(|r| *self.labels.get(r).expect("just annotated"))
            .collect()
    }

    /// Total pool seconds (sum over members).
    pub fn seconds(&self) -> f64 {
        self.seconds
    }

    /// Distinct triples labeled.
    pub fn triples_annotated(&self) -> usize {
        self.labels.len()
    }

    /// Number of pool members.
    pub fn size(&self) -> usize {
        self.profiles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::RemOracle;
    use kg_model::implicit::ImplicitKg;

    fn refs(n: u32) -> Vec<TripleRef> {
        (0..n).map(|c| TripleRef::new(c, 0)).collect()
    }

    #[test]
    fn single_reliable_annotator_matches_plain_annotator() {
        let oracle = RemOracle::new(0.8, 1);
        let mut pool = AnnotatorPool::new(
            &oracle,
            CostModel::default(),
            vec![AnnotatorProfile::reliable()],
            9,
        );
        let labels = pool.annotate(&refs(50));
        let truth: Vec<bool> = refs(50).iter().map(|&r| oracle.label(r)).collect();
        assert_eq!(labels, truth);
        assert!((pool.seconds() - 50.0 * (45.0 + 25.0)).abs() < 1e-9);
        assert_eq!(pool.size(), 1);
    }

    #[test]
    fn majority_vote_suppresses_noise() {
        let kg = ImplicitKg::uniform(2000, 1).unwrap();
        let oracle = RemOracle::new(1.0, 2); // all triples correct
        let noisy = vec![AnnotatorProfile::hasty(0.2); 3];
        let mut pool = AnnotatorPool::new(&oracle, CostModel::default(), noisy, 4);
        let all: Vec<TripleRef> = (0..kg.sizes().len() as u32)
            .map(|c| TripleRef::new(c, 0))
            .collect();
        let labels = pool.annotate(&all);
        let acc = labels.iter().filter(|&&b| b).count() as f64 / labels.len() as f64;
        // Individual error 20% → majority-of-3 error = 3e²(1−e)+e³ ≈ 10.4%.
        assert!(acc > 0.87, "majority accuracy {acc}");
        // And strictly better than a single hasty annotator would be.
        let mut single = AnnotatorPool::new(
            &oracle,
            CostModel::default(),
            vec![AnnotatorProfile::hasty(0.2)],
            4,
        );
        let single_labels = single.annotate(&all);
        let single_acc =
            single_labels.iter().filter(|&&b| b).count() as f64 / single_labels.len() as f64;
        assert!(acc > single_acc, "majority {acc} vs single {single_acc}");
    }

    #[test]
    fn cost_sums_over_members_with_speed() {
        let oracle = RemOracle::new(0.9, 3);
        let mut pool = AnnotatorPool::new(
            &oracle,
            CostModel::new(40.0, 20.0),
            vec![
                AnnotatorProfile {
                    speed: 1.0,
                    error_rate: 0.0,
                },
                AnnotatorProfile {
                    speed: 0.5,
                    error_rate: 0.0,
                },
            ],
            5,
        );
        pool.annotate(&[TripleRef::new(0, 0)]);
        // (40 + 20)·1.0 + (40 + 20)·0.5 = 90.
        assert!((pool.seconds() - 90.0).abs() < 1e-9);
        assert_eq!(pool.triples_annotated(), 1);
    }

    #[test]
    fn repeats_are_free_and_votes_deterministic() {
        let oracle = RemOracle::new(0.5, 7);
        let profiles = vec![AnnotatorProfile::hasty(0.3); 3];
        let mut pool = AnnotatorPool::new(&oracle, CostModel::default(), profiles.clone(), 6);
        let first = pool.annotate(&refs(20));
        let cost = pool.seconds();
        let again = pool.annotate(&refs(20));
        assert_eq!(first, again);
        assert_eq!(pool.seconds(), cost);
        // Same seed → same votes in a fresh pool.
        let mut pool2 = AnnotatorPool::new(&oracle, CostModel::default(), profiles, 6);
        assert_eq!(pool2.annotate(&refs(20)), first);
    }

    #[test]
    fn even_pool_ties_break_toward_incorrect_deterministically() {
        // One perfectly reliable annotator and one that flips *every*
        // label splits a 2-member pool 1:1 on every triple; the strict
        // majority rule must resolve all ties to "incorrect".
        let always_wrong = AnnotatorProfile {
            speed: 1.0,
            error_rate: 1.0,
        };
        let profiles = vec![AnnotatorProfile::reliable(), always_wrong];
        // Both truth polarities: a correct KG and an all-wrong KG.
        for accuracy in [1.0, 0.0] {
            let oracle = RemOracle::new(accuracy, 13);
            let mut pool = AnnotatorPool::new(&oracle, CostModel::default(), profiles.clone(), 8);
            let labels = pool.annotate(&refs(40));
            assert!(
                labels.iter().all(|&l| !l),
                "ties must resolve to incorrect (truth accuracy {accuracy})"
            );
        }
    }

    #[test]
    fn even_pool_votes_are_deterministic_across_runs_and_batching() {
        // A 4-member pool with noisy members: genuine ties can occur, and
        // whatever the votes resolve to must be identical run-to-run and
        // independent of how the refs are batched.
        let profiles = vec![AnnotatorProfile::hasty(0.5); 4];
        let oracle = RemOracle::new(0.7, 21);
        let mut one_shot = AnnotatorPool::new(&oracle, CostModel::default(), profiles.clone(), 3);
        let all = one_shot.annotate(&refs(60));
        let mut rerun = AnnotatorPool::new(&oracle, CostModel::default(), profiles.clone(), 3);
        assert_eq!(rerun.annotate(&refs(60)), all);
        // Same triples split into two batches resolve identically.
        let mut split = AnnotatorPool::new(&oracle, CostModel::default(), profiles.clone(), 3);
        let refs_all = refs(60);
        let mut split_labels = split.annotate(&refs_all[..25]);
        split_labels.extend(split.annotate(&refs_all[25..]));
        assert_eq!(split_labels, all);
        // A strict majority of 4 needs 3 yes-votes: with 50% flippers on a
        // 70%-accurate KG some ties are statistically certain; the
        // conservative rule biases the pool estimate downward.
        let acc = all.iter().filter(|&&b| b).count() as f64 / all.len() as f64;
        assert!(acc < 0.7 + 1e-9, "tie-to-incorrect cannot inflate: {acc}");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_pool_rejected() {
        let oracle = RemOracle::new(0.9, 1);
        AnnotatorPool::new(&oracle, CostModel::default(), vec![], 1);
    }
}

//! Arena checkout: a shared pool of reusable [`DenseAnnotator`] arenas for
//! parallel trial execution.
//!
//! The dense engine's whole advantage is arena reuse — `reset()` costs
//! only the previous trial's footprint, while building a fresh arena costs
//! O(KG size) in zeroed bitmaps. A parallel trial runtime (one worker per
//! core, each pumping its own stream of trials) therefore wants **one
//! arena per worker, built once and leased for the worker's lifetime**,
//! not an arena per trial and not one arena fought over by every thread.
//!
//! [`DenseArenaPool`] provides exactly that: workers [`checkout`] an arena
//! at start-up (the pool builds one on demand the first time, so a pool
//! shared by N workers stabilizes at ≤ N arenas) and the [`ArenaLease`]
//! returns it — reset — when dropped. Subsequent runs over the same pool
//! reuse the warm arenas, so repeated benchmark sweeps stop paying the
//! build cost entirely.
//!
//! Not to be confused with [`pool::AnnotatorPool`](crate::pool), which
//! models *multiple human annotators voting on the same task*; this pool
//! is a memory-reuse mechanism for one simulated annotator per thread.
//!
//! [`checkout`]: DenseArenaPool::checkout

use crate::cost::CostModel;
use crate::dense::DenseAnnotator;
use crate::label_store::LabelStore;
use std::sync::{Arc, Mutex};

/// A thread-safe pool of reusable [`DenseAnnotator`] arenas over one
/// shared [`LabelStore`].
pub struct DenseArenaPool {
    store: Arc<LabelStore>,
    cost: CostModel,
    idle: Mutex<Vec<DenseAnnotator>>,
    built: Mutex<usize>,
}

impl DenseArenaPool {
    /// Pool over a shared label store; arenas are built lazily on first
    /// checkout and all carry `cost`.
    pub fn new(store: Arc<LabelStore>, cost: CostModel) -> Self {
        DenseArenaPool {
            store,
            cost,
            idle: Mutex::new(Vec::new()),
            built: Mutex::new(0),
        }
    }

    /// The shared label store the arenas read from.
    pub fn store(&self) -> &Arc<LabelStore> {
        &self.store
    }

    /// Lease an arena: reuses an idle one when available, builds a fresh
    /// one otherwise. The arena is handed out in the reset (fresh-trial)
    /// state and returns to the pool — reset again — when the lease drops.
    pub fn checkout(&self) -> ArenaLease<'_> {
        let reused = lock_unpoisoned(&self.idle).pop();
        let arena = reused.unwrap_or_else(|| {
            *lock_unpoisoned(&self.built) += 1;
            DenseAnnotator::new(self.store.clone(), self.cost)
        });
        ArenaLease {
            pool: self,
            arena: Some(arena),
        }
    }

    /// Lease `n` arenas under **one** lock acquisition on the idle list.
    ///
    /// Sharded replay checks out one arena per shard worker at trial
    /// start; doing that through [`checkout`](Self::checkout) would take
    /// the idle mutex `n` times back-to-back from the coordinating thread.
    /// Here the idle list is drained once and only the shortfall is built
    /// fresh (outside any lock — arena construction is the expensive
    /// part).
    pub fn checkout_many(&self, n: usize) -> Vec<ArenaLease<'_>> {
        let mut arenas = {
            let mut idle = lock_unpoisoned(&self.idle);
            let keep = idle.len().saturating_sub(n);
            idle.split_off(keep)
        };
        if arenas.len() < n {
            let missing = n - arenas.len();
            *lock_unpoisoned(&self.built) += missing;
            arenas.extend(
                std::iter::repeat_with(|| DenseAnnotator::new(self.store.clone(), self.cost))
                    .take(missing),
            );
        }
        arenas
            .into_iter()
            .map(|arena| ArenaLease {
                pool: self,
                arena: Some(arena),
            })
            .collect()
    }

    /// Total arenas ever built — with one long-lived lease per worker this
    /// stays at the peak concurrent worker count.
    pub fn arenas_built(&self) -> usize {
        *lock_unpoisoned(&self.built)
    }

    /// Arenas currently idle in the pool.
    pub fn idle_arenas(&self) -> usize {
        lock_unpoisoned(&self.idle).len()
    }
}

impl std::fmt::Debug for DenseArenaPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DenseArenaPool")
            .field("built", &self.arenas_built())
            .field("idle", &self.idle_arenas())
            .finish()
    }
}

/// A checked-out [`DenseAnnotator`]; derefs to the arena and returns it to
/// the pool (reset) on drop.
pub struct ArenaLease<'p> {
    pool: &'p DenseArenaPool,
    arena: Option<DenseAnnotator>,
}

impl ArenaLease<'_> {
    /// The leased arena, for contexts where deref coercion to
    /// `&mut dyn Annotator` needs a nudge.
    pub fn arena_mut(&mut self) -> &mut DenseAnnotator {
        self.arena.as_mut().expect("arena present until drop")
    }
}

impl std::ops::Deref for ArenaLease<'_> {
    type Target = DenseAnnotator;
    fn deref(&self) -> &DenseAnnotator {
        self.arena.as_ref().expect("arena present until drop")
    }
}

impl std::ops::DerefMut for ArenaLease<'_> {
    fn deref_mut(&mut self) -> &mut DenseAnnotator {
        self.arena_mut()
    }
}

/// Lock a pool mutex, shrugging off poison: the guarded state (a `Vec` of
/// arenas, a counter) is never left mid-mutation across a panic — the only
/// writes are single `push`/`pop`/`+= 1` operations — so a poisoned flag
/// carries no integrity information here. Ignoring it keeps one worker's
/// panic from cascading `checkout` panics through every sibling worker.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Drop for ArenaLease<'_> {
    fn drop(&mut self) {
        if let Some(mut arena) = self.arena.take() {
            // A lease dropped during a panic unwind discards its arena
            // instead of pooling it: the trial died mid-annotation, so the
            // memo bitmaps, journals, and trial tombstones may be mutually
            // inconsistent — resetting relies on the journal being
            // complete, which a panic can no longer guarantee. The slot is
            // not leaked: `built` only tracks construction count, and the
            // next checkout simply builds a fresh arena.
            if std::thread::panicking() {
                return;
            }
            arena.reset();
            lock_unpoisoned(&self.pool.idle).push(arena);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotator::Annotator;
    use crate::oracle::RemOracle;
    use kg_model::implicit::ImplicitKg;

    fn pool() -> DenseArenaPool {
        let kg = ImplicitKg::new(vec![4; 50]).unwrap();
        let oracle = RemOracle::new(0.8, 3);
        let store = Arc::new(LabelStore::materialize(&kg, &oracle));
        DenseArenaPool::new(store, CostModel::default())
    }

    #[test]
    fn checkout_builds_lazily_and_reuses_on_return() {
        let pool = pool();
        assert_eq!(pool.arenas_built(), 0);
        {
            let mut a = pool.checkout();
            assert_eq!(pool.arenas_built(), 1);
            a.annotate_cluster(0, 4);
            assert!(a.seconds() > 0.0);
        }
        assert_eq!(pool.idle_arenas(), 1);
        // Second checkout reuses the arena — and gets it reset.
        let b = pool.checkout();
        assert_eq!(pool.arenas_built(), 1);
        assert_eq!(b.seconds(), 0.0);
        assert_eq!(b.triples_annotated(), 0);
    }

    #[test]
    fn concurrent_leases_build_distinct_arenas() {
        let pool = pool();
        let a = pool.checkout();
        let b = pool.checkout();
        assert_eq!(pool.arenas_built(), 2);
        assert_eq!(pool.idle_arenas(), 0);
        drop(a);
        drop(b);
        assert_eq!(pool.idle_arenas(), 2);
        // A later wave reuses both.
        let _c = pool.checkout();
        let _d = pool.checkout();
        assert_eq!(pool.arenas_built(), 2);
    }

    #[test]
    fn lease_drives_the_annotator_trait() {
        let pool = pool();
        let mut lease = pool.checkout();
        let ann: &mut dyn Annotator = lease.arena_mut();
        let tau = ann.annotate_cluster(1, 4);
        assert!(tau <= 4);
        assert_eq!(ann.entities_identified(), 1);
    }

    #[test]
    fn panicking_trial_discards_its_arena_without_poisoning_the_pool() {
        let pool = pool();
        // Warm the pool so the panicking trial checks out a *reused* arena —
        // the discard must not repool it in a half-annotated state.
        drop(pool.checkout());
        assert_eq!(pool.idle_arenas(), 1);

        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut lease = pool.checkout();
            lease.annotate_cluster(0, 4);
            panic!("trial blew up mid-annotation");
        }));
        assert!(result.is_err());

        // The arena was discarded, not leaked back into `idle` dirty.
        assert_eq!(pool.idle_arenas(), 0);
        // The pool stays fully usable: the next checkout builds fresh and
        // hands out a clean-slate arena.
        let mut lease = pool.checkout();
        assert_eq!(pool.arenas_built(), 2);
        assert_eq!(lease.seconds(), 0.0);
        assert_eq!(lease.triples_annotated(), 0);
        let tau = lease.annotate_cluster(0, 4);
        assert!(tau <= 4);
        drop(lease);
        assert_eq!(pool.idle_arenas(), 1);
    }

    #[test]
    fn checkout_many_drains_idle_first_and_builds_only_the_shortfall() {
        let pool = pool();
        // Warm two arenas into the idle list.
        drop(pool.checkout());
        drop(pool.checkout_many(2));
        assert_eq!(pool.arenas_built(), 2);
        assert_eq!(pool.idle_arenas(), 2);

        // Batch of 5: reuses both idle arenas, builds 3 fresh.
        let mut batch = pool.checkout_many(5);
        assert_eq!(batch.len(), 5);
        assert_eq!(pool.arenas_built(), 5);
        assert_eq!(pool.idle_arenas(), 0);
        // Every lease in the batch is independently usable and reset.
        for (i, lease) in batch.iter_mut().enumerate() {
            assert_eq!(lease.seconds(), 0.0, "lease {i} not fresh");
            lease.annotate_cluster(i as u32, 4);
        }
        drop(batch);
        assert_eq!(pool.idle_arenas(), 5);

        // Zero-size batch is a no-op.
        assert!(pool.checkout_many(0).is_empty());
        assert_eq!(pool.arenas_built(), 5);
    }

    #[test]
    fn workers_share_the_pool_across_threads() {
        let pool = pool();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for cluster in 0..50u32 {
                        let mut lease = pool.checkout();
                        lease.annotate_cluster(cluster, 4);
                    }
                });
            }
        });
        // Never more arenas than peak concurrency, all back home now.
        assert!(pool.arenas_built() <= 4, "built {}", pool.arenas_built());
        assert_eq!(pool.idle_arenas(), pool.arenas_built());
        let dbg = format!("{pool:?}");
        assert!(dbg.contains("DenseArenaPool"));
    }
}

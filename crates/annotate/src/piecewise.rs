//! Piecewise oracle over cluster-id segments.
//!
//! Evolving-KG experiments (§7.3) give the base KG and each update batch
//! *different* accuracies (e.g. base at 90%, an update at 20%). Cluster ids
//! of an evolved KG are assigned segment-by-segment — base clusters first,
//! then each batch's `Δe` clusters appended — so a piecewise dispatch on
//! cluster id composes any per-segment oracles into one oracle for `G + Δ`.

use crate::oracle::LabelOracle;
use kg_model::triple::TripleRef;

/// An oracle dispatching on cluster-id segments.
///
/// Segment `j` covers cluster ids `starts[j] .. starts[j+1]` (the last
/// segment is open-ended). Lookups below `starts[0]` are routed to segment
/// 0 (only possible when `starts[0] > 0`, which [`PiecewiseOracle::new`]
/// forbids).
pub struct PiecewiseOracle {
    starts: Vec<u32>,
    oracles: Vec<Box<dyn LabelOracle + Send + Sync>>,
}

impl PiecewiseOracle {
    /// Single-segment oracle starting at cluster 0.
    pub fn new(first: Box<dyn LabelOracle + Send + Sync>) -> Self {
        PiecewiseOracle {
            starts: vec![0],
            oracles: vec![first],
        }
    }

    /// Append a segment starting at `start_cluster` (must be strictly
    /// increasing across calls).
    pub fn push_segment(&mut self, start_cluster: u32, oracle: Box<dyn LabelOracle + Send + Sync>) {
        assert!(
            start_cluster > *self.starts.last().expect("at least one segment"),
            "segment starts must be strictly increasing"
        );
        self.starts.push(start_cluster);
        self.oracles.push(oracle);
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.starts.len()
    }

    fn segment_of(&self, cluster: u32) -> usize {
        // partition_point: first start > cluster; segment is that - 1.
        self.starts.partition_point(|&s| s <= cluster) - 1
    }
}

impl LabelOracle for PiecewiseOracle {
    fn label(&self, t: TripleRef) -> bool {
        self.oracles[self.segment_of(t.cluster)].label(t)
    }

    fn expected_cluster_accuracy(&self, cluster: u32, size: usize) -> f64 {
        self.oracles[self.segment_of(cluster)].expected_cluster_accuracy(cluster, size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::RemOracle;

    #[test]
    fn dispatches_by_segment() {
        let mut o = PiecewiseOracle::new(Box::new(RemOracle::new(1.0, 1)));
        o.push_segment(10, Box::new(RemOracle::new(0.0, 2)));
        assert_eq!(o.num_segments(), 2);
        for c in 0..10 {
            assert!(o.label(TripleRef::new(c, 0)));
        }
        for c in 10..20 {
            assert!(!o.label(TripleRef::new(c, 0)));
        }
        assert_eq!(o.expected_cluster_accuracy(5, 3), 1.0);
        assert_eq!(o.expected_cluster_accuracy(15, 3), 0.0);
    }

    #[test]
    fn three_segments() {
        let mut o = PiecewiseOracle::new(Box::new(RemOracle::new(1.0, 1)));
        o.push_segment(5, Box::new(RemOracle::new(0.0, 2)));
        o.push_segment(8, Box::new(RemOracle::new(1.0, 3)));
        assert!(o.label(TripleRef::new(4, 0)));
        assert!(!o.label(TripleRef::new(7, 0)));
        assert!(o.label(TripleRef::new(8, 0)));
        assert!(o.label(TripleRef::new(100, 0)));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_non_increasing_starts() {
        let mut o = PiecewiseOracle::new(Box::new(RemOracle::new(1.0, 1)));
        o.push_segment(0, Box::new(RemOracle::new(0.0, 2)));
    }
}

//! The evaluation cost function (Definition 3) and its least-squares fitter
//! (§7.1.3, Fig. 4).

/// Average per-step annotation costs, in seconds.
///
/// `Cost(G') = |E'|·c1 + |G'|·c2` where `E'` is the set of distinct subject
/// ids in the annotated sample `G'`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Average entity-identification cost (seconds per distinct entity).
    pub c1: f64,
    /// Average relationship-validation cost (seconds per triple).
    pub c2: f64,
}

impl Default for CostModel {
    /// The paper's fitted parameters: `c1 = 45 s`, `c2 = 25 s` (§7.1.3).
    fn default() -> Self {
        CostModel { c1: 45.0, c2: 25.0 }
    }
}

/// One observed annotation task for fitting: distinct entities, triples,
/// and measured wall-clock seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostObservation {
    /// Number of distinct entities identified in the task.
    pub entities: u64,
    /// Number of triples validated in the task.
    pub triples: u64,
    /// Observed total seconds.
    pub seconds: f64,
}

impl CostModel {
    /// Construct with explicit parameters (must be non-negative).
    pub fn new(c1: f64, c2: f64) -> Self {
        assert!(c1 >= 0.0 && c2 >= 0.0, "costs must be non-negative");
        CostModel { c1, c2 }
    }

    /// Approximate cost, in seconds, of annotating `entities` distinct
    /// entities and `triples` triples (Eq. 4).
    pub fn seconds(&self, entities: u64, triples: u64) -> f64 {
        entities as f64 * self.c1 + triples as f64 * self.c2
    }

    /// Same as [`CostModel::seconds`], in hours — the unit of every table in
    /// the paper.
    pub fn hours(&self, entities: u64, triples: u64) -> f64 {
        self.seconds(entities, triples) / 3600.0
    }

    /// Least-squares fit of `(c1, c2)` to observed task timings: minimizes
    /// `Σ (e_i·c1 + t_i·c2 − y_i)²` via the 2×2 normal equations, clamping
    /// to non-negative costs. Returns `None` when the observations do not
    /// determine both parameters (fewer than two linearly independent
    /// design rows).
    pub fn fit(observations: &[CostObservation]) -> Option<CostModel> {
        // Normal equations: [Σe², Σet; Σet, Σt²]·[c1; c2] = [Σey; Σty].
        let (mut see, mut set, mut stt, mut sey, mut sty) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for o in observations {
            let e = o.entities as f64;
            let t = o.triples as f64;
            see += e * e;
            set += e * t;
            stt += t * t;
            sey += e * o.seconds;
            sty += t * o.seconds;
        }
        let det = see * stt - set * set;
        if det.abs() < 1e-9 {
            return None;
        }
        let c1 = (sey * stt - sty * set) / det;
        let c2 = (sty * see - sey * set) / det;
        Some(CostModel {
            c1: c1.max(0.0),
            c2: c2.max(0.0),
        })
    }

    /// Residual root-mean-square error of this model on observations.
    pub fn rmse(&self, observations: &[CostObservation]) -> f64 {
        if observations.is_empty() {
            return 0.0;
        }
        let sq: f64 = observations
            .iter()
            .map(|o| {
                let r = self.seconds(o.entities, o.triples) - o.seconds;
                r * r
            })
            .sum();
        (sq / observations.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let m = CostModel::default();
        assert_eq!(m.c1, 45.0);
        assert_eq!(m.c2, 25.0);
    }

    #[test]
    fn cost_matches_paper_examples() {
        // §7.1.3: SRS task 174 entities / 174 triples = 174·70/3600 ≈ 3.4 h
        // (the paper prints "≈3.86" but the arithmetic of Eq. 4 with the
        // fitted c1=45, c2=25 gives 3.38; we follow Eq. 4);
        // TWCS task 24 entities / 178 triples ≈ 1.54 h.
        let m = CostModel::default();
        assert!((m.hours(174, 174) - 3.3833).abs() < 0.01);
        assert!((m.hours(24, 178) - 1.536).abs() < 0.01);
    }

    #[test]
    fn fit_recovers_exact_parameters() {
        let truth = CostModel::new(45.0, 25.0);
        let obs: Vec<CostObservation> = vec![(174, 174), (24, 178), (11, 50), (50, 50)]
            .into_iter()
            .map(|(e, t)| CostObservation {
                entities: e,
                triples: t,
                seconds: truth.seconds(e, t),
            })
            .collect();
        let fitted = CostModel::fit(&obs).unwrap();
        assert!((fitted.c1 - 45.0).abs() < 1e-6, "c1 {}", fitted.c1);
        assert!((fitted.c2 - 25.0).abs() < 1e-6, "c2 {}", fitted.c2);
        assert!(fitted.rmse(&obs) < 1e-6);
    }

    #[test]
    fn fit_is_robust_to_noise() {
        let truth = CostModel::new(40.0, 20.0);
        let obs: Vec<CostObservation> = (1..40u64)
            .map(|i| {
                // Vary the entities-per-triple ratio so c1 and c2 are both
                // identifiable (non-collinear design rows).
                let (e, t) = (i, i * 3 + (i % 7) * 5);
                let noise = if i % 2 == 0 { 5.0 } else { -5.0 };
                CostObservation {
                    entities: e,
                    triples: t,
                    seconds: truth.seconds(e, t) + noise,
                }
            })
            .collect();
        let fitted = CostModel::fit(&obs).unwrap();
        assert!((fitted.c1 - 40.0).abs() < 3.0, "c1 {}", fitted.c1);
        assert!((fitted.c2 - 20.0).abs() < 1.0, "c2 {}", fitted.c2);
    }

    #[test]
    fn fit_detects_degenerate_designs() {
        // All observations proportional: c1/c2 not identifiable.
        let obs = vec![
            CostObservation {
                entities: 1,
                triples: 1,
                seconds: 70.0,
            },
            CostObservation {
                entities: 2,
                triples: 2,
                seconds: 140.0,
            },
        ];
        assert!(CostModel::fit(&obs).is_none());
        assert!(CostModel::fit(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_costs_rejected() {
        CostModel::new(-1.0, 5.0);
    }

    #[test]
    fn rmse_of_empty_observations_is_zero() {
        assert_eq!(CostModel::default().rmse(&[]), 0.0);
    }
}

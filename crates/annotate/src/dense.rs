//! The dense annotation engine: zero-allocation memoization over a
//! materialized [`LabelStore`].
//!
//! The hash-based [`SimulatedAnnotator`](crate::annotator::SimulatedAnnotator)
//! pays, per annotated triple, a SipHash `HashMap` insert, a `HashSet`
//! probe, and a virtual oracle call — and every *trial* of a 1000-trial
//! experiment rebuilds those tables from scratch. [`DenseAnnotator`]
//! replaces all of it with three packed bitmaps (identified-entities,
//! labeled-triples, fully-labeled-clusters) over the store's dense index
//! space:
//!
//! * **memoization** is a bit test — no hashing, no probing, and at one
//!   bit per triple the whole memo for a 10^6-triple KG is ~125 KB, small
//!   enough to stay cache-resident where a 4-byte-per-entry table thrashes;
//! * **labels** come from the store's packed bitset — no virtual dispatch;
//! * **reset** between trials zeroes only the words the trial actually
//!   touched (each write to a fresh word logs it in a journal), so the
//!   arena is reused across trials at a cost proportional to the trial's
//!   own sample — independent of KG size — instead of reallocating and
//!   rehashing;
//! * **cluster fast path**: a fully-annotated cluster re-drawn by WCS (a
//!   with-replacement design!) answers from the precomputed `τ_i`, and a
//!   first full-cluster visit stamps its bits a word at a time.
//!
//! Cost accounting is the same `Cost(G') = |E'|·c1 + |G'|·c2` (Definition
//! 3) derived from the memo counts, so on identical draw sequences the two
//! engines report byte-identical seconds.

use crate::annotator::Annotator;
use crate::cost::CostModel;
use crate::label_store::LabelStore;
use kg_model::triple::TripleRef;
use std::sync::Arc;

/// One packed bit-set with a touched-word journal for cheap trial resets.
#[derive(Debug, Default)]
struct TrialBitmap {
    words: Vec<u64>,
    /// Indices of words written since the last reset (each pushed exactly
    /// once: a word is journaled only on its first 0 → nonzero flip).
    touched: Vec<u32>,
}

impl TrialBitmap {
    fn with_capacity(bits: u64) -> Self {
        TrialBitmap {
            words: vec![0; bits.div_ceil(64) as usize],
            touched: Vec::new(),
        }
    }

    /// Set bit `i`; returns whether it was previously clear.
    #[inline]
    fn set(&mut self, i: u64) -> bool {
        let w = &mut self.words[(i >> 6) as usize];
        let bit = 1u64 << (i & 63);
        if *w & bit != 0 {
            return false;
        }
        if *w == 0 {
            self.touched.push((i >> 6) as u32);
        }
        *w |= bit;
        true
    }

    /// Set every bit in `[start, end)` word-at-a-time; returns how many
    /// were previously clear.
    fn set_range(&mut self, start: u64, end: u64) -> u64 {
        debug_assert!(start <= end);
        let mut newly = 0u64;
        let mut i = start;
        while i < end {
            let wi = (i >> 6) as usize;
            let lo = i & 63;
            let span = (end - i).min(64 - lo);
            let mask = if span == 64 {
                u64::MAX
            } else {
                ((1u64 << span) - 1) << lo
            };
            let w = &mut self.words[wi];
            if *w == 0 {
                self.touched.push(wi as u32);
            }
            newly += (mask & !*w).count_ones() as u64;
            *w |= mask;
            i += span;
        }
        newly
    }

    /// Zero every touched word — O(words the trial wrote), not O(capacity).
    fn reset(&mut self) {
        for &w in &self.touched {
            self.words[w as usize] = 0;
        }
        self.touched.clear();
    }
}

/// Dense annotator arena: label store + cost accounting + bitmap memo.
///
/// # Population scope
///
/// The arena is sized for the store's **fixed** population: every
/// `TripleRef`/cluster id passed to it must lie inside the materialized
/// `LabelStore`, and out-of-range ids panic (index out of bounds). That
/// makes the dense engine a drop-in for the *static* designs and the
/// iterative evaluation loop, but **not** for the dynamic evaluators
/// (`kg-eval`'s reservoir/stratified-incremental), whose cluster id space
/// grows past any materialized snapshot with each update batch — drive
/// those with an oracle-backed
/// [`SimulatedAnnotator`](crate::annotator::SimulatedAnnotator), which can
/// label clusters that did not exist when evaluation began.
pub struct DenseAnnotator {
    store: Arc<LabelStore>,
    cost: CostModel,
    /// Per-cluster identification bits.
    identified: TrialBitmap,
    /// Per-triple validation bits (global index space).
    labeled: TrialBitmap,
    /// Per-cluster "every triple labeled" bits (WCS/RCS fast path).
    cluster_full: TrialBitmap,
    n_identified: usize,
    n_labeled: usize,
}

impl DenseAnnotator {
    /// New arena over a shared label store. Allocates the bitmaps once;
    /// reuse the arena across trials via [`DenseAnnotator::reset`].
    pub fn new(store: Arc<LabelStore>, cost: CostModel) -> Self {
        let n = store.num_clusters() as u64;
        let m = store.total_triples();
        DenseAnnotator {
            cost,
            identified: TrialBitmap::with_capacity(n),
            labeled: TrialBitmap::with_capacity(m),
            cluster_full: TrialBitmap::with_capacity(n),
            n_identified: 0,
            n_labeled: 0,
            store,
        }
    }

    /// Forget everything annotated so far, zeroing only the memo words the
    /// trial touched: cost proportional to the trial's sample, independent
    /// of the KG size, with all capacity retained.
    pub fn reset(&mut self) {
        self.identified.reset();
        self.labeled.reset();
        self.cluster_full.reset();
        self.n_identified = 0;
        self.n_labeled = 0;
    }

    /// The shared label store.
    pub fn store(&self) -> &Arc<LabelStore> {
        &self.store
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Charge entity identification if this cluster is new this trial.
    #[inline]
    fn identify(&mut self, cluster: u32) {
        if self.identified.set(cluster as u64) {
            self.n_identified += 1;
        }
    }

    /// Mark one global triple validated if new; returns its label.
    #[inline]
    fn validate(&mut self, global: u64) -> bool {
        if self.labeled.set(global) {
            self.n_labeled += 1;
        }
        self.store.label_at(global)
    }
}

impl Annotator for DenseAnnotator {
    fn annotate_into(&mut self, refs: &[TripleRef], out: &mut Vec<bool>) {
        out.clear();
        out.reserve(refs.len());
        for &r in refs {
            self.identify(r.cluster);
            let g = self.store.global_index(r);
            out.push(self.validate(g));
        }
    }

    fn annotate_indexed_into(&mut self, refs: &[TripleRef], globals: &[u64], out: &mut Vec<bool>) {
        debug_assert_eq!(refs.len(), globals.len());
        out.clear();
        out.reserve(refs.len());
        for (&r, &g) in refs.iter().zip(globals) {
            debug_assert_eq!(g, self.store.global_index(r));
            self.identify(r.cluster);
            out.push(self.validate(g));
        }
    }

    fn annotate_one(&mut self, r: TripleRef) -> bool {
        self.identify(r.cluster);
        let g = self.store.global_index(r);
        self.validate(g)
    }

    fn annotate_cluster(&mut self, cluster: u32, size: usize) -> u32 {
        let c = cluster as usize;
        debug_assert_eq!(size, self.store.cluster_size(c));
        self.identify(cluster);
        if self.cluster_full.set(cluster as u64) {
            // First full visit this trial: stamp the cluster's bit range a
            // word at a time; mixed access (a TWCS subset followed by a
            // full WCS draw of the same cluster) stays exactly charged.
            let base = self.store.cluster_base(c);
            self.n_labeled += self.labeled.set_range(base, base + size as u64) as usize;
        }
        self.store.cluster_tau(c)
    }

    fn annotate_offsets(&mut self, cluster: u32, offsets: &[usize]) -> u32 {
        self.identify(cluster);
        let base = self.store.cluster_base(cluster as usize);
        let mut tau = 0u32;
        for &o in offsets {
            tau += self.validate(base + o as u64) as u32;
        }
        tau
    }

    fn seconds(&self) -> f64 {
        self.n_identified as f64 * self.cost.c1 + self.n_labeled as f64 * self.cost.c2
    }

    fn entities_identified(&self) -> usize {
        self.n_identified
    }

    fn triples_annotated(&self) -> usize {
        self.n_labeled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotator::SimulatedAnnotator;
    use crate::oracle::{GoldLabels, RemOracle};
    use kg_model::implicit::ImplicitKg;

    fn store() -> Arc<LabelStore> {
        let gold = GoldLabels::new(vec![
            vec![true, false, true], // cluster 0
            vec![true],              // cluster 1
            vec![false, false],      // cluster 2
        ]);
        let kg = ImplicitKg::new(vec![3, 1, 2]).unwrap();
        Arc::new(LabelStore::materialize(&kg, &gold))
    }

    #[test]
    fn matches_hash_annotator_on_mixed_workload() {
        let store = store();
        let gold = GoldLabels::new(vec![
            vec![true, false, true],
            vec![true],
            vec![false, false],
        ]);
        let cost = CostModel::new(45.0, 25.0);
        let mut dense = DenseAnnotator::new(store, cost);
        let mut hash = SimulatedAnnotator::new(&gold, cost);

        let refs = [
            TripleRef::new(2, 1),
            TripleRef::new(0, 0),
            TripleRef::new(2, 1), // repeat
        ];
        let mut dout = Vec::new();
        let mut hout = Vec::new();
        dense.annotate_into(&refs, &mut dout);
        hash.annotate_into(&refs, &mut hout);
        assert_eq!(dout, hout);

        assert_eq!(dense.annotate_cluster(0, 3), hash.annotate_cluster(0, 3));
        assert_eq!(
            dense.annotate_offsets(1, &[0]),
            hash.annotate_offsets(1, &[0])
        );
        assert_eq!(dense.annotate_one(TripleRef::new(2, 0)), {
            hash.annotate_one(TripleRef::new(2, 0))
        });
        assert_eq!(dense.seconds(), hash.seconds());
        assert_eq!(dense.entities_identified(), hash.entities_identified());
        assert_eq!(dense.triples_annotated(), hash.triples_annotated());
    }

    #[test]
    fn repeats_and_full_cluster_fast_path_are_free() {
        let store = store();
        let mut a = DenseAnnotator::new(store, CostModel::new(45.0, 25.0));
        let tau = a.annotate_cluster(0, 3);
        assert_eq!(tau, 2);
        let cost = a.seconds();
        assert!((cost - (45.0 + 3.0 * 25.0)).abs() < 1e-9);
        // Re-draws (WCS samples with replacement) answer from τ_i.
        assert_eq!(a.annotate_cluster(0, 3), 2);
        assert_eq!(a.annotate_offsets(0, &[1, 2]), 1);
        assert_eq!(a.seconds(), cost);
        assert_eq!(a.triples_annotated(), 3);
        assert_eq!(a.entities_identified(), 1);
    }

    #[test]
    fn subset_then_full_cluster_charges_exactly_once() {
        let store = store();
        let mut a = DenseAnnotator::new(store, CostModel::new(45.0, 25.0));
        assert_eq!(a.annotate_offsets(0, &[1]), 0);
        assert!((a.seconds() - (45.0 + 25.0)).abs() < 1e-9);
        // Full draw of the same cluster pays only the two missing triples.
        assert_eq!(a.annotate_cluster(0, 3), 2);
        assert!((a.seconds() - (45.0 + 3.0 * 25.0)).abs() < 1e-9);
        assert_eq!(a.triples_annotated(), 3);
    }

    #[test]
    fn reset_is_a_fresh_trial() {
        let store = store();
        let mut a = DenseAnnotator::new(store, CostModel::default());
        a.annotate_cluster(0, 3);
        a.annotate_one(TripleRef::new(1, 0));
        assert!(a.seconds() > 0.0);
        a.reset();
        assert_eq!(a.seconds(), 0.0);
        assert_eq!(a.entities_identified(), 0);
        assert_eq!(a.triples_annotated(), 0);
        // Previously annotated triples are charged again after reset.
        a.annotate_one(TripleRef::new(0, 0));
        assert_eq!(a.triples_annotated(), 1);
        assert_eq!(a.entities_identified(), 1);
        // And repeated resets keep the journal bounded.
        for _ in 0..5 {
            a.reset();
            assert_eq!(a.annotate_cluster(2, 2), 0);
            assert_eq!(a.triples_annotated(), 2);
        }
    }

    #[test]
    fn set_range_counts_only_fresh_bits_across_word_boundaries() {
        let mut bm = TrialBitmap::with_capacity(200);
        assert!(bm.set(70));
        // Range spanning three words, one bit pre-set.
        assert_eq!(bm.set_range(60, 190), 129);
        assert_eq!(bm.set_range(60, 190), 0);
        // Full-word interior span.
        assert_eq!(bm.set_range(0, 60), 60);
        bm.reset();
        assert!(bm.words.iter().all(|&w| w == 0));
        assert!(bm.touched.is_empty());
        assert_eq!(bm.set_range(0, 64), 64);
    }

    #[test]
    fn store_and_cost_accessors() {
        let store = store();
        let a = DenseAnnotator::new(store.clone(), CostModel::default());
        assert!(Arc::ptr_eq(a.store(), &store));
        assert_eq!(a.cost_model(), CostModel::default());
    }

    #[test]
    fn works_with_procedural_oracles() {
        let kg = ImplicitKg::new(vec![5; 40]).unwrap();
        let rem = RemOracle::new(0.8, 7);
        let store = Arc::new(LabelStore::materialize(&kg, &rem));
        let mut a = DenseAnnotator::new(store.clone(), CostModel::default());
        let mut tau = 0;
        for c in 0..40u32 {
            tau += a.annotate_cluster(c, 5);
        }
        assert_eq!(tau as f64 / 200.0, store.true_accuracy());
        assert_eq!(a.triples_annotated(), 200);
    }
}

//! The dense annotation engine: zero-allocation memoization over a
//! materialized [`LabelStore`].
//!
//! The hash-based [`SimulatedAnnotator`](crate::annotator::SimulatedAnnotator)
//! pays, per annotated triple, a SipHash `HashMap` insert, a `HashSet`
//! probe, and a virtual oracle call — and every *trial* of a 1000-trial
//! experiment rebuilds those tables from scratch. [`DenseAnnotator`]
//! replaces all of it with three packed bitmaps (identified-entities,
//! labeled-triples, fully-labeled-clusters) over the store's dense index
//! space:
//!
//! * **memoization** is a bit test — no hashing, no probing, and at one
//!   bit per triple the whole memo for a 10^6-triple KG is ~125 KB, small
//!   enough to stay cache-resident where a 4-byte-per-entry table thrashes;
//! * **labels** come from the store's packed bitset — no virtual dispatch;
//! * **reset** between trials zeroes only the spans the trial actually
//!   touched (each mutating call logs one span in the bitmap's journal),
//!   so the arena is reused across trials at a cost proportional to the
//!   trial's own sample — independent of KG size — instead of
//!   reallocating and rehashing;
//! * **cluster fast path**: a fully-annotated cluster re-drawn by WCS (a
//!   with-replacement design!) answers from the precomputed `τ_i`, and a
//!   first full-cluster visit stamps its bits through the multi-word
//!   [`BitsetJournal::set_range`] kernel (head mask / `memset` interior /
//!   tail mask — see [`crate::bitset`]).
//!
//! Cost accounting is the same `Cost(G') = |E'|·c1 + |G'|·c2` (Definition
//! 3) derived from the memo counts, so on identical draw sequences the two
//! engines report byte-identical seconds.

use crate::annotator::Annotator;
use crate::bitset::BitsetJournal;
use crate::cost::CostModel;
use crate::label_store::LabelStore;
use crate::oracle::LabelOracle;
use kg_model::retract::{map_live_offset, Retraction, TombstoneMap};
use kg_model::triple::TripleRef;
use kg_model::update::UpdateBatch;
use std::collections::HashMap;
use std::sync::Arc;

/// Error from [`DenseAnnotator::try_extend_population`]: the update batch
/// cannot be reconciled with the engine's label store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DenseGrowthError {
    /// The batch's id range cannot be reconciled with the store: it starts
    /// past the end (leaving an unlabeled gap) or straddles it.
    IdGap {
        /// The next cluster id the store can mint.
        expected: u32,
        /// The id the batch claims.
        first_cluster: u32,
    },
    /// The batch mints fresh ids but the engine was built without a growth
    /// oracle ([`DenseAnnotator::new`]); use [`DenseAnnotator::growable`]
    /// or extend explicitly via [`DenseAnnotator::extend_with_batch`].
    NoGrowthOracle,
    /// Replay over a pre-evolved store found a cluster whose materialized
    /// size differs from the batch's `Δe` size — the replayed sequence is
    /// not the one the store was evolved with. Checked positions in
    /// release: range total and both boundary clusters (see
    /// [`DenseAnnotator::try_extend_population`]); the full scan runs
    /// under debug assertions.
    SizeMismatch {
        /// The conflicting cluster id.
        cluster: u32,
        /// Its size in the store.
        store: u32,
        /// Its size in the batch.
        batch: u32,
    },
}

impl std::fmt::Display for DenseGrowthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DenseGrowthError::IdGap {
                expected,
                first_cluster,
            } => write!(
                f,
                "update batch starts at cluster {first_cluster} but the label store \
                 ends at {expected}: batches must arrive in order"
            ),
            DenseGrowthError::NoGrowthOracle => write!(
                f,
                "dense annotator has no growth oracle for delta-minted clusters; \
                 build it with DenseAnnotator::growable or call extend_with_batch"
            ),
            DenseGrowthError::SizeMismatch {
                cluster,
                store,
                batch,
            } => write!(
                f,
                "replayed batch disagrees with the evolved label store: cluster \
                 {cluster} has {store} triples materialized but {batch} in the batch"
            ),
        }
    }
}

impl std::error::Error for DenseGrowthError {}

/// Dense annotator arena: label store + cost accounting + bitmap memo.
///
/// # Population scope
///
/// The arena covers the store's current population and **grows with it**:
/// evolving-KG update batches append delta-minted cluster ids through
/// [`DenseAnnotator::extend_with_batch`] (explicit oracle) or the
/// [`Annotator::extend_population`] hook (growth oracle configured via
/// [`DenseAnnotator::growable`]), which the §6 incremental evaluators
/// invoke before annotating a batch — so the dense engine drives the
/// dynamic evaluators exactly like the hash engine does. Ids beyond the
/// store that were never announced through either path are still a logic
/// error (no labels exist for them); [`DenseAnnotator::try_extend_population`]
/// is the checked variant that reports misuse as a typed
/// [`DenseGrowthError`] instead of panicking.
pub struct DenseAnnotator {
    store: Arc<LabelStore>,
    cost: CostModel,
    /// Labels delta-minted clusters when the population grows
    /// ([`Annotator::extend_population`]); `None` for fixed populations.
    growth_oracle: Option<Arc<dyn LabelOracle + Send + Sync>>,
    /// Per-cluster identification bits.
    identified: BitsetJournal,
    /// Per-triple validation bits (global index space).
    labeled: BitsetJournal,
    /// Per-cluster "every triple labeled" bits (WCS/RCS fast path).
    cluster_full: BitsetJournal,
    n_identified: usize,
    n_labeled: usize,
    /// **Trial-state** tombstones ([`Annotator::retract`]): per-cluster
    /// sorted dead raw offsets. Deliberately *not* part of the shared
    /// [`LabelStore`]: the store stays the immutable raw-label arena
    /// (replayed trials would otherwise observe final tombstone state
    /// mid-stream and diverge from the hash reference), and a trial
    /// [`DenseAnnotator::reset`] drops them in O(retractions this trial).
    tombs: TombstoneMap,
    /// Correct-label count among each cluster's dead triples, maintained by
    /// [`Annotator::retract`] so the cluster fast path can answer live τ as
    /// `raw τ_i − dead τ_i` without rescanning.
    dead_tau: HashMap<u32, u32>,
}

impl DenseAnnotator {
    /// New arena over a shared label store. Allocates the bitmaps once;
    /// reuse the arena across trials via [`DenseAnnotator::reset`].
    pub fn new(store: Arc<LabelStore>, cost: CostModel) -> Self {
        let n = store.num_clusters() as u64;
        let m = store.total_triples();
        DenseAnnotator {
            cost,
            growth_oracle: None,
            identified: BitsetJournal::with_capacity(n),
            labeled: BitsetJournal::with_capacity(m),
            cluster_full: BitsetJournal::with_capacity(n),
            n_identified: 0,
            n_labeled: 0,
            tombs: TombstoneMap::new(),
            dead_tau: HashMap::new(),
            store,
        }
    }

    /// New arena for an **evolving** population: like [`DenseAnnotator::new`]
    /// but with a growth oracle that labels delta-minted clusters whenever
    /// an incremental evaluator announces an update batch via
    /// [`Annotator::extend_population`].
    pub fn growable(
        store: Arc<LabelStore>,
        cost: CostModel,
        oracle: Arc<dyn LabelOracle + Send + Sync>,
    ) -> Self {
        let mut this = Self::new(store, cost);
        this.growth_oracle = Some(oracle);
        this
    }

    /// Append an update batch's clusters to the arena: the label store is
    /// extended (`LabelStore::extend_with_batch`, amortized O(|Δ|)) and the
    /// three bitmaps grow to cover the new ids, preserving every journal
    /// entry and memo bit — annotations from earlier batches stay reusable,
    /// which is the whole point of incremental evaluation.
    ///
    /// The store `Arc` is made unique first (copy-on-write): if other
    /// holders share it they keep the pre-batch snapshot. Hold the arena as
    /// the sole owner across an update sequence to grow strictly in place.
    pub fn extend_with_batch<O: LabelOracle + ?Sized>(&mut self, delta: &UpdateBatch, oracle: &O) {
        Arc::make_mut(&mut self.store).extend_with_batch(delta, oracle);
        self.grow_bitmaps();
    }

    /// Checked core of [`Annotator::extend_population`]: grow for a batch
    /// minting ids at `first_cluster`, no-op for a batch the store already
    /// covers (deterministic replay over a pre-evolved store), and a typed
    /// error for id gaps, replay shape mismatches, or growth without an
    /// oracle.
    ///
    /// Replay verification is O(1) in release: the covered range's triple
    /// total plus its first and last cluster sizes must match the batch.
    /// A wrong sequence whose mismatches compensate across *interior*
    /// clusters only (equal total, equal boundary sizes) is not detected
    /// here in release — the full per-cluster scan runs under debug
    /// assertions, because an O(|Δ|) prefix walk per batch would tax every
    /// dense trial at scale for a pure caller-logic error.
    pub fn try_extend_population(
        &mut self,
        first_cluster: u32,
        delta: &UpdateBatch,
    ) -> Result<(), DenseGrowthError> {
        let n = self.store.num_clusters() as u32;
        let sizes = delta.delta_sizes();
        if sizes.is_empty() {
            return Ok(());
        }
        if first_cluster > n || (first_cluster < n && n - first_cluster < sizes.len() as u32) {
            // A gap past the store end, or a batch straddling it: either
            // way the id range cannot be reconciled.
            return Err(DenseGrowthError::IdGap {
                expected: n,
                first_cluster,
            });
        }
        if first_cluster < n {
            // Replay: the ids are already materialized. O(1) shape check —
            // range total plus both boundary clusters (catches wrong
            // sequences, reorderings, and off-by-one shifts).
            let first = first_cluster as usize;
            let last = first + sizes.len() - 1;
            let lo = self.store.cluster_base(first);
            let hi = self.store.cluster_base(last) + self.store.cluster_size(last) as u64;
            let boundary_mismatch = |j: usize| {
                let have = self.store.cluster_size(first + j) as u32;
                (have != sizes[j]).then_some((first_cluster + j as u32, have, sizes[j]))
            };
            if let Some((cluster, have, batch)) = (hi - lo != delta.total_triples())
                .then(|| {
                    // Locate one offending cluster for the report.
                    sizes
                        .iter()
                        .enumerate()
                        .map(|(j, &s)| {
                            let c = first_cluster + j as u32;
                            (c, self.store.cluster_size(c as usize) as u32, s)
                        })
                        .find(|&(_, have, s)| have != s)
                        .expect("total mismatch implies a cluster mismatch")
                })
                .or_else(|| boundary_mismatch(0))
                .or_else(|| boundary_mismatch(sizes.len() - 1))
            {
                return Err(DenseGrowthError::SizeMismatch {
                    cluster,
                    store: have,
                    batch,
                });
            }
            #[cfg(debug_assertions)]
            for (j, &s) in sizes.iter().enumerate() {
                let cluster = first_cluster + j as u32;
                debug_assert_eq!(
                    self.store.cluster_size(cluster as usize) as u32,
                    s,
                    "replayed batch shape diverges at cluster {cluster}"
                );
            }
            return Ok(());
        }
        let oracle = self
            .growth_oracle
            .clone()
            .ok_or(DenseGrowthError::NoGrowthOracle)?;
        self.extend_with_batch(delta, oracle.as_ref());
        Ok(())
    }

    /// Resize the three bitmaps to the store's current dimensions.
    fn grow_bitmaps(&mut self) {
        let n = self.store.num_clusters() as u64;
        self.identified.grow(n);
        self.cluster_full.grow(n);
        self.labeled.grow(self.store.total_triples());
    }

    /// Forget everything annotated so far, zeroing only the memo words the
    /// trial touched: cost proportional to the trial's sample, independent
    /// of the KG size, with all capacity retained.
    pub fn reset(&mut self) {
        self.identified.reset();
        self.labeled.reset();
        self.cluster_full.reset();
        self.n_identified = 0;
        self.n_labeled = 0;
        // Tombstones are trial state: a replay re-applies its retraction
        // events from scratch, so clearing here (O(retracted clusters),
        // capacity kept) keeps reset footprint-proportional.
        self.tombs.clear();
        self.dead_tau.clear();
    }

    /// The shared label store.
    pub fn store(&self) -> &Arc<LabelStore> {
        &self.store
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> CostModel {
        self.cost
    }

    /// Charge entity identification if this cluster is new this trial.
    #[inline]
    fn identify(&mut self, cluster: u32) {
        if self.identified.set(cluster as u64) {
            self.n_identified += 1;
        }
    }

    /// Mark one global triple validated if new; returns its label.
    #[inline]
    fn validate(&mut self, global: u64) -> bool {
        if self.labeled.set(global) {
            self.n_labeled += 1;
        }
        self.store.label_at(global)
    }
}

impl Annotator for DenseAnnotator {
    fn annotate_into(&mut self, refs: &[TripleRef], out: &mut Vec<bool>) {
        out.clear();
        out.reserve(refs.len());
        for &r in refs {
            self.identify(r.cluster);
            let g = self.store.global_index(r);
            out.push(self.validate(g));
        }
    }

    fn annotate_indexed_into(&mut self, refs: &[TripleRef], globals: &[u64], out: &mut Vec<bool>) {
        debug_assert_eq!(refs.len(), globals.len());
        out.clear();
        out.reserve(refs.len());
        for (&r, &g) in refs.iter().zip(globals) {
            debug_assert_eq!(g, self.store.global_index(r));
            self.identify(r.cluster);
            out.push(self.validate(g));
        }
    }

    fn annotate_one(&mut self, r: TripleRef) -> bool {
        self.identify(r.cluster);
        let g = self.store.global_index(r);
        self.validate(g)
    }

    fn annotate_cluster_sited(&mut self, cluster: u32, base: u64, size: usize) -> u32 {
        // Fast path for PPS draw loops that carry the cluster's base in the
        // alias slot: the arena stamp `[base, base + size)` depends only on
        // values the caller already has, so the only store access left on
        // the visit's serial chain is the τ read — one dependent load
        // shallower than `annotate_cluster`, which must fetch the base from
        // the cluster directory before it can touch the arena.
        if self.tombs.is_empty() {
            debug_assert_eq!(size, self.store.cluster_size(cluster as usize));
            debug_assert_eq!(base, self.store.cluster_base(cluster as usize));
            self.identify(cluster);
            if self.cluster_full.set(cluster as u64) {
                self.n_labeled += self.labeled.set_range(base, base + size as u64) as usize;
            }
            return self.store.cluster_tau(cluster as usize);
        }
        // Tombstones present: `size` is the live size and the stamp must
        // skip dead offsets — take the full path (the base hint is
        // recomputed there).
        self.annotate_cluster(cluster, size)
    }

    fn annotate_cluster(&mut self, cluster: u32, size: usize) -> u32 {
        let c = cluster as usize;
        // `dead_in` is a hash probe; skip it on the overwhelmingly common
        // tombstone-free path (one integer compare) — this sits inside
        // every full-cluster visit of every WCS/RCS trial.
        let dead_n = if self.tombs.is_empty() {
            0
        } else {
            self.tombs.dead_in(cluster) as usize
        };
        if dead_n == 0 {
            debug_assert_eq!(size, self.store.cluster_size(c));
            self.identify(cluster);
            if self.cluster_full.set(cluster as u64) {
                // First full visit this trial: stamp the cluster's bit
                // range a word at a time; mixed access (a TWCS subset
                // followed by a full WCS draw of the same cluster) stays
                // exactly charged.
                let base = self.store.cluster_base(c);
                self.n_labeled += self.labeled.set_range(base, base + size as u64) as usize;
            }
            return self.store.cluster_tau(c);
        }
        // Tombstoned cluster: `size` is the LIVE size; only surviving raw
        // offsets are stamped, and live τ answers from raw τ_i minus the
        // dead correct count — the same distinct-triple set and count the
        // hash reference produces.
        debug_assert_eq!(size + dead_n, self.store.cluster_size(c));
        self.identify(cluster);
        if self.cluster_full.set(cluster as u64) {
            let base = self.store.cluster_base(c);
            let raw_size = self.store.cluster_size(c) as u32;
            let Self {
                tombs,
                labeled,
                n_labeled,
                ..
            } = self;
            let dead = tombs.cluster(cluster).expect("dead_n > 0");
            let mut di = 0usize;
            for o in 0..raw_size {
                if dead.get(di) == Some(&o) {
                    di += 1;
                    continue;
                }
                if labeled.set(base + o as u64) {
                    *n_labeled += 1;
                }
            }
        }
        self.store.cluster_tau(c) - self.dead_tau.get(&cluster).copied().unwrap_or(0)
    }

    fn annotate_offsets(&mut self, cluster: u32, offsets: &[usize]) -> u32 {
        // LIVE offsets: translated through the trial tombstones (identity
        // for untombstoned clusters, the overwhelmingly common case).
        self.identify(cluster);
        let base = self.store.cluster_base(cluster as usize);
        let Self {
            store,
            tombs,
            labeled,
            n_labeled,
            ..
        } = self;
        let dead: &[u32] = if tombs.is_empty() {
            &[]
        } else {
            tombs.cluster(cluster).unwrap_or(&[])
        };
        let mut tau = 0u32;
        for &o in offsets {
            let g = base + map_live_offset(dead, o as u32) as u64;
            if labeled.set(g) {
                *n_labeled += 1;
            }
            tau += store.label_at(g) as u32;
        }
        tau
    }

    fn seconds(&self) -> f64 {
        self.n_identified as f64 * self.cost.c1 + self.n_labeled as f64 * self.cost.c2
    }

    fn entities_identified(&self) -> usize {
        self.n_identified
    }

    fn triples_annotated(&self) -> usize {
        self.n_labeled
    }

    fn extend_population(&mut self, first_cluster: u32, delta: &UpdateBatch) {
        self.try_extend_population(first_cluster, delta)
            .unwrap_or_else(|e| panic!("dense annotator cannot absorb update batch: {e}"));
    }

    fn retract(&mut self, retraction: &Retraction) {
        // Count the correct labels among the dying triples (from the raw
        // store — deterministic, independent of annotation history) so the
        // cluster fast path can answer live τ without rescanning; then
        // record the tombstones. Memo bits are untouched: sunk cost.
        for (cluster, offsets) in retraction.entries() {
            let base = self.store.cluster_base(*cluster as usize);
            let mut dead_correct = 0u32;
            for &o in offsets.iter() {
                dead_correct += self.store.label_at(base + o as u64) as u32;
            }
            if dead_correct > 0 {
                *self.dead_tau.entry(*cluster).or_insert(0) += dead_correct;
            }
        }
        self.tombs.apply(retraction);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotator::SimulatedAnnotator;
    use crate::oracle::{GoldLabels, RemOracle};
    use kg_model::implicit::ImplicitKg;

    fn store() -> Arc<LabelStore> {
        let gold = GoldLabels::new(vec![
            vec![true, false, true], // cluster 0
            vec![true],              // cluster 1
            vec![false, false],      // cluster 2
        ]);
        let kg = ImplicitKg::new(vec![3, 1, 2]).unwrap();
        Arc::new(LabelStore::materialize(&kg, &gold))
    }

    #[test]
    fn matches_hash_annotator_on_mixed_workload() {
        let store = store();
        let gold = GoldLabels::new(vec![
            vec![true, false, true],
            vec![true],
            vec![false, false],
        ]);
        let cost = CostModel::new(45.0, 25.0);
        let mut dense = DenseAnnotator::new(store, cost);
        let mut hash = SimulatedAnnotator::new(&gold, cost);

        let refs = [
            TripleRef::new(2, 1),
            TripleRef::new(0, 0),
            TripleRef::new(2, 1), // repeat
        ];
        let mut dout = Vec::new();
        let mut hout = Vec::new();
        dense.annotate_into(&refs, &mut dout);
        hash.annotate_into(&refs, &mut hout);
        assert_eq!(dout, hout);

        assert_eq!(dense.annotate_cluster(0, 3), hash.annotate_cluster(0, 3));
        assert_eq!(
            dense.annotate_offsets(1, &[0]),
            hash.annotate_offsets(1, &[0])
        );
        assert_eq!(dense.annotate_one(TripleRef::new(2, 0)), {
            hash.annotate_one(TripleRef::new(2, 0))
        });
        assert_eq!(dense.seconds(), hash.seconds());
        assert_eq!(dense.entities_identified(), hash.entities_identified());
        assert_eq!(dense.triples_annotated(), hash.triples_annotated());
    }

    #[test]
    fn repeats_and_full_cluster_fast_path_are_free() {
        let store = store();
        let mut a = DenseAnnotator::new(store, CostModel::new(45.0, 25.0));
        let tau = a.annotate_cluster(0, 3);
        assert_eq!(tau, 2);
        let cost = a.seconds();
        assert!((cost - (45.0 + 3.0 * 25.0)).abs() < 1e-9);
        // Re-draws (WCS samples with replacement) answer from τ_i.
        assert_eq!(a.annotate_cluster(0, 3), 2);
        assert_eq!(a.annotate_offsets(0, &[1, 2]), 1);
        assert_eq!(a.seconds(), cost);
        assert_eq!(a.triples_annotated(), 3);
        assert_eq!(a.entities_identified(), 1);
    }

    #[test]
    fn subset_then_full_cluster_charges_exactly_once() {
        let store = store();
        let mut a = DenseAnnotator::new(store, CostModel::new(45.0, 25.0));
        assert_eq!(a.annotate_offsets(0, &[1]), 0);
        assert!((a.seconds() - (45.0 + 25.0)).abs() < 1e-9);
        // Full draw of the same cluster pays only the two missing triples.
        assert_eq!(a.annotate_cluster(0, 3), 2);
        assert!((a.seconds() - (45.0 + 3.0 * 25.0)).abs() < 1e-9);
        assert_eq!(a.triples_annotated(), 3);
    }

    #[test]
    fn reset_is_a_fresh_trial() {
        let store = store();
        let mut a = DenseAnnotator::new(store, CostModel::default());
        a.annotate_cluster(0, 3);
        a.annotate_one(TripleRef::new(1, 0));
        assert!(a.seconds() > 0.0);
        a.reset();
        assert_eq!(a.seconds(), 0.0);
        assert_eq!(a.entities_identified(), 0);
        assert_eq!(a.triples_annotated(), 0);
        // Previously annotated triples are charged again after reset.
        a.annotate_one(TripleRef::new(0, 0));
        assert_eq!(a.triples_annotated(), 1);
        assert_eq!(a.entities_identified(), 1);
        // And repeated resets keep the journal bounded.
        for _ in 0..5 {
            a.reset();
            assert_eq!(a.annotate_cluster(2, 2), 0);
            assert_eq!(a.triples_annotated(), 2);
        }
    }

    #[test]
    fn store_and_cost_accessors() {
        let store = store();
        let a = DenseAnnotator::new(store.clone(), CostModel::default());
        assert!(Arc::ptr_eq(a.store(), &store));
        assert_eq!(a.cost_model(), CostModel::default());
    }

    #[test]
    fn appended_ids_grow_the_arena_instead_of_panicking() {
        // Regression for the footgun the old doc comment warned about: an
        // incremental evaluator mints cluster ids past the materialized
        // snapshot and annotates them. Pre-growth this panicked with an
        // index out of bounds; now the batch grows store + bitmaps and the
        // delta ids are first-class.
        let kg = ImplicitKg::new(vec![4; 10]).unwrap();
        let oracle = RemOracle::new(0.8, 3);
        let store = Arc::new(LabelStore::materialize(&kg, &oracle));
        let mut dense =
            DenseAnnotator::growable(store, CostModel::new(45.0, 25.0), Arc::new(oracle));
        let mut hash = SimulatedAnnotator::new(&oracle, CostModel::new(45.0, 25.0));

        // Annotate some base clusters first (their memo must survive).
        assert_eq!(dense.annotate_cluster(3, 4), hash.annotate_cluster(3, 4));

        // A batch arrives, minting ids 10 and 11.
        let delta = UpdateBatch::from_sizes(vec![7, 200]).unwrap();
        dense.extend_population(10, &delta);
        assert_eq!(dense.store().num_clusters(), 12);
        assert_eq!(dense.annotate_cluster(10, 7), hash.annotate_cluster(10, 7));
        assert_eq!(
            dense.annotate_offsets(11, &[0, 63, 64, 199]),
            hash.annotate_offsets(11, &[0, 63, 64, 199])
        );
        // Base memo survived growth: re-drawing cluster 3 is still free.
        let cost = dense.seconds();
        dense.annotate_cluster(3, 4);
        assert_eq!(dense.seconds(), cost);
        assert_eq!(dense.seconds(), {
            hash.annotate_cluster(3, 4);
            hash.seconds()
        });
        assert_eq!(dense.triples_annotated(), hash.triples_annotated());
        assert_eq!(dense.entities_identified(), hash.entities_identified());
        // The hash engine treats the same hook as a no-op.
        hash.extend_population(12, &UpdateBatch::from_sizes(vec![1]).unwrap());
    }

    #[test]
    fn replay_over_pre_evolved_store_is_a_no_op() {
        let kg = ImplicitKg::new(vec![2; 5]).unwrap();
        let oracle = RemOracle::new(0.6, 9);
        let mut store = LabelStore::materialize(&kg, &oracle);
        let delta = UpdateBatch::from_sizes(vec![3, 1]).unwrap();
        store.extend_with_batch(&delta, &oracle);
        // No growth oracle needed: the store already covers the replayed ids.
        let mut dense = DenseAnnotator::new(Arc::new(store), CostModel::default());
        assert_eq!(dense.try_extend_population(5, &delta), Ok(()));
        assert_eq!(dense.store().num_clusters(), 7);
        assert_eq!(dense.annotate_cluster(5, 3), {
            let mut h = SimulatedAnnotator::new(&oracle, CostModel::default());
            h.annotate_cluster(5, 3)
        });
    }

    #[test]
    fn checked_growth_reports_typed_errors() {
        let kg = ImplicitKg::new(vec![2; 5]).unwrap();
        let oracle = RemOracle::new(0.6, 9);
        let store = Arc::new(LabelStore::materialize(&kg, &oracle));
        let mut fixed = DenseAnnotator::new(store.clone(), CostModel::default());
        let delta = UpdateBatch::from_sizes(vec![3]).unwrap();
        // Fresh ids without a growth oracle.
        assert_eq!(
            fixed.try_extend_population(5, &delta),
            Err(DenseGrowthError::NoGrowthOracle)
        );
        // Id gap (batch skips id 5) and straddling ranges.
        assert_eq!(
            fixed.try_extend_population(6, &delta),
            Err(DenseGrowthError::IdGap {
                expected: 5,
                first_cluster: 6
            })
        );
        assert_eq!(
            fixed.try_extend_population(4, &UpdateBatch::from_sizes(vec![2, 9]).unwrap()),
            Err(DenseGrowthError::IdGap {
                expected: 5,
                first_cluster: 4
            })
        );
        // Replay whose shape disagrees with the materialized snapshot.
        assert_eq!(
            fixed.try_extend_population(4, &UpdateBatch::from_sizes(vec![9]).unwrap()),
            Err(DenseGrowthError::SizeMismatch {
                cluster: 4,
                store: 2,
                batch: 9
            })
        );
        // A reordered replay with the *same total* is still rejected: the
        // boundary clusters are checked even when the range total matches.
        let kg2 = ImplicitKg::new(vec![2; 3]).unwrap();
        let mut store2 = LabelStore::materialize(&kg2, &oracle);
        store2.extend_with_batch(&UpdateBatch::from_sizes(vec![3, 2, 1]).unwrap(), &oracle);
        let mut evolved = DenseAnnotator::new(Arc::new(store2), CostModel::default());
        assert_eq!(
            evolved.try_extend_population(3, &UpdateBatch::from_sizes(vec![1, 2, 3]).unwrap()),
            Err(DenseGrowthError::SizeMismatch {
                cluster: 3,
                store: 3,
                batch: 1
            })
        );
        // Empty batches are always fine.
        assert_eq!(
            fixed.try_extend_population(42, &UpdateBatch::from_sizes(vec![]).unwrap()),
            Ok(())
        );
        // Errors render actionable messages.
        let msg = DenseGrowthError::NoGrowthOracle.to_string();
        assert!(msg.contains("growable"), "{msg}");
    }

    #[test]
    fn retraction_matches_hash_engine_on_live_addressing() {
        let kg = ImplicitKg::new(vec![6, 3, 5]).unwrap();
        let oracle = RemOracle::new(0.7, 13);
        let store = Arc::new(LabelStore::materialize(&kg, &oracle));
        let cost = CostModel::new(45.0, 25.0);
        let mut dense = DenseAnnotator::new(store, cost);
        let mut hash = SimulatedAnnotator::new(&oracle, cost);

        // Annotate some of cluster 0 before anything dies (sunk cost).
        assert_eq!(dense.annotate_offsets(0, &[1, 4]), {
            hash.annotate_offsets(0, &[1, 4])
        });
        let r = Retraction::new(vec![(0, vec![0, 4]), (2, vec![2])]).unwrap();
        dense.retract(&r);
        hash.retract(&r);
        assert_eq!(dense.seconds(), hash.seconds(), "retraction is free");
        // Live full-cluster visits agree on τ, cost, and memo counts.
        assert_eq!(dense.annotate_cluster(0, 4), hash.annotate_cluster(0, 4));
        assert_eq!(dense.annotate_cluster(2, 4), hash.annotate_cluster(2, 4));
        assert_eq!(dense.seconds(), hash.seconds());
        assert_eq!(dense.triples_annotated(), hash.triples_annotated());
        // Live subset addressing agrees too (and re-visits stay free).
        assert_eq!(dense.annotate_offsets(0, &[0, 3]), {
            hash.annotate_offsets(0, &[0, 3])
        });
        assert_eq!(dense.annotate_offsets(2, &[1, 3]), {
            hash.annotate_offsets(2, &[1, 3])
        });
        assert_eq!(dense.seconds(), hash.seconds());
        // Untouched cluster 1 keeps identity addressing.
        assert_eq!(dense.annotate_cluster(1, 3), hash.annotate_cluster(1, 3));
        assert_eq!(dense.seconds(), hash.seconds());
        assert_eq!(dense.entities_identified(), hash.entities_identified());
    }

    #[test]
    fn stacked_retractions_shrink_the_live_view_consistently() {
        let kg = ImplicitKg::new(vec![8]).unwrap();
        let oracle = RemOracle::new(0.5, 21);
        let store = Arc::new(LabelStore::materialize(&kg, &oracle));
        let cost = CostModel::new(45.0, 25.0);
        let mut dense = DenseAnnotator::new(store, cost);
        let mut hash = SimulatedAnnotator::new(&oracle, cost);
        // Full visit, then two successive retractions of the same cluster.
        assert_eq!(dense.annotate_cluster(0, 8), hash.annotate_cluster(0, 8));
        let r1 = Retraction::new(vec![(0, vec![1, 5])]).unwrap();
        dense.retract(&r1);
        hash.retract(&r1);
        assert_eq!(dense.annotate_cluster(0, 6), hash.annotate_cluster(0, 6));
        // Second retraction addresses RAW offsets of previously-live
        // triples (raw 0 and raw 7).
        let r2 = Retraction::new(vec![(0, vec![0, 7])]).unwrap();
        dense.retract(&r2);
        hash.retract(&r2);
        assert_eq!(dense.annotate_cluster(0, 4), hash.annotate_cluster(0, 4));
        assert_eq!(dense.annotate_offsets(0, &[0, 1, 2, 3]), {
            hash.annotate_offsets(0, &[0, 1, 2, 3])
        });
        // Everything was memoized pre-retraction: no new charges at all.
        assert_eq!(dense.seconds(), hash.seconds());
        assert_eq!(dense.triples_annotated(), 8);
        assert_eq!(hash.triples_annotated(), 8);
    }

    #[test]
    fn reset_clears_tombstones_for_the_next_replay() {
        let kg = ImplicitKg::new(vec![4, 2]).unwrap();
        let oracle = RemOracle::new(0.6, 5);
        let store = Arc::new(LabelStore::materialize(&kg, &oracle));
        let mut dense = DenseAnnotator::new(store.clone(), CostModel::default());
        let r = Retraction::new(vec![(0, vec![0, 2])]).unwrap();
        dense.retract(&r);
        let live_tau = dense.annotate_cluster(0, 2);
        dense.reset();
        // Fresh trial: the full raw cluster is live again.
        assert_eq!(dense.annotate_cluster(0, 4), store.cluster_tau(0));
        assert_eq!(dense.triples_annotated(), 4);
        // And replaying the retraction reproduces the first trial exactly.
        dense.reset();
        dense.retract(&r);
        assert_eq!(dense.annotate_cluster(0, 2), live_tau);
        assert_eq!(dense.triples_annotated(), 2);
    }

    #[test]
    fn works_with_procedural_oracles() {
        let kg = ImplicitKg::new(vec![5; 40]).unwrap();
        let rem = RemOracle::new(0.8, 7);
        let store = Arc::new(LabelStore::materialize(&kg, &rem));
        let mut a = DenseAnnotator::new(store.clone(), CostModel::default());
        let mut tau = 0;
        for c in 0..40u32 {
            tau += a.annotate_cluster(c, 5);
        }
        assert_eq!(tau as f64 / 200.0, store.true_accuracy());
        assert_eq!(a.triples_annotated(), 200);
    }
}

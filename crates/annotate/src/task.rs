//! Evaluation tasks: sampled triples grouped by subject id (§3.1).
//!
//! An **Evaluation Task** is "a group of triples with the same subject id"
//! handed to an annotator: the entity is identified once, then each triple
//! is validated. Grouping a sample into tasks is what turns Table 1's
//! expensive Task1 shape (all-distinct subjects) into the cheap Task2 shape.

use kg_model::triple::TripleRef;
use std::collections::HashMap;

/// A group of triples sharing one subject cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvaluationTask {
    /// The cluster (entity) the task is about.
    pub cluster: u32,
    /// Offsets of the triples to validate, in first-sampled order.
    pub offsets: Vec<u32>,
}

impl EvaluationTask {
    /// Number of triples in the task.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the task is empty (never produced by [`group_into_tasks`]).
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Iterate the task's triple references.
    pub fn refs(&self) -> impl Iterator<Item = TripleRef> + '_ {
        let cluster = self.cluster;
        self.offsets
            .iter()
            .map(move |&o| TripleRef::new(cluster, o))
    }
}

/// Group sampled triple references into evaluation tasks by subject,
/// preserving first-seen order of both clusters and offsets (so the
/// annotation timeline is reproducible).
pub fn group_into_tasks(refs: &[TripleRef]) -> Vec<EvaluationTask> {
    let mut order: Vec<u32> = Vec::new();
    let mut by_cluster: HashMap<u32, Vec<u32>> = HashMap::new();
    for r in refs {
        let entry = by_cluster.entry(r.cluster).or_default();
        if entry.is_empty() {
            order.push(r.cluster);
        }
        entry.push(r.offset);
    }
    order
        .into_iter()
        .map(|cluster| EvaluationTask {
            cluster,
            offsets: by_cluster.remove(&cluster).expect("inserted above"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_preserves_order_and_membership() {
        let refs = vec![
            TripleRef::new(2, 0),
            TripleRef::new(1, 3),
            TripleRef::new(2, 1),
            TripleRef::new(1, 0),
            TripleRef::new(5, 9),
        ];
        let tasks = group_into_tasks(&refs);
        assert_eq!(tasks.len(), 3);
        assert_eq!(tasks[0].cluster, 2);
        assert_eq!(tasks[0].offsets, vec![0, 1]);
        assert_eq!(tasks[1].cluster, 1);
        assert_eq!(tasks[1].offsets, vec![3, 0]);
        assert_eq!(tasks[2].cluster, 5);
        assert_eq!(tasks[2].len(), 1);
        assert!(!tasks[2].is_empty());
    }

    #[test]
    fn refs_round_trip() {
        let tasks = group_into_tasks(&[TripleRef::new(7, 1), TripleRef::new(7, 4)]);
        let back: Vec<TripleRef> = tasks[0].refs().collect();
        assert_eq!(back, vec![TripleRef::new(7, 1), TripleRef::new(7, 4)]);
    }

    #[test]
    fn empty_input_gives_no_tasks() {
        assert!(group_into_tasks(&[]).is_empty());
    }

    #[test]
    fn task1_vs_task2_shapes() {
        // Task1: 5 triples, 5 subjects → 5 tasks.
        let task1: Vec<TripleRef> = (0..5).map(|c| TripleRef::new(c, 0)).collect();
        assert_eq!(group_into_tasks(&task1).len(), 5);
        // Task2: 5 triples, 1 subject → 1 task.
        let task2: Vec<TripleRef> = (0..5).map(|o| TripleRef::new(0, o)).collect();
        assert_eq!(group_into_tasks(&task2).len(), 1);
    }
}

//! # kg-annotate — annotation simulation substrate
//!
//! The paper's evaluation cost is *human time*: identifying the entity
//! behind a subject id (**Entity Identification**, average cost `c1`) and
//! verifying one relationship (**Relationship Validation**, average cost
//! `c2`) — §3. Every experiment in the paper beyond two manually measured
//! rows is computed with the fitted cost function `Cost(G') = |E'|·c1 +
//! |G'|·c2` (Definition 3, with c1 = 45 s and c2 = 25 s fitted in §7.1.3).
//!
//! This crate simulates that annotation process exactly:
//!
//! * [`cost::CostModel`] — the two-parameter cost function plus a
//!   least-squares fitter reproducing §7.1.3 / Fig. 4.
//! * [`oracle`] — label oracles: materialized gold labels, the Random Error
//!   Model, and the Binomial Mixture Model (Eq. 15) with its sigmoid
//!   accuracy-vs-cluster-size link. All oracles are deterministic given a
//!   seed, so 1000-trial experiments are reproducible.
//! * [`task`] — evaluation tasks: sampled triples grouped by subject, the
//!   unit of work handed to an annotator (Table 1's Task1 vs Task2).
//! * [`annotator::SimulatedAnnotator`] — walks evaluation tasks charging
//!   `c1` for each *newly identified* entity and `c2` per triple, memoizing
//!   both so re-sampled triples are never double-charged (matching the
//!   paper's practice of grouping SRS samples by subject id, §5.1, and
//!   reusing annotations across reservoir updates, §6).
//! * [`annotator::Annotator`] — the engine trait behind which the hash
//!   reference above and the zero-allocation fast path coexist:
//!   [`label_store::LabelStore`] materializes any oracle into a packed
//!   bitset indexed by global triple index, and [`dense::DenseAnnotator`]
//!   memoizes via packed bitmaps with a touched-span journal
//!   ([`bitset::BitsetJournal`], multi-word `set_range`/`reset` kernels),
//!   so one arena serves every trial with resets costing only the trial's
//!   footprint.
//! * [`lease::DenseArenaPool`] — arena checkout for parallel trial
//!   runtimes: each worker leases one reusable dense arena for its
//!   lifetime instead of rebuilding per trial.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod annotator;
pub mod bitset;
pub mod cost;
pub mod dense;
pub mod label_store;
pub mod lease;
pub mod oracle;
pub mod piecewise;
pub mod pool;
pub mod task;

pub use annotator::{Annotator, SimulatedAnnotator};
pub use bitset::BitsetJournal;
pub use cost::CostModel;
pub use dense::{DenseAnnotator, DenseGrowthError};
pub use label_store::LabelStore;
pub use lease::{ArenaLease, DenseArenaPool};
pub use oracle::{BmmOracle, GoldLabels, LabelOracle, RemOracle};
pub use piecewise::PiecewiseOracle;
pub use pool::{AnnotatorPool, AnnotatorProfile, PoolOracle, TieBreak};
pub use task::EvaluationTask;

//! Dense, materialized label storage: one bit per triple, addressed by the
//! population's global triple index.
//!
//! Every trial of every experiment consults the same oracle about the same
//! triples; materializing the labels **once per KG** into a packed bitset
//! turns the per-triple `&dyn LabelOracle` virtual call plus procedural
//! hashing (REM/BMM) or nested-`Vec` indirection (gold labels) into a single
//! indexed bit test. The store is immutable and `Sync`, so one `Arc` is
//! shared across all trials (and threads) of an experiment.
//!
//! Global addressing reuses the same prefix-sum layout as
//! `kg_sampling::PopulationIndex` — triple `(c, o)` lives at
//! `prefix[c] + o` — and the prefix vector itself is shared via `Arc` when
//! the store is built from an existing index
//! (`PopulationIndex::materialize_labels`).

use crate::oracle::LabelOracle;
use kg_model::implicit::ClusterPopulation;
use kg_model::triple::TripleRef;
use std::sync::Arc;

/// Packed per-triple labels for a clustered population, with per-cluster
/// correct counts (`τ_i`) precomputed at build time.
#[derive(Debug, Clone)]
pub struct LabelStore {
    /// Packed labels, bit `g` = label of the triple with global index `g`.
    bits: Vec<u64>,
    /// Prefix sums over cluster sizes: `prefix[c]` is the global index of
    /// cluster `c`'s first triple; `prefix[N]` is the total `M`.
    prefix: Arc<Vec<u64>>,
    /// Correct-triple count `τ_i` per cluster.
    cluster_tau: Vec<u32>,
    /// Total correct triples `τ`.
    correct: u64,
}

impl LabelStore {
    /// Materialize an oracle over a population (prefix sums built here).
    pub fn materialize<P: ClusterPopulation + ?Sized, O: LabelOracle + ?Sized>(
        pop: &P,
        oracle: &O,
    ) -> Self {
        let n = pop.num_clusters();
        let mut prefix = Vec::with_capacity(n + 1);
        let mut acc = 0u64;
        prefix.push(0);
        for c in 0..n {
            acc += pop.cluster_size(c) as u64;
            prefix.push(acc);
        }
        Self::from_prefix(Arc::new(prefix), oracle)
    }

    /// Materialize an oracle over an existing prefix-sum layout (shared
    /// with a sampling index, so the two agree on global addressing by
    /// construction).
    pub fn from_prefix<O: LabelOracle + ?Sized>(prefix: Arc<Vec<u64>>, oracle: &O) -> Self {
        assert!(
            !prefix.is_empty() && prefix[0] == 0,
            "prefix sums must start at 0"
        );
        let n = prefix.len() - 1;
        let total = prefix[n];
        let mut bits = vec![0u64; total.div_ceil(64) as usize];
        let mut cluster_tau = Vec::with_capacity(n);
        let mut correct = 0u64;
        for c in 0..n {
            let base = prefix[c];
            let size = (prefix[c + 1] - base) as usize;
            let mut tau = 0u32;
            for o in 0..size {
                if oracle.label(TripleRef::new(c as u32, o as u32)) {
                    let g = base + o as u64;
                    bits[(g >> 6) as usize] |= 1u64 << (g & 63);
                    tau += 1;
                }
            }
            cluster_tau.push(tau);
            correct += tau as u64;
        }
        LabelStore {
            bits,
            prefix,
            cluster_tau,
            correct,
        }
    }

    /// Number of clusters `N`.
    pub fn num_clusters(&self) -> usize {
        self.prefix.len() - 1
    }

    /// Total triples `M`.
    pub fn total_triples(&self) -> u64 {
        *self.prefix.last().expect("prefix non-empty")
    }

    /// Size of one cluster.
    pub fn cluster_size(&self, cluster: usize) -> usize {
        (self.prefix[cluster + 1] - self.prefix[cluster]) as usize
    }

    /// Global triple index of a reference.
    #[inline]
    pub fn global_index(&self, t: TripleRef) -> u64 {
        self.prefix[t.cluster as usize] + t.offset as u64
    }

    /// Global index of a cluster's first triple.
    #[inline]
    pub fn cluster_base(&self, cluster: usize) -> u64 {
        self.prefix[cluster]
    }

    /// Label of the triple at a global index.
    #[inline]
    pub fn label_at(&self, global: u64) -> bool {
        debug_assert!(global < self.total_triples());
        self.bits[(global >> 6) as usize] >> (global & 63) & 1 != 0
    }

    /// Precomputed correct count `τ_i` of one cluster.
    #[inline]
    pub fn cluster_tau(&self, cluster: usize) -> u32 {
        self.cluster_tau[cluster]
    }

    /// Exact population accuracy `μ(G) = τ / M` (free: counted at build).
    pub fn true_accuracy(&self) -> f64 {
        let m = self.total_triples();
        if m == 0 {
            0.0
        } else {
            self.correct as f64 / m as f64
        }
    }

    /// The shared prefix-sum vector.
    pub fn prefix_sums(&self) -> &Arc<Vec<u64>> {
        &self.prefix
    }
}

impl LabelOracle for LabelStore {
    fn label(&self, t: TripleRef) -> bool {
        self.label_at(self.global_index(t))
    }

    fn cluster_accuracy(&self, cluster: u32, size: usize) -> f64 {
        if size == 0 {
            return 0.0;
        }
        debug_assert_eq!(size, self.cluster_size(cluster as usize));
        self.cluster_tau[cluster as usize] as f64 / size as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{true_accuracy, GoldLabels, RemOracle};
    use kg_model::implicit::ImplicitKg;

    #[test]
    fn materialized_store_agrees_with_oracle() {
        let kg = ImplicitKg::new(vec![3, 1, 70, 2]).unwrap();
        let oracle = RemOracle::new(0.6, 9);
        let store = LabelStore::materialize(&kg, &oracle);
        assert_eq!(store.num_clusters(), 4);
        assert_eq!(store.total_triples(), 76);
        for c in 0..4usize {
            assert_eq!(store.cluster_size(c), kg.cluster_size(c));
            let mut tau = 0;
            for o in 0..kg.cluster_size(c) as u32 {
                let t = TripleRef::new(c as u32, o);
                assert_eq!(store.label(t), oracle.label(t), "{t:?}");
                tau += store.label(t) as u32;
            }
            assert_eq!(store.cluster_tau(c), tau);
            assert_eq!(
                store.cluster_accuracy(c as u32, kg.cluster_size(c)),
                tau as f64 / kg.cluster_size(c) as f64
            );
        }
        assert!((store.true_accuracy() - true_accuracy(&kg, &oracle)).abs() < 1e-15);
    }

    #[test]
    fn global_addressing_matches_prefix_layout() {
        let gold = GoldLabels::new(vec![vec![true, false], vec![false], vec![true, true]]);
        let kg = ImplicitKg::new(vec![2, 1, 2]).unwrap();
        let store = LabelStore::materialize(&kg, &gold);
        assert_eq!(store.global_index(TripleRef::new(0, 1)), 1);
        assert_eq!(store.global_index(TripleRef::new(1, 0)), 2);
        assert_eq!(store.global_index(TripleRef::new(2, 1)), 4);
        assert_eq!(store.cluster_base(2), 3);
        let expected = [true, false, false, true, true];
        for (g, &e) in expected.iter().enumerate() {
            assert_eq!(store.label_at(g as u64), e, "global {g}");
        }
    }

    #[test]
    fn shared_prefix_construction() {
        let prefix = Arc::new(vec![0u64, 4, 9]);
        let oracle = RemOracle::new(0.5, 3);
        let store = LabelStore::from_prefix(prefix.clone(), &oracle);
        assert!(Arc::ptr_eq(store.prefix_sums(), &prefix));
        assert_eq!(store.num_clusters(), 2);
        assert_eq!(store.cluster_size(0), 4);
        assert_eq!(store.cluster_size(1), 5);
    }

    #[test]
    fn empty_population_store() {
        let kg = ImplicitKg::new(vec![]).unwrap();
        let oracle = RemOracle::new(0.9, 1);
        let store = LabelStore::materialize(&kg, &oracle);
        assert_eq!(store.total_triples(), 0);
        assert_eq!(store.true_accuracy(), 0.0);
    }
}

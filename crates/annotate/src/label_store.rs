//! Dense, materialized label storage: one bit per triple, addressed by the
//! population's global triple index.
//!
//! Every trial of every experiment consults the same oracle about the same
//! triples; materializing the labels **once per KG** into a packed bitset
//! turns the per-triple `&dyn LabelOracle` virtual call plus procedural
//! hashing (REM/BMM) or nested-`Vec` indirection (gold labels) into a single
//! indexed bit test. The store is immutable and `Sync`, so one `Arc` is
//! shared across all trials (and threads) of an experiment.
//!
//! Global addressing reuses the same prefix-sum layout as
//! `kg_sampling::PopulationIndex` — triple `(c, o)` lives at
//! `prefix[c] + o` — and the prefix vector itself is shared via `Arc` when
//! the store is built from an existing index
//! (`PopulationIndex::materialize_labels`).

use crate::bitset::popcount_range;
use crate::oracle::LabelOracle;
use kg_model::implicit::ClusterPopulation;
use kg_model::retract::Retraction;
use kg_model::triple::TripleRef;
use kg_model::update::UpdateBatch;
use std::sync::Arc;

/// Per-cluster directory record: everything the full-cluster annotation
/// fast path needs — base global index, correct count `τ_i`, and size —
/// in one 16-byte load. The hot WCS loop visits clusters in random order,
/// so each visit's metadata reads are cache misses; folding three
/// parallel-array lookups (`prefix[c]`, `prefix[c+1]`, `tau[c]`) into one
/// record turns three potential misses into one.
#[derive(Debug, Clone, Copy)]
struct ClusterDir {
    /// Global index of the cluster's first triple (`prefix[c]`).
    base: u64,
    /// Correct-triple count `τ_i`.
    tau: u32,
    /// Cluster size `M_i`.
    size: u32,
}

/// Packed per-triple labels for a clustered population, with per-cluster
/// correct counts (`τ_i`) precomputed at build time.
#[derive(Debug, Clone)]
pub struct LabelStore {
    /// Packed labels, bit `g` = label of the triple with global index `g`.
    bits: Vec<u64>,
    /// Prefix sums over cluster sizes: `prefix[c]` is the global index of
    /// cluster `c`'s first triple; `prefix[N]` is the total `M`.
    prefix: Arc<Vec<u64>>,
    /// Per-cluster directory records (base, τ_i, size).
    dir: Vec<ClusterDir>,
    /// Dense τ_i mirror of `dir` for the full-cluster visit fast path:
    /// 16 entries per cache line against the directory's 4, and small
    /// enough (4 bytes/cluster) to stay cache-resident at scales where the
    /// 16-byte directory records spill to DRAM. `cluster_tau` is the one
    /// load left on a sited PPS visit's dependent chain after the alias
    /// slot, so its cache density directly bounds visit throughput.
    taus: Vec<u32>,
    /// Total correct triples `τ`.
    correct: u64,
    /// Tombstone bitmap, same global addressing as `bits` (empty until the
    /// first [`LabelStore::retract`] — insert-only stores pay nothing).
    dead: Vec<u64>,
    /// Total retracted triples.
    dead_total: u64,
    /// Retracted triples whose label was `true`.
    dead_correct: u64,
}

impl LabelStore {
    /// Materialize an oracle over a population (prefix sums built here).
    pub fn materialize<P: ClusterPopulation + ?Sized, O: LabelOracle + ?Sized>(
        pop: &P,
        oracle: &O,
    ) -> Self {
        let n = pop.num_clusters();
        let mut prefix = Vec::with_capacity(n + 1);
        let mut acc = 0u64;
        prefix.push(0);
        for c in 0..n {
            acc += pop.cluster_size(c) as u64;
            prefix.push(acc);
        }
        Self::from_prefix(Arc::new(prefix), oracle)
    }

    /// Materialize an oracle over an existing prefix-sum layout (shared
    /// with a sampling index, so the two agree on global addressing by
    /// construction).
    pub fn from_prefix<O: LabelOracle + ?Sized>(prefix: Arc<Vec<u64>>, oracle: &O) -> Self {
        assert!(
            !prefix.is_empty() && prefix[0] == 0,
            "prefix sums must start at 0"
        );
        let n = prefix.len() - 1;
        let total = prefix[n];
        let mut bits = vec![0u64; total.div_ceil(64) as usize];
        let mut dir = Vec::with_capacity(n);
        let mut taus = Vec::with_capacity(n);
        let mut correct = 0u64;
        for c in 0..n {
            let base = prefix[c];
            let size = (prefix[c + 1] - base) as usize;
            for o in 0..size {
                if oracle.label(TripleRef::new(c as u32, o as u32)) {
                    let g = base + o as u64;
                    bits[(g >> 6) as usize] |= 1u64 << (g & 63);
                }
            }
            // τ_i from the packed bits via the batched popcount kernel —
            // the oracle loop stays a pure bit-setter.
            let tau = popcount_range(&bits, base, base + size as u64) as u32;
            dir.push(ClusterDir {
                base,
                tau,
                size: size as u32,
            });
            taus.push(tau);
            correct += tau as u64;
        }
        LabelStore {
            bits,
            prefix,
            dir,
            taus,
            correct,
            dead: Vec::new(),
            dead_total: 0,
            dead_correct: 0,
        }
    }

    /// Append an update batch's `Δe` clusters: grow the packed bitset, the
    /// prefix sums, and the per-cluster `τ_i` in amortized O(|Δ|), minting
    /// cluster ids `N, N+1, …` for the batch groups in order — the same id
    /// assignment as [`UpdateBatch::apply_to`] and the §6 incremental
    /// evaluators. The oracle is consulted exactly once per inserted
    /// triple, with the *global* new cluster id, so a store extended batch
    /// by batch is bit-identical to one materialized over the fully evolved
    /// KG from scratch.
    ///
    /// The prefix-sum snapshot is extended via
    /// [`UpdateBatch::extend_prefix`]: held uniquely it grows in place;
    /// shared with a base-snapshot sampling index it is copied once
    /// (copy-on-write) and the sharer keeps addressing the base, whose
    /// cluster ids never change.
    pub fn extend_with_batch<O: LabelOracle + ?Sized>(&mut self, delta: &UpdateBatch, oracle: &O) {
        if delta.num_delta_clusters() == 0 {
            return;
        }
        let first = self.num_clusters() as u32;
        let base_total = self.total_triples();
        let new_total = base_total + delta.total_triples();
        self.bits.resize(new_total.div_ceil(64) as usize, 0);
        if !self.dead.is_empty() {
            self.dead.resize(new_total.div_ceil(64) as usize, 0);
        }
        delta.extend_prefix(&mut self.prefix);
        self.dir.reserve(delta.num_delta_clusters());
        self.taus.reserve(delta.num_delta_clusters());
        let mut base = base_total;
        for (j, &size) in delta.delta_sizes().iter().enumerate() {
            let cluster = first + j as u32;
            for o in 0..size {
                if oracle.label(TripleRef::new(cluster, o)) {
                    let g = base + o as u64;
                    self.bits[(g >> 6) as usize] |= 1u64 << (g & 63);
                }
            }
            let tau = popcount_range(&self.bits, base, base + size as u64) as u32;
            self.dir.push(ClusterDir { base, tau, size });
            self.taus.push(tau);
            base += size as u64;
            self.correct += tau as u64;
        }
        debug_assert_eq!(self.total_triples(), new_total);
    }

    /// Number of clusters `N`.
    pub fn num_clusters(&self) -> usize {
        self.prefix.len() - 1
    }

    /// Total triples `M`.
    pub fn total_triples(&self) -> u64 {
        *self.prefix.last().expect("prefix non-empty")
    }

    /// Size of one cluster.
    #[inline]
    pub fn cluster_size(&self, cluster: usize) -> usize {
        self.dir[cluster].size as usize
    }

    /// Global triple index of a reference.
    #[inline]
    pub fn global_index(&self, t: TripleRef) -> u64 {
        self.prefix[t.cluster as usize] + t.offset as u64
    }

    /// Global index of a cluster's first triple.
    #[inline]
    pub fn cluster_base(&self, cluster: usize) -> u64 {
        self.dir[cluster].base
    }

    /// Label of the triple at a global index.
    #[inline]
    pub fn label_at(&self, global: u64) -> bool {
        debug_assert!(global < self.total_triples());
        self.bits[(global >> 6) as usize] >> (global & 63) & 1 != 0
    }

    /// Precomputed correct count `τ_i` of one cluster (served from the
    /// dense τ mirror — see the `taus` field note).
    #[inline]
    pub fn cluster_tau(&self, cluster: usize) -> u32 {
        self.taus[cluster]
    }

    /// Exact **live** population accuracy `μ(G) = τ / M` over the
    /// surviving triples (free: counted at build and maintained by
    /// [`LabelStore::retract`]). Equal to the raw accuracy while nothing
    /// has been retracted.
    pub fn true_accuracy(&self) -> f64 {
        let m = self.total_triples() - self.dead_total;
        if m == 0 {
            0.0
        } else {
            (self.correct - self.dead_correct) as f64 / m as f64
        }
    }

    /// Mark triples dead for **truth accounting**. The labels themselves
    /// are *not* erased — raw global addressing, [`LabelStore::label_at`],
    /// and the per-cluster raw `τ_i` stay valid, so a retracted store can
    /// still back a dense annotation arena (whose per-trial tombstones are
    /// replayed independently). Only the live aggregates move:
    /// [`LabelStore::true_accuracy`] and
    /// [`LabelStore::live_total_triples`] now describe the surviving
    /// population. Retracting the same triple twice is a caller bug
    /// (debug-asserted).
    pub fn retract(&mut self, retraction: &Retraction) {
        if self.dead.is_empty() {
            self.dead = vec![0u64; self.bits.len()];
        }
        for (cluster, offsets) in retraction.entries() {
            let base = self.cluster_base(*cluster as usize);
            let size = self.cluster_size(*cluster as usize);
            for &o in offsets.iter() {
                assert!((o as usize) < size, "retracted offset out of range");
                let g = base + o as u64;
                let (w, b) = ((g >> 6) as usize, 1u64 << (g & 63));
                debug_assert_eq!(self.dead[w] & b, 0, "triple retracted twice");
                self.dead[w] |= b;
                self.dead_total += 1;
                self.dead_correct += self.label_at(g) as u64;
            }
        }
    }

    /// Number of surviving (non-retracted) triples.
    pub fn live_total_triples(&self) -> u64 {
        self.total_triples() - self.dead_total
    }

    /// Whether the triple at a global index has been retracted.
    #[inline]
    pub fn is_retracted(&self, global: u64) -> bool {
        if self.dead.is_empty() {
            return false;
        }
        self.dead[(global >> 6) as usize] >> (global & 63) & 1 != 0
    }

    /// The shared prefix-sum vector.
    pub fn prefix_sums(&self) -> &Arc<Vec<u64>> {
        &self.prefix
    }
}

impl LabelOracle for LabelStore {
    fn label(&self, t: TripleRef) -> bool {
        self.label_at(self.global_index(t))
    }

    fn cluster_accuracy(&self, cluster: u32, size: usize) -> f64 {
        if size == 0 {
            return 0.0;
        }
        debug_assert_eq!(size, self.cluster_size(cluster as usize));
        self.dir[cluster as usize].tau as f64 / size as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{true_accuracy, GoldLabels, RemOracle};
    use kg_model::implicit::ImplicitKg;

    #[test]
    fn materialized_store_agrees_with_oracle() {
        let kg = ImplicitKg::new(vec![3, 1, 70, 2]).unwrap();
        let oracle = RemOracle::new(0.6, 9);
        let store = LabelStore::materialize(&kg, &oracle);
        assert_eq!(store.num_clusters(), 4);
        assert_eq!(store.total_triples(), 76);
        for c in 0..4usize {
            assert_eq!(store.cluster_size(c), kg.cluster_size(c));
            let mut tau = 0;
            for o in 0..kg.cluster_size(c) as u32 {
                let t = TripleRef::new(c as u32, o);
                assert_eq!(store.label(t), oracle.label(t), "{t:?}");
                tau += store.label(t) as u32;
            }
            assert_eq!(store.cluster_tau(c), tau);
            assert_eq!(
                store.cluster_accuracy(c as u32, kg.cluster_size(c)),
                tau as f64 / kg.cluster_size(c) as f64
            );
        }
        assert!((store.true_accuracy() - true_accuracy(&kg, &oracle)).abs() < 1e-15);
    }

    #[test]
    fn global_addressing_matches_prefix_layout() {
        let gold = GoldLabels::new(vec![vec![true, false], vec![false], vec![true, true]]);
        let kg = ImplicitKg::new(vec![2, 1, 2]).unwrap();
        let store = LabelStore::materialize(&kg, &gold);
        assert_eq!(store.global_index(TripleRef::new(0, 1)), 1);
        assert_eq!(store.global_index(TripleRef::new(1, 0)), 2);
        assert_eq!(store.global_index(TripleRef::new(2, 1)), 4);
        assert_eq!(store.cluster_base(2), 3);
        let expected = [true, false, false, true, true];
        for (g, &e) in expected.iter().enumerate() {
            assert_eq!(store.label_at(g as u64), e, "global {g}");
        }
    }

    #[test]
    fn shared_prefix_construction() {
        let prefix = Arc::new(vec![0u64, 4, 9]);
        let oracle = RemOracle::new(0.5, 3);
        let store = LabelStore::from_prefix(prefix.clone(), &oracle);
        assert!(Arc::ptr_eq(store.prefix_sums(), &prefix));
        assert_eq!(store.num_clusters(), 2);
        assert_eq!(store.cluster_size(0), 4);
        assert_eq!(store.cluster_size(1), 5);
    }

    #[test]
    fn batch_extension_matches_from_scratch_materialization() {
        // Extending batch by batch must equal materializing the fully
        // evolved KG in one go: same bits, τ_i, totals, accuracy.
        let oracle = RemOracle::new(0.7, 21);
        let base = ImplicitKg::new(vec![3, 5, 2]).unwrap();
        let mut grown = LabelStore::materialize(&base, &oracle);
        let b1 = UpdateBatch::from_sizes(vec![4, 1]).unwrap();
        let b2 = UpdateBatch::from_sizes(vec![130]).unwrap(); // spans words
        grown.extend_with_batch(&b1, &oracle);
        grown.extend_with_batch(&b2, &oracle);

        let (evolved, _) = b2.apply_to(&b1.apply_to(&base).0);
        let scratch = LabelStore::materialize(&evolved, &oracle);
        assert_eq!(grown.num_clusters(), scratch.num_clusters());
        assert_eq!(grown.total_triples(), scratch.total_triples());
        assert_eq!(grown.true_accuracy(), scratch.true_accuracy());
        for c in 0..grown.num_clusters() {
            assert_eq!(grown.cluster_size(c), scratch.cluster_size(c), "{c}");
            assert_eq!(grown.cluster_tau(c), scratch.cluster_tau(c), "{c}");
        }
        for g in 0..grown.total_triples() {
            assert_eq!(grown.label_at(g), scratch.label_at(g), "global {g}");
        }
    }

    #[test]
    fn extension_leaves_shared_base_prefix_untouched() {
        let oracle = RemOracle::new(0.5, 4);
        let base_prefix = Arc::new(vec![0u64, 4, 9]);
        let mut store = LabelStore::from_prefix(base_prefix.clone(), &oracle);
        // Empty batch: no-op, still sharing.
        store.extend_with_batch(&UpdateBatch::from_sizes(vec![]).unwrap(), &oracle);
        assert!(Arc::ptr_eq(store.prefix_sums(), &base_prefix));
        // Real growth copies once; the sharer keeps the base snapshot.
        store.extend_with_batch(&UpdateBatch::from_sizes(vec![6]).unwrap(), &oracle);
        assert_eq!(&**base_prefix, &[0, 4, 9]);
        assert_eq!(&**store.prefix_sums(), &[0, 4, 9, 15]);
        assert_eq!(store.num_clusters(), 3);
        assert_eq!(store.cluster_size(2), 6);
        // Further growth extends the now uniquely held copy.
        store.extend_with_batch(&UpdateBatch::from_sizes(vec![2]).unwrap(), &oracle);
        assert_eq!(store.total_triples(), 17);
        assert_eq!(&**base_prefix, &[0, 4, 9]);
    }

    #[test]
    fn retraction_moves_live_accuracy_but_keeps_raw_labels() {
        // Third label group feeds the post-retraction growth below.
        let gold = GoldLabels::new(vec![
            vec![true, false, true],
            vec![false, true],
            vec![true, false],
        ]);
        let kg = ImplicitKg::new(vec![3, 2]).unwrap();
        let mut store = LabelStore::materialize(&kg, &gold);
        assert_eq!(store.true_accuracy(), 3.0 / 5.0);
        // Retract one correct (0,0) and one incorrect (1,0) triple.
        store.retract(&Retraction::new(vec![(0, vec![0]), (1, vec![0])]).unwrap());
        assert_eq!(store.live_total_triples(), 3);
        assert_eq!(store.true_accuracy(), 2.0 / 3.0);
        assert!(store.is_retracted(0));
        assert!(!store.is_retracted(1));
        assert!(store.is_retracted(3));
        // Raw addressing is untouched: labels, τ_i, sizes all raw.
        assert_eq!(store.total_triples(), 5);
        assert_eq!(store.cluster_size(0), 3);
        assert_eq!(store.cluster_tau(0), 2);
        assert!(store.label_at(0));
        // Growth after retraction keeps both books straight.
        store.extend_with_batch(&UpdateBatch::from_sizes(vec![2]).unwrap(), &gold);
        assert_eq!(store.total_triples(), 7);
        assert_eq!(store.live_total_triples(), 5);
        assert!(!store.is_retracted(5));
        // And a retraction in the new region works: killing all of cluster
        // 2 leaves exactly the 3 survivors of clusters 0/1 (2 correct).
        store.retract(&Retraction::new(vec![(2, vec![0, 1])]).unwrap());
        assert_eq!(store.live_total_triples(), 3);
        assert_eq!(store.true_accuracy(), 2.0 / 3.0);
    }

    #[test]
    fn empty_population_store() {
        let kg = ImplicitKg::new(vec![]).unwrap();
        let oracle = RemOracle::new(0.9, 1);
        let store = LabelStore::materialize(&kg, &oracle);
        assert_eq!(store.total_triples(), 0);
        assert_eq!(store.true_accuracy(), 0.0);
    }
}

//! Packed bit-set kernels: the multi-word building blocks under the dense
//! annotation engine.
//!
//! [`BitsetJournal`] is one packed bit-set plus a **touched-span journal**
//! for cheap trial resets. The original journal recorded every touched
//! word individually and both `set_range` and `reset` walked the set one
//! 64-bit word at a time; the kernels here process words in batches the
//! optimizer can unroll and vectorize (plain stable Rust — `chunks_exact`
//! over `u64` words, batched `count_ones`, slice `fill` — no unstable
//! features, no intrinsics):
//!
//! * [`BitsetJournal::set_range`] splits a bit range into head mask /
//!   whole-word interior / tail mask. The interior is counted with a
//!   batched popcount (`fresh = 64·len − ones-before`) and stamped with a
//!   single `fill(u64::MAX)` (a `memset`), instead of a per-word
//!   mask-build / test / journal-push loop.
//! * [`BitsetJournal::reset`] zeroes one **span** (`fill(0)`, again a
//!   `memset`) per journal entry, so reset cost scales with the number of
//!   contiguous regions a trial touched, not the number of words.
//! * [`popcount_range`] is the read-only sibling: population count over an
//!   arbitrary bit range, 8 words per iteration.
//!
//! The span journal may **over-cover**: a span is recorded per mutating
//! call, so two calls overlapping the same words can journal those words
//! twice, and a span can include words that were already set. That is
//! harmless by construction — reset only ever writes zeros, and zeroing
//! an already-zero word is a no-op — and it is what lets `set_range`
//! journal one span per call instead of testing every interior word for
//! the 0 → nonzero flip.

/// One packed bit-set with a touched-span journal for cheap resets.
///
/// Used by `DenseAnnotator` for its three memo bitmaps; exposed so the
/// property suite (`tests/bitset_props.rs`) can exercise the kernels
/// against a naive model, and for any other consumer that wants
/// journaled, range-oriented bit stamping.
#[derive(Debug, Default, Clone)]
pub struct BitsetJournal {
    words: Vec<u64>,
    /// Touched spans `(first_word, word_count)` recorded since the last
    /// reset, one per journaling call site. Every word that holds a set
    /// bit is covered by at least one span; spans may overlap each other
    /// and words that were never flipped (over-coverage is harmless — see
    /// the module docs).
    spans: Vec<(u32, u32)>,
}

impl BitsetJournal {
    /// Empty set covering `bits` bits (all clear).
    pub fn with_capacity(bits: u64) -> Self {
        BitsetJournal {
            words: vec![0; bits.div_ceil(64) as usize],
            spans: Vec::new(),
        }
    }

    /// Capacity in bits (a multiple of 64).
    pub fn capacity(&self) -> u64 {
        self.words.len() as u64 * 64
    }

    /// Whether bit `i` is set.
    #[inline]
    pub fn get(&self, i: u64) -> bool {
        self.words[(i >> 6) as usize] >> (i & 63) & 1 != 0
    }

    /// Set bit `i`; returns whether it was previously clear.
    #[inline]
    pub fn set(&mut self, i: u64) -> bool {
        let wi = (i >> 6) as usize;
        let w = self.words[wi];
        let bit = 1u64 << (i & 63);
        if w & bit != 0 {
            return false;
        }
        if w == 0 {
            self.push_span(wi as u32, 1);
        }
        self.words[wi] = w | bit;
        true
    }

    /// Set every bit in `[start, end)`; returns how many were previously
    /// clear. Multi-word ranges take the head/interior/tail kernel: the
    /// interior's fresh count is `64·words − ones-before` from a batched
    /// popcount, and the stamp itself is one `fill(u64::MAX)`.
    #[inline]
    pub fn set_range(&mut self, start: u64, end: u64) -> u64 {
        debug_assert!(start <= end);
        if start >= end {
            return 0;
        }
        let w0 = (start >> 6) as usize;
        let wl = ((end - 1) >> 6) as usize;
        let head_mask = !0u64 << (start & 63);
        let tail_mask = !0u64 >> (63 - ((end - 1) & 63));
        let fresh = if w0 == wl {
            let mask = head_mask & tail_mask;
            let w = self.words[w0];
            self.words[w0] = w | mask;
            u64::from((mask & !w).count_ones())
        } else {
            let w = self.words[w0];
            self.words[w0] = w | head_mask;
            let mut fresh = u64::from((head_mask & !w).count_ones());
            let interior = &mut self.words[w0 + 1..wl];
            fresh += 64 * interior.len() as u64 - popcount_words(interior);
            interior.fill(u64::MAX);
            let w = self.words[wl];
            self.words[wl] = w | tail_mask;
            fresh + u64::from((tail_mask & !w).count_ones())
        };
        if fresh > 0 {
            // One journal entry per mutating call covers every word that
            // could have flipped 0 → nonzero (fresh == 0 means no word
            // changed at all, so nothing needs journaling).
            self.push_span(w0 as u32, (wl - w0 + 1) as u32);
        }
        fresh
    }

    /// Population count over the bit range `[start, end)`.
    #[inline]
    pub fn count_range(&self, start: u64, end: u64) -> u64 {
        popcount_range(&self.words, start, end)
    }

    /// Zero every journaled span — one `memset` per span, so the cost
    /// scales with how many contiguous regions were touched since the last
    /// reset, not with capacity or even touched-word count.
    #[inline]
    pub fn reset(&mut self) {
        for &(start, len) in &self.spans {
            let s = start as usize;
            // Direct stores for the dominant tiny spans (random single-bit
            // journal entries): `fill` on a runtime-length slice lowers to
            // a libc `memset` call, whose fixed overhead swamps a 1–2 word
            // zeroing.
            if len <= 2 {
                self.words[s] = 0;
                if len == 2 {
                    self.words[s + 1] = 0;
                }
            } else {
                self.words[s..s + len as usize].fill(0);
            }
        }
        self.spans.clear();
    }

    /// Grow the word arena to cover `bits` (appended words start clear, so
    /// the span journal and any in-flight trial state stay valid —
    /// mid-sequence growth preserves the memo, which is exactly what
    /// incremental evaluation reuses across batches).
    #[inline]
    pub fn grow(&mut self, bits: u64) {
        let words = bits.div_ceil(64) as usize;
        if words > self.words.len() {
            self.words.resize(words, 0);
        }
    }

    /// Journal entries currently recorded (diagnostic; resets scale with
    /// this, not with words).
    pub fn journaled_spans(&self) -> usize {
        self.spans.len()
    }

    /// Record `(start, len)` — one plain push. Deliberately no
    /// merge-with-previous check: the `w == 0` / `fresh > 0` gates at the
    /// call sites already cap the journal at one entry per word (for
    /// `set`) or per mutating call (for `set_range`), and a
    /// compare-with-tail here costs a dependent load plus two branches on
    /// the hottest path in the tree (measured ~20% of a full-cluster
    /// visit) for no asymptotic gain.
    #[inline]
    fn push_span(&mut self, start: u32, len: u32) {
        self.spans.push((start, len));
    }
}

/// Batched population count over whole words: 8 per iteration, which the
/// optimizer unrolls into straight-line `popcnt` chains (or vectorizes
/// where the target supports it).
#[inline]
fn popcount_words(words: &[u64]) -> u64 {
    let mut chunks = words.chunks_exact(8);
    let mut total = 0u64;
    for c in &mut chunks {
        let mut t = 0u64;
        for &w in c {
            t += u64::from(w.count_ones());
        }
        total += t;
    }
    for &w in chunks.remainder() {
        total += u64::from(w.count_ones());
    }
    total
}

/// Population count of the bit range `[start, end)` over packed `words`.
///
/// Head and tail partial words are masked; the interior goes through the
/// batched whole-word kernel. Shared by [`BitsetJournal::count_range`] and
/// the label store's τ counting.
#[inline]
pub fn popcount_range(words: &[u64], start: u64, end: u64) -> u64 {
    debug_assert!(start <= end);
    if start >= end {
        return 0;
    }
    let w0 = (start >> 6) as usize;
    let wl = ((end - 1) >> 6) as usize;
    let head_mask = !0u64 << (start & 63);
    let tail_mask = !0u64 >> (63 - ((end - 1) & 63));
    if w0 == wl {
        return u64::from((words[w0] & head_mask & tail_mask).count_ones());
    }
    u64::from((words[w0] & head_mask).count_ones())
        + popcount_words(&words[w0 + 1..wl])
        + u64::from((words[wl] & tail_mask).count_ones())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_range_counts_only_fresh_bits_across_word_boundaries() {
        let mut bm = BitsetJournal::with_capacity(200);
        assert!(bm.set(70));
        // Range spanning three words, one bit pre-set.
        assert_eq!(bm.set_range(60, 190), 129);
        assert_eq!(bm.set_range(60, 190), 0);
        // Full-word interior span.
        assert_eq!(bm.set_range(0, 60), 60);
        bm.reset();
        assert!((0..200).all(|i| !bm.get(i)));
        assert_eq!(bm.journaled_spans(), 0);
        assert_eq!(bm.set_range(0, 64), 64);
    }

    #[test]
    fn empty_range_is_a_no_op_and_journals_nothing() {
        let mut bm = BitsetJournal::with_capacity(128);
        assert_eq!(bm.set_range(50, 50), 0);
        assert_eq!(bm.set_range(128, 128), 0);
        assert_eq!(bm.journaled_spans(), 0);
    }

    #[test]
    fn adjacent_stamps_journal_once_per_call_and_reset_clean() {
        let mut bm = BitsetJournal::with_capacity(64 * 10);
        assert_eq!(bm.set_range(0, 130), 130);
        assert_eq!(bm.set_range(130, 320), 190);
        // One entry per mutating call; re-stamping the same region adds
        // nothing (fresh == 0 journals nothing).
        assert_eq!(bm.journaled_spans(), 2);
        assert_eq!(bm.set_range(0, 320), 0);
        assert_eq!(bm.journaled_spans(), 2);
        bm.reset();
        assert_eq!(bm.count_range(0, 640), 0);
    }

    #[test]
    fn count_range_matches_per_bit_reads() {
        let mut bm = BitsetJournal::with_capacity(64 * 20);
        for i in (0..64 * 20).step_by(3) {
            bm.set(i);
        }
        for (a, b) in [(0, 0), (0, 1), (5, 129), (63, 64), (64, 1217), (0, 1280)] {
            let naive = (a..b).filter(|&i| bm.get(i)).count() as u64;
            assert_eq!(bm.count_range(a, b), naive, "[{a}, {b})");
        }
    }

    #[test]
    fn popcount_range_on_raw_words() {
        let words = [u64::MAX, 0, 0b1011, u64::MAX, u64::MAX];
        assert_eq!(popcount_range(&words, 0, 64), 64);
        assert_eq!(popcount_range(&words, 0, 320), 64 + 3 + 128);
        assert_eq!(popcount_range(&words, 128, 132), 3);
        assert_eq!(popcount_range(&words, 10, 10), 0);
        assert_eq!(popcount_range(&words, 63, 65), 1);
    }

    #[test]
    fn grow_preserves_bits_and_journal() {
        let mut bm = BitsetJournal::with_capacity(64);
        bm.set(63);
        bm.grow(64 * 4);
        assert_eq!(bm.capacity(), 64 * 4);
        assert!(bm.get(63));
        assert_eq!(bm.set_range(63, 200), 136);
        bm.reset();
        assert_eq!(bm.count_range(0, 256), 0);
    }
}
